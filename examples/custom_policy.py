"""The custom-policy walkthrough, runnable end to end.

Registers a new selection policy — ``freshest-first``, which fills the
round with the clients that became available most recently — and serves
a small Poisson trace with it through the real replay engine, twice, to
show the registry knob and the determinism contract in their minimal
form.  This is the companion example for the "Registering a custom
policy" section of ``docs/scenario-authoring.md``; the conformance suite
(``tests/test_policy_conformance.py``) imports this module so the
example policy is held to the same property tests as the built-ins.

Run:  PYTHONPATH=src python examples/custom_policy.py
"""

from __future__ import annotations

from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.core.policies import POLICIES, SelectionContext, SelectionPolicy, policy
from repro.traces.models import availability_trace, poisson_trace
from repro.traces.replay import ReplayConfig, TraceReplayEngine


# A policy is a class: subclass the family's ABC, implement its decision
# method(s), and register it under a (family, name) pair with @policy.
# Every random draw must come from the per-round ``rng`` the engine
# injects (or ``self.rng``, the stream resolve_policy binds) — module
# or global randomness would break seeded-replay determinism, and the
# conformance suite's determinism property catches exactly that.
@policy("selection", "freshest-first")
class FreshestFirstSelection(SelectionPolicy):
    """Pick the ``round_updates`` clients whose current availability
    session started last — mobile clients that just came online are the
    least likely to churn away mid-round.  Ties (and the no-trace
    fallback) stay deterministic: client ids break ties, and draws for
    jittering equal-freshness cohorts come from the injected ``rng``."""

    def select(self, ctx: SelectionContext, rng) -> list[str]:
        if ctx.availability is None:
            # No availability trace: same synthetic cohort the built-in
            # random policy falls back to.
            return [f"synth-{i}" for i in range(ctx.round_updates)]
        up = ctx.availability.sample(ctx.at, 10 * ctx.round_updates, rng)
        ranked = sorted(
            up, key=lambda cid: (-self._session_start(ctx, cid), cid)
        )
        return ranked[: ctx.round_updates]

    @staticmethod
    def _session_start(ctx: SelectionContext, client_id: str) -> float:
        """When the client's current availability session began."""
        for start, end in ctx.availability.windows.get(client_id, ()):
            if start <= ctx.at < end:
                return start
        return float("-inf")


def main() -> None:
    # Registration is immediate: the registry now lists the new name and
    # any ReplayConfig can resolve it.
    assert "freshest-first" in POLICIES.names("selection")

    seed = 42
    trace = poisson_trace(12.0, 120.0, seed=seed)
    avail = availability_trace(40, 120.0, seed=seed)

    def serve() -> dict:
        replay = TraceReplayEngine(
            AggregationPlatform(
                PlatformConfig.lifl(), node_names=[f"node{i}" for i in range(4)]
            ),
            trace,
            ReplayConfig(
                round_updates=8,
                max_inflight=2,
                queue_limit=4,
                slo_target_s=15.0,
                selection_policy="freshest-first",  # <-- the registry knob
            ),
            availability=avail,
            seed=seed,
        )
        return replay.run().row()

    row = serve()
    print(f"freshest-first served {row['rounds']} rounds, "
          f"p95 {row['latency_p95_s']:.2f}s, "
          f"attainment {row['slo_attainment']:.1%}")
    assert row["rounds"] > 0 and row["completed"] > 0
    # The determinism contract: same seed, same bytes — because every
    # draw went through the injected per-round stream.
    assert serve() == row, "custom policy must be seed-deterministic"
    print("second replay with the same seed is identical — determinism holds")


if __name__ == "__main__":
    main()
