"""The real LIFL node runtime, end to end — no simulation.

Builds two worker "nodes" in-process with the actual mechanisms:
``multiprocessing.shared_memory`` object stores with immutable objects and
random 16-byte keys, sockmap routing tables, SKMSG-style event-driven key
delivery, per-node gateways with inter-node routing (Appendix A / Fig. 12),
eBPF-style metrics maps, and asynchronous model checkpointing (Appendix B).

A two-level hierarchy (leaves on both nodes, top on node n0) aggregates six
real tensor updates with weighted FedAvg; the result is checked against the
one-shot average, and the global model is checkpointed.

Run:  python examples/shared_memory_runtime.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.common.errors import RoutingError
from repro.common.rng import make_rng
from repro.controlplane.agent import NodeAgent
from repro.controlplane.hierarchy import plan_hierarchy
from repro.controlplane.metrics import MetricsServer
from repro.controlplane.tag import TagGraph
from repro.fl.fedavg import FedAvgAccumulator, ModelUpdate, federated_average
from repro.fl.model import Model
from repro.runtime.gateway import encode_update


class Aggregator:
    """A real aggregator: consumes object keys, FedAvg-accumulates, sends."""

    def __init__(self, agg_id, agent, fan_in, weights):
        self.agg_id = agg_id
        self.agent = agent
        self.fan_in = fan_in
        self.weights = weights
        self.acc = FedAvgAccumulator()
        self.received = 0
        self.result_key = None

    def deliver(self, src_id, key, dst_id):  # the sockmap "socket"
        payload = self.agent.store.get(key)  # zero-copy read
        self.acc.add(ModelUpdate(Model({"p": np.array(payload)}), weight=self.weights[src_id]))
        self.agent.store.release(key)
        self.received += 1
        self.agent.metrics_map.on_aggregate(self.agg_id, 0.001)
        if self.received == self.fan_in:
            out = self.acc.result(producer=self.agg_id)
            self.weights[self.agg_id] = out.weight
            key_out = self.agent.store.put(out.model["p"])
            try:
                self.agent.router.send(self.agg_id, key_out)  # SKMSG
            except RoutingError:
                self.result_key = key_out  # we are the top aggregator


def main() -> None:
    rng = make_rng(0, "runtime-demo")
    metrics = MetricsServer()
    metrics.register_node("n0", 20)
    metrics.register_node("n1", 20)

    with tempfile.TemporaryDirectory() as ckpt_dir, \
            NodeAgent("n0", metrics, checkpoint_dir=ckpt_dir) as n0, \
            NodeAgent("n1", metrics) as n1:
        agents = {"n0": n0, "n1": n1}

        # The control plane plans a hierarchy: 4 updates on n0, 2 on n1.
        plan = plan_hierarchy({"n0": 4, "n1": 2}, updates_per_leaf=2, top_node="n0")
        tag = TagGraph.from_plan(plan)
        print(f"hierarchy: {len(plan.aggregators)} aggregators, "
              f"{tag.shared_memory_fraction():.0%} of channels on shared memory")

        # Agents instantiate aggregators and program routes (App. A).
        weights: dict[str, float] = {}
        aggs = {}
        for agg_id, spec in plan.aggregators.items():
            agg = Aggregator(agg_id, agents[spec.node], spec.fan_in, weights)
            aggs[agg_id] = agg
            agents[spec.node].register_aggregator(agg_id, agg)
        for agent in agents.values():
            agent.apply_routes(plan, agents)

        # Six clients upload real tensor updates through the gateways.
        parents = {s.parent for s in plan.aggregators.values() if s.parent}
        frontier = [s for s in plan.aggregators.values() if s.agg_id not in parents]
        reference = []
        uid = 0
        for spec in frontier:
            for _ in range(spec.fan_in):
                tensor = rng.standard_normal(1024).astype(np.float32)
                weight = float(rng.integers(1, 50))
                client = f"client{uid}"
                uid += 1
                weights[client] = weight
                reference.append(ModelUpdate(Model({"p": tensor}), weight=weight))
                agents[spec.node].gateway.receive(
                    encode_update(tensor), spec.agg_id, src_id=client
                )

        # The cascade ran synchronously; fetch the top's global model.
        top = aggs[plan.top.agg_id]
        global_model = n0.store.get(top.result_key)
        expected = federated_average(reference).model["p"]
        assert np.allclose(global_model, expected, rtol=1e-4, atol=1e-5)
        print(f"global model aggregated over shared memory: {global_model.shape[0]} params, "
              f"matches one-shot FedAvg: True")

        # Checkpoint asynchronously (App. B) and verify recovery.
        n0.checkpoint_model(1, {"p": np.array(global_model)})
        n0.checkpoints.flush()
        recovered = n0.checkpoints.load(1)["p"]
        assert np.allclose(recovered, expected, rtol=1e-4, atol=1e-5)
        print("checkpoint written and recovered: True")

        # The agent drains eBPF metrics maps into the metrics server.
        for name, agent in agents.items():
            report = agent.drain_metrics(now=1.0, window=1.0)
            print(f"{name}: arrival_rate={report['arrival_rate']:.0f}/s, "
                  f"gateway rx={agent.gateway.rx_updates} updates "
                  f"({agent.gateway.rx_bytes / 1e3:.0f} KB)")
        n0.store.release(top.result_key)


if __name__ == "__main__":
    main()
