"""Mobile-fleet scenario (the paper's ResNet-18 setup, §6.2, scaled down).

2,800 mobile clients exist; 120 are active per round; each hibernates up to
60 s before training — producing the fluctuating arrival rate of Fig. 10(a).
We run the same workload on LIFL, the serverful baseline (SF), and the
serverless baseline (SL), and compare time- and cost-to-accuracy.

Run:  python examples/mobile_fleet.py  [--rounds N]
"""

from __future__ import annotations

import argparse

from repro.common.rng import make_rng
from repro.common.units import fmt_duration
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.core.rounds import FLWorkloadConfig, run_fl_workload
from repro.fl.convergence import curve_for
from repro.fl.model import model_spec
from repro.workloads.fedscale import MOBILE_PROFILE, make_population


def main(rounds: int = 80) -> None:
    spec = model_spec("resnet18")
    population = make_population(2800, spec, MOBILE_PROFILE, seed=0)
    workload = FLWorkloadConfig(
        spec=spec,
        curve=curve_for("resnet18"),
        aggregation_goal=60,
        active_clients=120,
        rounds=rounds,
        target_accuracy=0.70,
    )

    systems = [
        ("LIFL", AggregationPlatform(PlatformConfig.lifl())),
        ("SF", AggregationPlatform(PlatformConfig.serverful(instances=60))),
        ("SL", AggregationPlatform(PlatformConfig.serverless())),
    ]

    print(f"mobile fleet: {population.size} clients, 120 active, goal 60, ResNet-18")
    print("system  to-70%-acc   CPU-hours  rounds  mean-round")
    results = {}
    for name, platform in systems:
        result = run_fl_workload(platform, population, workload, make_rng(5, name))
        results[name] = result
        tta = result.time_to_accuracy(0.70)
        cta = result.cost_to_accuracy(0.70)
        mean_round = sum(s.duration for s in result.samples) / result.rounds
        print(
            f"{name:6s}  {fmt_duration(tta) if tta else 'n/a':>10s}"
            f"  {cta / 3600 if cta else float('nan'):9.2f}  {result.rounds:6d}"
            f"  {fmt_duration(mean_round):>10s}"
        )

    lifl, sf, sl = (results[k].time_to_accuracy(0.70) for k in ("LIFL", "SF", "SL"))
    print(
        f"\nLIFL is {sf / lifl:.1f}x faster than serverful and {sl / lifl:.1f}x "
        f"faster than serverless to 70% accuracy (paper: 1.6x and 2.7x)."
    )

    print("\narrival rate (updates/min) over the first 10 LIFL rounds:")
    for s in results["LIFL"].samples[:10]:
        bar = "#" * int(s.arrivals_per_minute / 4)
        print(f"  round {s.round_index:2d}: {s.arrivals_per_minute:5.0f} {bar}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--rounds", type=int, default=80)
    main(parser.parse_args().rounds)
