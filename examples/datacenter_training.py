"""Datacenter scenario (the paper's ResNet-152 setup) + orchestration tour.

Part 1 — heavyweight updates: 15 always-on server clients train a 232 MB
model; stable arrivals (Fig. 10(d)); LIFL vs SF vs SL.

Part 2 — the Fig. 8 orchestration ablation at a glance: what each of
LIFL's control-plane features (locality-aware placement, hierarchy
planning, reuse, eager aggregation) buys on a burst of 20 concurrent
ResNet-152 updates.

Run:  python examples/datacenter_training.py
"""

from __future__ import annotations

from repro.common.rng import make_rng
from repro.common.units import RESNET152_BYTES, fmt_duration
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.core.rounds import FLWorkloadConfig, run_fl_workload
from repro.fl.convergence import curve_for
from repro.fl.model import model_spec
from repro.workloads.arrival import concurrent_arrivals
from repro.workloads.fedscale import SERVER_PROFILE, make_population


def part1_workload() -> None:
    spec = model_spec("resnet152")
    population = make_population(60, spec, SERVER_PROFILE, seed=0)
    workload = FLWorkloadConfig(
        spec=spec,
        curve=curve_for("resnet152"),
        aggregation_goal=12,
        active_clients=15,
        rounds=160,
        target_accuracy=0.70,
    )
    print("ResNet-152, 15 always-on server clients, goal 12")
    print("system  to-70%-acc   CPU-hours  rounds")
    for name, platform in [
        ("LIFL", AggregationPlatform(PlatformConfig.lifl())),
        ("SF", AggregationPlatform(PlatformConfig.serverful(instances=9))),
        ("SL", AggregationPlatform(PlatformConfig.serverless())),
    ]:
        result = run_fl_workload(platform, population, workload, make_rng(5, name))
        tta = result.time_to_accuracy(0.70)
        cta = result.cost_to_accuracy(0.70)
        print(
            f"{name:6s}  {fmt_duration(tta) if tta else 'n/a':>10s}"
            f"  {cta / 3600 if cta else float('nan'):9.2f}  {result.rounds:6d}"
        )


def part2_orchestration() -> None:
    print("\norchestration ablation: 20 concurrent ResNet-152 updates, 5 nodes")
    print("config                    ACT(s)  CPU(s)  created  nodes")
    configs = [
        ("SL-H (vanilla control)", PlatformConfig.sl_h()),
        ("+ locality-aware (1)", PlatformConfig.sl_h(placement_policy="bestfit", locality_aware=True)),
        ("+ hierarchy plan (2)", PlatformConfig.sl_h(placement_policy="bestfit", locality_aware=True, prewarm=True)),
        ("+ runtime reuse (3)", PlatformConfig.sl_h(placement_policy="bestfit", locality_aware=True, prewarm=True, reuse=True)),
        ("+ eager agg (4) = LIFL", PlatformConfig.lifl()),
    ]
    rng = make_rng(1, "burst")
    arrivals = [(t, 1.0) for t in concurrent_arrivals(20, jitter=3.0, rng=rng)]
    for name, cfg in configs:
        platform = AggregationPlatform(cfg)
        platform.run_round(arrivals, RESNET152_BYTES, include_eval=False)  # warm
        r = platform.run_round(arrivals, RESNET152_BYTES, include_eval=False)
        print(
            f"{name:24s}  {r.act:6.1f}  {r.cpu_total:6.0f}  {r.aggregators_created:7d}"
            f"  {r.nodes_used:5d}"
        )


if __name__ == "__main__":
    part1_workload()
    part2_orchestration()
