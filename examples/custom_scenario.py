"""The scenario-authoring walkthrough, runnable end to end.

Registers a small non-paper scenario — mean round-completion time of
LIFL vs SL-H as the per-round update batch grows — and runs it through
the real campaign runner. This is the companion example for
``docs/scenario-authoring.md``; every concept there (grid, per-run seed,
rows, render) appears here in its minimal form.

Run:  PYTHONPATH=src python examples/custom_scenario.py
"""

from __future__ import annotations

from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.experiments.common import render_table
from repro.scenarios.registry import ScenarioRun, scenario
from repro.scenarios.runner import run_scenario

SYSTEMS = {"LIFL": PlatformConfig.lifl, "SL-H": PlatformConfig.sl_h}


def _render(rows: list[dict]) -> str:
    """Turn the concatenated rows of every grid point into report text.

    Runs sequentially or on a process pool return the same rows in the
    same order, so rendering from rows keeps parallel campaigns
    byte-identical to sequential ones.
    """
    table = render_table(
        ["system", "updates", "ACT (s)", "cross-node transfers"],
        [
            (r["system"], r["updates"], f"{r['act_s']:.2f}", r["cross_node"])
            for r in rows
        ],
    )
    return "Example sweep — one warm round per cell, 4 nodes\n" + table


@scenario(
    name="example-round-sweep",
    title="LIFL vs SL-H round completion vs batch size (example)",
    grid={"system": tuple(SYSTEMS), "updates": (8, 16)},
    render=_render,
    workload="4 nodes, ResNet-18-sized updates, one round per cell",
    metrics=("act_s", "cross_node"),
    paper=False,
)
def example_round_sweep(run_spec: ScenarioRun) -> list[dict]:
    """One (system, batch-size) cell: a single round's completion time."""
    system = run_spec.params["system"]
    n_updates = run_spec.params["updates"]
    # All randomness must come from the per-run seed so sequential and
    # --jobs campaigns agree; run_spec.rng() derives a named stream.
    rng = run_spec.rng("arrivals")
    arrivals = [(float(t), 1.0) for t in sorted(rng.uniform(0.0, 2.0, n_updates))]
    platform = AggregationPlatform(
        SYSTEMS[system](), node_names=[f"node{i}" for i in range(4)]
    )
    result = platform.run_round(arrivals, nbytes=44.6e6, include_eval=False)
    # Rows are flat JSON-serializable dicts — the campaign runner writes
    # them to <scenario>.json under --out and hands them to the render.
    return [
        {
            "system": system,
            "updates": n_updates,
            "act_s": round(result.act, 6),
            "cross_node": result.cross_node_transfers,
        }
    ]


def main() -> None:
    # run_scenario() drives the registered spec through the same
    # CampaignRunner the CLI uses (expansion, seeding, rendering).
    report = run_scenario("example-round-sweep", seed=7)
    print(report.text)
    rows = report.rows
    assert len(rows) == 4, "2 systems x 2 batch sizes"
    # Determinism: a second campaign with the same seed is byte-identical.
    assert run_scenario("example-round-sweep", seed=7).text == report.text


if __name__ == "__main__":
    main()
