"""Quickstart: federated learning on the LIFL platform in ~30 lines of API.

Trains a real NumPy MLP with FedAvg over a synthetic non-IID federated
dataset, while the LIFL simulation platform accounts the aggregation
system's time and CPU for every round.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.common.rng import make_rng
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.fl.datasets import make_federated_dataset
from repro.fl.fedavg import FedAvgAccumulator, ModelUpdate
from repro.fl.model import model_spec
from repro.fl.training import MLP, LocalTrainer, TrainingConfig


def main() -> None:
    rng = make_rng(7, "quickstart")

    # 1. A federated dataset: 30 clients, heavy label skew, power-law sizes.
    dataset = make_federated_dataset(n_clients=30, num_classes=5, dim=16, seed=7)
    mlp = MLP(dim=16, hidden=32, num_classes=5)
    trainer = LocalTrainer(mlp, TrainingConfig(epochs=2, learning_rate=0.1))

    # 2. The aggregation platform: full LIFL (shared-memory data plane,
    #    BestFit placement, hierarchy planning, reuse, eager aggregation).
    platform = AggregationPlatform(PlatformConfig.lifl())
    spec = model_spec("mlp-small")

    global_model = mlp.init_params(rng)
    clients = list(dataset.shards.values())[:12]

    print("round  accuracy  ACT(s)  CPU(s)  aggs  nodes")
    for round_index in range(8):
        accumulator = FedAvgAccumulator()
        arrivals = []
        for shard in clients:
            local_params, _ = trainer.train(global_model, shard, rng)
            accumulator.add(ModelUpdate(local_params, weight=float(shard.num_samples)))
            arrivals.append((float(rng.uniform(0.0, 5.0)), float(shard.num_samples)))

        # The platform simulates this round's aggregation system-side.
        round_result = platform.run_round(arrivals, spec.nbytes, include_eval=False)
        global_model = accumulator.result().model

        accuracy = mlp.accuracy(global_model, dataset.test_features, dataset.test_labels)
        print(
            f"{round_index:5d}  {accuracy:8.3f}  {round_result.act:6.2f}"
            f"  {round_result.cpu_total:6.1f}  {len(round_result.instances):4d}"
            f"  {round_result.nodes_used:5d}"
        )

    assert accuracy > 0.7, "quickstart should learn the task"
    print("\nDone: the global model learned the task while LIFL aggregated it.")


if __name__ == "__main__":
    main()
