"""The aggregation platform: LIFL and its baselines, end to end.

This package ties the substrates together into runnable systems:

* :mod:`repro.core.updates` / :mod:`repro.core.results` — the data moving
  through a round and what a round produces;
* :mod:`repro.core.aggregator` — the step-based Recv/Agg/Send aggregator
  (Fig. 14 / Appendix G) as a simulation process, with eager and lazy
  aggregation timing;
* :mod:`repro.core.roundsim` — the round engine: ingress (gateway or
  broker), aggregation tree execution, transfers, cold starts, CPU
  accounting;
* :mod:`repro.core.platform` — :class:`PlatformConfig` presets for LIFL,
  the serverful (SF) and serverless (SL) baselines, and Fig. 8's SL-H;
* :mod:`repro.core.rounds` — the multi-round FL workload driver behind
  Figs. 9 and 10.
"""

from repro.core.aggregator import AggregatorInstance, InstanceState
from repro.core.async_aggregation import AsyncAggregator, AsyncConfig
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.core.results import InstanceStats, RoundResult, WorkloadResult
from repro.core.rounds import FLWorkloadConfig, run_fl_workload
from repro.core.roundsim import RoundEngine
from repro.core.updates import SimUpdate

__all__ = [
    "AggregationPlatform",
    "AggregatorInstance",
    "AsyncAggregator",
    "AsyncConfig",
    "FLWorkloadConfig",
    "InstanceState",
    "InstanceStats",
    "PlatformConfig",
    "RoundEngine",
    "RoundResult",
    "SimUpdate",
    "WorkloadResult",
    "run_fl_workload",
]
