"""Platform configurations: LIFL, SF, SL, and Fig. 8's SL-H.

:class:`PlatformConfig` is the single knob panel the round engine reads.
The four presets encode the paper's systems:

====================  ==========  =========  ==========  =========
behaviour             LIFL        SF         SL          SL-H
====================  ==========  =========  ==========  =========
data plane            shm         kernel     broker+SC   shm
ingress               gateway     broker     broker      gateway
placement             BestFit     static     WorstFit    WorstFit
hierarchy planning    EWMA ②      static     reactive    reactive
instance creation     prewarm     always-on  reactive    reactive
runtime reuse ③       yes         n/a        no          no
aggregation timing ④  eager       eager      lazy        lazy
====================  ==========  =========  ==========  =========

:class:`AggregationPlatform` wraps a config + round engine + the *real*
control-plane code (placer, hierarchy planner, warm pool accounting) into
the object the experiments drive.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.cluster.node import NodeSpec
from repro.common.errors import ConfigError
from repro.controlplane.hierarchy import (
    AggregatorSpec,
    HierarchyPlan,
    Role,
    plan_hierarchy,
)
from repro.controlplane.placement import make_placer, NodeCapacity
from repro.core.policies import resolve_policy
from repro.core.results import RoundResult
from repro.core.updates import SimUpdate
from repro.dataplane.calibration import DEFAULT_CALIBRATION, DataplaneCalibration
from repro.dataplane.pipelines import PipelineKind


class IngressKind(str, Enum):
    GATEWAY = "gateway"  # LIFL: per-node gateway into shared memory
    BROKER = "broker"  # SF/SL: shared stateful broker


@dataclass(frozen=True)
class PlatformConfig:
    """Everything the round engine needs to emulate one system."""

    name: str
    pipeline: PipelineKind
    ingress: IngressKind
    placement_policy: str = "bestfit"
    #: ① locality-aware placement: aggregators are placed on the nodes
    #: where their input updates were queued (data-centric, §5.1).  When
    #: False (the Knative baselines, §2.3 "Locality-agnostic placement"),
    #: leaf pods land round-robin regardless of where updates arrived, so
    #: most updates pay an extra inter-node hop to reach their aggregator.
    locality_aware: bool = True
    planned_hierarchy: bool = True  # ② per-node middles sized from queue
    prewarm: bool = True  # create planned instances at round start
    reuse: bool = True  # ③ warm pool + role conversion
    eager: bool = True  # ④ aggregation timing
    updates_per_leaf: int = 2  # the paper's I
    cold_start_latency: float = 2.0
    cold_start_cpu: float = 1.0
    ramp_delay: float = 0.0  # reactive autoscaler step (SL)
    broker_cores: int = 2
    gateway_max_cores: int = 8
    #: static tree for SF: (leaf nodes, updates spread round-robin)
    fixed_instances: int = 0
    static_leaf_nodes: int = 0
    # reservation rates (cores) for the reserved-allocation CPU account
    instance_reserved_cores: float = 0.12
    sidecar_reserved_cores: float = 0.0
    broker_reserved_cores: float = 0.0
    gateway_reserved_cores: float = 0.1
    #: serialized per-round control/data-plane overhead that does NOT
    #: overlap the arrival phase: global-model distribution through the
    #: central selector (SF), scale-from-zero churn and indirect function
    #: chaining (SL).  Charged per aggregated update as
    #: ``fixed + per_byte × nbytes`` on top of the simulated round; LIFL's
    #: per-node gateways parallelize distribution, so its term is zero.
    #: Calibrated like the hop costs — see dataplane/calibration.py's
    #: docstring and EXPERIMENTS.md.
    chain_overhead_fixed_per_update: float = 0.0
    chain_overhead_per_byte: float = 0.0
    chain_overhead_cores: float = 1.0
    #: containers linger after their work before scale-down (Knative's
    #: stable window); their pod + sidecar allocation is held that long
    sidecar_linger: float = 0.0
    #: idle-but-warm pooled runtimes still hold their pod allocation
    #: (only the eBPF sidecar is free); LIFL pays this small keep-warm tax
    warm_idle_reserved_cores: float = 0.0
    #: explicit stage-registry keys (see repro.core.stages).  Empty string
    #: means "derive from the fields above": ingress from
    #: (ingress, pipeline), transfer "calibrated", lifecycle "warm-pool".
    #: Scenarios register new stage variants and select them here without
    #: touching the round engine.
    ingress_stage: str = ""
    transfer_stage: str = ""
    lifecycle_stage: str = ""
    #: round-placement policy name from the ``"placement"`` family of
    #: :mod:`repro.core.policies` (how a whole round's updates are mapped
    #: to nodes and planned — distinct from ``placement_policy``, the
    #: bin-packing placer the ``locality`` policy delegates to).  Empty
    #: string resolves the default, ``"locality"``, which reproduces the
    #: pre-registry behaviour byte for byte.
    round_placement: str = ""

    def __post_init__(self) -> None:
        if self.updates_per_leaf < 1:
            raise ConfigError("updates_per_leaf must be >= 1")
        if self.cold_start_latency < 0 or self.ramp_delay < 0:
            raise ConfigError("latencies must be non-negative")

    # -- presets ---------------------------------------------------------------
    @staticmethod
    def lifl(**overrides: object) -> "PlatformConfig":
        """Full LIFL: ①+②+③+④ on the shm data plane."""
        cfg = PlatformConfig(
            name="lifl",
            pipeline=PipelineKind.LIFL,
            ingress=IngressKind.GATEWAY,
            warm_idle_reserved_cores=0.05,
        )
        return replace(cfg, **overrides) if overrides else cfg

    @staticmethod
    def serverful(leaf_nodes: int = 4, instances: int = 60, **overrides: object) -> "PlatformConfig":
        """SF (Bonawitz/PAPAYA style): static always-on tree, kernel/gRPC
        data plane, broker-mediated ingress (Fig. 5 "Microservice")."""
        cfg = PlatformConfig(
            name="sf",
            pipeline=PipelineKind.SERVERFUL,
            ingress=IngressKind.BROKER,
            placement_policy="worstfit",  # spread over the static leaf nodes
            planned_hierarchy=False,
            prewarm=True,  # always-on == always warm
            reuse=True,  # never restarted
            eager=True,
            cold_start_latency=0.0,
            cold_start_cpu=0.0,
            fixed_instances=instances,
            static_leaf_nodes=leaf_nodes,
            instance_reserved_cores=0.05,
            broker_reserved_cores=1.5,
            gateway_reserved_cores=0.0,
            chain_overhead_fixed_per_update=0.32,
            chain_overhead_per_byte=0.8e-9,
        )
        return replace(cfg, **overrides) if overrides else cfg

    @staticmethod
    def serverless(**overrides: object) -> "PlatformConfig":
        """SL (FedKeeper/AdaFed style on Knative): broker + container
        sidecars, reactive threshold scaling, lazy aggregation."""
        cfg = PlatformConfig(
            name="sl",
            pipeline=PipelineKind.SERVERLESS,
            ingress=IngressKind.BROKER,
            placement_policy="worstfit",
            locality_aware=False,
            planned_hierarchy=False,
            prewarm=False,  # scale from zero, reactively
            reuse=False,
            eager=False,
            ramp_delay=6.0,
            updates_per_leaf=4,  # Knative-style concurrency target
            instance_reserved_cores=0.14,
            sidecar_reserved_cores=0.35,
            broker_reserved_cores=2.0,
            gateway_reserved_cores=0.0,
            chain_overhead_fixed_per_update=0.78,
            chain_overhead_per_byte=5.0e-9,
            sidecar_linger=90.0,
        )
        return replace(cfg, **overrides) if overrides else cfg

    @staticmethod
    def sl_h(**overrides: object) -> "PlatformConfig":
        """Fig. 8's baseline: LIFL's shm data plane under a vanilla
        serverless control plane (least-connection spread, reactive cold
        starts, lazy aggregation, no reuse)."""
        cfg = PlatformConfig(
            name="sl-h",
            pipeline=PipelineKind.LIFL,
            ingress=IngressKind.GATEWAY,
            placement_policy="worstfit",
            locality_aware=False,
            planned_hierarchy=True,  # hierarchical, but reactively created
            prewarm=False,
            reuse=False,
            eager=False,
        )
        return replace(cfg, **overrides) if overrides else cfg


class AggregationPlatform:
    """A configured system: placement + hierarchy + the round engine."""

    def __init__(
        self,
        config: PlatformConfig,
        node_names: list[str] | None = None,
        cal: DataplaneCalibration = DEFAULT_CALIBRATION,
        node_spec: NodeSpec | None = None,
        nic_bps_by_node: dict[str, float] | None = None,
    ) -> None:
        from repro.core.roundsim import RoundEngine  # cycle-free late import

        self.config = config
        self.node_names = node_names or [f"node{i}" for i in range(5)]
        self.node_spec = node_spec or NodeSpec(name="template")
        self.cal = cal
        self.placer = make_placer(config.placement_policy)
        self.placement = resolve_policy("placement", config.round_placement)
        self.engine = RoundEngine(
            config, self.node_names, cal, self.node_spec, nic_bps_by_node=nic_bps_by_node
        )
        self._round = 0

    # -- one full round: place, plan, simulate --------------------------------
    def _candidate_nodes(self, nodes: list[str] | None) -> list[str]:
        """Validate an optional placement restriction: a non-empty subset
        of the fleet, returned in fleet order (so a caller-supplied order
        never perturbs deterministic placement)."""
        if nodes is None:
            return self.node_names
        allowed = set(nodes)
        unknown = allowed - set(self.node_names)
        if unknown:
            raise ConfigError(f"placement restricted to unknown nodes {sorted(unknown)}")
        names = [n for n in self.node_names if n in allowed]
        if not names:
            raise ConfigError("placement restriction excludes every node")
        return names

    def place_updates(
        self,
        arrivals: list[tuple[float, float]],
        nbytes: float,
        nodes: list[str] | None = None,
    ) -> list[SimUpdate]:
        """Turn (arrival_time, weight) pairs into node-assigned updates.

        ``nodes`` restricts placement to a subset of the fleet — the
        chaos-aware control plane passes the currently-healthy nodes so
        new rounds route around degraded or partitioned ones.
        """
        capacities = [
            NodeCapacity(name, self.node_spec.max_service_capacity)
            for name in self._candidate_nodes(nodes)
        ]
        if self.config.static_leaf_nodes > 0:
            capacities = capacities[: self.config.static_leaf_nodes]
        plan = self.placer.place(len(arrivals), capacities)
        updates = []
        for uid, ((t, w), node) in enumerate(zip(sorted(arrivals), plan.assignments)):
            updates.append(
                SimUpdate(
                    uid=uid,
                    nbytes=nbytes,
                    weight=w,
                    arrival_time=t,
                    node=node,
                    client_id=f"u{uid}",
                )
            )
        return updates

    def plan_round(
        self, updates: list[SimUpdate], nodes: list[str] | None = None
    ) -> HierarchyPlan:
        """Build this round's tree from the placement outcome.

        Locality-aware platforms put each node's leaves where that node's
        updates were queued.  Locality-agnostic ones (§2.3) let the pod
        scheduler spread leaves round-robin over all nodes, decoupled from
        the data — the engine then charges the extra inter-node hop for
        every update whose leaf landed elsewhere.
        """
        pending: dict[str, int] = {}
        for u in updates:
            pending[u.node] = pending.get(u.node, 0) + 1
        if self.config.static_leaf_nodes > 0:
            return self._static_plan(pending)
        if not self.config.locality_aware:
            names = self._candidate_nodes(nodes)
            total = len(updates)
            k = len(names)
            pending = {
                name: total // k + (1 if i < total % k else 0)
                for i, name in enumerate(names)
            }
            pending = {n: q for n, q in pending.items() if q > 0}
        plan = plan_hierarchy(
            pending,
            updates_per_leaf=self.config.updates_per_leaf,
            round_id=self._round,
        )
        return plan

    def _static_plan(self, pending: dict[str, int]) -> HierarchyPlan:
        """SF's fixed tree: one leaf aggregator per static leaf node, one
        top on the last node (§6.2: 4 leaf/middle nodes + 1 top node)."""
        active = {n: q for n, q in pending.items() if q > 0}
        if not active:
            raise ConfigError("static plan needs at least one update")
        top_node = self.node_names[-1]
        tag = f"r{self._round}"
        plan = HierarchyPlan()
        top_id = f"{tag}/top@{top_node}"
        plan.aggregators[top_id] = AggregatorSpec(
            top_id, Role.TOP, top_node, fan_in=len(active)
        )
        plan.top_node = top_node
        for node, count in sorted(active.items()):
            leaf_id = f"{tag}/leaf@{node}"
            plan.aggregators[leaf_id] = AggregatorSpec(
                leaf_id, Role.LEAF, node, fan_in=count, parent=top_id
            )
        plan.validate()
        return plan

    def prepare_round(
        self,
        arrivals: list[tuple[float, float]],
        nbytes: float,
        nodes: list[str] | None = None,
    ) -> tuple[list[SimUpdate], HierarchyPlan]:
        """Place and plan one round without simulating it.

        This is the control-plane half of :meth:`run_round`; arrival-driven
        serving loops (:mod:`repro.traces.replay`) call it per admitted
        round and hand the result to the engine's ``install_round``.  The
        internal round counter advances so each prepared round gets
        distinct aggregator ids.  ``nodes`` restricts placement to a fleet
        subset (chaos-aware placement); omitted, behaviour is unchanged.
        Placement routes through the configured round-placement policy
        (``PlatformConfig.round_placement``; default ``locality``).
        """
        updates, plan = self.placement.place(self, arrivals, nbytes, nodes=nodes)
        self._round += 1
        return updates, plan

    def run_round(
        self,
        arrivals: list[tuple[float, float]],
        nbytes: float,
        include_eval: bool = True,
        record_timeline: bool = True,
        injector: object | None = None,
    ) -> RoundResult:
        """Place → plan → simulate one round.

        ``injector`` (a :class:`repro.chaos.FaultInjector`) attaches fault
        and recovery processes before the round runs."""
        updates, plan = self.placement.place(self, arrivals, nbytes)
        result = self.engine.run_round(
            updates,
            plan,
            include_eval=include_eval,
            record_timeline=record_timeline,
            injector=injector,
        )
        self._round += 1
        return result

    def run_multi_tenant(
        self,
        tenant_arrivals: list[list[tuple[float, float]]],
        nbytes: float,
        include_eval: bool = False,
        record_timeline: bool = False,
        injector: object | None = None,
    ) -> list[RoundResult]:
        """Place and plan each tenant's round independently, then simulate
        all of them concurrently on one shared fabric (NIC contention is
        the point; instances/CPU ledgers stay per-tenant)."""
        tenants = [self.prepare_round(arrivals, nbytes) for arrivals in tenant_arrivals]
        return self.engine.run_multi_tenant(
            tenants,
            include_eval=include_eval,
            record_timeline=record_timeline,
            injector=injector,
        )
