"""Pluggable stages of the round engine.

The round engine composes its behaviour from three families of stage
objects, mirroring how :mod:`repro.dataplane.pipelines` composes hop
sequences:

* :class:`IngressStage` — how client updates enter a node: the
  serialization costs of the ingress and consumer-side paths, the admission
  resources (per-node gateways vs a shared broker), and the reserved-CPU
  tax of the stateful ingress components;
* :class:`TransferStage` — how intermediate updates move between
  aggregators: intra-node and inter-node (tx/rx split) latency and CPU;
* :class:`LifecycleStage` — when aggregator instances come into existence:
  cold starts, reactive-scaling ramp admission, warm reuse and in-round
  role conversion (owns the cross-round warm pool).

Each family has a :class:`StageRegistry`; scenarios register new variants
under a name and select them via the ``ingress_stage`` / ``transfer_stage``
/ ``lifecycle_stage`` fields of :class:`~repro.core.platform.PlatformConfig`
without touching :mod:`repro.core.roundsim`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, TypeVar

from repro.common.errors import ConfigError
from repro.core.platform import IngressKind, PlatformConfig
from repro.core.updates import SimUpdate
from repro.dataplane.calibration import DataplaneCalibration
from repro.dataplane.gateway import VerticalScaler
from repro.dataplane.pipelines import (
    PipelineKind,
    inter_node_pipeline,
    intra_node_pipeline,
)
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource

T = TypeVar("T")


class StageRegistry(Generic[T]):
    """Name → stage factory, one registry per stage family."""

    def __init__(self, family: str) -> None:
        self.family = family
        self._factories: dict[str, Callable[[], T]] = {}

    def register(self, name: str) -> Callable[[Callable[[], T]], Callable[[], T]]:
        """Decorator: ``@INGRESS_STAGES.register("gateway")`` on a class or
        zero-argument factory."""
        if not name:
            raise ConfigError(f"{self.family} stage needs a non-empty name")

        def deco(factory: Callable[[], T]) -> Callable[[], T]:
            if name in self._factories:
                raise ConfigError(f"{self.family} stage {name!r} already registered")
            self._factories[name] = factory
            return factory

        return deco

    def create(self, name: str) -> T:
        try:
            factory = self._factories[name]
        except KeyError:
            raise ConfigError(
                f"unknown {self.family} stage {name!r}; have {self.names()}"
            ) from None
        return factory()

    def names(self) -> list[str]:
        return sorted(self._factories)


# --------------------------------------------------------------------- ingress
@dataclass(frozen=True)
class IngressCosts:
    """Serialization costs of one update entering via this ingress."""

    ingress_latency: float
    ingress_cpu: float
    #: consumer-side cost of the aggregator pulling the update in
    recv_latency: float
    recv_cpu: float


class IngressStage:
    """How client updates enter a node (Fig. 5's ingress designs)."""

    name = "base"

    def costs(
        self, cfg: PlatformConfig, cal: DataplaneCalibration, nbytes: float
    ) -> IngressCosts:
        raise NotImplementedError

    def build_resources(
        self,
        env: Environment,
        cfg: PlatformConfig,
        cal: DataplaneCalibration,
        node_names: list[str],
        updates: list[SimUpdate],
        nbytes: float,
        arrival_span: float | None = None,
    ) -> dict[str, Resource]:
        """Admission resources, keyed by node (entries may be shared).

        ``arrival_span`` overrides the load-window the stage would compute
        from ``updates`` — a partitioned round hands each cohort the *full*
        round's span so per-shard scaling matches the unpartitioned model.
        """
        raise NotImplementedError

    def install_arrivals(
        self,
        env: Environment,
        updates: list[SimUpdate],
        spawn: Callable[[SimUpdate, float], object],
    ) -> dict[int, object]:
        """Start the per-update ingress work; returns uid → process.

        ``spawn(update, delay)`` starts one update's ingress process after
        ``delay`` seconds and returns it.  The default is one scheduler
        entry per update — exactly the engine's historical behaviour.
        Stages may coalesce instead (see :class:`CoalescedGatewayIngress`);
        a coalescing stage fills the returned dict lazily, as arrivals
        actually fire.
        """
        procs: dict[int, object] = {}
        for update in updates:
            procs[update.uid] = spawn(update, update.arrival_time)
        return procs

    def reserved_cpu(
        self, cfg: PlatformConfig, duration: float, nodes_used: int
    ) -> float:
        """Reserved-but-idle allocation of the stage's stateful components."""
        return 0.0


INGRESS_STAGES: StageRegistry[IngressStage] = StageRegistry("ingress")


@INGRESS_STAGES.register("gateway")
class GatewayIngress(IngressStage):
    """LIFL: per-node gateway writing into shared memory, vertically scaled
    to the node's offered load (§4.2)."""

    name = "gateway"

    def costs(
        self, cfg: PlatformConfig, cal: DataplaneCalibration, nbytes: float
    ) -> IngressCosts:
        return IngressCosts(
            ingress_latency=(cal.gateway_rx_lat_per_byte + cal.shm_write_lat_per_byte)
            * nbytes,
            ingress_cpu=(cal.gateway_rx_cpu_per_byte + cal.shm_write_cpu_per_byte)
            * nbytes,
            recv_latency=cal.shm_read_lat_per_byte * nbytes + cal.skmsg_fixed_lat,
            recv_cpu=cal.shm_read_cpu_per_byte * nbytes + cal.skmsg_fixed_cpu,
        )

    def build_resources(
        self,
        env: Environment,
        cfg: PlatformConfig,
        cal: DataplaneCalibration,
        node_names: list[str],
        updates: list[SimUpdate],
        nbytes: float,
        arrival_span: float | None = None,
    ) -> dict[str, Resource]:
        span = (
            arrival_span
            if arrival_span is not None
            else max(u.arrival_time for u in updates) - min(u.arrival_time for u in updates)
        )
        scaler = VerticalScaler(cal, max_cores=cfg.gateway_max_cores)
        per_node_updates: dict[str, int] = {}
        for u in updates:
            per_node_updates[u.node] = per_node_updates.get(u.node, 0) + 1
        out: dict[str, Resource] = {}
        for name in node_names:
            n_up = per_node_updates.get(name, 0)
            rate_bps = n_up * nbytes / max(span, 1.0)
            out[name] = Resource(env, capacity=scaler.cores_for_load(rate_bps))
        return out

    def reserved_cpu(
        self, cfg: PlatformConfig, duration: float, nodes_used: int
    ) -> float:
        return cfg.gateway_reserved_cores * duration * nodes_used


@INGRESS_STAGES.register("gateway-coalesced")
class CoalescedGatewayIngress(GatewayIngress):
    """Gateway ingress with batched arrival coalescing (stress scale).

    Identical physics to :class:`GatewayIngress`, but instead of one
    pending scheduler entry per update arrival, a single walker process
    sweeps the arrivals in time order and spawns each update's ingress
    work as its arrival instant is reached — the event heap holds one
    arrival timer at a time instead of one per not-yet-arrived update, and
    a batch of same-instant arrivals is woken by one heap entry.  The cost
    is tie-break order among *exactly simultaneous* events, so the stage
    is opt-in (``ingress_stage="gateway-coalesced"``) rather than the
    gateway default; the million-client scenarios select it.
    """

    name = "gateway-coalesced"

    def install_arrivals(
        self,
        env: Environment,
        updates: list[SimUpdate],
        spawn: Callable[[SimUpdate, float], object],
    ) -> dict[int, object]:
        procs: dict[int, object] = {}
        ordered = sorted(updates, key=lambda u: (u.arrival_time, u.uid))
        start = env.now

        def walker():
            for update in ordered:
                wait = start + update.arrival_time - env.now
                if wait > 0:
                    yield env.timeout(wait)
                procs[update.uid] = spawn(update, 0.0)

        env.process(walker(), name="ingress:coalesce")
        return procs


class _BrokerIngress(IngressStage):
    """Shared stateful broker in front of every node (SF/SL)."""

    def build_resources(
        self,
        env: Environment,
        cfg: PlatformConfig,
        cal: DataplaneCalibration,
        node_names: list[str],
        updates: list[SimUpdate],
        nbytes: float,
        arrival_span: float | None = None,
    ) -> dict[str, Resource]:
        shared = Resource(env, capacity=cfg.broker_cores)
        return {name: shared for name in node_names}


@INGRESS_STAGES.register("broker-sf")
class ServerfulBrokerIngress(_BrokerIngress):
    """SF: broker queue + gRPC/deserialize consumer path (Fig. 5
    "Microservice")."""

    name = "broker-sf"

    def costs(
        self, cfg: PlatformConfig, cal: DataplaneCalibration, nbytes: float
    ) -> IngressCosts:
        return IngressCosts(
            ingress_latency=cal.queuing_sf_broker_lat_per_byte * nbytes
            + cal.broker_fixed_lat,
            ingress_cpu=cal.queuing_sf_broker_cpu_per_byte * nbytes
            + cal.broker_fixed_cpu,
            recv_latency=(
                cal.kernel_wire_side_lat_per_byte
                + cal.deserialize_lat_per_byte
                + cal.grpc_lat_per_byte
            )
            * nbytes
            + cal.kernel_fixed_lat,
            recv_cpu=(
                cal.kernel_wire_side_cpu_per_byte
                + cal.deserialize_cpu_per_byte
                + cal.grpc_cpu_per_byte
            )
            * nbytes
            + cal.kernel_fixed_cpu,
        )


@INGRESS_STAGES.register("broker-sl")
class ServerlessBrokerIngress(_BrokerIngress):
    """SL: broker queue + container-sidecar consumer path (Fig. 5 "Basic
    serverless")."""

    name = "broker-sl"

    def costs(
        self, cfg: PlatformConfig, cal: DataplaneCalibration, nbytes: float
    ) -> IngressCosts:
        return IngressCosts(
            ingress_latency=cal.queuing_broker_lat_per_byte * nbytes
            + cal.broker_fixed_lat,
            ingress_cpu=cal.queuing_broker_cpu_per_byte * nbytes
            + cal.broker_fixed_cpu,
            recv_latency=(
                cal.kernel_wire_side_lat_per_byte
                + cal.sidecar_lat_per_byte
                + cal.deserialize_lat_per_byte
            )
            * nbytes
            + cal.sidecar_fixed_lat,
            recv_cpu=(
                cal.kernel_wire_side_cpu_per_byte
                + cal.sidecar_cpu_per_byte
                + cal.deserialize_cpu_per_byte
            )
            * nbytes
            + cal.sidecar_fixed_cpu,
        )


def resolve_ingress(cfg: PlatformConfig) -> IngressStage:
    """Pick the ingress stage for a config: an explicit ``ingress_stage``
    key wins; otherwise the paper's mapping from (ingress, pipeline)."""
    key = cfg.ingress_stage
    if not key:
        if cfg.ingress is IngressKind.GATEWAY:
            key = "gateway"
        elif cfg.pipeline is PipelineKind.SERVERFUL:
            key = "broker-sf"
        else:
            key = "broker-sl"
    return INGRESS_STAGES.create(key)


# -------------------------------------------------------------------- transfer
@dataclass(frozen=True)
class TransferCosts:
    """Aggregator→aggregator hop costs for one update size."""

    intra_latency: float
    intra_cpu: float
    inter_tx_latency: float
    inter_tx_cpu: float
    inter_rx_latency: float
    inter_rx_cpu: float


class TransferStage:
    """How intermediate updates travel between aggregators."""

    name = "base"

    def costs(
        self, cfg: PlatformConfig, cal: DataplaneCalibration, nbytes: float
    ) -> TransferCosts:
        raise NotImplementedError


TRANSFER_STAGES: StageRegistry[TransferStage] = StageRegistry("transfer")


@TRANSFER_STAGES.register("calibrated")
class CalibratedTransferStage(TransferStage):
    """Costs from the calibrated dataplane pipelines of ``cfg.pipeline``."""

    name = "calibrated"

    def costs(
        self, cfg: PlatformConfig, cal: DataplaneCalibration, nbytes: float
    ) -> TransferCosts:
        intra = intra_node_pipeline(cfg.pipeline, cal).cost(nbytes)
        inter = inter_node_pipeline(cfg.pipeline, cal, include_wire=False).cost(nbytes)
        # Split the inter-node pipeline at the wire: hops before it are
        # tx-side, after it rx-side.  The split is symmetric enough that
        # halving the latency/cpu by group keeps totals exact.
        inter_tx_lat = inter.latency / 2
        inter_tx_cpu = inter.cpu_seconds / 2
        return TransferCosts(
            intra_latency=intra.latency,
            intra_cpu=intra.cpu_seconds,
            inter_tx_latency=inter_tx_lat,
            inter_tx_cpu=inter_tx_cpu,
            inter_rx_latency=inter.latency - inter_tx_lat,
            inter_rx_cpu=inter.cpu_seconds - inter_tx_cpu,
        )


def resolve_transfer(cfg: PlatformConfig) -> TransferStage:
    return TRANSFER_STAGES.create(cfg.transfer_stage or "calibrated")


# ------------------------------------------------------------------- lifecycle
@dataclass
class WarmState:
    """Cross-round warm-runtime pool: node → idle warm instance count."""

    idle: dict[str, int] = field(default_factory=dict)

    def take(self, node: str) -> bool:
        n = self.idle.get(node, 0)
        if n > 0:
            self.idle[node] = n - 1
            return True
        return False

    def put(self, node: str, count: int = 1) -> None:
        self.idle[node] = self.idle.get(node, 0) + count

    def total(self) -> int:
        return sum(self.idle.values())


@dataclass
class RoundAdmission:
    """Per-round ramp-admission context.

    ``begin_round`` hands one of these to the installing round; every
    ``ensure_created`` call of that round carries it back.  Keeping the
    ramp counters *per round* (rather than on the engine-lifetime stage)
    makes reactive admission correct for rounds admitted mid-replay: the
    k-th instance on a node is admitted ``k`` ramp periods after *this
    round's* start, and overlapping installed rounds no longer share (and
    clobber) one global counter set.
    """

    round_start: float = 0.0
    created_per_node: dict[str, int] = field(default_factory=dict)


class LifecycleStage:
    """When aggregator instances come into existence.

    The stage is engine-lifetime: it keeps cross-round state (the warm
    pool).  The engine calls :meth:`begin_round` before creating instances
    (receiving a per-round :class:`RoundAdmission` context),
    :meth:`ensure_created` whenever an instance must exist (prewarm or
    first delivery), and :meth:`end_round` after the round settles.
    """

    name = "base"

    def __init__(self) -> None:
        self.warm = WarmState()

    def begin_round(self, round_start: float = 0.0) -> RoundAdmission:
        raise NotImplementedError

    def ensure_created(
        self,
        inst,  # AggregatorInstance; untyped to keep the stage import-light
        env: Environment,
        cfg: PlatformConfig,
        finished_on_node: dict[str, int],
        admission: RoundAdmission | None = None,
    ) -> None:
        raise NotImplementedError

    def end_round(self, cfg: PlatformConfig, instances_per_node: dict[str, int]) -> None:
        raise NotImplementedError

    def restart_instance(self, inst, env: Environment, cfg: PlatformConfig) -> None:
        """Bring a crashed instance back (fault injection).  Only stages
        that implement the paper's stateless-restart recovery support this;
        everything else refuses loudly so a chaos scenario cannot silently
        run without recovery."""
        raise ConfigError(
            f"lifecycle stage {self.name!r} cannot restart crashed aggregators; "
            f"select the 'resilient' stage for chaos rounds"
        )


LIFECYCLE_STAGES: StageRegistry[LifecycleStage] = StageRegistry("lifecycle")


@LIFECYCLE_STAGES.register("warm-pool")
class WarmPoolLifecycle(LifecycleStage):
    """The paper's instance-creation policy: warm-pool reuse and in-round
    role conversion (§5.3) plus the reactive autoscaler's stepwise ramp
    admission (§2.3) for configs with ``ramp_delay > 0``."""

    name = "warm-pool"

    def begin_round(self, round_start: float = 0.0) -> RoundAdmission:
        return RoundAdmission(round_start=round_start)

    def ensure_created(
        self,
        inst,
        env: Environment,
        cfg: PlatformConfig,
        finished_on_node: dict[str, int],
        admission: RoundAdmission | None = None,
    ) -> None:
        if inst._created:  # noqa: SLF001 - engine owns the instance
            return
        reused = cfg.reuse and self.warm.take(inst.node)
        if not reused and cfg.reuse:
            # In-round role conversion (§5.3): a finished local
            # aggregator converts to this higher role with no restart.
            if finished_on_node.get(inst.node, 0) > 0:
                finished_on_node[inst.node] -= 1
                reused = True
        if not reused and cfg.ramp_delay > 0:
            # Reactive autoscaler ramp: the k-th instance on a node is
            # only admitted k ramp periods after *round* start (§2.3's
            # reactive scaling; models Knative's stepwise scale-up).  The
            # round start lives in the admission context, so rounds
            # admitted mid-replay ramp from their own install instant.
            ctx = admission if admission is not None else RoundAdmission()
            k = ctx.created_per_node.get(inst.node, 0)
            ctx.created_per_node[inst.node] = k + 1
            delay = max(0.0, ctx.round_start + k * cfg.ramp_delay - env.now)
            if delay > 0:

                def later(_: Event, inst=inst, reused=reused) -> None:
                    inst.ensure_created(reused=reused)

                env.timeout(delay).callbacks.append(later)
                return
        inst.ensure_created(reused=reused)

    def end_round(self, cfg: PlatformConfig, instances_per_node: dict[str, int]) -> None:
        if cfg.reuse:
            for node, count in instances_per_node.items():
                self.warm.put(node, count)


@LIFECYCLE_STAGES.register("resilient")
class ResilientLifecycle(WarmPoolLifecycle):
    """Warm-pool lifecycle plus the paper's §3 failure recovery: stateless
    aggregators restart without state synchronization.

    A restart prefers the warm pool (an idle warm runtime takes over the
    crashed instance's mailbox instantly); otherwise the replacement pays a
    cold start.  The stage keeps per-round restart accounting so scenarios
    and tests can assert how recovery was funded.
    """

    name = "resilient"

    def __init__(self) -> None:
        super().__init__()
        self.restarts = 0
        self.warm_restarts = 0
        self.cold_restarts = 0

    def begin_round(self, round_start: float = 0.0) -> RoundAdmission:
        self.restarts = 0
        self.warm_restarts = 0
        self.cold_restarts = 0
        return super().begin_round(round_start)

    def restart_instance(self, inst, env: Environment, cfg: PlatformConfig) -> None:
        self.restarts += 1
        reused = cfg.reuse and self.warm.take(inst.node)
        if reused:
            self.warm_restarts += 1
            inst.restart(0.0, reused=True)
        else:
            self.cold_restarts += 1
            inst.restart(
                cfg.cold_start_latency, reused=False, startup_cpu=cfg.cold_start_cpu
            )


def resolve_lifecycle(cfg: PlatformConfig) -> LifecycleStage:
    return LIFECYCLE_STAGES.create(cfg.lifecycle_stage or "warm-pool")
