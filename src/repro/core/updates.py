"""Model updates as the cluster-scale simulation sees them.

At cluster scale only three things about an update matter to the platform:
its wire size, its FedAvg weight, and where/when it enters the system.
(The runtime package moves real tensors; the simulation moves these.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True, slots=True)
class SimUpdate:
    """One client model update entering the aggregation service."""

    uid: int
    nbytes: float
    weight: float
    arrival_time: float
    node: str  # worker node the load balancer assigned it to
    client_id: str = ""

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ConfigError(f"update {self.uid}: nbytes must be positive")
        if self.weight <= 0:
            raise ConfigError(f"update {self.uid}: weight must be positive")
        if self.arrival_time < 0:
            raise ConfigError(f"update {self.uid}: negative arrival time")


@dataclass(frozen=True, slots=True)
class MailboxItem:
    """What lands in an aggregator's mailbox: either a client update (after
    ingress processing) or an intermediate update from a child aggregator."""

    weight: float
    source: str  # client id or child aggregator id
    is_intermediate: bool
    enqueued_at: float
