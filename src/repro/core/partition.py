"""Partitioned fabric cohorts: one round's leaf cohort across processes.

:mod:`repro.traces.shard` splits a *replay* tenant-affine — whole tenants
to whole workers, every round simulated entirely inside one process.  This
module splits a *single round* cohort-affine along its
:class:`~repro.controlplane.hierarchy.HierarchyPlan` boundary, which is
what makes 10k-participant rounds tractable on one host:

* under locality-aware placement with gateway ingress (the LIFL shape),
  every below-top edge of the tree is intra-node, and each non-top node
  emits exactly **one** intermediate update to the top aggregator — the
  only traffic that crosses nodes;
* a non-top node's subtree dynamics (ingress admission, leaf/mid
  pipelines, role conversion) therefore depend only on that node's own
  updates and resources — never on the top or on other nodes — so whole
  nodes can be simulated in worker processes on their own
  :class:`~repro.sim.engine.Environment`/fabric, concurrently;
* workers record their boundary emissions ``(agg_id, node, weight,
  emit_at)``; the **root phase** then replays every round on the parent's
  engine with those emissions injected as inter-node transfers at their
  exact emit instants — the shared-fabric RX contention and the top
  node's ingress admission are simulated once, with all cross-partition
  flows present, so the merged ACT and total FedAvg weight match the
  unpartitioned round exactly.

Workers run *all* of a run's rounds back to back (their engines keep their
warm pools across rounds, exactly like a sequential engine would), and the
protocol is one-shot: sub-round results and emissions cross the process
boundary once, serialized, and fold into the parent's
:class:`~repro.core.results.RoundResult` through the existing exact
bookkeeping paths.  CPU buckets add, instance stats concatenate, and the
reserved-CPU account is recomputed globally from the merged instances so
duration-dependent reservations match the unpartitioned accounting.

``shards=1`` bypasses the protocol entirely — it is literally the
sequential engine, so it is byte-identical to an unpartitioned run (the
golden tests pin this).  Fork machinery mirrors
:class:`~repro.traces.shard.ShardedReplayEngine`: fork start method,
recv-before-join pipes, inline fallback where fork is unavailable, and
per-shard CPU self-timing for the critical-path report.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.common.errors import ConfigError
from repro.controlplane.hierarchy import HierarchyPlan
from repro.core.results import RoundResult
from repro.core.stages import GatewayIngress
from repro.core.updates import SimUpdate
from repro.perf.counters import COUNTER_FIELDS, collect, maybe_register
from repro.sim.engine import Environment

if TYPE_CHECKING:  # import-light, mirroring traces/shard.py
    from repro.core.platform import AggregationPlatform
    from repro.core.roundsim import RoundEngine

__all__ = [
    "CohortPlan",
    "CohortReport",
    "PartitionedRoundEngine",
    "PartitionedRunResult",
    "plan_cohorts",
]

#: one recorded boundary emission: (agg_id, src_node, weight, emit_at)
Emission = tuple[str, str, float, float]


@dataclass(frozen=True)
class CohortPlan:
    """Which non-root nodes each cohort shard simulates.

    ``assignments[i]`` is shard ``i``'s sorted node tuple; the root node
    (the plan's top) is never assigned — the parent's root phase owns it.
    Empty shards are never emitted.
    """

    root_node: str
    assignments: tuple[tuple[str, ...], ...]

    @property
    def n_shards(self) -> int:
        return len(self.assignments)

    def validate(self, rounds: Sequence[tuple[list[SimUpdate], HierarchyPlan]]) -> None:
        """Conservation: every update's node lands in exactly one cohort
        (or on the root), across every round of the run."""
        seen: set[str] = set()
        for nodes in self.assignments:
            if not nodes:
                raise ConfigError("cohort plan contains an empty shard")
            overlap = seen.intersection(nodes)
            if overlap:
                raise ConfigError(f"nodes assigned to two cohorts: {sorted(overlap)}")
            seen.update(nodes)
        if self.root_node in seen:
            raise ConfigError(f"root node {self.root_node!r} assigned to a cohort")
        for updates, plan in rounds:
            if plan.top.node != self.root_node:
                raise ConfigError(
                    f"round tops differ: {plan.top.node!r} vs {self.root_node!r}"
                )
            stray = {u.node for u in updates} - seen - {self.root_node}
            if stray:
                raise ConfigError(f"nodes outside every cohort: {sorted(stray)}")


def plan_cohorts(
    rounds: Sequence[tuple[list[SimUpdate], HierarchyPlan]], n_shards: int
) -> CohortPlan:
    """Balance a run's non-root active nodes over at most ``n_shards``
    cohorts.

    Greedy longest-processing-time by per-node update count summed across
    rounds (the cohort-affine analogue of
    :func:`repro.traces.shard.plan_shards`'s tenant-affine planning), with
    deterministic tie-breaks (node name, then shard index).  The effective
    shard count is capped at the number of non-root active nodes; a
    single-node run yields zero cohorts — everything belongs to the root
    phase.
    """
    if n_shards < 1:
        raise ConfigError(f"shards must be >= 1, got {n_shards}")
    if not rounds:
        raise ConfigError("cohort planning needs at least one round")
    root = rounds[0][1].top.node
    counts: dict[str, int] = {}
    for updates, plan in rounds:
        if plan.top.node != root:
            raise ConfigError(
                f"round tops differ: {plan.top.node!r} vs {root!r} — "
                "a partitioned run needs one stable root node"
            )
        for u in updates:
            if u.node != root:
                counts[u.node] = counts.get(u.node, 0) + 1
    if not counts:
        return CohortPlan(root_node=root, assignments=())
    n = min(n_shards, len(counts))
    loads = [0] * n
    members: list[list[str]] = [[] for _ in range(n)]
    for node in sorted(counts, key=lambda name: (-counts[name], name)):
        shard = min(range(n), key=lambda i: (loads[i], i))
        loads[shard] += counts[node]
        members[shard].append(node)
    plan = CohortPlan(
        root_node=root, assignments=tuple(tuple(sorted(m)) for m in members)
    )
    plan.validate(rounds)
    return plan


@dataclass
class CohortReport:
    """One cohort shard's summary: nodes simulated, boundary emissions
    shipped, engine counters, and wall/CPU self-timing (CPU seconds are
    immune to timeslicing — the slowest cohort's CPU plus the root phase's
    is the run's multi-core critical path)."""

    shard: int
    nodes: tuple[str, ...]
    emissions: int
    counters: dict[str, int]
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0


@dataclass
class _CohortRun:
    """Transport record: one shard's complete per-round output."""

    shard: int
    nodes: tuple[str, ...]
    #: per round: (boundary emissions, the phase's partial RoundResult)
    rounds: list[tuple[list[Emission], RoundResult]]
    counters: dict[str, int]
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0


@dataclass
class PartitionedRunResult:
    """A partitioned run's merged results plus the cohort breakdown."""

    results: list[RoundResult]
    cohorts: list[CohortReport] = field(default_factory=list)
    #: True when cohorts ran on forked workers, False inline/sequential
    forked: bool = False
    #: worker processes used (1 for inline/sequential)
    workers: int = 1
    #: CPU seconds the parent's root phase burned (all rounds)
    root_cpu_seconds: float = 0.0

    @property
    def critical_path_seconds(self) -> float:
        """The slowest cohort's CPU plus the serial root phase — the
        wall-clock floor a host with one free core per cohort reaches."""
        worst = max((rep.cpu_seconds for rep in self.cohorts), default=0.0)
        return worst + self.root_cpu_seconds


class _CounterCarrier:
    """Duck-typed Environment for the perf collector (exposes the
    COUNTER_FIELDS attributes) — credits forked cohorts' engine work to an
    active ``--profile`` collector, like traces/shard does."""

    def __init__(self, label: str, counters: dict[str, int]) -> None:
        self.perf_label = label
        for name in COUNTER_FIELDS:
            setattr(self, name, counters.get(name, 0))


class PartitionedRoundEngine:
    """Run consecutive rounds with each round's cohort cut across workers.

    ``platform_factory`` must build identically-configured platforms (one
    for the parent's planning + root phase, one per cohort worker — the
    same contract as :class:`~repro.traces.shard.ShardedReplayEngine`).
    Supported configurations are the gateway-ingress, locality-aware,
    planned-hierarchy shape (LIFL and derivatives): broker ingress shares
    ONE admission resource across all nodes and locality-agnostic
    placement crosses the partition on the ingress path, so both are
    refused loudly rather than simulated wrongly.
    """

    def __init__(
        self,
        platform_factory: "Callable[[], AggregationPlatform]",
        shards: int = 1,
        workers: int | None = None,
    ) -> None:
        if not callable(platform_factory):
            raise ConfigError("platform_factory must be callable")
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        if workers is not None and workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.platform_factory = platform_factory
        self.shards = shards
        self.workers = workers

    # ------------------------------------------------------------------ run
    def run(
        self,
        rounds_arrivals: Sequence[list[tuple[float, float]]],
        nbytes: float,
        include_eval: bool = False,
        inline: bool = False,
    ) -> PartitionedRunResult:
        """Place, plan, and simulate ``len(rounds_arrivals)`` consecutive
        rounds (warm pools turn over round to round, like sequential
        ``run_round`` calls).

        ``shards=1`` — or a run whose plans have no non-root nodes — runs
        the plain sequential engine: byte-identical to unpartitioned.
        ``inline=True`` forces cohorts in-process (forked and inline are
        identical: all seeding happens before execution mode is chosen).
        """
        if not rounds_arrivals:
            raise ConfigError("partitioned run needs at least one round")
        platform = self.platform_factory()
        engine = platform.engine
        self._check_supported(platform)
        prepared = [
            platform.prepare_round(arrivals, nbytes) for arrivals in rounds_arrivals
        ]
        spans = [
            max(u.arrival_time for u in updates) - min(u.arrival_time for u in updates)
            for updates, _ in prepared
        ]
        cohorts = (
            plan_cohorts(prepared, self.shards)
            if self.shards > 1
            else CohortPlan(root_node=prepared[0][1].top.node, assignments=())
        )
        if cohorts.n_shards == 0:
            return self._run_sequential(engine, prepared, include_eval)

        tasks = []
        for shard_id, nodes in enumerate(cohorts.assignments):
            node_set = frozenset(nodes)
            tasks.append(
                (
                    shard_id,
                    nodes,
                    [
                        ([u for u in updates if u.node in node_set], plan, span)
                        for (updates, plan), span in zip(prepared, spans)
                    ],
                )
            )
        n_workers = min(cohorts.n_shards, self.workers or _available_cpus())
        fork = not inline and n_workers > 1 and _fork_available()
        if fork:
            runs = self._run_forked(tasks, n_workers)
            for rep in runs:
                maybe_register(_CounterCarrier(f"cohort{rep.shard}", rep.counters))
        else:
            runs = [self._run_cohort(*task) for task in tasks]
        runs.sort(key=lambda r: r.shard)

        # -- root phase: replay each round with every cohort's emissions --
        cpu0 = time.process_time()
        results: list[RoundResult] = []
        root = cohorts.root_node
        for r, ((updates, plan), span) in enumerate(zip(prepared, spans)):
            root_updates = [u for u in updates if u.node == root]
            remote: list[Emission] = []
            for run in runs:
                remote.extend(run.rounds[r][0])
            remote.sort(key=lambda e: (e[3], e[0]))
            env = Environment()
            fabric = engine.build_fabric(env)
            tenant = engine._install(  # noqa: SLF001 - partition is engine-internal
                env,
                fabric,
                root_updates,
                plan,
                record_timeline=False,
                local_nodes=frozenset((root,)),
                remote_inputs=remote,
                arrival_span=span,
            )
            env.run(until=tenant.top_done)
            merged = engine.finish_round(tenant, include_eval)
            self._merge_round(engine, merged, [run.rounds[r][1] for run in runs])
            results.append(merged)
        root_cpu = time.process_time() - cpu0

        return PartitionedRunResult(
            results=results,
            cohorts=[
                CohortReport(
                    shard=run.shard,
                    nodes=run.nodes,
                    emissions=sum(len(ems) for ems, _ in run.rounds),
                    counters=run.counters,
                    wall_seconds=run.wall_seconds,
                    cpu_seconds=run.cpu_seconds,
                )
                for run in runs
            ],
            forked=fork,
            workers=n_workers if fork else 1,
            root_cpu_seconds=root_cpu,
        )

    # ----------------------------------------------------------- sequential
    def _run_sequential(
        self,
        engine: "RoundEngine",
        prepared: list[tuple[list[SimUpdate], HierarchyPlan]],
        include_eval: bool,
    ) -> PartitionedRunResult:
        cpu0 = time.process_time()
        results = [
            engine.run_round(
                updates, plan, include_eval=include_eval, record_timeline=False
            )
            for updates, plan in prepared
        ]
        return PartitionedRunResult(
            results=results, root_cpu_seconds=time.process_time() - cpu0
        )

    # -------------------------------------------------------------- cohorts
    def _run_cohort(
        self,
        shard_id: int,
        nodes: tuple[str, ...],
        rounds: list[tuple[list[SimUpdate], HierarchyPlan, float]],
    ) -> _CohortRun:
        """Simulate one cohort's node subset for every round, in-process.

        The cohort's engine persists across rounds (warm-pool turnover);
        each round runs on a fresh environment whose clock starts at the
        round's own zero, so recorded emit times are round-relative — the
        root phase replays them on the same basis.
        """
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        node_sets = [frozenset(nodes)] * len(rounds)
        out: list[tuple[list[Emission], RoundResult]] = []
        with collect() as perf:
            engine = self.platform_factory().engine
            for (sub_updates, plan, span), node_set in zip(rounds, node_sets):
                emissions: list[Emission] = []

                def emit(
                    agg_id: str, node: str, weight: float, now: float,
                    _sink=emissions,
                ) -> None:
                    _sink.append((agg_id, node, weight, now))

                env = Environment()
                fabric = engine.build_fabric(env)
                tenant = engine._install(  # noqa: SLF001
                    env,
                    fabric,
                    sub_updates,
                    plan,
                    record_timeline=False,
                    local_nodes=node_set,
                    boundary_emit=emit,
                    arrival_span=span,
                )
                env.run(until=tenant.top_done)
                partial = engine.finish_round(tenant, include_eval=False)
                out.append((emissions, partial))
        return _CohortRun(
            shard=shard_id,
            nodes=nodes,
            rounds=out,
            counters=perf.counters().as_dict(),
            wall_seconds=time.perf_counter() - wall0,
            cpu_seconds=time.process_time() - cpu0,
        )

    def _run_forked(
        self,
        tasks: list[tuple[int, tuple[str, ...], list]],
        n_workers: int,
    ) -> list[_CohortRun]:
        """Fan cohorts over forked workers (recv-before-join pipes, LPT
        deal — the traces/shard machinery, one layer down)."""
        ctx = multiprocessing.get_context("fork")
        groups = [tasks[w::n_workers] for w in range(n_workers)]
        procs = []
        for w, group in enumerate(groups):
            rx, tx = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=self._worker_main, args=(group, tx), name=f"cohort-w{w}"
            )
            proc.start()
            tx.close()
            procs.append((group, proc, rx))
        runs: list[_CohortRun] = []
        failures: list[str] = []
        for group, proc, rx in procs:
            shard_ids = ",".join(str(i) for i, _, _ in group)
            try:
                status, payload = rx.recv()
            except EOFError:
                status, payload = "err", "worker died without reporting"
            proc.join()
            if status == "ok":
                runs.extend(payload)
            else:
                failures.append(f"cohorts [{shard_ids}]: {payload}")
        if failures:
            raise RuntimeError("partitioned round failed: " + "; ".join(failures))
        return runs

    def _worker_main(self, group, conn) -> None:
        try:
            out = [self._run_cohort(*task) for task in group]
            conn.send(("ok", out))
        except BaseException:
            conn.send(("err", traceback.format_exc()))
        finally:
            conn.close()

    # ------------------------------------------------------------------ merge
    @staticmethod
    def _merge_round(
        engine: "RoundEngine", merged: RoundResult, partials: list[RoundResult]
    ) -> RoundResult:
        """Fold cohort partials into the root phase's result.

        CPU buckets add, instance stats concatenate, per-phase counts sum
        (node partitions are disjoint, so nothing double-counts); the
        created/reused tallies and the duration-dependent reserved-CPU
        account are recomputed from the *merged* instance list so they
        match what an unpartitioned round would have reported.
        """
        for part in partials:
            for comp, secs in part.cpu_by_component.items():
                merged.cpu_by_component[comp] = (
                    merged.cpu_by_component.get(comp, 0.0) + secs
                )
            merged.instances.extend(part.instances)
            merged.updates_aggregated += part.updates_aggregated
            merged.nodes_used += part.nodes_used
            merged.cross_node_transfers += part.cross_node_transfers
            merged.aggregator_restarts += part.aggregator_restarts
            merged.clients_dropped += part.clients_dropped
        merged.aggregators_created = sum(1 for i in merged.instances if i.cold_start)
        merged.aggregators_reused = sum(1 for i in merged.instances if i.reused)
        merged.cpu_reserved = engine._reserved_cpu(merged)  # noqa: SLF001
        return merged

    # ------------------------------------------------------------------ gates
    @staticmethod
    def _check_supported(platform: "AggregationPlatform") -> None:
        cfg = platform.config
        if not cfg.locality_aware:
            raise ConfigError(
                "cohort partitioning needs locality-aware placement: "
                "locality-agnostic ingress crosses the partition on every "
                "update's path to its leaf"
            )
        if not isinstance(platform.engine.ingress, GatewayIngress):
            raise ConfigError(
                "cohort partitioning needs a per-node gateway ingress; the "
                "broker stages share one admission resource across all nodes"
            )
        if cfg.static_leaf_nodes > 0 or cfg.fixed_instances > 0:
            raise ConfigError("cohort partitioning does not support static (SF) trees")


def _fork_available() -> bool:
    if "fork" not in multiprocessing.get_all_start_methods():
        return False
    return not multiprocessing.current_process().daemon


def _available_cpus() -> int:
    import os

    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1
