"""The step-based aggregator (Fig. 14, Appendix G) as a simulation process.

One aggregator instance is a multiple-producer, single-consumer pipeline of
three steps:

* **Recv** — take the next item from the FIFO mailbox (in LIFL only the
  object key is enqueued; the payload sits in shared memory) and pay the
  consumer-side receive cost;
* **Agg** — dequeue and fold the update into the running accumulator;
  repeat until the aggregation goal (``fan_in``) is met;
* **Send** — emit the aggregated intermediate update to the parent.

**Eager** aggregation overlaps Recv and Agg: each update is aggregated as it
arrives.  **Lazy** aggregation receives everything first and only then runs
the aggregation burst — the whole difference between Fig. 1(a) and (b), and
the source of the ~20 % ACT gap measured in Fig. 8 (④).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Generator

from repro.common.errors import SimulationError
from repro.core.results import InstanceStats
from repro.core.updates import MailboxItem
from repro.sim.engine import Environment, Event
from repro.sim.resources import Store


class InstanceState(str, Enum):
    PLANNED = "planned"
    STARTING = "starting"
    READY = "ready"
    FINISHED = "finished"


@dataclass
class AggregatorCosts:
    """Per-instance latencies/CPU the round engine computed for this system
    and model size."""

    recv_client_latency: float  # consumer-side cost per client update
    recv_client_cpu: float
    agg_latency: float  # aggregation compute per update
    agg_cpu: float
    startup_latency: float  # cold start (0 when warm/reused)
    startup_cpu: float


class AggregatorInstance:
    """One running aggregator in the round simulation."""

    def __init__(
        self,
        env: Environment,
        agg_id: str,
        node: str,
        role: str,
        fan_in: int,
        costs: AggregatorCosts,
        eager: bool,
        charge_cpu: Callable[[str, float], None],
        on_output: Callable[["AggregatorInstance", float, float], None],
        record: Callable[[str, str, float, float], None],
    ) -> None:
        """``on_output(instance, total_weight, now)`` fires at Send;
        ``charge_cpu(component, seconds)`` bills the hosting node;
        ``record(actor, kind, start, end)`` feeds the timeline log."""
        if fan_in < 1:
            raise SimulationError(f"{agg_id}: fan_in must be >= 1")
        self.env = env
        self.agg_id = agg_id
        self.node = node
        self.role = role
        self.fan_in = fan_in
        self.costs = costs
        self.eager = eager
        self._charge = charge_cpu
        self._on_output = on_output
        self._record = record
        self.mailbox: Store = Store(env)
        self.state = InstanceState.PLANNED
        self.stats = InstanceStats(agg_id=agg_id, node=node, role=role)
        self._created = False
        self._ready_event: Event = env.event()
        self._total_weight = 0.0
        self.process = env.process(self._run(), name=agg_id)

    # -- lifecycle ------------------------------------------------------------
    def ensure_created(self, reused: bool = False) -> None:
        """Start the instance now (idempotent).

        With pre-planned hierarchies the engine calls this at round start;
        with reactive scaling it is called on the first mailbox delivery —
        which is what produces the cascading cold-start effect in function
        chains (§2.3).
        """
        if self._created:
            return
        self._created = True
        now = self.env.now
        self.state = InstanceState.STARTING
        self.stats.created_at = now
        self.stats.reused = reused
        startup = 0.0 if reused else self.costs.startup_latency
        self.stats.cold_start = not reused and startup > 0.0
        if self.stats.cold_start:
            self._charge("coldstart", self.costs.startup_cpu)
            self._record(self.agg_id, "coldstart", now, now + startup)

        def ready(_: Event) -> None:
            self.state = InstanceState.READY
            self.stats.ready_at = self.env.now
            self._ready_event.succeed()

        self.env.timeout(startup).callbacks.append(ready)

    def deliver(self, item: MailboxItem) -> None:
        """Producer side: enqueue into the FIFO mailbox (Recv's queue)."""
        self.mailbox.put(item)

    # -- the step-based processing loop (Fig. 14) ------------------------------
    def _run(self) -> Generator[Event, object, None]:
        yield self._ready_event
        received = 0
        aggregated = 0
        pending: list[MailboxItem] = []
        while aggregated < self.fan_in:
            if received < self.fan_in:
                item = yield self.mailbox.get()
                assert isinstance(item, MailboxItem)
                received += 1
                # Recv step: client updates pay the consumer-side ingress
                # leg; intermediates' cost was paid on the transfer edge.
                if not item.is_intermediate and self.costs.recv_client_latency > 0:
                    t0 = self.env.now
                    yield self.env.timeout(self.costs.recv_client_latency)
                    self._charge("dataplane", self.costs.recv_client_cpu)
                    self._record(self.agg_id, "network", t0, self.env.now)
                pending.append(item)
                if not self.eager and received < self.fan_in:
                    continue  # lazy: keep queuing until everything arrived
            # Agg step: eager folds one item; lazy drains the whole queue.
            while pending and aggregated < self.fan_in:
                item = pending.pop(0)
                t0 = self.env.now
                yield self.env.timeout(self.costs.agg_latency)
                self._charge("aggregation", self.costs.agg_cpu)
                self._record(self.agg_id, "agg", t0, self.env.now)
                self._total_weight += item.weight
                aggregated += 1
                self.stats.updates_aggregated = aggregated
                if self.eager:
                    break  # go back to Recv; overlap with later arrivals
        # Send step
        self.state = InstanceState.FINISHED
        self.stats.finished_at = self.env.now
        self._on_output(self, self._total_weight, self.env.now)
