"""The step-based aggregator (Fig. 14, Appendix G) as a simulation process.

One aggregator instance is a multiple-producer, single-consumer pipeline of
three steps:

* **Recv** — take the next item from the FIFO mailbox (in LIFL only the
  object key is enqueued; the payload sits in shared memory) and pay the
  consumer-side receive cost;
* **Agg** — dequeue and fold the update into the running accumulator;
  repeat until the aggregation goal (``fan_in``) is met;
* **Send** — emit the aggregated intermediate update to the parent.

**Eager** aggregation overlaps Recv and Agg: each update is aggregated as it
arrives.  **Lazy** aggregation receives everything first and only then runs
the aggregation burst — the whole difference between Fig. 1(a) and (b), and
the source of the ~20 % ACT gap measured in Fig. 8 (④).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Generator

from repro.common.errors import SimulationError
from repro.core.results import InstanceStats
from repro.core.updates import MailboxItem
from repro.sim.engine import Environment, Event, Process
from repro.sim.resources import Store


class InstanceState(str, Enum):
    PLANNED = "planned"
    STARTING = "starting"
    READY = "ready"
    FINISHED = "finished"
    CRASHED = "crashed"


#: mailbox sentinel depositing a goal re-check: a parked consumer whose
#: aggregation goal shrank (client failures, §3) wakes, re-reads
#: ``fan_in`` and either keeps receiving or emits with what it has.
_GOAL_WAKE = MailboxItem(
    weight=0.0, source="__goal_wake__", is_intermediate=True, enqueued_at=0.0
)


@dataclass
class AggregatorCosts:
    """Per-instance latencies/CPU the round engine computed for this system
    and model size."""

    recv_client_latency: float  # consumer-side cost per client update
    recv_client_cpu: float
    agg_latency: float  # aggregation compute per update
    agg_cpu: float
    startup_latency: float  # cold start (0 when warm/reused)
    startup_cpu: float


class AggregatorInstance:
    """One running aggregator in the round simulation."""

    def __init__(
        self,
        env: Environment,
        agg_id: str,
        node: str,
        role: str,
        fan_in: int,
        costs: AggregatorCosts,
        eager: bool,
        charge_cpu: Callable[[str, float], None],
        on_output: Callable[["AggregatorInstance", float, float], None],
        record: Callable[[str, str, float, float], None] | None,
    ) -> None:
        """``on_output(instance, total_weight, now)`` fires at Send;
        ``charge_cpu(component, seconds)`` bills the hosting node;
        ``record(actor, kind, start, end)`` feeds the timeline log
        (``None`` disables timeline telemetry for the round)."""
        if fan_in < 1:
            raise SimulationError(f"{agg_id}: fan_in must be >= 1")
        self.env = env
        self.agg_id = agg_id
        self.node = node
        self.role = role
        self.fan_in = fan_in
        self.costs = costs
        self.eager = eager
        self._charge = charge_cpu
        self._on_output = on_output
        self._record = record
        self.mailbox: Store = Store(env)
        self.state = InstanceState.PLANNED
        self.stats = InstanceStats(agg_id=agg_id, node=node, role=role)
        self._created = False
        self._ready_event: Event = Event(env)
        self._total_weight = 0.0
        #: chaos support: when True, every consumed item is retained so a
        #: stateless restart can re-read it (the shm object outlives the
        #: instance).  Off by default — fault-free rounds pay nothing.
        self.retain_inputs = False
        self._consumed: list[MailboxItem] = []
        self.process = Process(env, self._run(), agg_id)

    # -- lifecycle ------------------------------------------------------------
    def ensure_created(self, reused: bool = False) -> None:
        """Start the instance now (idempotent).

        With pre-planned hierarchies the engine calls this at round start;
        with reactive scaling it is called on the first mailbox delivery —
        which is what produces the cascading cold-start effect in function
        chains (§2.3).
        """
        if self._created:
            return
        self._created = True
        now = self.env.now
        self.state = InstanceState.STARTING
        self.stats.created_at = now
        self.stats.reused = reused
        startup = 0.0 if reused else self.costs.startup_latency
        self.stats.cold_start = not reused and startup > 0.0
        if self.stats.cold_start:
            self._charge("coldstart", self.costs.startup_cpu)
            if self._record is not None:
                self._record(self.agg_id, "coldstart", now, now + startup)

        if startup == 0.0:
            # Warm/reused instances are ready at once — don't route the
            # no-op startup through a zero-delay timer.
            self.state = InstanceState.READY
            self.stats.ready_at = now
            self._ready_event.succeed()
            return

        ready_event = self._ready_event

        def ready(_: Event) -> None:
            if ready_event is not self._ready_event:
                return  # the instance crashed and restarted mid-startup
            self.state = InstanceState.READY
            self.stats.ready_at = self.env.now
            ready_event.succeed()

        self.env.timeout(startup).callbacks.append(ready)

    def deliver(self, item: MailboxItem) -> None:
        """Producer side: enqueue into the FIFO mailbox (Recv's queue).

        The mailbox is unbounded and no producer waits on the deposit, so
        this takes the event-free path."""
        self.mailbox.put_nowait(item)

    # -- chaos hooks (see repro.chaos) -----------------------------------------
    def reduce_goal(self, by: int = 1) -> bool:
        """Recovery hook (§3 over-provisioning): lower the aggregation goal
        after declared client failures, so the instance can emit with the
        updates that survive.  A consumer parked on an empty mailbox is
        woken with a sentinel to re-check the goal; at goal 0 the instance
        emits a zero-weight intermediate, keeping the tree unblocked.
        Returns True when the goal actually changed."""
        if by <= 0 or self.state is InstanceState.FINISHED:
            return False
        before = self.fan_in
        self.fan_in = max(0, self.fan_in - by)
        if self._created:
            self.mailbox.put_nowait(_GOAL_WAKE)
        return self.fan_in != before

    def _retire_process(self) -> None:
        """Terminate the running incarnation *synchronously*.

        An async interrupt leaves a window (events already queued at the
        same instant) in which the dead incarnation could keep consuming:
        a same-instant delivery may have handed an item to its parked
        mailbox getter, and a same-instant timeout could re-enter the Agg
        step and corrupt the freshly reset accumulator.  So the kill is
        immediate: reclaim any in-flight mailbox item back to the queue,
        cancel the pending resume, detach from the wait target, and mark
        the process finished so every later resume no-ops.
        """
        proc = self.process
        if proc._triggered:  # noqa: SLF001 - instance owns its process
            return
        env = self.env
        target = proc._target
        if target is not None:
            if (
                target._triggered
                and not target._processed
                and not target._cancelled
                and target._ok
                and isinstance(target._value, MailboxItem)
            ):
                # A deposit already succeeded the dead incarnation's parked
                # getter: the item left the store but was never received.
                # Put it back at the head and retire the resume event.
                env.cancel(target)
                if target._value is not _GOAL_WAKE:
                    self.mailbox.items.appendleft(target._value)
            elif target.callbacks is not None and proc._resume in target.callbacks:
                target.callbacks.remove(proc._resume)
        init = proc._initialize
        if init is not None and not init._processed and not init._cancelled:
            env.cancel(init)
        proc._value = None
        proc._finish()  # no waiters; _ok stays True, so nothing raises

    def crash(self) -> bool:
        """Kill the running incarnation (fault injection).

        Returns ``False`` when there is nothing to kill (never created, or
        already finished).  The mailbox survives — in LIFL the queue holds
        shm object *keys*, and the objects outlive the consumer — but the
        dead incarnation's parked get is purged so a later deposit cannot
        vanish into it.  A crashed instance stays dead until
        :meth:`restart`."""
        if not self._created or self.state is InstanceState.FINISHED:
            return False
        self._retire_process()
        self.mailbox.drop_getters()
        self.state = InstanceState.CRASHED
        return True

    def restart(self, startup_latency: float, reused: bool, startup_cpu: float = 0.0) -> None:
        """Stateless restart after a crash (§3): "new ones start without
        state synchronization" — the replacement re-reads the surviving
        inputs from shared memory (``retain_inputs`` must have been on) and
        re-aggregates from scratch.  ``reused`` restarts come from the warm
        pool and are ready instantly; cold restarts pay ``startup_latency``.
        """
        if self.state is InstanceState.FINISHED:
            raise SimulationError(f"{self.agg_id}: cannot restart a finished instance")
        if not self._created:
            raise SimulationError(f"{self.agg_id}: cannot restart before creation")
        env = self.env
        self.crash()  # synchronous kill + getter purge (no-op if already crashed)
        if self._consumed:
            # Re-enqueue ahead of anything still unread, preserving order.
            self.mailbox.items.extendleft(reversed(self._consumed))
            self._consumed = []
        self._total_weight = 0.0
        stats = self.stats
        stats.restarts += 1
        stats.updates_aggregated = 0
        stats.client_updates = 0
        stats.reused = reused
        now = env.now
        self.state = InstanceState.STARTING
        ready_event = self._ready_event = Event(env)
        self.process = Process(env, self._run(), self.agg_id)
        if startup_latency <= 0.0:
            self.state = InstanceState.READY
            stats.ready_at = now
            ready_event.succeed()
            return
        if startup_cpu > 0:
            self._charge("restart", startup_cpu)
        if self._record is not None:
            self._record(self.agg_id, "restart", now, now + startup_latency)

        def up(_: Event) -> None:
            if ready_event is not self._ready_event:
                return  # superseded by an even newer restart
            self.state = InstanceState.READY
            self.stats.ready_at = self.env.now
            ready_event.succeed()

        env.timeout(startup_latency).callbacks.append(up)

    # -- the step-based processing loop (Fig. 14) ------------------------------
    def _run(self) -> Generator[Event, object, None]:
        yield self._ready_event
        # This loop runs once per update in the round across every
        # instance — bind the per-step constants once.
        env = self.env
        timeout = env.timeout
        mailbox_get = self.mailbox.get
        mailbox_try_get = self.mailbox.try_get
        charge = self._charge
        record = self._record  # None when the round's telemetry is off
        stats = self.stats
        agg_id = self.agg_id
        # ``fan_in`` is re-read each pass: the recovery controller may
        # shrink the goal mid-round after declared client failures.
        fan_in = self.fan_in
        eager = self.eager
        costs = self.costs
        recv_latency = costs.recv_client_latency
        recv_cpu = costs.recv_client_cpu
        agg_latency = costs.agg_latency
        agg_cpu = costs.agg_cpu
        retain = self._consumed if self.retain_inputs else None
        received = 0
        aggregated = 0
        pending: deque[MailboxItem] = deque()
        while aggregated < fan_in:
            if received < fan_in:
                # Backlogged mailboxes hand the item over without an event
                # round-trip; only an empty mailbox parks the process.
                item = mailbox_try_get()
                if item is None:
                    item = yield mailbox_get()
                if item is _GOAL_WAKE:
                    fan_in = self.fan_in  # the goal shrank while parked
                    continue
                received += 1
                if retain is not None:
                    retain.append(item)
                # Recv step: client updates pay the consumer-side ingress
                # leg; intermediates' cost was paid on the transfer edge.
                if not item.is_intermediate and recv_latency > 0:
                    t0 = env._now
                    yield timeout(recv_latency)
                    charge("dataplane", recv_cpu)
                    if record is not None:
                        record(agg_id, "network", t0, env._now)
                pending.append(item)
                if not eager and received < fan_in:
                    continue  # lazy: keep queuing until everything arrived
            # Agg step: eager folds one item; lazy drains the whole queue.
            while pending and aggregated < fan_in:
                item = pending.popleft()
                t0 = env._now
                yield timeout(agg_latency)
                charge("aggregation", agg_cpu)
                if record is not None:
                    record(agg_id, "agg", t0, env._now)
                self._total_weight += item.weight
                aggregated += 1
                stats.updates_aggregated = aggregated
                if not item.is_intermediate:
                    stats.client_updates += 1
                if eager:
                    break  # go back to Recv; overlap with later arrivals
            fan_in = self.fan_in
        # Send step
        self.state = InstanceState.FINISHED
        now = env._now
        stats.finished_at = now
        self._on_output(self, self._total_weight, now)
