"""The step-based aggregator (Fig. 14, Appendix G) as a simulation process.

One aggregator instance is a multiple-producer, single-consumer pipeline of
three steps:

* **Recv** — take the next item from the FIFO mailbox (in LIFL only the
  object key is enqueued; the payload sits in shared memory) and pay the
  consumer-side receive cost;
* **Agg** — dequeue and fold the update into the running accumulator;
  repeat until the aggregation goal (``fan_in``) is met;
* **Send** — emit the aggregated intermediate update to the parent.

**Eager** aggregation overlaps Recv and Agg: each update is aggregated as it
arrives.  **Lazy** aggregation receives everything first and only then runs
the aggregation burst — the whole difference between Fig. 1(a) and (b), and
the source of the ~20 % ACT gap measured in Fig. 8 (④).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Generator

from repro.common.errors import SimulationError
from repro.core.results import InstanceStats
from repro.core.updates import MailboxItem
from repro.sim.engine import Environment, Event, Process
from repro.sim.resources import Store


class InstanceState(str, Enum):
    PLANNED = "planned"
    STARTING = "starting"
    READY = "ready"
    FINISHED = "finished"


@dataclass
class AggregatorCosts:
    """Per-instance latencies/CPU the round engine computed for this system
    and model size."""

    recv_client_latency: float  # consumer-side cost per client update
    recv_client_cpu: float
    agg_latency: float  # aggregation compute per update
    agg_cpu: float
    startup_latency: float  # cold start (0 when warm/reused)
    startup_cpu: float


class AggregatorInstance:
    """One running aggregator in the round simulation."""

    def __init__(
        self,
        env: Environment,
        agg_id: str,
        node: str,
        role: str,
        fan_in: int,
        costs: AggregatorCosts,
        eager: bool,
        charge_cpu: Callable[[str, float], None],
        on_output: Callable[["AggregatorInstance", float, float], None],
        record: Callable[[str, str, float, float], None] | None,
    ) -> None:
        """``on_output(instance, total_weight, now)`` fires at Send;
        ``charge_cpu(component, seconds)`` bills the hosting node;
        ``record(actor, kind, start, end)`` feeds the timeline log
        (``None`` disables timeline telemetry for the round)."""
        if fan_in < 1:
            raise SimulationError(f"{agg_id}: fan_in must be >= 1")
        self.env = env
        self.agg_id = agg_id
        self.node = node
        self.role = role
        self.fan_in = fan_in
        self.costs = costs
        self.eager = eager
        self._charge = charge_cpu
        self._on_output = on_output
        self._record = record
        self.mailbox: Store = Store(env)
        self.state = InstanceState.PLANNED
        self.stats = InstanceStats(agg_id=agg_id, node=node, role=role)
        self._created = False
        self._ready_event: Event = Event(env)
        self._total_weight = 0.0
        self.process = Process(env, self._run(), agg_id)

    # -- lifecycle ------------------------------------------------------------
    def ensure_created(self, reused: bool = False) -> None:
        """Start the instance now (idempotent).

        With pre-planned hierarchies the engine calls this at round start;
        with reactive scaling it is called on the first mailbox delivery —
        which is what produces the cascading cold-start effect in function
        chains (§2.3).
        """
        if self._created:
            return
        self._created = True
        now = self.env.now
        self.state = InstanceState.STARTING
        self.stats.created_at = now
        self.stats.reused = reused
        startup = 0.0 if reused else self.costs.startup_latency
        self.stats.cold_start = not reused and startup > 0.0
        if self.stats.cold_start:
            self._charge("coldstart", self.costs.startup_cpu)
            if self._record is not None:
                self._record(self.agg_id, "coldstart", now, now + startup)

        if startup == 0.0:
            # Warm/reused instances are ready at once — don't route the
            # no-op startup through a zero-delay timer.
            self.state = InstanceState.READY
            self.stats.ready_at = now
            self._ready_event.succeed()
            return

        def ready(_: Event) -> None:
            self.state = InstanceState.READY
            self.stats.ready_at = self.env.now
            self._ready_event.succeed()

        self.env.timeout(startup).callbacks.append(ready)

    def deliver(self, item: MailboxItem) -> None:
        """Producer side: enqueue into the FIFO mailbox (Recv's queue).

        The mailbox is unbounded and no producer waits on the deposit, so
        this takes the event-free path."""
        self.mailbox.put_nowait(item)

    # -- the step-based processing loop (Fig. 14) ------------------------------
    def _run(self) -> Generator[Event, object, None]:
        yield self._ready_event
        # This loop runs once per update in the round across every
        # instance — bind the per-step constants once.
        env = self.env
        timeout = env.timeout
        mailbox_get = self.mailbox.get
        mailbox_try_get = self.mailbox.try_get
        charge = self._charge
        record = self._record  # None when the round's telemetry is off
        stats = self.stats
        agg_id = self.agg_id
        fan_in = self.fan_in
        eager = self.eager
        costs = self.costs
        recv_latency = costs.recv_client_latency
        recv_cpu = costs.recv_client_cpu
        agg_latency = costs.agg_latency
        agg_cpu = costs.agg_cpu
        received = 0
        aggregated = 0
        pending: deque[MailboxItem] = deque()
        while aggregated < fan_in:
            if received < fan_in:
                # Backlogged mailboxes hand the item over without an event
                # round-trip; only an empty mailbox parks the process.
                item = mailbox_try_get()
                if item is None:
                    item = yield mailbox_get()
                received += 1
                # Recv step: client updates pay the consumer-side ingress
                # leg; intermediates' cost was paid on the transfer edge.
                if not item.is_intermediate and recv_latency > 0:
                    t0 = env._now
                    yield timeout(recv_latency)
                    charge("dataplane", recv_cpu)
                    if record is not None:
                        record(agg_id, "network", t0, env._now)
                pending.append(item)
                if not eager and received < fan_in:
                    continue  # lazy: keep queuing until everything arrived
            # Agg step: eager folds one item; lazy drains the whole queue.
            while pending and aggregated < fan_in:
                item = pending.popleft()
                t0 = env._now
                yield timeout(agg_latency)
                charge("aggregation", agg_cpu)
                if record is not None:
                    record(agg_id, "agg", t0, env._now)
                self._total_weight += item.weight
                aggregated += 1
                stats.updates_aggregated = aggregated
                if eager:
                    break  # go back to Recv; overlap with later arrivals
        # Send step
        self.state = InstanceState.FINISHED
        now = env._now
        stats.finished_at = now
        self._on_output(self, self._total_weight, now)
