"""The strategy-pattern policy registry: pluggable serving decisions.

Four decision families steer a serving replay, and each used to be a
hard-wired method.  This module gives every family a slim ABC and a
name → factory registry, mirroring how :mod:`repro.core.stages` resolves
dataplane stages:

* :class:`SelectionPolicy` — which clients participate in a round
  (``availability-aware`` / ``random`` / ``population``);
* :class:`PlacementPolicy` — how an admitted round's updates are mapped
  to nodes and planned into a hierarchy (``locality`` / ``lpt``);
* :class:`AdmissionPolicy` — what happens to an arrival when the
  tenant's in-flight slots are busy (``bounded-queue`` / ``drop-tail`` /
  ``drop-head`` / ``defer-with-deadline``);
* :class:`RecoveryPolicy` — how a round reacts to mid-flight client
  failures (``shrink-or-abort`` / ``abort-fast``).

Policies register with the :func:`policy` decorator and are resolved by
name through :class:`~repro.core.platform.PlatformConfig` (placement) and
:class:`~repro.traces.replay.ReplayConfig` / :class:`~repro.chaos.FaultPlan`
knobs — empty string means "the registered default", which reproduces the
pre-registry behaviour byte for byte.  All randomness a policy consumes
comes through its injected RNG: selection receives the per-round stream
the replay derives from ``(seed, tenant, round_id)``, and
:func:`resolve_policy` binds a named :class:`~repro.common.rng.RngRegistry`
stream to ``self.rng`` for policies that draw outside the per-call path.
Drawing from the global RNG instead would break seeded-replay determinism
— the conformance suite (``tests/test_policy_conformance.py``) catches
exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import RngRegistry

if TYPE_CHECKING:
    from repro.controlplane.hierarchy import HierarchyPlan
    from repro.core.platform import AggregationPlatform
    from repro.core.updates import SimUpdate
    from repro.fl.client import FLClient
    from repro.fl.population import ClientPopulation
    from repro.fl.selector import Selector
    from repro.traces.models import AvailabilityTrace

__all__ = [
    "POLICIES",
    "AdmissionContext",
    "AdmissionPolicy",
    "PlacementPolicy",
    "Policy",
    "PolicyRegistry",
    "RecoveryContext",
    "RecoveryPolicy",
    "SelectionContext",
    "SelectionPolicy",
    "policy",
    "resolve_policy",
]

#: the decision families the registry knows about
FAMILIES = ("selection", "placement", "admission", "recovery")

#: the registered default per family — resolving an empty-string knob
#: lands here (except selection, whose default derives from the inputs
#: the replay was given; see TraceReplayEngine)
DEFAULTS = {
    "selection": "availability-aware",
    "placement": "locality",
    "admission": "bounded-queue",
    "recovery": "shrink-or-abort",
}


class Policy:
    """Base for every registered policy.

    ``family``/``name`` are set by the :func:`policy` decorator; ``rng``
    is the policy's injected stream (bound by :func:`resolve_policy`) —
    the ONLY generator a policy may draw from outside arguments
    explicitly passed to its decision methods.
    """

    family: str = ""
    name: str = ""
    rng: np.random.Generator | None = None


class PolicyRegistry:
    """``(family, name)`` → policy factory, with stage-registry error
    semantics: duplicates refuse to register, unknown names raise a
    :class:`~repro.common.errors.ConfigError` listing what exists."""

    def __init__(self) -> None:
        self._factories: dict[tuple[str, str], Callable[[], Policy]] = {}

    def register(
        self, family: str, name: str, factory: Callable[[], Policy]
    ) -> Callable[[], Policy]:
        if family not in FAMILIES:
            raise ConfigError(
                f"unknown policy family {family!r}; have {list(FAMILIES)}"
            )
        if not name:
            raise ConfigError(f"{family} policy needs a non-empty name")
        key = (family, name)
        if key in self._factories:
            raise ConfigError(f"{family} policy {name!r} already registered")
        self._factories[key] = factory
        return factory

    def create(self, family: str, name: str) -> Policy:
        try:
            factory = self._factories[(family, name)]
        except KeyError:
            raise ConfigError(
                f"unknown {family} policy {name!r}; have {self.names(family)}"
            ) from None
        instance = factory()
        instance.family = family
        instance.name = name
        return instance

    def names(self, family: str) -> list[str]:
        """Registered names for one family, sorted."""
        return sorted(n for f, n in self._factories if f == family)

    def families(self) -> list[str]:
        return [f for f in FAMILIES if any(k[0] == f for k in self._factories)]


#: the process-wide registry every knob resolves against
POLICIES = PolicyRegistry()


def policy(family: str, name: str) -> Callable[[type], type]:
    """Class decorator: ``@policy("selection", "random")`` registers the
    class under ``(family, name)``."""

    def deco(cls: type) -> type:
        POLICIES.register(family, name, cls)
        cls.family = family
        cls.name = name
        return cls

    return deco


def resolve_policy(
    family: str, name: str = "", rngs: RngRegistry | None = None
) -> Policy:
    """Resolve one policy by name (empty → the family default) and bind
    its registry stream ``policy:<family>:<name>`` when ``rngs`` given."""
    resolved = POLICIES.create(family, name or DEFAULTS[family])
    if rngs is not None:
        resolved.rng = rngs.stream(f"policy:{family}:{resolved.name}")
    return resolved


# ================================================================= selection
@dataclass
class SelectionContext:
    """Everything a selection policy may consult for one round."""

    at: float
    tenant: int
    round_id: int
    #: the round's aggregation goal (``ReplayConfig.round_updates``)
    round_updates: int
    availability: "AvailabilityTrace | None" = None
    weights: dict[str, float] = field(default_factory=dict)
    selector: "Selector | None" = None
    clients: "list[FLClient]" = field(default_factory=list)
    population: "ClientPopulation | None" = None


class SelectionPolicy(Policy):
    """Which clients participate in one round.

    ``select`` returns the picked client ids (or, for population-backed
    policies, client *indices*) — a duplicate-free subset of the clients
    eligible at ``ctx.at``; an empty sequence marks the round unformable.
    ``participant_weights`` maps the picked sequence to per-client
    aggregation weights (same length/order).  All draws must come from
    the passed per-round ``rng`` — never module-level randomness.
    """

    family = "selection"

    def select(self, ctx: SelectionContext, rng: np.random.Generator):
        raise NotImplementedError

    def participant_weights(self, ctx: SelectionContext, picked) -> list[float]:
        return [float(ctx.weights.get(cid, 1.0)) for cid in picked]


@policy("selection", "availability-aware")
class AvailabilityAwareSelection(SelectionPolicy):
    """Route participation through the FL selector's over-provisioning
    policy, restricted to the clients the availability trace reports up
    at the round's arrival instant (the pre-registry selector path)."""

    def select(self, ctx: SelectionContext, rng: np.random.Generator) -> list[str]:
        if ctx.selector is None or ctx.availability is None or not ctx.clients:
            raise ConfigError(
                "availability-aware selection needs selector, clients, "
                "and an availability trace"
            )
        avail = ctx.availability
        picked = ctx.selector.select_available(
            ctx.clients, rng, lambda cid: avail.is_available(cid, ctx.at)
        )
        return [c.client_id for c in picked]


@policy("selection", "random")
class RandomSelection(SelectionPolicy):
    """Uniform sampling from whoever the availability trace reports up —
    no selector mediation; without a trace, a full synthetic cohort (the
    pre-registry fallback paths)."""

    def select(self, ctx: SelectionContext, rng: np.random.Generator) -> list[str]:
        if ctx.availability is not None:
            return ctx.availability.sample(ctx.at, ctx.round_updates, rng)
        return [f"synth-{i}" for i in range(ctx.round_updates)]


@policy("selection", "population")
class PopulationSelection(SelectionPolicy):
    """Vectorized selection over a struct-of-arrays
    :class:`~repro.fl.population.ClientPopulation`: mask + index draw,
    weights read straight from the population arrays."""

    def select(self, ctx: SelectionContext, rng: np.random.Generator) -> np.ndarray:
        if ctx.population is None or ctx.selector is None:
            raise ConfigError(
                "population selection needs a ClientPopulation and a selector"
            )
        pop = ctx.population
        return ctx.selector.select_population(pop, rng, pop.available_mask(ctx.at))

    def participant_weights(self, ctx: SelectionContext, picked) -> list[float]:
        return ctx.population.weights(picked)


# ================================================================= placement
class PlacementPolicy(Policy):
    """Map one admitted round's (arrival, weight) pairs to node-assigned
    updates and a hierarchy plan.

    ``place`` must honour ``nodes`` — a placement restriction to a fleet
    subset (chaos-aware control planes pass the currently-healthy nodes)
    — and must cover every arrival exactly once across the plan's
    leaves.  Placement is deterministic: no policy here draws randomness.
    """

    family = "placement"

    def place(
        self,
        platform: "AggregationPlatform",
        arrivals: list[tuple[float, float]],
        nbytes: float,
        nodes: list[str] | None = None,
    ) -> "tuple[list[SimUpdate], HierarchyPlan]":
        raise NotImplementedError


@policy("placement", "locality")
class LocalityPlacement(PlacementPolicy):
    """The platform's native path: the configured bin-packing placer
    assigns updates to nodes, then the hierarchy planner builds the tree
    locality-aware (or round-robin for locality-agnostic configs) — the
    pre-registry ``prepare_round`` behaviour, byte for byte."""

    def place(self, platform, arrivals, nbytes, nodes=None):
        updates = platform.place_updates(arrivals, nbytes, nodes=nodes)
        plan = platform.plan_round(updates, nodes=nodes)
        return updates, plan


@policy("placement", "lpt")
class LptPlacement(PlacementPolicy):
    """Longest-processing-time spread: each update lands on the candidate
    node with the fewest updates so far (ties in fleet order), balancing
    per-node load at the cost of locality — more leaves, more cross-node
    intermediate transfers.  Capacity is a soft bound: nodes with free
    service slots win over full ones."""

    def place(self, platform, arrivals, nbytes, nodes=None):
        from repro.core.updates import SimUpdate

        names = platform._candidate_nodes(nodes)
        if platform.config.static_leaf_nodes > 0:
            names = names[: platform.config.static_leaf_nodes]
        cap = platform.node_spec.max_service_capacity
        loads = [0] * len(names)
        updates = []
        for uid, (t, w) in enumerate(sorted(arrivals)):
            free = [i for i in range(len(names)) if loads[i] < cap]
            pool = free or range(len(names))
            i = min(pool, key=lambda j: (loads[j], j))
            loads[i] += 1
            updates.append(
                SimUpdate(
                    uid=uid,
                    nbytes=nbytes,
                    weight=w,
                    arrival_time=t,
                    node=names[i],
                    client_id=f"u{uid}",
                )
            )
        return updates, platform.plan_round(updates, nodes=nodes)


# ================================================================= admission
#: what an admission policy may decide for an arrival that found every
#: in-flight slot busy
ADMISSION_DECISIONS = ("enqueue", "reject", "defer", "evict-oldest")


@dataclass(frozen=True)
class AdmissionContext:
    """One overflow arrival's view of its tenant's queue."""

    tenant: int
    #: rounds already waiting in the tenant's bounded queue
    queue_len: int
    queue_limit: int
    now: float
    #: deferral budget (seconds); 0 when deferral is not configured
    defer_deadline_s: float = 0.0


class AdmissionPolicy(Policy):
    """What happens to an arrival when the tenant's in-flight slots are
    all busy.  The serving loop admits directly while slots are free —
    policies only see overflow — and it enforces the queue bound: a
    decision may never grow the queue past ``queue_limit`` (``enqueue``
    with a full queue is a conformance violation), and leaving room
    unused (rejecting with a non-full queue) starves the tenant."""

    family = "admission"

    def decide(self, ctx: AdmissionContext) -> str:
        raise NotImplementedError


@policy("admission", "bounded-queue")
class BoundedQueueAdmission(AdmissionPolicy):
    """The default: queue while there is room, reject overflow outright
    (the pre-registry serving loop)."""

    def decide(self, ctx: AdmissionContext) -> str:
        return "enqueue" if ctx.queue_len < ctx.queue_limit else "reject"


@policy("admission", "drop-tail")
class DropTailAdmission(BoundedQueueAdmission):
    """Tail drop, named explicitly: the arriving round is the one shed
    when the queue is full — behaviourally identical to
    ``bounded-queue``, registered separately so tournaments can name the
    overflow discipline they mean."""


@policy("admission", "drop-head")
class DropHeadAdmission(AdmissionPolicy):
    """Head drop: a full queue evicts its *oldest* waiter to admit the
    newcomer — freshest-work-first under overload, at the cost of
    abandoning rounds that already waited longest."""

    def decide(self, ctx: AdmissionContext) -> str:
        return "enqueue" if ctx.queue_len < ctx.queue_limit else "evict-oldest"


@policy("admission", "defer-with-deadline")
class DeferWithDeadlineAdmission(AdmissionPolicy):
    """Park overflow in the deferral room with a shed deadline instead of
    dropping it — the reactive controller's discipline, available
    standalone through ``ReplayConfig.defer_deadline_s``."""

    def decide(self, ctx: AdmissionContext) -> str:
        if ctx.queue_len < ctx.queue_limit:
            return "enqueue"
        return "defer" if ctx.defer_deadline_s > 0 else "reject"


# ================================================================== recovery
@dataclass(frozen=True)
class RecoveryContext:
    """One declared-failed client, seen by the recovery sweep."""

    client_id: str
    #: clients still alive after this sweep's failures
    survivors: int
    quorum: int
    total: int


class RecoveryPolicy(Policy):
    """How a round reacts to clients its heartbeat sweep declared failed.

    ``on_client_failed`` runs once per newly-failed client and returns
    ``"shrink"`` (absorb the loss via the over-provisioning margin) or
    ``"abort"`` (fail the round now, typed); after each sweep
    ``should_abort`` decides whether the surviving cohort still covers
    the round.  Every path must terminate the round — complete, shrink
    to completion, or typed :class:`~repro.common.errors.RoundAbort` —
    never hang.
    """

    family = "recovery"

    def on_client_failed(self, ctx: RecoveryContext) -> str:
        raise NotImplementedError

    def should_abort(self, survivors: int, quorum: int, total: int) -> bool:
        raise NotImplementedError


@policy("recovery", "shrink-or-abort")
class ShrinkOrAbortRecovery(RecoveryPolicy):
    """The paper's §3 loop: shrink the affected leaf's goal per failed
    client; abort only when survivors no longer cover the quorum."""

    def on_client_failed(self, ctx: RecoveryContext) -> str:
        return "shrink"

    def should_abort(self, survivors: int, quorum: int, total: int) -> bool:
        return survivors < quorum


@policy("recovery", "abort-fast")
class AbortFastRecovery(RecoveryPolicy):
    """Fail fast: the first declared failure aborts the round with a
    typed :class:`~repro.common.errors.RoundAbort` — no shrinking, no
    partial cohorts.  Cheapest possible failure handling; tournaments
    measure what that costs in attainment."""

    def on_client_failed(self, ctx: RecoveryContext) -> str:
        return "abort"

    def should_abort(self, survivors: int, quorum: int, total: int) -> bool:
        return survivors < quorum
