"""Multi-round FL workload driver (behind Figs. 9 and 10).

Round r: publish global model v_r → the selector picks participants from
the population → clients hibernate/train per their behaviour profile →
updates arrive at the aggregation service → the platform aggregates the
first ``aggregation_goal`` arrivals (over-provisioned selection absorbs
stragglers and dropouts, §3) → evaluation → round r+1.

Rounds run back-to-back, so wall-clock time is the sum of round completion
times, and the always-on SF reservation accrues continuously.  Accuracy per
round comes from the model's learning curve — identical across systems, as
in the paper (same FedAvg on the same population); the systems differ in
seconds and CPU-seconds per round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigError
from repro.core.platform import AggregationPlatform
from repro.core.results import RoundSample, WorkloadResult
from repro.fl.convergence import AccuracyCurve
from repro.fl.model import ModelSpec
from repro.fl.selector import Selector, SelectorConfig
from repro.workloads.fedscale import FedScalePopulation
from repro.workloads.traces import generate_round_trace


@dataclass(frozen=True)
class FLWorkloadConfig:
    """One §6.2 workload setup."""

    spec: ModelSpec
    curve: AccuracyCurve
    aggregation_goal: int
    active_clients: int
    rounds: int
    target_accuracy: float = 0.70
    stop_at_target: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.aggregation_goal < 1:
            raise ConfigError("aggregation_goal must be >= 1")
        if self.active_clients < self.aggregation_goal:
            raise ConfigError("active_clients must be >= aggregation_goal")
        if self.rounds < 1:
            raise ConfigError("rounds must be >= 1")


def run_fl_workload(
    platform: AggregationPlatform,
    population: FedScalePopulation,
    config: FLWorkloadConfig,
    rng: np.random.Generator,
) -> WorkloadResult:
    """Drive the platform through a full FL training run."""
    selector = Selector(
        SelectorConfig(
            aggregation_goal=config.aggregation_goal,
            over_provision=config.active_clients / config.aggregation_goal,
        )
    )
    weights = population.weights()
    result = WorkloadResult(system=platform.config.name, model=config.spec.name)
    clock = 0.0
    for r in range(config.rounds):
        participants = selector.select(population.clients, rng)
        trace = generate_round_trace(participants, weights, rng)
        # The platform aggregates the first `goal` arrivals of the round.
        goal_arrivals = trace.arrivals[: config.aggregation_goal]
        arrivals = [(a.arrival_time, a.weight) for a in goal_arrivals]
        round_result = platform.run_round(arrivals, config.spec.nbytes)
        span = max(1e-9, goal_arrivals[-1].arrival_time - goal_arrivals[0].arrival_time)
        accuracy = config.curve.accuracy_at(r + 1)
        active = (
            platform.config.fixed_instances
            if platform.config.fixed_instances > 0
            else len(round_result.instances)
        )
        result.samples.append(
            RoundSample(
                round_index=r,
                start_time=clock,
                duration=round_result.completion_time,
                act=round_result.act,
                cpu_total=round_result.cpu_total,
                accuracy=accuracy,
                arrivals_per_minute=60.0 * len(goal_arrivals) / span,
                active_aggregators=active,
            )
        )
        clock += round_result.completion_time
        if config.stop_at_target and accuracy >= config.target_accuracy:
            break
    return result
