"""Round and workload result records — the quantities the paper plots."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.eventlog import EventLog


@dataclass(slots=True)
class InstanceStats:
    """Lifecycle of one aggregator instance during a round."""

    agg_id: str
    node: str
    role: str
    created_at: float = 0.0
    ready_at: float = 0.0
    finished_at: float = 0.0
    cold_start: bool = False
    reused: bool = False
    updates_aggregated: int = 0
    #: client (non-intermediate) updates folded in — survives goal math
    client_updates: int = 0
    #: stateless restarts after chaos-injected crashes (§3)
    restarts: int = 0

    @property
    def active_seconds(self) -> float:
        return max(0.0, self.finished_at - self.created_at)


@dataclass
class RoundResult:
    """Everything one aggregation round produced.

    ``act`` is the Aggregation Completion Time (§5.2): from round start to
    the top aggregator emitting the new global model.  ``completion_time``
    additionally includes the evaluation task.
    """

    act: float
    completion_time: float
    #: CPU-seconds actually burned, by component (ledger buckets)
    cpu_by_component: dict[str, float] = field(default_factory=dict)
    #: CPU-seconds of reserved-but-idle allocation (sidecars, always-on
    #: instances, brokers) — the serverful/serverless "tax"
    cpu_reserved: float = 0.0
    aggregators_created: int = 0
    aggregators_reused: int = 0
    nodes_used: int = 0
    instances: list[InstanceStats] = field(default_factory=list)
    timeline: EventLog = field(default_factory=EventLog)
    updates_aggregated: int = 0
    cross_node_transfers: int = 0
    #: total FedAvg weight the top aggregator emitted (chaos invariant:
    #: equals the summed weight of the client updates actually aggregated)
    total_weight: float = 0.0
    #: chaos bookkeeping — zero on fault-free rounds
    aggregator_restarts: int = 0
    clients_dropped: int = 0
    #: True when the round lost its quorum (multi-tenant runs return the
    #: aborted tenant's partial result instead of raising, so one tenant's
    #: abort cannot destroy its neighbours' completed rounds)
    aborted: bool = False

    @property
    def cpu_work(self) -> float:
        return sum(self.cpu_by_component.values())

    @property
    def cpu_total(self) -> float:
        """The paper's "cumulative CPU time" for the round: real work plus
        reserved allocation."""
        return self.cpu_work + self.cpu_reserved

    def active_instance_count(self) -> int:
        return len(self.instances)


@dataclass
class RoundSample:
    """One round's row in the Fig. 9/10 time series."""

    round_index: int
    start_time: float
    duration: float
    act: float
    cpu_total: float
    accuracy: float
    arrivals_per_minute: float
    active_aggregators: int


@dataclass
class WorkloadResult:
    """A full FL run: the Fig. 9 curves and Fig. 10 series."""

    system: str
    model: str
    samples: list[RoundSample] = field(default_factory=list)

    @property
    def rounds(self) -> int:
        return len(self.samples)

    def wall_clock_hours(self) -> float:
        if not self.samples:
            return 0.0
        last = self.samples[-1]
        return (last.start_time + last.duration) / 3600.0

    def cpu_hours(self) -> float:
        return sum(s.cpu_total for s in self.samples) / 3600.0

    def time_to_accuracy(self, target: float) -> float | None:
        """Wall-clock seconds until test accuracy first reaches ``target``."""
        for s in self.samples:
            if s.accuracy >= target:
                return s.start_time + s.duration
        return None

    def cost_to_accuracy(self, target: float) -> float | None:
        """Cumulative CPU-seconds until accuracy first reaches ``target``."""
        total = 0.0
        for s in self.samples:
            total += s.cpu_total
            if s.accuracy >= target:
                return total
        return None

    def accuracy_series(self) -> list[tuple[float, float]]:
        """(wall-clock seconds, accuracy) pairs — Fig. 9(a)/(c)."""
        return [(s.start_time + s.duration, s.accuracy) for s in self.samples]

    def cpu_series(self) -> list[tuple[float, float]]:
        """(cumulative CPU-seconds, accuracy) pairs — Fig. 9(b)/(d)."""
        out = []
        total = 0.0
        for s in self.samples:
            total += s.cpu_total
            out.append((total, s.accuracy))
        return out
