"""The round engine: one aggregation round under any platform configuration.

Given (a) a batch of model updates with arrival times and node assignments,
(b) a hierarchy plan, and (c) a :class:`~repro.core.platform.PlatformConfig`
describing the system's data plane and orchestration behaviour, the engine
simulates the round on the discrete-event kernel and returns a
:class:`~repro.core.results.RoundResult`.

What is simulated (vs computed):

* ingress serialization (per-node gateway with vertical scaling, or the
  shared broker of SF/SL) — queueing emerges from resource contention;
* aggregator step pipelines (Recv/Agg/Send) with eager or lazy timing;
* intermediate-update transfers: intra-node via the configured pipeline's
  latency; inter-node additionally through the fabric's processor-sharing
  NIC links and the destination node's ingress resource;
* cold starts, reactive-scaling ramp delays, warm reuse (role conversion);
* CPU: every stage bills the hosting node's ledger; reserved-but-idle
  allocations (always-on instances, sidecars, brokers, the gateway's
  stateful tax) are added per the config's reservation rates.

The engine itself is platform-agnostic: ingress serialization/admission,
aggregator-to-aggregator transfer costs, and instance-lifecycle policy are
stage objects resolved through the registries in :mod:`repro.core.stages`
(select variants via ``PlatformConfig.ingress_stage`` /
``transfer_stage`` / ``lifecycle_stage``).

Two extension points sit on top of the stages:

* **Fault injection** — ``run_round(..., injector=...)`` hands the fully
  installed round (a :class:`TenantRound`) to a
  :class:`repro.chaos.FaultInjector` before the clock starts; the injector
  attaches its fault and recovery processes to the same environment.  With
  no injector the round is byte-identical to the pre-chaos engine.
* **Multi-tenancy** — :meth:`RoundEngine.run_multi_tenant` installs several
  rounds on ONE environment and ONE fabric, so concurrent tenants contend
  for the same NIC links while keeping their own instances, ingress
  resources, and CPU ledgers.
* **Arrival-driven admission** — :meth:`RoundEngine.install_round` /
  :meth:`RoundEngine.finish_round` are the same install/settle halves as
  public API: a serving loop (see :mod:`repro.traces.replay`) can admit a
  round *mid-simulation* (update arrival times are relative to the install
  instant), let it overlap earlier rounds on the shared fabric, and settle
  it when its top aggregator fires — warm pools turn over round by round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.cluster.network import Fabric
from repro.cluster.node import NodeSpec, WorkerNode
from repro.common.errors import ConfigError, SimulationError
from repro.common.eventlog import EventLog
from repro.controlplane.hierarchy import AggregatorSpec, HierarchyPlan, Role
from repro.core.aggregator import AggregatorCosts, AggregatorInstance
from repro.core.platform import PlatformConfig
from repro.core.results import RoundResult
from repro.core.stages import (
    WarmState,
    resolve_ingress,
    resolve_lifecycle,
    resolve_transfer,
)
from repro.core.updates import MailboxItem, SimUpdate
from repro.dataplane.calibration import DEFAULT_CALIBRATION, DataplaneCalibration
from repro.sim.engine import Environment, Process
from repro.sim.resources import Resource

__all__ = ["RoundEngine", "TenantRound", "WarmState", "required_leaf_capacity"]


@dataclass
class TenantRound:
    """One installed-but-not-yet-run round on a shared environment.

    ``run_round`` installs exactly one; ``run_multi_tenant`` installs one
    per tenant on a shared fabric.  The chaos subsystem receives these as
    its handles: everything a :class:`~repro.chaos.FaultInjector` kills,
    restarts, or re-goals hangs off this record.
    """

    label: str
    updates: list[SimUpdate]
    plan: HierarchyPlan
    nbytes: float
    nodes: dict[str, WorkerNode]
    instances: dict[str, "object"]  # agg_id -> AggregatorInstance
    ingress_procs: dict[int, Process]
    leaf_assignment: dict[int, str]
    top_done: "object"  # Event
    result: RoundResult
    record: Optional[Callable[[str, str, float, float], None]]
    #: force-create an instance through the lifecycle stage (used by the
    #: recovery controller when a reactive leaf lost all its clients and
    #: must still emit its empty intermediate)
    create: Callable[[object], None]
    chaos_active: bool = False
    #: chaos hook: called with the SimUpdate after each successful delivery
    on_delivery: Optional[Callable[[SimUpdate], None]] = None
    clients_dropped: int = 0
    dropped_uids: set[int] = field(default_factory=set)


@dataclass
class _CostTable:
    """Latency/CPU constants materialized for one update size."""

    ingress_latency: float
    ingress_cpu: float
    recv_client_latency: float
    recv_client_cpu: float
    agg_latency: float
    agg_cpu: float
    intra_latency: float
    intra_cpu: float
    inter_tx_latency: float
    inter_tx_cpu: float
    inter_rx_latency: float
    inter_rx_cpu: float


class RoundEngine:
    """Simulates aggregation rounds for one platform configuration."""

    def __init__(
        self,
        config: PlatformConfig,
        node_names: list[str],
        cal: DataplaneCalibration = DEFAULT_CALIBRATION,
        node_spec: NodeSpec | None = None,
        nic_bps_by_node: Mapping[str, float] | None = None,
    ) -> None:
        if not node_names:
            raise ConfigError("round engine needs at least one node")
        self.config = config
        self.cal = cal
        self.node_names = list(node_names)
        self.node_spec = node_spec or NodeSpec(name="template")
        #: heterogeneous fleets: per-node NIC capacity overrides (bytes/s);
        #: nodes absent from the map use ``node_spec.nic_bps``
        self.nic_bps_by_node = dict(nic_bps_by_node) if nic_bps_by_node else None
        if self.nic_bps_by_node:
            unknown = set(self.nic_bps_by_node) - set(self.node_names)
            if unknown:
                raise ConfigError(f"NIC overrides for unknown nodes: {sorted(unknown)}")
        self.ingress = resolve_ingress(config)
        self.transfer = resolve_transfer(config)
        self.lifecycle = resolve_lifecycle(config)
        #: back-compat alias: the warm pool now lives on the lifecycle stage
        self.warm = self.lifecycle.warm

    # ------------------------------------------------------------------ costs
    def _costs_for(self, nbytes: float) -> _CostTable:
        cal = self.cal
        cfg = self.config
        ing = self.ingress.costs(cfg, cal, nbytes)
        xfer = self.transfer.costs(cfg, cal, nbytes)
        return _CostTable(
            ingress_latency=ing.ingress_latency,
            ingress_cpu=ing.ingress_cpu,
            recv_client_latency=ing.recv_latency,
            recv_client_cpu=ing.recv_cpu,
            agg_latency=cal.agg_compute_lat_per_byte * nbytes,
            agg_cpu=cal.agg_compute_cpu_per_byte * nbytes,
            intra_latency=xfer.intra_latency,
            intra_cpu=xfer.intra_cpu,
            inter_tx_latency=xfer.inter_tx_latency,
            inter_tx_cpu=xfer.inter_tx_cpu,
            inter_rx_latency=xfer.inter_rx_latency,
            inter_rx_cpu=xfer.inter_rx_cpu,
        )

    # ------------------------------------------------------------------- round
    def run_round(
        self,
        updates: list[SimUpdate],
        plan: HierarchyPlan,
        include_eval: bool = True,
        record_timeline: bool = True,
        injector: "object | None" = None,
    ) -> RoundResult:
        """Simulate one round; updates must already carry node assignments
        consistent with ``plan`` (the platform does placement first).

        ``record_timeline=False`` swaps the timeline sink for a no-op —
        stress-scale rounds that never render a Gantt chart skip the
        per-event :class:`TimelineEvent` cost (the result's ``timeline``
        stays empty).

        ``injector`` (a :class:`repro.chaos.FaultInjector`, duck-typed)
        attaches fault/recovery processes to the installed round before the
        clock starts; it may raise
        :class:`~repro.common.errors.RoundAbort` out of this call when the
        round loses its quorum.  ``None`` leaves the round untouched.
        """
        env = Environment()
        fabric = self.build_fabric(env)
        tenant = self._install(env, fabric, updates, plan, record_timeline)
        try:
            if injector is not None:
                injector.install(env=env, fabric=fabric, engine=self, tenants=[tenant])
            env.run(until=tenant.top_done)
        except Exception:
            # The platform reclaims a failed round's pods like any other
            # round's — skipping end_round on an abort (or on an injector
            # rejecting its plan) would leak the warm slots the round
            # consumed and distort every later round on this engine.  Only
            # instances that actually came up are reclaimable: a reactive
            # round that aborted early must not stock phantom warm pods.
            self.lifecycle.end_round(self.config, _created_per_node(tenant.instances))
            raise
        return self.finish_round(tenant, include_eval)

    def run_multi_tenant(
        self,
        tenants: Sequence[tuple[list[SimUpdate], HierarchyPlan]],
        include_eval: bool = False,
        record_timeline: bool = False,
        injector: "object | None" = None,
    ) -> list[RoundResult]:
        """Run several tenants' rounds *concurrently* on one shared fabric.

        Each tenant keeps its own aggregator instances, ingress resources,
        and per-node CPU ledgers (namespaced deployments), but every
        inter-node byte of every tenant crosses the same processor-sharing
        NIC links — the contention multi-tenant scenarios measure.  Results
        are returned in tenant order, each with its own ACT.

        Tenants are failure-isolated: a tenant whose chaos round loses its
        quorum gets ``result.aborted = True`` (partial bookkeeping, ACT 0)
        instead of raising, so one tenant's abort cannot destroy its
        neighbours' completed rounds.
        """
        if not tenants:
            raise ConfigError("multi-tenant round needs at least one tenant")
        env = Environment()
        fabric = self.build_fabric(env)
        installed = [
            self._install(env, fabric, updates, plan, record_timeline, label=f"t{i}")
            for i, (updates, plan) in enumerate(tenants)
        ]

        def _settled(tenant: TenantRound):
            # Fires when the tenant's round either completes or aborts; an
            # abort is defused here so it cannot crash the shared run loop.
            done = env.event()

            def on_top(ev) -> None:
                if not ev._ok:
                    ev.defuse()
                done.succeed()

            tenant.top_done.callbacks.append(on_top)
            return done

        try:
            if injector is not None:
                injector.install(env=env, fabric=fabric, engine=self, tenants=installed)
            env.run(until=env.all_of([_settled(t) for t in installed]))
        except Exception:
            # Same warm-pool reclamation as run_round: a rejected plan (or
            # an engine error) must not leak the tenants' warm slots, and
            # never-created instances must not become phantom warm pods.
            for tenant in installed:
                self.lifecycle.end_round(self.config, _created_per_node(tenant.instances))
            raise
        return [self.finish_round(tenant, include_eval) for tenant in installed]

    # ------------------------------------------------------------ installation
    def build_fabric(self, env: Environment) -> Fabric:
        """The shared NIC fabric every round installed on ``env`` contends
        on; arrival-driven serving loops build one per replay."""
        fabric = Fabric(env, self.node_spec.nic_bps)
        overrides = self.nic_bps_by_node
        for name in self.node_names:
            fabric.register_node(name, overrides.get(name) if overrides else None)
        return fabric

    def install_round(
        self,
        env: Environment,
        fabric: Fabric,
        updates: list[SimUpdate],
        plan: HierarchyPlan,
        record_timeline: bool = False,
        label: str = "",
    ) -> TenantRound:
        """Install one round on a running (or not-yet-started) environment.

        Update ``arrival_time``\\ s are *relative to the install instant*
        (``env.now``), so an arrival-driven serving loop can admit rounds as
        trace events fire and overlap them on the shared ``fabric``.  The
        caller waits on the returned round's ``top_done`` event and then
        settles it with :meth:`finish_round`.
        """
        return self._install(env, fabric, updates, plan, record_timeline, label=label)

    def finish_round(
        self,
        tenant: TenantRound,
        include_eval: bool = False,
        start_time: float = 0.0,
    ) -> RoundResult:
        """Settle one installed round after its ``top_done`` event fired.

        ``start_time`` is the environment time the round was installed at —
        the result's ACT is reported relative to it, so a round admitted
        mid-replay measures its own duration, not the replay clock.  An
        aborted round (failed ``top_done``) gets ``aborted=True``, ACT 0,
        and only its actually-created instances restocked into the warm
        pool, exactly as in :meth:`run_multi_tenant`.
        """
        if start_time:
            # Instance stats were stamped in absolute environment time;
            # shift them onto the round's own clock so the reserved-CPU
            # accounting (active = finished - created) and timeline stamps
            # in _finalize share the install-relative base of ``act``.
            for inst in tenant.instances.values():
                stats = inst.stats
                if stats.created_at > 0.0:
                    stats.created_at = max(0.0, stats.created_at - start_time)
                if stats.ready_at > 0.0:
                    stats.ready_at = max(0.0, stats.ready_at - start_time)
                if stats.finished_at > 0.0:
                    stats.finished_at = max(0.0, stats.finished_at - start_time)
        if tenant.top_done.ok:
            tenant.result.act = float(tenant.top_done.value) - start_time
            self._finalize(tenant, include_eval)
            self.lifecycle.end_round(self.config, _instances_per_node(tenant.plan))
        else:
            tenant.result.aborted = True
            tenant.result.act = 0.0
            self._finalize(tenant, include_eval=False)
            self.lifecycle.end_round(self.config, _created_per_node(tenant.instances))
        return tenant.result

    def _install(
        self,
        env: Environment,
        fabric: Fabric,
        updates: list[SimUpdate],
        plan: HierarchyPlan,
        record_timeline: bool = True,
        label: str = "",
        local_nodes: "frozenset[str] | set[str] | None" = None,
        boundary_emit: "Callable[[str, str, float, float], None] | None" = None,
        remote_inputs: "Sequence[tuple[str, str, float, float]] | None" = None,
        arrival_span: float | None = None,
    ) -> TenantRound:
        """Build one round's processes and resources on ``env``/``fabric``
        without running it; returns the :class:`TenantRound` handle.

        The last four parameters are the partitioned-cohort hooks (see
        :mod:`repro.core.partition`); all default to the classic
        whole-round install:

        * ``local_nodes`` — instantiate only the plan's aggregators on
          these nodes.  ``updates`` must already be filtered to them.
        * ``boundary_emit(agg_id, node, weight, emit_at)`` — called when a
          local aggregator's parent lives off-partition; the round's
          ``top_done`` fires once every local boundary child has emitted.
        * ``remote_inputs`` — ``(agg_id, src_node, weight, emit_at)``
          intermediates recorded by other partitions, replayed here as
          inter-node transfers into the (local) top aggregator with the
          exact dataplane path a same-environment transfer takes.
        * ``arrival_span`` — the full round's arrival window, forwarded to
          the ingress stage so per-cohort gateway scaling sees the global
          load, not the cohort's slice.
        """
        if not updates:
            raise ConfigError("round needs at least one update")
        if not plan.aggregators:
            raise ConfigError("round needs a non-empty hierarchy plan")
        sizes = {u.nbytes for u in updates}
        if len(sizes) != 1:
            raise ConfigError("all updates in a round must share one model size")
        nbytes = sizes.pop()
        costs = self._costs_for(nbytes)
        cfg = self.config
        if local_nodes is not None:
            stray = {u.node for u in updates} - set(local_nodes)
            if stray:
                raise ConfigError(
                    f"partitioned install got updates for foreign nodes {sorted(stray)}"
                )

        timeline = EventLog()
        nodes = {name: WorkerNode(env, NodeSpec(
            name=name,
            cores=self.node_spec.cores,
            memory_bytes=self.node_spec.memory_bytes,
            nic_bps=self.node_spec.nic_bps,
            max_service_capacity=self.node_spec.max_service_capacity,
        )) for name in self.node_names}

        # -- ingress resources ---------------------------------------------
        ingress_res: dict[str, Resource] = self.ingress.build_resources(
            env, cfg, self.cal, self.node_names, updates, nbytes,
            arrival_span=arrival_span,
        )

        # -- instances --------------------------------------------------------
        result = RoundResult(act=0.0, completion_time=0.0, timeline=timeline)
        top_done = env.event()
        instances: dict[str, AggregatorInstance] = {}
        finished_on_node: dict[str, int] = {}
        # Partitioned install: how many local instances emit to an
        # off-partition parent; their last emission is this phase's "done".
        boundary = {"expected": 0, "seen": 0}

        record = timeline.record if record_timeline else None

        def on_output(inst: AggregatorInstance, weight: float, now: float) -> None:
            finished_on_node[inst.node] = finished_on_node.get(inst.node, 0) + 1
            spec = plan.aggregators[inst.agg_id]
            if spec.role is Role.TOP:
                result.total_weight = weight
                if not top_done.triggered:  # an aborting round may already
                    top_done.succeed(now)   # have failed the event
                return
            parent_spec = plan.aggregators[spec.parent]
            if local_nodes is not None and parent_spec.node not in local_nodes:
                # The parent runs in another partition: hand the
                # intermediate to the cohort protocol instead of a
                # same-environment transfer.
                boundary_emit(inst.agg_id, inst.node, weight, now)
                boundary["seen"] += 1
                if boundary["seen"] >= boundary["expected"] and not top_done.triggered:
                    top_done.succeed(now)
                return
            if inst.node == parent_spec.node:
                # Intra-node hand-off is a single fixed-latency hop — a
                # flat callback on one timer instead of a full process
                # (half the events of the generator path).
                _intra_transfer(inst, parent_spec, weight)
            else:
                Process(env, _transfer(inst, parent_spec, weight), f"xfer:{inst.agg_id}")

        def _intra_transfer(child: AggregatorInstance, parent_spec: AggregatorSpec, weight: float) -> None:
            parent = instances[parent_spec.agg_id]
            src = child.node
            t0 = env._now

            def done(_event) -> None:
                nodes[src].cpu.charge("dataplane", costs.intra_cpu)
                if record is not None:
                    record(child.agg_id, "network", t0, env._now)
                _deliver(parent, MailboxItem(weight, child.agg_id, True, env._now))

            env.timeout(costs.intra_latency).callbacks.append(done)

        def _transfer(child: AggregatorInstance, parent_spec: AggregatorSpec, weight: float):
            parent = instances[parent_spec.agg_id]
            src, dst = child.node, parent_spec.node
            timeout = env.timeout
            t0 = env._now
            result.cross_node_transfers += 1
            yield timeout(costs.inter_tx_latency)
            nodes[src].cpu.charge("dataplane", costs.inter_tx_cpu)
            yield fabric.transfer(src, dst, nbytes, label=child.agg_id)
            req = ingress_res[dst].request()
            yield req
            yield timeout(costs.inter_rx_latency)
            ingress_res[dst].release(req)
            nodes[dst].cpu.charge("dataplane", costs.inter_rx_cpu)
            if record is not None:
                record(child.agg_id, "network", t0, env._now)
            _deliver(parent, MailboxItem(weight, child.agg_id, True, env._now))

        def _deliver(inst: AggregatorInstance, item: MailboxItem) -> None:
            if not cfg.prewarm:
                _create(inst)
            inst.deliver(item)

        admission = self.lifecycle.begin_round(env.now)

        def _create(inst: AggregatorInstance) -> None:
            self.lifecycle.ensure_created(inst, env, cfg, finished_on_node, admission)

        for agg_id, spec in plan.aggregators.items():
            if local_nodes is not None and spec.node not in local_nodes:
                continue
            parent = spec.parent
            if (
                local_nodes is not None
                and parent
                and plan.aggregators[parent].node not in local_nodes
            ):
                if boundary_emit is None:
                    raise ConfigError(
                        "partitioned install crosses the partition but no "
                        "boundary_emit was given"
                    )
                boundary["expected"] += 1
            inst = AggregatorInstance(
                env=env,
                agg_id=agg_id,
                node=spec.node,
                role=spec.role.value,
                fan_in=spec.fan_in,
                costs=AggregatorCosts(
                    recv_client_latency=costs.recv_client_latency,
                    recv_client_cpu=costs.recv_client_cpu,
                    agg_latency=costs.agg_latency,
                    agg_cpu=costs.agg_cpu,
                    startup_latency=cfg.cold_start_latency,
                    startup_cpu=cfg.cold_start_cpu,
                ),
                eager=cfg.eager,
                charge_cpu=nodes[spec.node].cpu.charge,
                on_output=on_output,
                record=record,
            )
            instances[agg_id] = inst

        top_is_local = local_nodes is None or plan.top.node in local_nodes
        if not top_is_local and boundary["expected"] == 0:
            raise ConfigError(
                "partitioned install has no boundary children — the phase "
                "could never settle"
            )

        if cfg.prewarm:
            for inst in instances.values():
                _create(inst)

        # -- remote intermediates (partitioned root phase) -----------------
        if remote_inputs:
            if not top_is_local:
                raise ConfigError("remote_inputs require the top aggregator locally")
            top_spec = plan.top

            def _remote_xfer(agg_id: str, src: str, weight: float):
                # The exact inter-node path of ``_transfer``, replayed from
                # another partition's recorded emission: tx serialization,
                # the shared fabric, the top node's ingress admission, rx.
                timeout = env.timeout
                t0 = env._now
                result.cross_node_transfers += 1
                yield timeout(costs.inter_tx_latency)
                nodes[src].cpu.charge("dataplane", costs.inter_tx_cpu)
                yield fabric.transfer(src, top_spec.node, nbytes, label=agg_id)
                req = ingress_res[top_spec.node].request()
                yield req
                yield timeout(costs.inter_rx_latency)
                ingress_res[top_spec.node].release(req)
                nodes[top_spec.node].cpu.charge("dataplane", costs.inter_rx_cpu)
                if record is not None:
                    record(agg_id, "network", t0, env._now)
                _deliver(
                    instances[top_spec.agg_id],
                    MailboxItem(weight, agg_id, True, env._now),
                )

            for agg_id, src_node, weight, emit_at in remote_inputs:
                Process(
                    env, _remote_xfer(agg_id, src_node, weight),
                    f"xfer:{agg_id}", emit_at,
                )

        # -- update ingress processes -------------------------------------------
        leaf_assignment = _assign_updates_to_leaves(
            updates, plan, locality_aware=cfg.locality_aware
        )

        timeout = env.timeout
        ingress_latency = costs.ingress_latency
        ingress_cpu = costs.ingress_cpu

        def _ingress(update: SimUpdate, leaf_id: str):
            # started with delay=arrival_time — no leading arrival timeout.
            # ``held`` tracks the admission slot currently claimed so a
            # chaos interrupt (client dropout mid-ingress) releases it in
            # the ``finally`` instead of leaking the slot forever.
            node = update.node
            res = ingress_res[node]
            held = res.request()
            try:
                yield held
                t0 = env._now
                yield timeout(ingress_latency)
                res.release(held)
                held = None
                nodes[node].cpu.charge("ingress", ingress_cpu)
                if record is not None:
                    record(f"{node}/gw", "network", t0, env._now)
                leaf = instances[leaf_id]
                if leaf.node != node:
                    # Locality-agnostic placement (§2.3): the update was
                    # queued on one node but its aggregator pod lives on
                    # another — one full inter-node hop before the leaf can
                    # consume it.
                    result.cross_node_transfers += 1
                    yield timeout(costs.inter_tx_latency)
                    nodes[node].cpu.charge("dataplane", costs.inter_tx_cpu)
                    yield fabric.transfer(node, leaf.node, nbytes, label=f"u{update.uid}")
                    held = ingress_res[leaf.node].request()
                    yield held
                    yield timeout(costs.inter_rx_latency)
                    ingress_res[leaf.node].release(held)
                    held = None
                    nodes[leaf.node].cpu.charge("dataplane", costs.inter_rx_cpu)
                    if record is not None:
                        record(f"u{update.uid}", "network", t0, env._now)
                _deliver(leaf, MailboxItem(update.weight, update.client_id, False, env._now))
                cb = tenant.on_delivery
                if cb is not None:
                    cb(update)
            finally:
                if held is not None:
                    held.resource.release(held)

        def _spawn_ingress(update: SimUpdate, delay: float) -> Process:
            return Process(
                env,
                _ingress(update, leaf_assignment[update.uid]),
                f"in:{update.uid}",
                delay,
            )

        # The ingress stage decides arrival scheduling: one heap entry per
        # update (default), or a coalescing walker that wakes batches
        # (``gateway-coalesced``).  A coalescing stage fills this dict as
        # arrivals fire, so chaos hooks see only already-arrived updates.
        ingress_procs: dict[int, Process] = self.ingress.install_arrivals(
            env, updates, _spawn_ingress
        )

        tenant = TenantRound(
            label=label,
            updates=updates,
            plan=plan,
            nbytes=nbytes,
            nodes=nodes,
            instances=instances,
            ingress_procs=ingress_procs,
            leaf_assignment=leaf_assignment,
            top_done=top_done,
            result=result,
            record=record,
            create=_create,
        )
        return tenant

    # ------------------------------------------------------------- bookkeeping
    def _finalize(self, tenant: TenantRound, include_eval: bool) -> None:
        """Post-run accounting for one installed round (eval task, chain
        overhead, instance stats, CPU ledgers)."""
        cfg = self.config
        result = tenant.result
        plan = tenant.plan
        nodes = tenant.nodes
        updates = tenant.updates
        instances = tenant.instances
        record = tenant.record
        if include_eval:
            top_node = plan.top.node
            nodes[top_node].charge_cpu(self.cal.eval_task_cpu, "eval")
            if record is not None:
                record(plan.top.agg_id, "eval", result.act, result.act + self.cal.eval_task_latency)
            result.completion_time = result.act + self.cal.eval_task_latency
        else:
            result.completion_time = result.act
        chain = len(updates) * (
            cfg.chain_overhead_fixed_per_update + cfg.chain_overhead_per_byte * tenant.nbytes
        )
        if chain > 0:
            # Serialized distribution/scale-up overhead (see PlatformConfig).
            if record is not None:
                record("control", "network", result.completion_time, result.completion_time + chain)
            nodes[plan.top.node].charge_cpu(chain * cfg.chain_overhead_cores, "chain")
            result.completion_time += chain

        # -- bookkeeping ---------------------------------------------------------------
        result.updates_aggregated = len(updates)
        result.nodes_used = len({u.node for u in updates})
        for inst in instances.values():
            if inst.stats.finished_at == 0.0:
                inst.stats.finished_at = result.act
            result.instances.append(inst.stats)
        result.aggregators_created = sum(1 for i in result.instances if i.cold_start)
        result.aggregators_reused = sum(1 for i in result.instances if i.reused)
        for node in nodes.values():
            for comp, secs in node.cpu.buckets.items():
                result.cpu_by_component[comp] = result.cpu_by_component.get(comp, 0.0) + secs
        result.cpu_reserved = self._reserved_cpu(result)
        if tenant.chaos_active:
            # Under fault injection the static ``len(updates)`` overstates
            # what survived; report what the tree actually folded in.
            result.updates_aggregated = sum(
                i.stats.client_updates for i in instances.values()
            )
            result.aggregator_restarts = sum(
                i.stats.restarts for i in instances.values()
            )
            result.clients_dropped = tenant.clients_dropped

    def _reserved_cpu(self, result: RoundResult) -> float:
        cfg = self.config
        duration = result.completion_time
        reserved = 0.0
        if cfg.fixed_instances > 0:
            # SF: always-on allocation for the full round, idle or not.
            reserved += cfg.fixed_instances * cfg.instance_reserved_cores * duration
        else:
            for inst in result.instances:
                active = max(0.0, inst.finished_at - inst.created_at)
                # Containers stay allocated until the autoscaler's stable
                # window expires (Knative scale-down), not just while busy.
                held = max(active, cfg.sidecar_linger)
                reserved += cfg.instance_reserved_cores * held
                reserved += cfg.sidecar_reserved_cores * held
                if cfg.reuse and cfg.warm_idle_reserved_cores > 0:
                    # Warm pooled pods keep their (small) allocation after
                    # finishing, waiting for the next round's reuse (§5.3).
                    reserved += cfg.warm_idle_reserved_cores * max(
                        0.0, duration - inst.finished_at
                    )
        # Broker reservation is a config-level knob (zero on gateway
        # presets); the stage adds its own stateful components' tax.
        reserved += cfg.broker_reserved_cores * duration
        reserved += self.ingress.reserved_cpu(cfg, duration, result.nodes_used)
        return reserved


def _assign_updates_to_leaves(
    updates: list[SimUpdate], plan: HierarchyPlan, locality_aware: bool = True
) -> dict[int, str]:
    """Map update uid → leaf aggregator.

    Locality-aware platforms fill the leaves co-located with each update's
    node, in arrival order so early leaves fill (and finish) first (§5.2).
    Locality-agnostic ones fill leaves globally, ignoring where the update
    was queued — the ingress path pays the resulting cross-node hops.
    """
    # Client updates flow into the tree's frontier: aggregators that are no
    # one's parent.  In planned hierarchies that is exactly the leaf level;
    # in a no-hierarchy (NH) plan it is the single top aggregator.
    parents = {s.parent for s in plan.aggregators.values() if s.parent}
    leaves = sorted(
        (s for s in plan.aggregators.values() if s.agg_id not in parents),
        key=lambda s: s.agg_id,
    )
    assignment: dict[int, str] = {}
    ordered = sorted(updates, key=lambda u: (u.arrival_time, u.uid))
    if not locality_aware:
        cursor = _FillCursor(leaves)
        for update in ordered:
            agg_id = cursor.take()
            if agg_id is None:
                raise SimulationError("more updates than total leaf capacity in plan")
            assignment[update.uid] = agg_id
        return assignment
    by_node: dict[str, list] = {}
    for spec in leaves:
        by_node.setdefault(spec.node, []).append(spec)
    cursors = {node: _FillCursor(specs) for node, specs in by_node.items()}
    for update in ordered:
        cursor = cursors.get(update.node)
        if cursor is None:
            raise SimulationError(
                f"update {update.uid} assigned to node {update.node!r} with no leaves"
            )
        agg_id = cursor.take()
        if agg_id is None:
            raise SimulationError(
                f"node {update.node!r}: more updates than leaf capacity in plan"
            )
        assignment[update.uid] = agg_id
    return assignment


class _FillCursor:
    """Consume leaf capacity in declaration order without rescanning
    exhausted leaves (O(U + L) instead of O(U·L))."""

    __slots__ = ("specs", "idx", "left")

    def __init__(self, specs: list) -> None:
        self.specs = specs
        self.idx = 0
        self.left = specs[0].fan_in if specs else 0

    def take(self) -> str | None:
        while self.idx < len(self.specs):
            if self.left > 0:
                self.left -= 1
                return self.specs[self.idx].agg_id
            self.idx += 1
            if self.idx < len(self.specs):
                self.left = self.specs[self.idx].fan_in
        return None


def _instances_per_node(plan: HierarchyPlan) -> dict[str, int]:
    out: dict[str, int] = {}
    for spec in plan.aggregators.values():
        out[spec.node] = out.get(spec.node, 0) + 1
    return out


def _created_per_node(instances: dict) -> dict[str, int]:
    """Warm-reclaimable instances of a *failed* round: only those that
    actually came up (reactive rounds may abort with most of the plan
    never created)."""
    out: dict[str, int] = {}
    for inst in instances.values():
        if inst._created:  # noqa: SLF001 - engine owns its instances
            out[inst.node] = out.get(inst.node, 0) + 1
    return out


def required_leaf_capacity(plan: HierarchyPlan) -> dict[str, int]:
    """Total client-update capacity of each node's leaves (plan checking)."""
    out: dict[str, int] = {}
    for spec in plan.aggregators.values():
        if spec.role is Role.LEAF:
            out[spec.node] = out.get(spec.node, 0) + spec.fan_in
    return out
