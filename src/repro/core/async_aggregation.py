"""Asynchronous FL aggregation (Fig. 11; the paper's stated future work).

In asynchronous FL (PAPAYA-style, Fig. 11) there is no synchronous round
barrier: up to ``concurrency`` clients train at once, each against whatever
global version was current when it started, and the server publishes a new
version every ``aggregation_goal`` accepted updates.  Stale updates —
trained on an older version than the current one — are admitted but
down-weighted.

Both aggregation timings are supported, mirroring Fig. 11:

* **eager** — every arriving update is folded into the running accumulator
  immediately;
* **lazy** — updates queue and the whole batch is folded when the goal is
  reached.

For a fixed arrival order the two produce identical model versions (the
same cumulative-averaging property as the synchronous case); eager differs
only in *when* compute happens, which is what the LIFL platform exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ConfigError
from repro.fl.fedavg import FedAvgAccumulator, ModelUpdate
from repro.fl.model import Model


def polynomial_staleness_weight(staleness: int, exponent: float = 0.5) -> float:
    """FedBuff/PAPAYA-style polynomial staleness discount:
    ``w = (1 + s)^(-exponent)``."""
    if staleness < 0:
        raise ConfigError(f"staleness must be non-negative, got {staleness}")
    return float((1.0 + staleness) ** (-exponent))


@dataclass
class AsyncConfig:
    """Asynchronous-aggregation policy knobs (Fig. 11's caption values:
    concurrency 4, aggregation goal 2)."""

    aggregation_goal: int
    concurrency: int
    eager: bool = True
    staleness_exponent: float = 0.5
    #: updates staler than this are dropped outright
    max_staleness: int = 10

    def __post_init__(self) -> None:
        if self.aggregation_goal < 1:
            raise ConfigError("aggregation_goal must be >= 1")
        if self.concurrency < self.aggregation_goal:
            raise ConfigError("concurrency must be >= aggregation_goal")
        if self.max_staleness < 0:
            raise ConfigError("max_staleness must be >= 0")


@dataclass
class AsyncVersionRecord:
    """One published global version."""

    version: int
    model: Model
    updates_used: int
    mean_staleness: float


class AsyncAggregator:
    """Version-publishing asynchronous aggregator."""

    def __init__(
        self,
        initial_model: Model,
        config: AsyncConfig,
        staleness_weight: Callable[[int], float] | None = None,
    ) -> None:
        self.config = config
        self.current_version = 0
        self.global_model = initial_model.copy()
        self._weight_fn = staleness_weight or (
            lambda s: polynomial_staleness_weight(s, config.staleness_exponent)
        )
        self._acc = FedAvgAccumulator()
        self._pending: list[tuple[ModelUpdate, int]] = []
        self._staleness_sum = 0.0
        self._count = 0
        self.history: list[AsyncVersionRecord] = []
        self.dropped_stale = 0

    # -- client side -------------------------------------------------------
    def checkout(self) -> tuple[int, Model]:
        """A client starting to train gets (version, model snapshot)."""
        return self.current_version, self.global_model.copy()

    # -- server side ----------------------------------------------------------
    def submit(self, update: ModelUpdate, trained_on_version: int) -> AsyncVersionRecord | None:
        """Accept one client update; returns the new version record when
        this submission completes an aggregation goal, else None."""
        staleness = self.current_version - trained_on_version
        if staleness < 0:
            raise ConfigError(
                f"update trained on future version {trained_on_version} "
                f"(current {self.current_version})"
            )
        if staleness > self.config.max_staleness:
            self.dropped_stale += 1
            return None
        discounted = ModelUpdate(
            model=update.model,
            weight=update.weight * self._weight_fn(staleness),
            producer=update.producer,
            version=trained_on_version,
        )
        if self.config.eager:
            self._fold(discounted, staleness)
        else:
            self._pending.append((discounted, staleness))
            self._count += 1
            self._staleness_sum += staleness
        if self._count >= self.config.aggregation_goal:
            return self._publish()
        return None

    def _fold(self, update: ModelUpdate, staleness: int) -> None:
        self._acc.add(update)
        self._count += 1
        self._staleness_sum += staleness

    def _publish(self) -> AsyncVersionRecord:
        if not self.config.eager:
            # Lazy burst: the whole goal's worth of updates folds at once,
            # so batch it through the vectorized path.
            self._acc.add_batch([update for update, _ in self._pending])
            self._pending.clear()
        aggregate = self._acc.result()
        self.current_version += 1
        self.global_model = aggregate.model.copy()
        record = AsyncVersionRecord(
            version=self.current_version,
            model=self.global_model,
            updates_used=self._count,
            mean_staleness=self._staleness_sum / self._count,
        )
        self.history.append(record)
        self._acc = FedAvgAccumulator()
        self._count = 0
        self._staleness_sum = 0.0
        return record
