"""Failure-rate sweep under fault injection (non-paper scenario).

The paper's §3 resilience claim — keep-alive failure detection plus client
over-provisioning, stateless aggregator restarts — is exercised as a grid:
client dropout waves of increasing severity, with and without concurrent
aggregator crashes, on a LIFL platform running the ``resilient`` lifecycle
stage.  Expected shape: every round at a dropout rate below the
over-provisioning margin (here quorum 60 %) completes, aggregating at
least the quorum; rounds beyond the margin abort with a *typed*
``RoundAbort`` instead of hanging.  Aggregator crashes never change the
outcome — restarted instances re-read their inputs from shared memory and
re-aggregate, so the final weight always equals the updates aggregated.
"""

from __future__ import annotations

import math

from repro.chaos import AggregatorCrash, DropoutWave, FaultInjector, FaultPlan
from repro.common.errors import RoundAbort
from repro.common.rng import make_rng
from repro.common.units import RESNET152_BYTES
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.experiments.common import render_table
from repro.scenarios.registry import ScenarioRun, scenario
from repro.workloads.arrival import concurrent_arrivals

N_NODES = 20
BATCH = 120
DROPOUT_RATES = (0.0, 0.15, 0.3, 0.5)
CRASH_COUNTS = (0, 2)
QUORUM_FRACTION = 0.6
ARRIVAL_JITTER_S = 3.0


def run_cell(dropout_rate: float, crashes: int, seed: int) -> dict:
    """One chaos round: a dropout wave at t=2 s, crashes at t=4 s."""
    cfg = PlatformConfig.lifl(lifecycle_stage="resilient")
    nodes = [f"node{i:02d}" for i in range(N_NODES)]
    platform = AggregationPlatform(cfg, node_names=nodes)
    arrivals = [
        (t, 1.0)
        for t in concurrent_arrivals(
            BATCH, jitter=ARRIVAL_JITTER_S, rng=make_rng(seed, "chaos-arrivals")
        )
    ]
    plan = FaultPlan(
        seed=seed,
        quorum_fraction=QUORUM_FRACTION,
        heartbeat_timeout=3.0,
        sweep_interval=1.0,
        dropouts=(DropoutWave(at=2.0, fraction=dropout_rate),) if dropout_rate else (),
        crashes=(AggregatorCrash(at=4.0, count=crashes),) if crashes else (),
    )
    injector = FaultInjector(plan)
    quorum = math.ceil(QUORUM_FRACTION * BATCH)
    row = {
        "dropout_rate": dropout_rate,
        "crashes": crashes,
        "quorum": quorum,
        "batch": BATCH,
    }
    try:
        result = platform.run_round(
            arrivals,
            RESNET152_BYTES,
            include_eval=False,
            record_timeline=False,
            injector=injector,
        )
    except RoundAbort:
        # ``survivors`` uses one definition on both outcome branches:
        # clients whose updates were not killed (BATCH - dropped).
        row.update(
            completed=False,
            updates_aggregated=0,
            survivors=BATCH - injector.report.clients_dropped,
            act_s=0.0,
            restarts=injector.report.crashes_injected,
            clients_dropped=injector.report.clients_dropped,
        )
        return row
    row.update(
        completed=True,
        updates_aggregated=result.updates_aggregated,
        survivors=BATCH - result.clients_dropped,
        act_s=result.act,
        restarts=result.aggregator_restarts,
        clients_dropped=result.clients_dropped,
    )
    # The §3 invariant the scenario exists to demonstrate: the emitted
    # global-model weight covers exactly the aggregated updates (stateless
    # restarts never double-count), and the quorum was met.
    assert result.total_weight == result.updates_aggregated
    assert result.updates_aggregated >= quorum
    return row


def _render(rows: list[dict]) -> str:
    lines = [
        f"Chaos sweep — {N_NODES} nodes, {BATCH} clients, quorum "
        f"{QUORUM_FRACTION:.0%} (LIFL + resilient lifecycle)"
    ]
    lines.append(
        render_table(
            ["dropout", "crashes", "outcome", "aggregated", "dropped", "restarts", "ACT (s)"],
            [
                (
                    f"{r['dropout_rate']:.0%}",
                    r["crashes"],
                    "completed" if r["completed"] else "ABORTED",
                    f"{r['updates_aggregated']}/{r['batch']}",
                    r["clients_dropped"],
                    r["restarts"],
                    f"{r['act_s']:.1f}" if r["completed"] else "-",
                )
                for r in rows
            ],
        )
    )
    completed = [r for r in rows if r["completed"]]
    aborted = [r for r in rows if not r["completed"]]
    lines.append(
        f"\n{len(completed)} rounds completed at/above quorum "
        f"({min(r['updates_aggregated'] for r in completed)} worst case), "
        f"{len(aborted)} aborted with typed RoundAbort (dropout beyond the "
        f"over-provisioning margin)."
        if completed
        else "\nno round completed"
    )
    return "\n".join(lines)


@scenario(
    name="chaos-sweep",
    title="failure-rate grid under fault injection (non-paper)",
    grid={"dropout_rate": DROPOUT_RATES, "crashes": CRASH_COUNTS},
    render=_render,
    workload=f"{N_NODES} nodes, {BATCH} concurrent ResNet-152 updates, quorum {QUORUM_FRACTION:.0%}",
    metrics=("completed", "updates_aggregated", "act_s", "restarts"),
    paper=False,
    tags=('chaos',),
)
def chaos_sweep_scenario(run_spec: ScenarioRun) -> list[dict]:
    """One (dropout_rate, crashes) cell of the failure grid."""
    return [
        run_cell(
            run_spec.params["dropout_rate"],
            run_spec.params["crashes"],
            seed=run_spec.seed,
        )
    ]


def main() -> None:
    from repro.scenarios.runner import run_scenario

    print(run_scenario("chaos-sweep").text)


if __name__ == "__main__":
    main()
