"""Appendix E — estimating a node's maximum service capacity MC_i.

The procedure: drive one node with increasing arrival rates k_i; watch the
average aggregation execution time E_i; at the rate k'_i where E_i inflects
(the node saturates), estimate ``MC_i = k'_i × E'_i``.

We reproduce it against the simulated node: arrivals are Poisson, each
update costs the calibrated aggregation compute on one of the node's cores,
and saturation appears when offered load approaches core capacity scaled to
the node's configured concurrency limit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import make_rng
from repro.common.units import RESNET152_BYTES
from repro.dataplane.calibration import DEFAULT_CALIBRATION, DataplaneCalibration
from repro.experiments.common import render_table
from repro.scenarios.registry import ScenarioRun, scenario
from repro.sim.engine import Environment
from repro.sim.resources import Resource
from repro.workloads.arrival import poisson_arrivals


@dataclass
class CapacityPoint:
    arrival_rate: float
    mean_exec_time: float


def probe_node(
    concurrency_limit: int = 20,
    nbytes: float = RESNET152_BYTES,
    rates: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 24.0, 32.0, 48.0),
    horizon: float = 60.0,
    cal: DataplaneCalibration = DEFAULT_CALIBRATION,
    seed: int = 0,
) -> list[CapacityPoint]:
    """Sweep arrival rates; report mean sojourn (queue + service) time.

    The node aggregates at most ``concurrency_limit`` updates at once —
    that limit is what MC_i measures.
    """
    service_time = cal.agg_compute_lat_per_byte * nbytes
    points = []
    for rate in rates:
        env = Environment()
        slots = Resource(env, capacity=concurrency_limit)
        sojourns: list[float] = []

        def job(at: float):
            yield env.timeout(at)
            t0 = env.now
            req = slots.request()
            yield req
            yield env.timeout(service_time)
            slots.release(req)
            sojourns.append(env.now - t0)

        for t in poisson_arrivals(rate, horizon, make_rng(seed, f"cap{rate}")):
            env.process(job(t))
        env.run()
        points.append(CapacityPoint(rate, sum(sojourns) / max(1, len(sojourns))))
    return points


def estimate_mc(points: list[CapacityPoint], inflection_factor: float = 1.5) -> float:
    """MC = k' × E' at the saturation onset: k' is the highest arrival rate
    the node still served without significant E inflation, and E' the
    execution time observed there (Appendix E)."""
    base = points[0].mean_exec_time
    prev = points[0]
    for p in points[1:]:
        if p.mean_exec_time > inflection_factor * base:
            return prev.arrival_rate * prev.mean_exec_time
        prev = p
    return prev.arrival_rate * prev.mean_exec_time


def _render(rows: list[dict]) -> str:
    points = [CapacityPoint(r["arrival_rate"], r["mean_exec_time"]) for r in rows]
    lines = ["Appendix E — maximum service capacity probe (ResNet-152)"]
    lines.append(
        render_table(
            ["arrival rate (/s)", "mean E (s)"],
            [(f"{p.arrival_rate:.0f}", f"{p.mean_exec_time:.3f}") for p in points],
        )
    )
    lines.append(f"\nestimated MC = {estimate_mc(points):.1f} (testbed value in the paper: 20)")
    return "\n".join(lines)


@scenario(
    name="capacity",
    title="estimating a node's maximum service capacity MC_i",
    render=_render,
    workload="Poisson arrival sweep on one simulated node",
    metrics=("mean_exec_time",),
    tags=('paper',),
)
def capacity_scenario(run_spec: ScenarioRun) -> list[dict]:
    """Appendix E: one rate sweep per run."""
    return [
        {"arrival_rate": p.arrival_rate, "mean_exec_time": p.mean_exec_time}
        for p in probe_node()
    ]


def main() -> None:
    from repro.scenarios.runner import run_scenario

    print(run_scenario("capacity").text)


if __name__ == "__main__":
    main()
