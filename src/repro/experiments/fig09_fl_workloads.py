"""Fig. 9 — time-to-accuracy and cost-to-accuracy for real FL workloads.

Two §6.2 setups, run end to end on each platform:

* **ResNet-18**: 2,800-client mobile population, 120 simultaneously active,
  hibernation in [0, 60] s, aggregation goal 60 — fluctuating arrivals;
* **ResNet-152**: always-on server clients, 15 active, goal 12 — stable
  arrivals.

Paper headlines: to 70 % accuracy, ResNet-18 — LIFL 0.9 h / SF 1.4 h (1.6×)
/ SL 2.4 h (2.7×) wall clock and 4.5 / 8 (1.8×) / 26 (5×+) CPU-hours;
ResNet-152 — LIFL 1.9 h, 1.68× faster than SL with 4.23× fewer CPU cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import make_rng
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.core.results import WorkloadResult
from repro.core.rounds import FLWorkloadConfig, run_fl_workload
from repro.experiments.common import render_table
from repro.fl.convergence import curve_for
from repro.fl.model import model_spec
from repro.scenarios.registry import ScenarioRun, scenario
from repro.workloads.fedscale import MOBILE_PROFILE, SERVER_PROFILE, make_population


@dataclass(frozen=True)
class WorkloadSetup:
    """One of the two §6.2 configurations."""

    tag: str
    model: str
    mobile: bool
    population: int
    active_clients: int
    aggregation_goal: int
    sf_instances: int
    max_rounds: int = 250


RESNET18_SETUP = WorkloadSetup(
    tag="ResNet-18",
    model="resnet18",
    mobile=True,
    population=2800,
    active_clients=120,
    aggregation_goal=60,
    sf_instances=60,  # Fig. 10(b): SF keeps ~60 aggregators always on
)
RESNET152_SETUP = WorkloadSetup(
    tag="ResNet-152",
    model="resnet152",
    mobile=False,
    population=200,
    active_clients=15,
    aggregation_goal=12,
    sf_instances=9,  # Fig. 10(e): ~9 always-on aggregators
)


def platforms_for(setup: WorkloadSetup) -> list[tuple[str, AggregationPlatform]]:
    return [
        ("LIFL", AggregationPlatform(PlatformConfig.lifl())),
        ("SF", AggregationPlatform(PlatformConfig.serverful(instances=setup.sf_instances))),
        ("SL", AggregationPlatform(PlatformConfig.serverless())),
    ]


SETUPS = {"ResNet-18": RESNET18_SETUP, "ResNet-152": RESNET152_SETUP}
SYSTEMS = ("LIFL", "SF", "SL")


def run_system(
    setup: WorkloadSetup, system: str, seed: int = 5, max_rounds: int | None = None
) -> WorkloadResult:
    """One (setup, system) cell: the full FL workload on one platform."""
    spec = model_spec(setup.model)
    profile = MOBILE_PROFILE if setup.mobile else SERVER_PROFILE
    population = make_population(setup.population, spec, profile, seed=0)
    wl = FLWorkloadConfig(
        spec=spec,
        curve=curve_for(setup.model),
        aggregation_goal=setup.aggregation_goal,
        active_clients=setup.active_clients,
        rounds=max_rounds or setup.max_rounds,
        stop_at_target=True,
    )
    platform = next(p for name, p in platforms_for(setup) if name == system)
    return run_fl_workload(platform, population, wl, make_rng(seed, system))


def run(setup: WorkloadSetup, seed: int = 5, max_rounds: int | None = None) -> dict[str, WorkloadResult]:
    """All three systems through the same workload; returns per-system
    results keyed "LIFL"/"SF"/"SL"."""
    return {
        name: run_system(setup, name, seed=seed, max_rounds=max_rounds)
        for name in SYSTEMS
    }


PAPER = {
    "ResNet-18": {"LIFL": (0.9, 4.5), "SF": (1.4, 8.0), "SL": (2.4, 26.0)},
    "ResNet-152": {"LIFL": (1.9, 4.76), "SF": (2.2, 6.81), "SL": (3.2, 20.4)},
}


def _render(rows: list[dict]) -> str:
    lines = []
    for tag in SETUPS:
        lines.append(f"Fig. 9 — {tag}: time/cost to 70% accuracy")
        table = []
        for r in (r for r in rows if r["setup"] == tag):
            paper_tta, paper_cta = PAPER[tag][r["system"]]
            table.append(
                (
                    r["system"],
                    f"{r['tta_s'] / 3600:.2f}" if r["tta_s"] else "n/a",
                    f"{paper_tta:.2f}",
                    f"{r['cta_s'] / 3600:.2f}" if r["cta_s"] else "n/a",
                    f"{paper_cta:.2f}",
                    r["rounds"],
                )
            )
        lines.append(
            render_table(["system", "tta (h)", "paper", "CPU (h)", "paper", "rounds"], table)
        )
        lines.append("")
    return "\n".join(lines)


@scenario(
    name="fig09",
    title="time-to-accuracy and cost-to-accuracy for real FL workloads",
    grid={"setup": tuple(SETUPS), "system": SYSTEMS},
    render=_render,
    workload="FedScale-like populations, ResNet-18 mobile / ResNet-152 server",
    metrics=("tta_s", "cta_s", "rounds"),
    tags=('paper',),
)
def fig09_scenario(run_spec: ScenarioRun) -> list[dict]:
    """Fig. 9: one (setup, system) full FL run per grid point."""
    setup = SETUPS[run_spec.params["setup"]]
    system = run_spec.params["system"]
    res = run_system(setup, system)
    return [
        {
            "setup": setup.tag,
            "system": system,
            "tta_s": res.time_to_accuracy(0.70),
            "cta_s": res.cost_to_accuracy(0.70),
            "rounds": res.rounds,
        }
    ]


def main() -> None:
    from repro.scenarios.runner import run_scenario

    print(run_scenario("fig09").text)


if __name__ == "__main__":
    main()
