"""Closed-loop control-plane scenarios (non-paper): the reactive
controller against its open-loop ablations.

Both scenarios replay traces through
:class:`~repro.traces.replay.TraceReplayEngine` with a
:class:`~repro.controlplane.reactive.Controller` ticking in virtual time,
and score the control loop against a controller-less (or
feature-disabled) cell serving the *identical* workload:

* ``autoscale-flashcrowd`` — two tenants drive Markov-modulated flash
  crowds (calm ↔ burst) at a deliberately tight fixed admission
  configuration.  The *fixed* cell serves open loop: the bounded queue
  overflows during bursts and overflow arrivals are rejected outright.
  The *reactive* cell runs the controller: backlogged tenants' admission
  limits scale up (hysteretic, bounded steps), the warm pool provisions
  ahead of the backlog, and overflow arrivals are deferred with a
  deadline instead of dropped.  Expected shape: reactive converts the
  fixed cell's rejections into served (some deferred) rounds and beats
  it on SLO attainment.
* ``placement-chaos`` — a steady trace on an 8-node fleet split into two
  racks, with a replay-scoped :class:`~repro.chaos.FaultPlan` that
  partitions rack 0 mid-replay (and a NIC brown-out on one rack-1 node
  for the degraded-but-reachable case).  Node capacity is cut so every
  round *must* spread across nodes — placement actually routes bytes
  through the fabric.  The *blind* cell places chaos-unaware and its
  rounds stall on the partitioned rack until the controller's watchdog
  aborts them; the *reactive* cell consults
  :meth:`Fabric.node_health() <repro.cluster.network.Fabric.node_health>`
  snapshots, avoids the partitioned rack (re-checking between plan and
  install, retrying with backoff), and keeps completing rounds through
  the partition window.

Determinism matches the trace scenarios: one workload seed per campaign
derived from the campaign seed, shared across the mode axis so both cells
serve the same arrivals; the controller itself takes no random draws, so
sequential and ``--jobs N`` campaigns (and forked vs inline shards) are
byte-identical.
"""

from __future__ import annotations

from repro.chaos.plan import FaultPlan, NicDegrade, PartitionWindow
from repro.cluster.node import NodeSpec
from repro.common.rng import make_rng
from repro.common.units import RESNET18_BYTES
from repro.controlplane.reactive import ControllerConfig
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.experiments.common import render_table
from repro.scenarios.registry import ScenarioRun, scenario
from repro.traces.models import merge_traces, mmpp_trace, poisson_trace
from repro.traces.replay import ReplayConfig, TraceReplayEngine

N_NODES = 8


def _seed(run_spec: ScenarioRun, stream: str) -> int:
    """One workload seed per campaign, shared across the mode axis."""
    return int(
        make_rng(run_spec.campaign_seed, f"ctl:{stream}").integers(0, 2**31 - 1)
    )


def _ctl_columns(rows: list[dict]) -> str:
    return render_table(
        ["cell", "rounds", "ok", "abort", "rej", "shed", "defer", "p95 (s)", "attained"],
        [
            (
                r["cell"],
                r["rounds"],
                r["completed"],
                r["aborted"],
                r["rejected"],
                r.get("shed", 0),
                r.get("deferred", 0),
                f"{r['latency_p95_s']:.2f}",
                f"{r['slo_attainment']:.1%}",
            )
            for r in rows
        ],
    )


# ------------------------------------------------------ autoscale-flashcrowd
FLASH_TENANTS = 2
FLASH_HORIZON_S = 480.0
FLASH_SLO_S = 25.0
FLASH_CALM_PER_MIN = 2.0
FLASH_BURST_PER_MIN = 40.0
FLASH_SHARD_AXIS = (1, 2)

#: the reactive cell's control loop: admission limits may quadruple under
#: backlog, the warm pool provisions ahead of the queue, and overflow
#: arrivals get a 15s deferral deadline instead of a rejection
FLASH_CONTROLLER = ControllerConfig(
    limit_max=4,
    queue_high=2,
    burn_high=0.6,
    burn_low=0.15,
    burn_window_s=45.0,
    hysteresis_ticks=2,
    defer_deadline_s=15.0,
    pool_max=48,
    pool_step=4,
)


def _flash_platform() -> AggregationPlatform:
    nodes = [f"node{i}" for i in range(N_NODES)]
    return AggregationPlatform(PlatformConfig.lifl(), node_names=nodes)


def run_flashcrowd_cell(mode: str, seed: int, shards: int = 1) -> dict:
    trace = merge_traces(
        *(
            mmpp_trace(
                FLASH_CALM_PER_MIN,
                FLASH_BURST_PER_MIN,
                FLASH_HORIZON_S,
                mean_calm=120.0,
                mean_burst=35.0,
                seed=seed + t,
                tenant=t,
            )
            for t in range(FLASH_TENANTS)
        )
    )
    replay = TraceReplayEngine(
        None,
        trace,
        ReplayConfig(
            round_updates=8,
            nbytes=RESNET18_BYTES,
            max_inflight=1,
            queue_limit=3,
            slo_target_s=FLASH_SLO_S,
        ),
        seed=seed,
        platform_factory=_flash_platform,
        controller=FLASH_CONTROLLER if mode == "reactive" else None,
    )
    row = replay.run(shards=shards).row()
    row.update(mode=mode, shards=shards, cell=f"{mode}/s{shards}")
    return row


def _render_flashcrowd(rows: list[dict]) -> str:
    lines = [
        f"Flash-crowd autoscaling — {FLASH_TENANTS} tenants × MMPP bursts "
        f"({FLASH_CALM_PER_MIN:.0f}↔{FLASH_BURST_PER_MIN:.0f} rounds/min) over "
        f"{FLASH_HORIZON_S:.0f}s, SLO {FLASH_SLO_S:.0f}s; fixed admission vs "
        "the reactive control loop"
    ]
    lines.append(_ctl_columns(rows))
    by = {(r["mode"], r["shards"]): r for r in rows}
    fixed, reactive = by.get(("fixed", 1)), by.get(("reactive", 1))
    if fixed and reactive:  # absent under a single-mode --filter
        lines.append(
            f"\nSLO attainment: fixed {fixed['slo_attainment']:.1%} "
            f"({fixed['rejected']} rejected) vs reactive "
            f"{reactive['slo_attainment']:.1%} "
            f"({reactive.get('deferred', 0)} deferred, "
            f"{reactive.get('shed', 0)} shed)"
        )
    return "\n".join(lines)


@scenario(
    name="autoscale-flashcrowd",
    title="Reactive autoscaling under MMPP flash crowds (non-paper)",
    grid={"mode": ("fixed", "reactive"), "shards": FLASH_SHARD_AXIS},
    render=_render_flashcrowd,
    workload=(
        f"{N_NODES} nodes, {FLASH_TENANTS} tenants, MMPP flash crowds over "
        f"{FLASH_HORIZON_S:.0f}s, 8-update rounds"
    ),
    metrics=("slo_attainment", "latency_p95_s", "rejected"),
    paper=False,
    tags=('controlplane', 'traces'),
)
def autoscale_flashcrowd_scenario(run_spec: ScenarioRun) -> list[dict]:
    """One (mode, shards) serving cell; the trace is shared across modes."""
    return [
        run_flashcrowd_cell(
            run_spec.params["mode"],
            _seed(run_spec, "flashcrowd"),
            shards=run_spec.params["shards"],
        )
    ]


# ----------------------------------------------------------- placement-chaos
CHAOS_HORIZON_S = 300.0
CHAOS_SLO_S = 20.0
CHAOS_RATE_PER_MIN = 10.0
CHAOS_RACK0 = tuple(f"node{i}" for i in range(4))
CHAOS_PARTITION = (60.0, 180.0)
#: per-node service slots cut so an 8-update round must spread across ≥4
#: nodes — placement decides which rack's fabric links the round crosses
CHAOS_NODE_CAPACITY = 2


def _chaos_controller(placement: str) -> ControllerConfig:
    """Both cells run the watchdog (else a partitioned round just stalls
    to the heal); only the reactive cell places health-aware.  Pool and
    admission scaling stay off to isolate the placement effect."""
    return ControllerConfig(
        pool_scaling=False,
        admission_control=False,
        placement_aware=(placement == "reactive"),
        min_rate_factor=0.5,
        placement_retries=3,
        retry_backoff_s=1.0,
        round_deadline_s=15.0,
        defer_deadline_s=0.0,
    )


def _chaos_platform() -> AggregationPlatform:
    nodes = [f"node{i}" for i in range(N_NODES)]
    return AggregationPlatform(
        PlatformConfig.lifl(),
        node_names=nodes,
        node_spec=NodeSpec(name="template", max_service_capacity=CHAOS_NODE_CAPACITY),
    )


def _chaos_fault_plan(seed: int) -> FaultPlan:
    start, end = CHAOS_PARTITION
    return FaultPlan(
        seed=seed,
        partitions=(PartitionWindow(nodes=CHAOS_RACK0, start=start, end=end),),
        nic_degradations=(
            NicDegrade(node="node4", start=start, end=end, factor=0.3),
        ),
    )


def run_placement_chaos_cell(placement: str, seed: int) -> dict:
    trace = poisson_trace(CHAOS_RATE_PER_MIN, CHAOS_HORIZON_S, seed=seed)
    replay = TraceReplayEngine(
        None,
        trace,
        ReplayConfig(
            round_updates=8,
            nbytes=RESNET18_BYTES,
            max_inflight=2,
            queue_limit=4,
            slo_target_s=CHAOS_SLO_S,
        ),
        seed=seed,
        platform_factory=_chaos_platform,
        controller=_chaos_controller(placement),
        fault_plan=_chaos_fault_plan(seed),
    )
    row = replay.run().row()
    row.update(placement=placement, cell=placement)
    return row


def _render_placement_chaos(rows: list[dict]) -> str:
    start, end = CHAOS_PARTITION
    lines = [
        f"Chaos-aware placement — rack 0 ({', '.join(CHAOS_RACK0)}) partitioned "
        f"[{start:.0f}s, {end:.0f}s), node4 NIC at 0.3×; {CHAOS_RATE_PER_MIN:.0f} "
        f"rounds/min over {CHAOS_HORIZON_S:.0f}s, 15s round watchdog"
    ]
    lines.append(_ctl_columns(rows))
    by = {r["placement"]: r for r in rows}
    blind, reactive = by.get("blind"), by.get("reactive")
    if blind and reactive:  # absent under a single-placement --filter
        lines.append(
            f"\nwatchdog aborts: blind {blind['aborted']} vs reactive "
            f"{reactive['aborted']} (replans: {reactive.get('ctl_replan', 0)}); "
            f"attainment {blind['slo_attainment']:.1%} vs "
            f"{reactive['slo_attainment']:.1%}"
        )
    return "\n".join(lines)


@scenario(
    name="placement-chaos",
    title="Chaos-aware vs chaos-blind placement under a rack partition (non-paper)",
    grid={"placement": ("reactive", "blind")},
    render=_render_placement_chaos,
    workload=(
        f"{N_NODES} nodes in 2 racks, rack-scale partition "
        f"[{CHAOS_PARTITION[0]:.0f}s, {CHAOS_PARTITION[1]:.0f}s), "
        f"{CHAOS_HORIZON_S:.0f}s Poisson trace"
    ),
    metrics=("slo_attainment", "aborted", "completed"),
    paper=False,
    tags=('controlplane', 'chaos'),
)
def placement_chaos_scenario(run_spec: ScenarioRun) -> list[dict]:
    """One placement-mode cell; trace and fault plan shared across modes."""
    return [
        run_placement_chaos_cell(
            run_spec.params["placement"], _seed(run_spec, "placement")
        )
    ]
