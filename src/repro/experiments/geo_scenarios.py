"""Geo-federation scenarios (non-paper): regions over asymmetric WAN.

Two scenario families drive :mod:`repro.geo` end to end, both with a
``regions`` grid axis (1 region = the unsharded replay, byte-identical —
golden-pinned):

* ``geo-follow-the-sun`` — tenants homed round-robin across up to three
  regions (``us``/``eu``/``ap``), each tenant driving a diurnal trace
  whose phase is shifted by its home region's longitude slice
  (``phase_shift_s = home_index × period / n_regions``), so the load
  peak marches around the planet while every completed non-root round's
  aggregated update crosses the asymmetric WAN back to the ``us`` root.
* ``geo-partition-failover`` — the same federation with a region-scoped
  :class:`~repro.chaos.plan.PartitionWindow` severing ``eu`` mid-replay:
  its tenants drain to the configured fallback region (entering through
  a deferral-aware admission policy), the heal returns them, and the
  report checks the boundary's weight accounting exactly — the shipped
  WAN weight must equal the completed weight served outside the root.

All randomness derives from the campaign seed; traces are shared across
the system axis so every system serves the same planet.
"""

from __future__ import annotations

from repro.common.rng import make_rng
from repro.common.units import RESNET18_BYTES
from repro.chaos.plan import FaultPlan, PartitionWindow
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.experiments.common import render_table
from repro.geo import GeoReplayEngine, GeoReplayResult, RegionTopology, WanLink
from repro.scenarios.registry import ScenarioRun, scenario
from repro.traces.models import diurnal_trace, merge_traces
from repro.traces.replay import ReplayConfig

GEO_REGION_NAMES = ("us", "eu", "ap")
GEO_SYSTEMS = ("LIFL", "SL-H")
REGION_AXIS = (1, 2, 3)
GEO_TENANTS = 6
GEO_NODES_PER_REGION = 6
GEO_HORIZON_S = 480.0
GEO_PERIOD_S = 240.0
GEO_BASE_RATE = 4.0  # rounds/min/tenant
GEO_SLO_S = 10.0

_CONFIGS = {"LIFL": PlatformConfig.lifl, "SL-H": PlatformConfig.sl_h}

#: asymmetric WAN fabric: the two directions of each pair differ in both
#: propagation latency and pipe capacity (bytes/s)
_WAN_LINKS = (
    WanLink("eu", "us", latency_s=0.045, capacity_bps=1.0e8),
    WanLink("us", "eu", latency_s=0.040, capacity_bps=1.25e8),
    WanLink("ap", "us", latency_s=0.090, capacity_bps=6.0e7),
    WanLink("us", "ap", latency_s=0.085, capacity_bps=8.0e7),
    WanLink("ap", "eu", latency_s=0.120, capacity_bps=5.0e7),
    WanLink("eu", "ap", latency_s=0.110, capacity_bps=5.0e7),
)


def _topology(n_regions: int) -> RegionTopology:
    """The first ``n_regions`` of the planet, rooted at ``us``, each
    falling back to the next region around the ring."""
    regions = GEO_REGION_NAMES[:n_regions]
    links = tuple(
        lnk for lnk in _WAN_LINKS if lnk.src in regions and lnk.dst in regions
    )
    fallbacks = (
        {r: regions[(i + 1) % n_regions] for i, r in enumerate(regions)}
        if n_regions > 1
        else {}
    )
    return RegionTopology(regions, links=links, fallbacks=fallbacks, root=regions[0])


def _geo_platform(system: str, region: str) -> AggregationPlatform:
    nodes = [f"{region}-node{i}" for i in range(GEO_NODES_PER_REGION)]
    return AggregationPlatform(_CONFIGS[system](), node_names=nodes)


def _followsun_trace(topology: RegionTopology, seed: int):
    """Per-tenant diurnal traces, phase-shifted by the tenant's home
    region — the follow-the-sun workload."""
    n = topology.n_regions
    traces = []
    for tenant in range(GEO_TENANTS):
        home_index = topology.regions.index(topology.home_of(tenant))
        traces.append(
            diurnal_trace(
                GEO_BASE_RATE,
                GEO_HORIZON_S,
                amplitude=0.7,
                period=GEO_PERIOD_S,
                phase_shift_s=home_index * GEO_PERIOD_S / n,
                seed=seed,
                tenant=tenant,
            )
        )
    return merge_traces(*traces)


def _geo_config() -> ReplayConfig:
    return ReplayConfig(
        round_updates=4,
        nbytes=RESNET18_BYTES,
        max_inflight=3,
        queue_limit=8,
        slo_target_s=GEO_SLO_S,
    )


def _followsun_engine(
    system: str, n_regions: int, seed: int, fault_plan: FaultPlan | None = None
) -> GeoReplayEngine:
    """Build (without running) one federation cell — the scenarios and
    ``repro.perf.bench``'s ``macro_geo_followsun`` share this."""
    topology = _topology(n_regions)
    config = _geo_config()
    if fault_plan is not None:
        # Deferral-aware re-admission: arrivals drained to the fallback
        # region park in its deferral room instead of bouncing.
        from dataclasses import replace

        config = replace(
            config, admission_policy="defer-with-deadline", defer_deadline_s=8.0
        )
    return GeoReplayEngine(
        topology,
        lambda region: _geo_platform(system, region),
        _followsun_trace(topology, seed),
        config,
        seed=seed,
        fault_plan=fault_plan,
    )


def _region_rounds(result: GeoReplayResult) -> str:
    return "|".join(
        f"{rep.region}:{len(rep.result.records)}" for rep in result.regions
    )


def _shared_seed(run_spec: ScenarioRun, stream: str) -> int:
    return int(
        make_rng(run_spec.campaign_seed, f"geo:{stream}").integers(0, 2**31 - 1)
    )


def _geo_columns(rows: list[dict]) -> str:
    return render_table(
        [
            "cell",
            "rounds",
            "p50 (s)",
            "p95 (s)",
            "attained",
            "wan flows",
            "wan weight",
            "failover",
            "per-region rounds",
        ],
        [
            (
                r["cell"],
                r["rounds"],
                f"{r['latency_p50_s']:.2f}",
                f"{r['latency_p95_s']:.2f}",
                f"{r['slo_attainment']:.1%}",
                r["wan_flows"],
                f"{r['wan_weight']:.1f}",
                r["failover_rounds"],
                r["region_rounds"],
            )
            for r in rows
        ],
    )


# ------------------------------------------------------------ follow the sun
def run_followsun_cell(system: str, n_regions: int, seed: int) -> dict:
    result = _followsun_engine(system, n_regions, seed).run()
    row = result.row()
    row.update(
        system=system,
        region_rounds=_region_rounds(result),
        cell=f"{system}/r{n_regions}",
    )
    return row


def _render_followsun(rows: list[dict]) -> str:
    lines = [
        f"Follow-the-sun federation — {GEO_TENANTS} tenants homed round-robin "
        f"across up to {len(GEO_REGION_NAMES)} regions, diurnal load "
        f"phase-shifted per region over {GEO_HORIZON_S:.0f}s, root reduction "
        f"to '{GEO_REGION_NAMES[0]}' over asymmetric WAN, SLO {GEO_SLO_S:.0f}s"
    ]
    lines.append(_geo_columns(rows))
    return "\n".join(lines)


@scenario(
    name="geo-follow-the-sun",
    title="Geo federation: follow-the-sun diurnal load across regions (non-paper)",
    grid={"system": GEO_SYSTEMS, "regions": REGION_AXIS},
    render=_render_followsun,
    workload=(
        f"{GEO_TENANTS} tenants, up to {len(GEO_REGION_NAMES)} regions x "
        f"{GEO_NODES_PER_REGION} nodes, phase-shifted diurnal traces over "
        f"{GEO_HORIZON_S:.0f}s, WAN root reduction"
    ),
    metrics=("latency_p50_s", "latency_p95_s", "slo_attainment", "wan_flows", "wan_weight"),
    paper=False,
    tags=("geo", "traces", "slo"),
)
def geo_followsun_scenario(run_spec: ScenarioRun) -> list[dict]:
    """One (system, regions) federation cell; workload shared across the
    system axis."""
    return [
        run_followsun_cell(
            run_spec.params["system"],
            run_spec.params["regions"],
            _shared_seed(run_spec, "followsun"),
        )
    ]


# -------------------------------------------------------- partition failover
FAILOVER_REGION_AXIS = (2, 3)
PARTITION_START_S = GEO_HORIZON_S / 3.0
PARTITION_END_S = 2.0 * GEO_HORIZON_S / 3.0
#: the region the partition severs (its tenants drain to its fallback)
PARTITION_REGION = "eu"


def _failover_plan() -> FaultPlan:
    return FaultPlan(
        partitions=(
            PartitionWindow(
                nodes=(PARTITION_REGION,),
                start=PARTITION_START_S,
                end=PARTITION_END_S,
            ),
        )
    )


def run_failover_cell(system: str, n_regions: int, seed: int) -> dict:
    engine = _followsun_engine(system, n_regions, seed, fault_plan=_failover_plan())
    result = engine.run()
    # Exact weight accounting through the boundary: the WAN shipped
    # exactly the completed weight of every round served outside the
    # root — no weight is minted or lost at the region boundary.
    shipped = sum(s.weight for s in result.shipments)
    root = engine.topology.root
    completed_outside_root = sum(
        sum(w for _, w in rec.participants)
        for rep in result.regions
        if rep.region != root
        for rec in rep.result.records
        if not (rec.aborted or rec.rejected or rec.shed)
    )
    fallback = engine.topology.fallback(PARTITION_REGION)
    drained = {
        t for t, home in result.route.homes.items() if home == PARTITION_REGION
    }
    fallback_served = sum(
        1
        for (tenant, _), region in result.route.served_in.items()
        if tenant in drained and region == fallback
    )
    row = result.row()
    row.update(
        system=system,
        region_rounds=_region_rounds(result),
        fallback=fallback,
        fallback_served=fallback_served,
        weight_conserved=abs(shipped - completed_outside_root) < 1e-9,
        cell=f"{system}/r{n_regions}",
    )
    return row


def _render_failover(rows: list[dict]) -> str:
    lines = [
        f"Partition failover — region '{PARTITION_REGION}' severed during "
        f"[{PARTITION_START_S:.0f}s, {PARTITION_END_S:.0f}s): its tenants "
        "drain to the fallback region (deferral-aware re-admission) and "
        "return at the heal; WAN weight accounting checked exactly"
    ]
    lines.append(_geo_columns(rows))
    lines.append(
        "\nfailover: "
        + ", ".join(
            f"{r['cell']}: {r['failover_rounds']} rounds drained to "
            f"{r['fallback']} ({r['fallback_served']} served there), "
            f"weight conserved={r['weight_conserved']}"
            for r in rows
        )
    )
    return "\n".join(lines)


@scenario(
    name="geo-partition-failover",
    title="Geo federation: region partition with tenant failover (non-paper)",
    grid={"system": GEO_SYSTEMS, "regions": FAILOVER_REGION_AXIS},
    render=_render_failover,
    workload=(
        f"{GEO_TENANTS} tenants over {GEO_HORIZON_S:.0f}s, region "
        f"'{PARTITION_REGION}' partitioned for the middle third, "
        "fallback drain + heal, exact WAN weight accounting"
    ),
    metrics=(
        "slo_attainment",
        "failover_rounds",
        "fallback_served",
        "wan_weight",
        "shed",
    ),
    paper=False,
    tags=("geo", "traces", "chaos"),
)
def geo_failover_scenario(run_spec: ScenarioRun) -> list[dict]:
    """One (system, regions) federation cell under a region partition."""
    return [
        run_failover_cell(
            run_spec.params["system"],
            run_spec.params["regions"],
            _shared_seed(run_spec, "failover"),
        )
    ]


def main() -> None:
    from repro.scenarios.runner import run_scenario

    for name in ("geo-follow-the-sun", "geo-partition-failover"):
        print(run_scenario(name).text)
        print()


if __name__ == "__main__":
    main()
