"""Shared experiment plumbing: table rendering, ratio helpers."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Plain-text table with right-aligned numeric columns."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)


def ratio(a: float, b: float) -> float:
    """a/b with a guard for degenerate denominators: 0/0 is 0 (no signal),
    nonzero/0 is +inf."""
    if b:
        return a / b
    return 0.0 if a == 0 else float("inf")
