"""Mixed mobile+datacenter fleet sweep (non-paper scenario).

The paper evaluates the two §6.2 populations separately: hibernating
mobiles (ResNet-18) and always-on servers (ResNet-152).  Real FL fleets
are mixed — a share of phones training alongside a datacenter pool — so
this scenario sweeps the mobile share of one population from 0 % to 100 %
and runs a short ResNet-18 workload on LIFL and SL for every mix.

Expected shape: LIFL's *absolute* per-round saving over the reactive
serverless baseline is roughly constant across mixes (it removes the same
platform overhead), so its *relative* advantage is largest for the tight
all-server arrival pattern, where platform time dominates the round, and
shrinks as hibernating mobiles stretch every round toward the straggler
floor both systems share.  CPU per round stays ~10x apart throughout.
All workload randomness derives from the campaign seed and the mix (not
the grid index), so both systems see the same fleet and trace at each
point and the sweep is reproducible end to end.
"""

from __future__ import annotations

from repro.common.rng import make_rng
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.core.rounds import FLWorkloadConfig, run_fl_workload
from repro.experiments.common import ratio, render_table
from repro.fl.convergence import curve_for
from repro.fl.model import model_spec
from repro.scenarios.registry import ScenarioRun, derive_seed, scenario
from repro.workloads.fedscale import (
    MOBILE_PROFILE,
    SERVER_PROFILE,
    FedScalePopulation,
    make_population,
)

MOBILE_SHARES = (0.0, 0.25, 0.5, 0.75, 1.0)
SYSTEMS = ("LIFL", "SL")
POPULATION = 400
ACTIVE_CLIENTS = 40
AGGREGATION_GOAL = 20
ROUNDS = 8


def make_mixed_population(
    n_clients: int, mobile_share: float, spec, seed: int
) -> FedScalePopulation:
    """A fleet with ``mobile_share`` hibernating mobiles, the rest servers."""
    n_mobile = round(n_clients * mobile_share)
    n_server = n_clients - n_mobile
    clients = []
    sample_counts: dict[str, int] = {}
    if n_mobile:
        mob = make_population(n_mobile, spec, MOBILE_PROFILE, seed=seed)
        clients.extend(mob.clients)
        sample_counts.update(mob.sample_counts)
    if n_server:
        srv = make_population(n_server, spec, SERVER_PROFILE, seed=seed + 1)
        clients.extend(srv.clients)
        sample_counts.update(srv.sample_counts)
    profile = MOBILE_PROFILE if mobile_share >= 0.5 else SERVER_PROFILE
    return FedScalePopulation(clients=clients, sample_counts=sample_counts, profile=profile)


def run_mix(mobile_share: float, system: str, seed: int) -> dict:
    """Short ResNet-18 workload on one (mix, system) point."""
    spec = model_spec("resnet18")
    population = make_mixed_population(POPULATION, mobile_share, spec, seed=seed)
    wl = FLWorkloadConfig(
        spec=spec,
        curve=curve_for("resnet18"),
        aggregation_goal=AGGREGATION_GOAL,
        active_clients=ACTIVE_CLIENTS,
        rounds=ROUNDS,
        stop_at_target=False,
    )
    cfg = PlatformConfig.lifl() if system == "LIFL" else PlatformConfig.serverless()
    platform = AggregationPlatform(cfg)
    result = run_fl_workload(platform, population, wl, make_rng(seed, system))
    mean_round = sum(s.duration for s in result.samples) / len(result.samples)
    mean_cpu = sum(s.cpu_total for s in result.samples) / len(result.samples)
    return {
        "mobile_share": mobile_share,
        "system": system,
        "mean_round_s": mean_round,
        "cpu_per_round_s": mean_cpu,
        "rounds": result.rounds,
    }


def _render(rows: list[dict]) -> str:
    lines = [
        f"Mixed fleet — mobile share sweep ({POPULATION} clients, "
        f"goal {AGGREGATION_GOAL}, ResNet-18, {ROUNDS} rounds)"
    ]
    lines.append(
        render_table(
            ["mobile %", "system", "round (s)", "CPU/round (s)"],
            [
                (
                    f"{r['mobile_share'] * 100:.0f}",
                    r["system"],
                    f"{r['mean_round_s']:.1f}",
                    f"{r['cpu_per_round_s']:.0f}",
                )
                for r in rows
            ],
        )
    )
    by = {(r["mobile_share"], r["system"]): r for r in rows}
    gaps = []
    for share in MOBILE_SHARES:
        sl = by.get((share, "SL"))
        lifl = by.get((share, "LIFL"))
        if sl and lifl:
            gaps.append(
                f"{share * 100:.0f}%: "
                f"{ratio(sl['mean_round_s'], lifl['mean_round_s']):.2f}x"
            )
    lines.append("\nSL/LIFL round-time ratio by mobile share: " + ", ".join(gaps))
    return "\n".join(lines)


@scenario(
    name="mixed-fleet",
    title="mixed mobile+datacenter fleet sweep (non-paper)",
    grid={"mobile_share": MOBILE_SHARES, "system": SYSTEMS},
    render=_render,
    workload=f"{POPULATION}-client mixed fleet, ResNet-18, {ROUNDS} rounds",
    metrics=("mean_round_s", "cpu_per_round_s"),
    paper=False,
    tags=('workload',),
)
def mixed_fleet_scenario(run_spec: ScenarioRun) -> list[dict]:
    """One (mobile_share, system) point of the fleet-mix sweep."""
    share = run_spec.params["mobile_share"]
    # Both systems at one mix must see the same fleet and trace, so the
    # workload seed depends on the mix (and campaign seed), not the run.
    seed = derive_seed(
        run_spec.campaign_seed, "mixed-fleet", MOBILE_SHARES.index(share)
    )
    return [run_mix(share, run_spec.params["system"], seed=seed)]


def main() -> None:
    from repro.scenarios.runner import run_scenario

    print(run_scenario("mixed-fleet").text)


if __name__ == "__main__":
    main()
