"""Fig. 8 — LIFL's orchestration improvements, step by step.

Five nodes (MC_i = 20 each), ResNet-152 updates arriving concurrently at
the aggregation service; batch sizes 20/60/100.  Configurations:

* **SL-H** — LIFL's shm data plane under a vanilla serverless control
  plane: least-connection (WorstFit) spread, locality-agnostic pods,
  reactive cold starts, lazy aggregation;
* **+①** — locality-aware BestFit placement;
* **+①+②** — hierarchy planning with pre-planned (warm-by-round-start)
  instance creation;
* **+①+②+③** — opportunistic runtime reuse (steady state: the second
  identical round is measured, when the warm pool is stocked);
* **+①+②+③+④** — eager aggregation (full LIFL).

Reported per batch size: ACT, cumulative CPU time, aggregators created,
nodes used — Fig. 8(a)–(d).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import make_rng
from repro.common.units import RESNET152_BYTES
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.experiments.common import render_table
from repro.workloads.arrival import concurrent_arrivals

BATCHES = (20, 60, 100)
ARRIVAL_JITTER_S = 3.0

CONFIGS: list[tuple[str, PlatformConfig]] = [
    ("SL-H", PlatformConfig.sl_h()),
    ("+1", PlatformConfig.sl_h(placement_policy="bestfit", locality_aware=True)),
    (
        "+1+2",
        PlatformConfig.sl_h(placement_policy="bestfit", locality_aware=True, prewarm=True),
    ),
    (
        "+1+2+3",
        PlatformConfig.sl_h(
            placement_policy="bestfit", locality_aware=True, prewarm=True, reuse=True
        ),
    ),
    ("+1+2+3+4", PlatformConfig.lifl()),
]


@dataclass
class Fig8Row:
    config: str
    batch: int
    act_s: float
    cpu_s: float
    aggregators_created: int
    nodes_used: int


def run(seed: int = 1, steady_state: bool = True) -> list[Fig8Row]:
    rows: list[Fig8Row] = []
    for name, cfg in CONFIGS:
        for batch in BATCHES:
            platform = AggregationPlatform(cfg)
            arrivals = [
                (t, 1.0)
                for t in concurrent_arrivals(batch, jitter=ARRIVAL_JITTER_S, rng=make_rng(seed, "jit"))
            ]
            result = platform.run_round(arrivals, RESNET152_BYTES, include_eval=False)
            if steady_state:
                # Measure the second identical round so reuse (③) operates
                # with a stocked warm pool.
                result = platform.run_round(arrivals, RESNET152_BYTES, include_eval=False)
            rows.append(
                Fig8Row(
                    config=name,
                    batch=batch,
                    act_s=result.act,
                    cpu_s=result.cpu_total,
                    aggregators_created=result.aggregators_created,
                    nodes_used=result.nodes_used,
                )
            )
    return rows


def act_ratio(rows: list[Fig8Row], a: str, b: str, batch: int) -> float:
    ra = next(r for r in rows if r.config == a and r.batch == batch)
    rb = next(r for r in rows if r.config == b and r.batch == batch)
    return ra.act_s / rb.act_s


def main() -> None:
    rows = run()
    print("Fig. 8 — orchestration ablation (5 nodes, MC=20, ResNet-152)")
    print(
        render_table(
            ["config", "batch", "ACT (s)", "CPU (s)", "# created", "# nodes"],
            [
                (r.config, r.batch, f"{r.act_s:.1f}", f"{r.cpu_s:.0f}", r.aggregators_created, r.nodes_used)
                for r in rows
            ],
        )
    )
    print(
        f"\nACT ratios at 20 updates: SL-H/+1 = {act_ratio(rows, 'SL-H', '+1', 20):.2f}x "
        f"(paper 2.1x); at 60: {act_ratio(rows, 'SL-H', '+1', 60):.2f}x (paper 1.13x)"
    )
    print(
        f"+1 over +1+2+3 = {act_ratio(rows, '+1', '+1+2+3', 20):.2f}x (paper ~1.22x); "
        f"lazy over eager = {act_ratio(rows, '+1+2+3', '+1+2+3+4', 20):.2f}x (paper ~1.2x)"
    )


if __name__ == "__main__":
    main()
