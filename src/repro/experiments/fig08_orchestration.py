"""Fig. 8 — LIFL's orchestration improvements, step by step.

Five nodes (MC_i = 20 each), ResNet-152 updates arriving concurrently at
the aggregation service; batch sizes 20/60/100.  Configurations:

* **SL-H** — LIFL's shm data plane under a vanilla serverless control
  plane: least-connection (WorstFit) spread, locality-agnostic pods,
  reactive cold starts, lazy aggregation;
* **+①** — locality-aware BestFit placement;
* **+①+②** — hierarchy planning with pre-planned (warm-by-round-start)
  instance creation;
* **+①+②+③** — opportunistic runtime reuse (steady state: the second
  identical round is measured, when the warm pool is stocked);
* **+①+②+③+④** — eager aggregation (full LIFL).

Reported per batch size: ACT, cumulative CPU time, aggregators created,
nodes used — Fig. 8(a)–(d).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import make_rng
from repro.common.units import RESNET152_BYTES
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.experiments.common import render_table
from repro.scenarios.registry import ScenarioRun, scenario
from repro.workloads.arrival import concurrent_arrivals

BATCHES = (20, 60, 100)
ARRIVAL_JITTER_S = 3.0

CONFIGS: list[tuple[str, PlatformConfig]] = [
    ("SL-H", PlatformConfig.sl_h()),
    ("+1", PlatformConfig.sl_h(placement_policy="bestfit", locality_aware=True)),
    (
        "+1+2",
        PlatformConfig.sl_h(placement_policy="bestfit", locality_aware=True, prewarm=True),
    ),
    (
        "+1+2+3",
        PlatformConfig.sl_h(
            placement_policy="bestfit", locality_aware=True, prewarm=True, reuse=True
        ),
    ),
    ("+1+2+3+4", PlatformConfig.lifl()),
]


@dataclass
class Fig8Row:
    config: str
    batch: int
    act_s: float
    cpu_s: float
    aggregators_created: int
    nodes_used: int


def run_cell(config: str, batch: int, seed: int = 1, steady_state: bool = True) -> Fig8Row:
    """One (configuration, batch-size) cell of Fig. 8."""
    cfg = dict(CONFIGS)[config]
    platform = AggregationPlatform(cfg)
    arrivals = [
        (t, 1.0)
        for t in concurrent_arrivals(batch, jitter=ARRIVAL_JITTER_S, rng=make_rng(seed, "jit"))
    ]
    result = platform.run_round(arrivals, RESNET152_BYTES, include_eval=False)
    if steady_state:
        # Measure the second identical round so reuse (③) operates
        # with a stocked warm pool.
        result = platform.run_round(arrivals, RESNET152_BYTES, include_eval=False)
    return Fig8Row(
        config=config,
        batch=batch,
        act_s=result.act,
        cpu_s=result.cpu_total,
        aggregators_created=result.aggregators_created,
        nodes_used=result.nodes_used,
    )


def run(seed: int = 1, steady_state: bool = True) -> list[Fig8Row]:
    return [
        run_cell(name, batch, seed=seed, steady_state=steady_state)
        for name, _ in CONFIGS
        for batch in BATCHES
    ]


def act_ratio(rows: list[Fig8Row], a: str, b: str, batch: int) -> float:
    ra = next(r for r in rows if r.config == a and r.batch == batch)
    rb = next(r for r in rows if r.config == b and r.batch == batch)
    return ra.act_s / rb.act_s


def _render(rows: list[dict]) -> str:
    typed = [Fig8Row(**r) for r in rows]
    lines = ["Fig. 8 — orchestration ablation (5 nodes, MC=20, ResNet-152)"]
    lines.append(
        render_table(
            ["config", "batch", "ACT (s)", "CPU (s)", "# created", "# nodes"],
            [
                (
                    r["config"],
                    r["batch"],
                    f"{r['act_s']:.1f}",
                    f"{r['cpu_s']:.0f}",
                    r["aggregators_created"],
                    r["nodes_used"],
                )
                for r in rows
            ],
        )
    )
    lines.append(
        f"\nACT ratios at 20 updates: SL-H/+1 = {act_ratio(typed, 'SL-H', '+1', 20):.2f}x "
        f"(paper 2.1x); at 60: {act_ratio(typed, 'SL-H', '+1', 60):.2f}x (paper 1.13x)"
    )
    lines.append(
        f"+1 over +1+2+3 = {act_ratio(typed, '+1', '+1+2+3', 20):.2f}x (paper ~1.22x); "
        f"lazy over eager = {act_ratio(typed, '+1+2+3', '+1+2+3+4', 20):.2f}x (paper ~1.2x)"
    )
    return "\n".join(lines)


@scenario(
    name="fig08",
    title="LIFL's orchestration improvements, step by step",
    grid={"config": tuple(name for name, _ in CONFIGS), "batch": BATCHES},
    render=_render,
    workload="5 nodes, MC=20, ResNet-152, batches 20/60/100",
    metrics=("act_s", "cpu_s", "aggregators_created", "nodes_used"),
    tags=('paper',),
)
def fig08_scenario(run_spec: ScenarioRun) -> list[dict]:
    """Fig. 8: one (configuration, batch) ablation cell per run."""
    row = run_cell(run_spec.params["config"], run_spec.params["batch"])
    return [
        {
            "config": row.config,
            "batch": row.batch,
            "act_s": row.act_s,
            "cpu_s": row.cpu_s,
            "aggregators_created": row.aggregators_created,
            "nodes_used": row.nodes_used,
        }
    ]


def main() -> None:
    from repro.scenarios.runner import run_scenario

    print(run_scenario("fig08").text)


if __name__ == "__main__":
    main()
