"""Fig. 4 — hierarchical aggregation barely helps on a kernel data plane.

Setup (§4.1): 8 remote trainers, ResNet-152, FEMNIST; aggregators on one
node.  *NH*: a single aggregator.  *WH*: one top + four leaf aggregators.
Paper result: 59.8 s/round (NH) vs 57 s/round (WH) — the hierarchy's
parallelism is eaten by network-processing contention; LIFL's shared-memory
data plane (Fig. 7(c)) brings the same hierarchy to 44.9 s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import make_rng
from repro.common.units import RESNET152_BYTES
from repro.controlplane.hierarchy import AggregatorSpec, HierarchyPlan, Role
from repro.core.platform import PlatformConfig
from repro.core.results import RoundResult
from repro.core.roundsim import RoundEngine
from repro.core.updates import SimUpdate
from repro.experiments.common import render_table
from repro.scenarios.registry import ScenarioRun, scenario

#: trainer local-epoch time for ResNet-152 on the testbed's trainer nodes
TRAIN_MEAN_S = 34.0
TRAIN_JITTER_S = 4.0
N_TRAINERS = 8


def _arrivals(seed: int) -> list[float]:
    rng = make_rng(seed, "fig4-trainers")
    return sorted(float(TRAIN_MEAN_S + rng.uniform(-TRAIN_JITTER_S, TRAIN_JITTER_S)) for _ in range(N_TRAINERS))


def _updates(times: list[float]) -> list[SimUpdate]:
    return [
        SimUpdate(uid=i, nbytes=RESNET152_BYTES, weight=1.0, arrival_time=t, node="node0", client_id=f"tr{i}")
        for i, t in enumerate(times)
    ]


def _nh_plan() -> HierarchyPlan:
    plan = HierarchyPlan()
    plan.aggregators["nh/top@node0"] = AggregatorSpec(
        "nh/top@node0", Role.TOP, "node0", fan_in=N_TRAINERS
    )
    plan.top_node = "node0"
    plan.validate()
    return plan


def _wh_plan() -> HierarchyPlan:
    plan = HierarchyPlan()
    top = AggregatorSpec("wh/top@node0", Role.TOP, "node0", fan_in=4)
    plan.aggregators[top.agg_id] = top
    plan.top_node = "node0"
    for i in range(4):
        leaf_id = f"wh/leaf{i}@node0"
        plan.aggregators[leaf_id] = AggregatorSpec(
            leaf_id, Role.LEAF, "node0", fan_in=2, parent=top.agg_id
        )
    plan.validate()
    return plan


@dataclass
class Fig4Row:
    setting: str
    round_seconds: float
    result: RoundResult


SETTINGS = ("NH (kernel)", "WH (kernel)", "WH (LIFL)")
PAPER_SECONDS = {"NH (kernel)": 59.8, "WH (kernel)": 57.0, "WH (LIFL)": 44.9}


def _setting(name: str) -> tuple[PlatformConfig, HierarchyPlan]:
    if name == "NH (kernel)":
        return PlatformConfig.serverful(instances=1), _nh_plan()
    if name == "WH (kernel)":
        return PlatformConfig.serverful(instances=5), _wh_plan()
    if name == "WH (LIFL)":
        return PlatformConfig.lifl(prewarm=True), _wh_plan()
    raise ValueError(f"unknown fig04 setting {name!r}")


def run_setting(name: str, seed: int = 0) -> Fig4Row:
    cfg, plan = _setting(name)
    engine = RoundEngine(cfg, ["node0"])
    result = engine.run_round(_updates(_arrivals(seed)), plan, include_eval=True)
    return Fig4Row(setting=name, round_seconds=result.completion_time, result=result)


def run(seed: int = 0) -> list[Fig4Row]:
    """Three settings: NH (kernel), WH (kernel), WH on LIFL's data plane."""
    return [run_setting(name, seed) for name in SETTINGS]


def _render(rows: list[dict]) -> str:
    lines = ["Fig. 4 / Fig. 7(c) — per-round time, 8 trainers, ResNet-152, one node"]
    lines.append(
        render_table(
            ["setting", "round (s)", "paper (s)"],
            [(r["setting"], r["round_seconds"], r["paper_s"]) for r in rows],
        )
    )
    lifl = next(r for r in rows if r["setting"] == "WH (LIFL)")
    lines.append("")
    lines.append("WH (LIFL) timeline (N=network, A=agg, E=eval, C=coldstart):")
    lines.append(lifl["timeline"])
    return "\n".join(lines)


@scenario(
    name="fig04",
    title="hierarchical aggregation barely helps on a kernel data plane",
    grid={"setting": SETTINGS},
    render=_render,
    workload="8 trainers, ResNet-152, one node",
    metrics=("round_seconds",),
    tags=('paper',),
)
def fig04_scenario(run_spec: ScenarioRun) -> list[dict]:
    """Fig. 4 / Fig. 7(c): one (setting,) grid point per run."""
    setting = run_spec.params["setting"]
    row = run_setting(setting, seed=0)
    out: dict[str, object] = {
        "setting": row.setting,
        "round_seconds": row.round_seconds,
        "paper_s": PAPER_SECONDS[setting],
    }
    if setting == "WH (LIFL)":
        out["timeline"] = row.result.timeline.render_ascii(width=64)
    return [out]


def main() -> None:
    from repro.scenarios.runner import run_scenario

    print(run_scenario("fig04").text)


if __name__ == "__main__":
    main()
