"""Large-scale 50-node stress scenario (non-paper).

The paper's testbed tops out at 5 aggregation nodes and 100 concurrent
updates (Fig. 8).  This scenario pushes the same round engine an order of
magnitude further — a 50-node cluster (MC_i = 20 each, 1000-update
capacity) absorbing batches of 250/500/900 concurrent ResNet-152 updates —
to check that the orchestration story survives scale: LIFL should keep
packing updates onto few nodes, reuse warm runtimes in steady state, and
stay ahead of the reactive SL-H control plane on both ACT and CPU.

Like Fig. 8, the steady-state round (the second identical round, warm pool
stocked) is what is measured.
"""

from __future__ import annotations

from repro.common.rng import make_rng
from repro.common.units import RESNET152_BYTES
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.experiments.common import ratio, render_table
from repro.scenarios.registry import ScenarioRun, scenario
from repro.workloads.arrival import concurrent_arrivals

N_NODES = 50
BATCHES = (250, 500, 900)
SYSTEMS = ("LIFL", "SL-H")
ARRIVAL_JITTER_S = 3.0


def run_cell(system: str, batch: int, seed: int = 1) -> dict:
    """One steady-state round of ``batch`` updates on the 50-node cluster."""
    cfg = PlatformConfig.lifl() if system == "LIFL" else PlatformConfig.sl_h()
    nodes = [f"node{i:02d}" for i in range(N_NODES)]
    platform = AggregationPlatform(cfg, node_names=nodes)
    arrivals = [
        (t, 1.0)
        for t in concurrent_arrivals(
            batch, jitter=ARRIVAL_JITTER_S, rng=make_rng(seed, "stress")
        )
    ]
    # Telemetry off: a 900-update round logs tens of thousands of timeline
    # bars nobody reads; the stress rows only use the scalar results.
    platform.run_round(arrivals, RESNET152_BYTES, include_eval=False, record_timeline=False)
    result = platform.run_round(arrivals, RESNET152_BYTES, include_eval=False, record_timeline=False)
    return {
        "system": system,
        "batch": batch,
        "act_s": result.act,
        "cpu_s": result.cpu_total,
        "aggregators_created": result.aggregators_created,
        "aggregators_reused": result.aggregators_reused,
        "nodes_used": result.nodes_used,
        "cross_node_transfers": result.cross_node_transfers,
    }


def _render(rows: list[dict]) -> str:
    lines = [f"Stress — {N_NODES} nodes (MC=20), concurrent ResNet-152 updates"]
    lines.append(
        render_table(
            ["system", "batch", "ACT (s)", "CPU (s)", "# created", "# reused", "# nodes", "x-node"],
            [
                (
                    r["system"],
                    r["batch"],
                    f"{r['act_s']:.1f}",
                    f"{r['cpu_s']:.0f}",
                    r["aggregators_created"],
                    r["aggregators_reused"],
                    r["nodes_used"],
                    r["cross_node_transfers"],
                )
                for r in rows
            ],
        )
    )
    by = {(r["system"], r["batch"]): r for r in rows}
    speedups = []
    for batch in BATCHES:
        slh = by.get(("SL-H", batch))
        lifl = by.get(("LIFL", batch))
        if slh and lifl:
            speedups.append(f"{batch}: {ratio(slh['act_s'], lifl['act_s']):.2f}x")
    lines.append("\nSL-H/LIFL ACT ratio by batch: " + ", ".join(speedups))
    return "\n".join(lines)


@scenario(
    name="stress50",
    title="50-node, 900-update stress round (non-paper)",
    grid={"system": SYSTEMS, "batch": BATCHES},
    render=_render,
    workload=f"{N_NODES} nodes, batches {'/'.join(map(str, BATCHES))}, ResNet-152",
    metrics=("act_s", "cpu_s", "nodes_used", "cross_node_transfers"),
    paper=False,
    tags=('perf',),
)
def stress50_scenario(run_spec: ScenarioRun) -> list[dict]:
    """One (system, batch) stress cell; arrivals seeded like Fig. 8."""
    return [run_cell(run_spec.params["system"], run_spec.params["batch"])]


def main() -> None:
    from repro.scenarios.runner import run_scenario

    print(run_scenario("stress50").text)


if __name__ == "__main__":
    main()
