"""Trace-driven serving scenarios (non-paper): SLO behaviour under load.

Every paper figure fires one synchronous round at a time; these scenarios
instead *serve* rounds from arrival traces through
:class:`~repro.traces.replay.TraceReplayEngine` and score the result
against an SLO — latency percentiles (p50/p95/p99), queue-wait versus
service-time breakdown, and attainment:

* ``trace-poisson-slo`` — open-loop Poisson round arrivals at two rates
  against LIFL and SL-H on one shared 8-node fleet.  Expected shape: at
  low rate both systems attain; at 40 rounds/min SL-H's lazy aggregation
  and cold-start service times saturate the bounded admission queue and
  attainment collapses while LIFL keeps serving.
* ``trace-diurnal-multitenant`` — four tenants, each driving a diurnal
  (sinusoidal-rate) trace, with availability-aware client sampling: a
  FedScale-style mobile population whose day-night participation swings
  thin the rounds exactly when arrival rate peaks.  ≥200 overlapping
  rounds per cell; the serving-capacity question multi-tenant FL has to
  answer.
* ``trace-burst-chaos`` — Markov-modulated bursts with dropout chaos
  *correlated* to availability dips (clients that vanish from the
  availability trace also vanish mid-round), exercising the multi-round
  recovery loop: goal shrinking, quorum aborts, warm-pool-funded serving
  straight through the burst.

All randomness derives from the campaign seed — traces, participants, and
chaos victims are shared across the system axis so every system serves
the *same* workload, and sequential and ``--jobs N`` campaigns produce
byte-identical rows.

Every scenario also carries a ``shards`` grid axis: ``shards=N`` replays
the same trace through :mod:`repro.traces.shard`'s multi-core
:class:`~repro.traces.shard.ShardedReplayEngine` — tenants partitioned
across forked worker processes, each shard a full serving cell, SLO
digests merged exactly.  Sharding is tenant-affine, so a single-tenant
trace (poisson, burst) collapses ``shards=2`` to one effective shard and
reproduces the ``shards=1`` metrics byte-for-byte; the 4-tenant diurnal
scenario is the one where ``shards=4`` actually fans out.
"""

from __future__ import annotations

from functools import partial

from repro.common.rng import make_rng
from repro.common.units import RESNET18_BYTES
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.experiments.common import render_table
from repro.fl.selector import Selector, SelectorConfig
from repro.scenarios.registry import ScenarioRun, scenario
from repro.traces.models import (
    availability_trace,
    diurnal_trace,
    merge_traces,
    mmpp_trace,
    poisson_trace,
)
from repro.traces.replay import ChaosCorrelation, ReplayConfig, TraceReplayEngine
from repro.workloads.fedscale import MOBILE_PROFILE, make_population

N_NODES = 8
SYSTEMS = ("LIFL", "SL-H")
#: the poisson cell additionally replays against baseline SL — its ramped
#: admission is round-start-relative now (RoundAdmission), so mid-replay
#: rounds ramp from their own admission instant instead of stacking
#: sim-clock-sized delays
POISSON_SYSTEMS = ("LIFL", "SL-H", "SL")

_CONFIGS = {
    "LIFL": PlatformConfig.lifl,
    "SL-H": PlatformConfig.sl_h,
    "SL": PlatformConfig.serverless,
}


def _platform(system: str) -> AggregationPlatform:
    nodes = [f"node{i}" for i in range(N_NODES)]
    return AggregationPlatform(_CONFIGS[system](), node_names=nodes)


def _slo_columns(rows: list[dict]) -> str:
    return render_table(
        ["cell", "rounds", "rej", "p50 (s)", "p95 (s)", "p99 (s)", "wait p95", "svc p95", "attained"],
        [
            (
                r["cell"],
                r["rounds"],
                r["rejected"],
                f"{r['latency_p50_s']:.2f}",
                f"{r['latency_p95_s']:.2f}",
                f"{r['latency_p99_s']:.2f}",
                f"{r['queue_wait_p95_s']:.2f}",
                f"{r['service_p95_s']:.2f}",
                f"{r['slo_attainment']:.1%}",
            )
            for r in rows
        ],
    )


# ------------------------------------------------------------ poisson / SLO
POISSON_RATES = (12, 40)  # rounds/min
POISSON_HORIZON_S = 600.0
POISSON_SLO_S = 12.0
SHARD_AXIS = (1, 2)


def run_poisson_cell(system: str, rate_per_min: int, seed: int, shards: int = 1) -> dict:
    trace = poisson_trace(rate_per_min, POISSON_HORIZON_S, seed=seed)
    replay = TraceReplayEngine(
        None,
        trace,
        ReplayConfig(
            round_updates=8,
            nbytes=RESNET18_BYTES,
            max_inflight=2,
            queue_limit=6,
            slo_target_s=POISSON_SLO_S,
        ),
        seed=seed,
        platform_factory=partial(_platform, system),
    )
    row = replay.run(shards=shards).row()
    row.update(
        system=system,
        rate_per_min=rate_per_min,
        shards=shards,
        cell=f"{system}@{rate_per_min}/min/s{shards}",
    )
    return row


def _render_poisson(rows: list[dict]) -> str:
    lines = [
        f"Poisson serving — {POISSON_HORIZON_S:.0f}s of open-loop round arrivals, "
        f"8-update ResNet-18 rounds, SLO {POISSON_SLO_S:.0f}s end-to-end"
    ]
    lines.append(_slo_columns(rows))
    by = {(r["system"], r["rate_per_min"]): r for r in rows if r.get("shards", 1) == 1}
    gaps = []
    for rate in POISSON_RATES:
        lifl, slh = by.get(("LIFL", rate)), by.get(("SL-H", rate))
        if lifl and slh:
            gaps.append(
                f"{rate}/min: LIFL {lifl['slo_attainment']:.1%} vs SL-H {slh['slo_attainment']:.1%}"
            )
    if gaps:  # absent under a single-system --filter
        lines.append("\nSLO attainment by rate: " + "; ".join(gaps))
    return "\n".join(lines)


@scenario(
    name="trace-poisson-slo",
    title="Poisson arrival-driven serving with SLO percentiles (non-paper)",
    grid={"system": POISSON_SYSTEMS, "rate_per_min": POISSON_RATES, "shards": SHARD_AXIS},
    render=_render_poisson,
    workload=f"{N_NODES} nodes, {POISSON_HORIZON_S:.0f}s Poisson traces, 8-update rounds",
    metrics=("latency_p50_s", "latency_p95_s", "latency_p99_s", "slo_attainment"),
    paper=False,
    tags=('traces', 'slo'),
)
def trace_poisson_scenario(run_spec: ScenarioRun) -> list[dict]:
    """One (system, rate, shards) serving cell; trace shared across systems."""
    seed = _shared_seed(run_spec, "poisson")
    return [
        run_poisson_cell(
            run_spec.params["system"],
            run_spec.params["rate_per_min"],
            seed,
            shards=run_spec.params["shards"],
        )
    ]


def _shared_seed(run_spec: ScenarioRun, stream: str) -> int:
    """One workload seed per campaign, shared across the system axis so
    every system serves the identical trace."""
    return int(
        make_rng(run_spec.campaign_seed, f"trace:{stream}").integers(0, 2**31 - 1)
    )


# --------------------------------------------------- diurnal / multi-tenant
DIURNAL_TENANTS = 4
DIURNAL_HORIZON_S = 900.0
DIURNAL_PERIOD_S = 300.0
DIURNAL_BASE_RATE = 4.0  # rounds/min/tenant
DIURNAL_SLO_S = 8.0
DIURNAL_CLIENTS = 120


DIURNAL_SHARD_AXIS = (1, 2, 4)


def _diurnal_replay(system: str, seed: int) -> TraceReplayEngine:
    """Build (without running) the diurnal cell's replay engine — the
    scenario and ``repro.perf.bench``'s sharded macro share this."""
    traces = [
        diurnal_trace(
            DIURNAL_BASE_RATE,
            DIURNAL_HORIZON_S,
            amplitude=0.7,
            period=DIURNAL_PERIOD_S,
            seed=seed,
            tenant=t,
        )
        for t in range(DIURNAL_TENANTS)
    ]
    trace = merge_traces(*traces)
    population = make_population(
        DIURNAL_CLIENTS, profile=MOBILE_PROFILE, seed=seed
    )
    avail = availability_trace(
        DIURNAL_CLIENTS,
        DIURNAL_HORIZON_S,
        seed=seed,
        mean_session=150.0,
        mean_gap=70.0,
        day_night_amplitude=0.6,
        period=DIURNAL_PERIOD_S,
        prefix=MOBILE_PROFILE.name,
    )
    selector = Selector(SelectorConfig(aggregation_goal=8, over_provision=1.2))
    return TraceReplayEngine(
        None,
        trace,
        ReplayConfig(
            round_updates=8,
            nbytes=RESNET18_BYTES,
            max_inflight=3,
            queue_limit=8,
            slo_target_s=DIURNAL_SLO_S,
        ),
        availability=avail,
        weights=population.weights(),
        selector=selector,
        clients=population.clients,
        seed=seed,
        platform_factory=partial(_platform, system),
    )


def run_diurnal_cell(system: str, seed: int, shards: int = 1) -> dict:
    result = _diurnal_replay(system, seed).run(shards=shards)
    row = result.row()
    row.update(system=system, shards=shards, cell=f"{system}/s{shards}")
    return row


def _render_diurnal(rows: list[dict]) -> str:
    lines = [
        f"Diurnal multi-tenant serving — {DIURNAL_TENANTS} tenants × "
        f"{DIURNAL_HORIZON_S:.0f}s sinusoidal-rate traces, availability-aware "
        f"sampling over {DIURNAL_CLIENTS} mobile clients, SLO {DIURNAL_SLO_S:.0f}s"
    ]
    lines.append(_slo_columns(rows))
    lines.append(
        "\npeak overlapping rounds: "
        + ", ".join(f"{r['cell']}={r['peak_inflight']}" for r in rows)
    )
    return "\n".join(lines)


@scenario(
    name="trace-diurnal-multitenant",
    title="4-tenant diurnal trace serving, availability-aware (non-paper)",
    grid={"system": SYSTEMS, "shards": DIURNAL_SHARD_AXIS},
    render=_render_diurnal,
    workload=(
        f"{N_NODES} nodes, {DIURNAL_TENANTS} tenants, diurnal traces over "
        f"{DIURNAL_HORIZON_S:.0f}s, {DIURNAL_CLIENTS}-client mobile population"
    ),
    metrics=("latency_p50_s", "latency_p95_s", "latency_p99_s", "slo_attainment", "peak_inflight"),
    paper=False,
    tags=('traces', 'slo'),
)
def trace_diurnal_scenario(run_spec: ScenarioRun) -> list[dict]:
    """One system serving the shared 4-tenant diurnal workload, optionally
    sharded tenant-affine across worker processes."""
    return [
        run_diurnal_cell(
            run_spec.params["system"],
            _shared_seed(run_spec, "diurnal"),
            shards=run_spec.params["shards"],
        )
    ]


# --------------------------------------------------------- bursts + chaos
BURST_HORIZON_S = 600.0
BURST_SLO_S = 20.0
BURST_CLIENTS = 80


def run_burst_cell(system: str, chaos: str, seed: int, shards: int = 1) -> dict:
    trace = mmpp_trace(
        calm_rate_per_min=3.0,
        burst_rate_per_min=30.0,
        horizon=BURST_HORIZON_S,
        mean_calm=90.0,
        mean_burst=25.0,
        seed=seed,
    )
    avail = availability_trace(
        BURST_CLIENTS,
        BURST_HORIZON_S,
        seed=seed,
        mean_session=90.0,
        mean_gap=80.0,
        day_night_amplitude=0.8,
        period=200.0,
    )
    correlation = (
        ChaosCorrelation(dip_threshold=0.55, max_fraction=0.9, wave_delay_s=0.25, quorum_fraction=0.5)
        if chaos == "on"
        else None
    )
    replay = TraceReplayEngine(
        None,
        trace,
        ReplayConfig(
            round_updates=8,
            nbytes=RESNET18_BYTES,
            max_inflight=3,
            queue_limit=8,
            slo_target_s=BURST_SLO_S,
            arrival_spread_s=4.0,
        ),
        availability=avail,
        chaos=correlation,
        seed=seed,
        platform_factory=partial(_platform, system),
    )
    result = replay.run(shards=shards)
    row = result.row()
    row.update(
        system=system, chaos=chaos, shards=shards, cell=f"{system}/chaos={chaos}/s{shards}"
    )
    return row


def _render_burst(rows: list[dict]) -> str:
    lines = [
        f"Bursty serving under correlated chaos — MMPP round arrivals over "
        f"{BURST_HORIZON_S:.0f}s, dropout waves during availability dips, "
        f"SLO {BURST_SLO_S:.0f}s"
    ]
    lines.append(_slo_columns(rows))
    chaos_rows = [r for r in rows if r["chaos"] == "on" and r.get("shards", 1) == 1]
    if chaos_rows:
        lines.append(
            "\nchaos: "
            + ", ".join(
                f"{r['system']}: {r['chaos_waves']} waves, "
                f"{r['clients_dropped']} clients dropped, {r['aborted']} aborts"
                for r in chaos_rows
            )
        )
    return "\n".join(lines)


@scenario(
    name="trace-burst-chaos",
    title="MMPP burst serving with availability-correlated chaos (non-paper)",
    grid={"system": SYSTEMS, "chaos": ("off", "on"), "shards": SHARD_AXIS},
    render=_render_burst,
    workload=f"{N_NODES} nodes, MMPP bursts over {BURST_HORIZON_S:.0f}s, {BURST_CLIENTS}-client churny population",
    metrics=("latency_p95_s", "slo_attainment", "chaos_waves", "clients_dropped", "aborted"),
    paper=False,
    tags=('traces', 'slo', 'chaos'),
)
def trace_burst_scenario(run_spec: ScenarioRun) -> list[dict]:
    """One (system, chaos on/off, shards) cell on the shared burst workload."""
    seed = _shared_seed(run_spec, "burst")
    return [
        run_burst_cell(
            run_spec.params["system"],
            run_spec.params["chaos"],
            seed,
            shards=run_spec.params["shards"],
        )
    ]


def main() -> None:
    from repro.scenarios.runner import run_scenario

    for name in ("trace-poisson-slo", "trace-diurnal-multitenant", "trace-burst-chaos"):
        print(run_scenario(name).text)
        print()


if __name__ == "__main__":
    main()
