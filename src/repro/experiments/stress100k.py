"""100k-client, 10k-participant partitioned-round stress (non-paper).

``stress500-multitenant`` capped the record round at 500 nodes because
every client was a Python object and sharding could only split whole
tenants.  This scenario exercises the two refactors that lift that cap:

* the **struct-of-arrays population** (:mod:`repro.fl.population`) holds
  the 100k-client fleet as numpy arrays — availability masks, selection,
  and timing draws are single vectorized kernels;
* the **partitioned fabric protocol** (:mod:`repro.core.partition`) cuts
  each round's cohort across worker processes along the ``HierarchyPlan``
  boundary — leaf/mid aggregators run local to their cohort on their own
  environment and fabric, and only the per-node intermediate updates cross
  the partition into the root phase.

The round itself uses the ``gateway-coalesced`` ingress stage: one walker
process wakes each arrival batch instead of one heap entry per client.

The measured quantity is the steady-state round (warm pool stocked by a
first identical-shape round), and the **shards axis is a determinism
probe**: the partitioned protocol is exact, so ACT, CPU, and every
counter must be identical at shards=1/2/4 — the render flags any drift.
Wall-clock speedup is deliberately *not* a scenario row (rows must be
byte-deterministic across hosts); the recorded perf numbers live in
``macro_stress100k`` (``python -m repro.perf.bench --only stress100k``).
"""

from __future__ import annotations

from repro.common.rng import make_rng
from repro.common.units import RESNET18_BYTES
from repro.core.partition import PartitionedRoundEngine
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.experiments.common import render_table
from repro.fl.population import ClientPopulation
from repro.fl.selector import Selector, SelectorConfig
from repro.scenarios.registry import ScenarioRun, scenario

SEED = 17
SCALES: dict[str, tuple[int, int, int]] = {
    # scale -> (clients, participants per round, nodes)
    "5k": (5_000, 500, 25),
    "100k": (100_000, 10_000, 500),
}
SHARD_AXIS = (1, 2, 4)
HORIZON_S = 600.0
MEAN_SESSION_S = 240.0
MEAN_GAP_S = 120.0


def build_population(scale: str) -> ClientPopulation:
    clients, _, _ = SCALES[scale]
    return ClientPopulation.generate(
        clients,
        seed=SEED,
        horizon=HORIZON_S,
        mean_session=MEAN_SESSION_S,
        mean_gap=MEAN_GAP_S,
    )


def round_arrivals(
    population: ClientPopulation, scale: str, round_idx: int
) -> list[tuple[float, float]]:
    """One round's (arrival offset, FedAvg weight) pairs, fully batched:
    availability mask at the round's start, vectorized selection, then one
    hibernation + one training-duration draw per participant."""
    _, participants, _ = SCALES[scale]
    selector = Selector(SelectorConfig(aggregation_goal=participants, over_provision=1.0))
    rng = make_rng(SEED, f"stress100k:{scale}:r{round_idx}")
    at = round_idx * 60.0
    picked = selector.select_population(population, rng, population.available_mask(at))
    offsets = population.hibernations(rng, picked) + population.training_durations(rng, picked)
    weights = population.weights(picked)
    return [(float(off), float(w)) for off, w in zip(offsets, weights)]


def run_cell(scale: str, shards: int, inline: bool = False) -> dict:
    """Warm round + measured round through the partitioned engine."""
    _, participants, n_nodes = SCALES[scale]
    nodes = [f"node{i:03d}" for i in range(n_nodes)]

    def factory() -> AggregationPlatform:
        cfg = PlatformConfig.lifl(ingress_stage="gateway-coalesced")
        return AggregationPlatform(cfg, node_names=list(nodes))

    population = build_population(scale)
    rounds = [round_arrivals(population, scale, r) for r in range(2)]
    engine = PartitionedRoundEngine(factory, shards=shards)
    run = engine.run(rounds, RESNET18_BYTES, inline=inline)
    measured = run.results[1]
    return {
        "scale": scale,
        "shards": shards,
        "clients": population.size,
        "participants": participants,
        "act_s": measured.act,
        "total_weight": measured.total_weight,
        "cpu_s": measured.cpu_total,
        "cross_node_transfers": measured.cross_node_transfers,
        "aggregators_reused": measured.aggregators_reused,
        "updates": measured.updates_aggregated,
    }


def _render(rows: list[dict]) -> str:
    lines = ["Stress 100k — partitioned cohorts over a struct-of-arrays population"]
    lines.append(
        render_table(
            ["scale", "shards", "clients", "ACT (s)", "CPU (s)", "x-node", "# reused", "updates"],
            [
                (
                    r["scale"],
                    r["shards"],
                    r["clients"],
                    f"{r['act_s']:.1f}",
                    f"{r['cpu_s']:.0f}",
                    r["cross_node_transfers"],
                    r["aggregators_reused"],
                    r["updates"],
                )
                for r in rows
            ],
        )
    )
    for scale in SCALES:
        acts = {r["act_s"] for r in rows if r["scale"] == scale}
        if len(acts) > 1:
            lines.append(
                f"\nWARNING: {scale} ACT varies across the shard axis ({sorted(acts)}) — "
                "the partitioned protocol should be exact"
            )
        elif acts:
            lines.append(f"\n{scale}: partition-invariant ACT {acts.pop():.3f}s")
    return "\n".join(lines)


@scenario(
    name="stress100k",
    title="100k-client, 10k-participant partitioned rounds (non-paper)",
    grid={"scale": tuple(SCALES), "shards": SHARD_AXIS},
    render=_render,
    workload="100k SoA clients, 10k-update LIFL rounds cut across cohort shards",
    metrics=("act_s", "cpu_s", "cross_node_transfers", "updates"),
    paper=False,
    tags=('perf', 'scale'),
)
def stress100k_scenario(run_spec: ScenarioRun) -> list[dict]:
    """One (scale, shards) cell; all draws key off the scale, never the
    shard count, so the shard axis must reproduce identical rows."""
    return [run_cell(run_spec.params["scale"], run_spec.params["shards"])]


def main() -> None:
    from repro.scenarios.runner import run_scenario

    print(run_scenario("stress100k").text)


if __name__ == "__main__":
    main()
