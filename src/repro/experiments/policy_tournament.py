"""Policy tournament (non-paper): rank registered policies by SLO
attainment per simulated cost.

The policy registry (:mod:`repro.core.policies`) makes every decision
family — client selection, round placement, admission control, failure
recovery — a named, swappable strategy.  This scenario runs the natural
follow-up experiment: a **tournament** that sweeps contenders from each
family across a grid of workloads and ranks them on a single
efficiency score, ``attainment_per_cost`` = SLO attainment ÷ CPU-seconds
of simulated aggregation work (``cpu_work + cpu_reserved`` over every
finished round).  A policy that hits the SLO by burning twice the
compute ranks below one that hits it lean.

Every cell serves one workload with exactly one family swapped off its
default (the contender) and the other three pinned to their defaults, so
a contender's score is attributable to that one decision seam.  The
default-named contenders (``selection:availability-aware``,
``placement:locality``, ``admission:bounded-queue``,
``recovery:shrink-or-abort``) therefore all replay the *identical*
all-defaults cell — they are the shared reference row of each workload's
bracket.

Workloads (all availability-aware, all chaos-correlated so recovery
actually engages, all cost-tracked):

* ``poisson`` — one tenant, open-loop Poisson arrivals on the 8-node
  fleet; the steady-state bracket.
* ``diurnal`` — two tenants on sinusoidal-rate traces whose availability
  dips coincide with arrival peaks; the contended bracket.
* ``placement-chaos`` — a rack partition plus a NIC brown-out mid-replay
  with per-node capacity cut so rounds must spread; the adversarial
  bracket (placement and admission differences dominate here).

Determinism matches the other trace scenarios: one workload seed per
campaign shared across the contender axis, every random draw funneled
through the policies' injected RNG streams — sequential and ``--jobs N``
campaigns are byte-identical, which the tournament tests pin.
"""

from __future__ import annotations

from functools import partial

from repro.chaos.plan import FaultPlan, NicDegrade, PartitionWindow
from repro.cluster.node import NodeSpec
from repro.common.rng import make_rng
from repro.common.units import RESNET18_BYTES
from repro.controlplane.reactive import ControllerConfig
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.core.policies import DEFAULTS
from repro.experiments.common import render_table
from repro.fl.selector import Selector, SelectorConfig
from repro.scenarios.registry import ScenarioRun, scenario
from repro.traces.models import (
    availability_trace,
    diurnal_trace,
    merge_traces,
    poisson_trace,
)
from repro.traces.replay import ChaosCorrelation, ReplayConfig, TraceReplayEngine
from repro.workloads.fedscale import MOBILE_PROFILE, make_population

N_NODES = 8

#: ``family:policy`` strings — ≥2 contenders per family; the default-named
#: ones double as each bracket's all-defaults reference row
CONTENDERS = (
    "selection:availability-aware",
    "selection:random",
    "placement:locality",
    "placement:lpt",
    "admission:bounded-queue",
    "admission:drop-head",
    "admission:defer-with-deadline",
    "recovery:shrink-or-abort",
    "recovery:abort-fast",
)

WORKLOADS = ("poisson", "diurnal", "placement-chaos")

TOURNAMENT_HORIZON_S = 240.0
TOURNAMENT_CLIENTS = 60
TOURNAMENT_SLO_S = 15.0
#: standalone deferral deadline; also the reactive controller's deadline in
#: the placement-chaos bracket (admission is explicit per cell, so a
#: positive controller deadline never flips the default policy choice)
TOURNAMENT_DEFER_S = 8.0

CHAOS_RACK0 = tuple(f"node{i}" for i in range(4))
CHAOS_PARTITION = (60.0, 150.0)
CHAOS_NODE_CAPACITY = 2


def _picks(contender: str) -> dict[str, str]:
    """Explicit policy name per family: defaults with one family swapped."""
    family, name = contender.split(":", 1)
    picks = dict(DEFAULTS)
    if family not in picks:
        raise ValueError(f"contender {contender!r} names unknown family")
    picks[family] = name
    return picks


def _fleet(round_placement: str, capacity: int = 0) -> AggregationPlatform:
    nodes = [f"node{i}" for i in range(N_NODES)]
    spec = (
        NodeSpec(name="template", max_service_capacity=capacity) if capacity else None
    )
    return AggregationPlatform(
        PlatformConfig.lifl(round_placement=round_placement),
        node_names=nodes,
        node_spec=spec,
    )


def _client_pool(seed: int):
    """Shared mobile population + availability for every workload: the
    selection bracket needs eligibility to actually vary over time."""
    population = make_population(
        TOURNAMENT_CLIENTS, profile=MOBILE_PROFILE, seed=seed
    )
    avail = availability_trace(
        TOURNAMENT_CLIENTS,
        TOURNAMENT_HORIZON_S,
        seed=seed,
        mean_session=110.0,
        mean_gap=60.0,
        day_night_amplitude=0.8,
        period=120.0,
        prefix=MOBILE_PROFILE.name,
    )
    selector = Selector(SelectorConfig(aggregation_goal=8, over_provision=1.25))
    return population, avail, selector


def _trace(workload: str, seed: int):
    if workload == "poisson":
        return poisson_trace(30.0, TOURNAMENT_HORIZON_S, seed=seed)
    if workload == "diurnal":
        return merge_traces(
            *(
                diurnal_trace(
                    10.0,
                    TOURNAMENT_HORIZON_S,
                    amplitude=0.7,
                    period=120.0,
                    seed=seed,
                    tenant=t,
                )
                for t in range(2)
            )
        )
    if workload == "placement-chaos":
        return poisson_trace(10.0, TOURNAMENT_HORIZON_S, seed=seed)
    raise ValueError(f"unknown workload {workload!r}")


def _chaos_fault_plan(seed: int) -> FaultPlan:
    start, end = CHAOS_PARTITION
    return FaultPlan(
        seed=seed,
        partitions=(PartitionWindow(nodes=CHAOS_RACK0, start=start, end=end),),
        nic_degradations=(
            NicDegrade(node="node4", start=start, end=end, factor=0.3),
        ),
    )


def _chaos_controller() -> ControllerConfig:
    """The placement-chaos bracket's watchdog + health-aware placement
    (pool/admission scaling off so the contender axis stays isolated)."""
    return ControllerConfig(
        pool_scaling=False,
        admission_control=False,
        placement_aware=True,
        min_rate_factor=0.5,
        placement_retries=3,
        retry_backoff_s=1.0,
        round_deadline_s=15.0,
        defer_deadline_s=TOURNAMENT_DEFER_S,
    )


def run_tournament_cell(workload: str, contender: str, seed: int) -> dict:
    picks = _picks(contender)
    population, avail, selector = _client_pool(seed)
    chaos = ChaosCorrelation(
        dip_threshold=0.65,
        max_fraction=0.8,
        wave_delay_s=0.5,
        quorum_fraction=0.5,
        recovery_policy=picks["recovery"],
    )
    with_controller = workload == "placement-chaos"
    replay = TraceReplayEngine(
        None,
        _trace(workload, seed),
        ReplayConfig(
            round_updates=8,
            nbytes=RESNET18_BYTES,
            max_inflight=2,
            queue_limit=3,
            slo_target_s=TOURNAMENT_SLO_S,
            selection_policy=picks["selection"],
            admission_policy=picks["admission"],
            defer_deadline_s=TOURNAMENT_DEFER_S,
            track_cost=True,
        ),
        availability=avail,
        weights=population.weights(),
        selector=selector,
        clients=population.clients,
        chaos=chaos,
        seed=seed,
        platform_factory=partial(
            _fleet,
            picks["placement"],
            CHAOS_NODE_CAPACITY if with_controller else 0,
        ),
        controller=_chaos_controller() if with_controller else None,
        fault_plan=_chaos_fault_plan(seed) if with_controller else None,
    )
    row = replay.run().row()
    row.update(
        workload=workload,
        contender=contender,
        family=contender.split(":", 1)[0],
        cell=f"{workload}/{contender}",
    )
    return row


def _render_tournament(rows: list[dict]) -> str:
    lines = [
        f"Policy tournament — {len(CONTENDERS)} contenders × "
        f"{len(WORKLOADS)} workloads over {TOURNAMENT_HORIZON_S:.0f}s each, "
        f"SLO {TOURNAMENT_SLO_S:.0f}s, ranked by SLO attainment per "
        "CPU-second of simulated aggregation work"
    ]
    winners = []
    for workload in WORKLOADS:
        bracket = [r for r in rows if r["workload"] == workload]
        if not bracket:
            continue  # absent under a single-workload --filter
        bracket.sort(key=lambda r: (-r["attainment_per_cost"], r["contender"]))
        lines.append(f"\n{workload}:")
        lines.append(
            render_table(
                ["#", "contender", "rounds", "rej", "abort", "p95 (s)", "attained", "cost (cpu·s)", "attain/cost"],
                [
                    (
                        rank,
                        r["contender"],
                        r["rounds"],
                        r["rejected"],
                        r["aborted"],
                        f"{r['latency_p95_s']:.2f}",
                        f"{r['slo_attainment']:.1%}",
                        f"{r['cost_cpu_s']:.1f}",
                        f"{r['attainment_per_cost']:.6f}",
                    )
                    for rank, r in enumerate(bracket, start=1)
                ],
            )
        )
        winners.append(f"{workload}: {bracket[0]['contender']}")
    if winners:
        lines.append("\nbracket winners: " + "; ".join(winners))
    return "\n".join(lines)


@scenario(
    name="policy-tournament",
    title="Policy tournament: attainment-per-cost brackets (non-paper)",
    grid={"workload": WORKLOADS, "contender": CONTENDERS},
    render=_render_tournament,
    workload=(
        f"{N_NODES} nodes, {len(WORKLOADS)} workloads × "
        f"{TOURNAMENT_HORIZON_S:.0f}s, {TOURNAMENT_CLIENTS}-client mobile "
        "population, one policy family swapped per cell"
    ),
    metrics=("slo_attainment", "cost_cpu_s", "attainment_per_cost"),
    paper=False,
    tags=('policies',),
)
def policy_tournament_scenario(run_spec: ScenarioRun) -> list[dict]:
    """One (workload, contender) cell; the workload seed is shared across
    the contender axis so every policy serves identical arrivals."""
    workload = run_spec.params["workload"]
    seed = int(
        make_rng(run_spec.campaign_seed, f"tournament:{workload}").integers(
            0, 2**31 - 1
        )
    )
    return [run_tournament_cell(workload, run_spec.params["contender"], seed)]


def main() -> None:
    from repro.scenarios.runner import run_scenario

    print(run_scenario("policy-tournament").text)


if __name__ == "__main__":
    main()
