"""Experiment harness: one module per paper figure.

Every module exposes ``run(...)`` returning structured rows and a
``main()`` that prints the same rows/series the paper reports.  The
benchmark suite calls ``run``; ``python -m repro.experiments.figXX`` prints
a table.  DESIGN.md §3 maps each experiment to its figure.
"""

from repro.experiments import (  # noqa: F401
    capacity,
    fig04_hierarchy_dataplane,
    fig07_dataplane,
    fig08_orchestration,
    fig09_fl_workloads,
    fig10_timeseries,
    fig13_queuing,
    overhead,
)

__all__ = [
    "capacity",
    "fig04_hierarchy_dataplane",
    "fig07_dataplane",
    "fig08_orchestration",
    "fig09_fl_workloads",
    "fig10_timeseries",
    "fig13_queuing",
    "overhead",
]
