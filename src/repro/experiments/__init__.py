"""Experiment harness: a scenario registry plus a parallel campaign runner.

Every experiment — the eight paper figures/tables and the non-paper
scenarios — registers itself with the
:func:`~repro.scenarios.registry.scenario` decorator: a name, a parameter
grid, a run function returning JSON rows, and a ``render`` callable that
turns the collected rows into the report text.  The
:class:`~repro.scenarios.runner.CampaignRunner` expands each scenario's
grid into independent runs and executes them sequentially or on a
``multiprocessing`` pool, with a deterministic seed per run — parallel and
sequential campaigns print byte-identical reports.

Command line::

    python -m repro.experiments                  # every scenario
    python -m repro.experiments --list           # catalogue + grids
    python -m repro.experiments fig08 stress     # prefix match
    python -m repro.experiments --jobs 4         # parallel campaign
    python -m repro.experiments --out results/   # also write JSON rows

Registering a new scenario: write a module exposing a run function
decorated with ``@scenario(name=..., title=..., grid=..., render=...)``,
import it here so discovery sees it, and it appears in ``--list`` and the
campaign automatically.  ``run`` receives a
:class:`~repro.scenarios.registry.ScenarioRun` (grid point + derived seed)
and returns a list of flat JSON rows; ``render`` receives every run's rows
concatenated in grid order.

Paper-figure modules also keep their original ``run(...)`` helpers
returning structured dataclass rows — tests and benchmarks drive those
directly; DESIGN.md §3 maps each experiment to its figure.
"""

from repro.experiments import (  # noqa: F401  (import order = catalogue order)
    fig04_hierarchy_dataplane,
    fig07_dataplane,
    fig08_orchestration,
    fig09_fl_workloads,
    fig10_timeseries,
    fig13_queuing,
    overhead,
    capacity,
    mixed_fleet,
    stress50,
    chaos_sweep,
    hetero_nic,
    stress500,
    stress100k,
    trace_scenarios,
    controlplane_scenarios,
    policy_tournament,
    geo_scenarios,
)

__all__ = [
    "capacity",
    "chaos_sweep",
    "controlplane_scenarios",
    "fig04_hierarchy_dataplane",
    "fig07_dataplane",
    "fig08_orchestration",
    "fig09_fl_workloads",
    "fig10_timeseries",
    "fig13_queuing",
    "geo_scenarios",
    "hetero_nic",
    "mixed_fleet",
    "overhead",
    "policy_tournament",
    "stress50",
    "stress100k",
    "stress500",
    "trace_scenarios",
]
