"""§6.1 "Orchestration overhead of LIFL" — control-plane costs.

Paper numbers: locality-aware placement completes in **< 17 ms even with
10K clients** (the largest client count in Google's production FL stack);
the EWMA estimator costs **0.2 ms per estimate** against a 2-minute re-plan
cycle; reuse and eager aggregation add no control-plane work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.controlplane.autoscaler import EwmaEstimator
from repro.controlplane.placement import BestFitPlacer, NodeCapacity
from repro.experiments.common import render_table
from repro.scenarios.registry import ScenarioRun, scenario


@dataclass
class OverheadRow:
    operation: str
    measured_ms: float
    paper_budget_ms: float


def time_placement(n_clients: int, n_nodes: int = 100, repeats: int = 5) -> float:
    """Best (most stable) wall time of one full placement, in ms."""
    placer = BestFitPlacer()
    nodes = [NodeCapacity(f"node{i}", max_capacity=max(20, n_clients // n_nodes + 5)) for i in range(n_nodes)]
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        placer.place(n_clients, nodes)
        best = min(best, (time.perf_counter() - t0) * 1e3)
    return best


def time_ewma(estimates: int = 1000) -> float:
    """Mean ms per EWMA estimate."""
    est = EwmaEstimator(0.7)
    t0 = time.perf_counter()
    for i in range(estimates):
        est.update(float(i % 50))
    return (time.perf_counter() - t0) * 1e3 / estimates


def run() -> list[OverheadRow]:
    return [
        OverheadRow("placement, 1K clients", time_placement(1000), 17.0),
        OverheadRow("placement, 10K clients", time_placement(10_000), 17.0),
        OverheadRow("EWMA per estimate", time_ewma(), 0.2),
    ]


def _render(rows: list[dict]) -> str:
    return "§6.1 — orchestration overhead\n" + render_table(
        ["operation", "measured (ms)", "paper budget (ms)"],
        [(r["operation"], f"{r['measured_ms']:.3f}", r["paper_budget_ms"]) for r in rows],
    )


@scenario(
    name="overhead",
    title="orchestration overhead of LIFL (control-plane wall time)",
    render=_render,
    workload="placement at 1K/10K clients, EWMA estimates",
    metrics=("measured_ms",),
    tags=('paper',),
)
def overhead_scenario(run_spec: ScenarioRun) -> list[dict]:
    """§6.1: wall-clock measurements — rows vary run to run by nature."""
    return [
        {
            "operation": r.operation,
            "measured_ms": r.measured_ms,
            "paper_budget_ms": r.paper_budget_ms,
        }
        for r in run()
    ]


def main() -> None:
    from repro.scenarios.runner import run_scenario

    print(run_scenario("overhead").text)


if __name__ == "__main__":
    main()
