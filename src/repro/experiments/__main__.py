"""Regenerate every paper table/figure in one run.

Usage::

    python -m repro.experiments            # all figures
    python -m repro.experiments fig08      # just one (prefix match)
"""

from __future__ import annotations

import sys

from repro.experiments import (
    capacity,
    fig04_hierarchy_dataplane,
    fig07_dataplane,
    fig08_orchestration,
    fig09_fl_workloads,
    fig10_timeseries,
    fig13_queuing,
    overhead,
)

_ALL = [
    ("fig04", fig04_hierarchy_dataplane),
    ("fig07", fig07_dataplane),
    ("fig08", fig08_orchestration),
    ("fig09", fig09_fl_workloads),
    ("fig10", fig10_timeseries),
    ("fig13", fig13_queuing),
    ("overhead", overhead),
    ("capacity", capacity),
]


def main(argv: list[str]) -> int:
    wanted = argv[1:] if len(argv) > 1 else None
    ran = 0
    for name, module in _ALL:
        if wanted and not any(name.startswith(w) or w.startswith(name) for w in wanted):
            continue
        print("=" * 72)
        print(f"== {name}: {module.__doc__.strip().splitlines()[0]}")
        print("=" * 72)
        module.main()
        print()
        ran += 1
    if ran == 0:
        print(f"no experiment matches {wanted}; have {[n for n, _ in _ALL]}")
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
