"""The campaign CLI: run registered scenarios, list the catalogue.

This is the single entry point every experiment goes through — paper
figures and extensions alike are :func:`~repro.scenarios.registry.scenario`
registrations executed by the
:class:`~repro.scenarios.runner.CampaignRunner` (see
``docs/scenario-authoring.md`` for adding your own).

Usage::

    python -m repro.experiments                     # all scenarios
    python -m repro.experiments fig08               # prefix match
    python -m repro.experiments --list              # show the catalogue
    python -m repro.experiments --jobs 4            # parallel campaign
    python -m repro.experiments --seed 7 --out out/ # seed + JSON rows
    python -m repro.experiments stress50 --filter system=LIFL --filter batch=900
    python -m repro.experiments fig08 --profile     # engine counters per run
    python -m repro.experiments --filter tag=chaos  # by subsystem tag
    python -m repro.experiments trace --telemetry out.jsonl  # record streams
"""

from __future__ import annotations

import argparse
import sys

from repro.scenarios.registry import ScenarioSpec, all_scenarios, match_scenarios
from repro.scenarios.runner import CampaignRunner, RunRecord, parse_filters


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _parse(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run registered scenarios through the campaign runner.",
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        metavar="NAME",
        help="scenario name prefixes to run (default: all)",
    )
    parser.add_argument("--list", action="store_true", help="list scenarios and exit")
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes (default 1)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S", help="campaign seed (default 0)"
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR", help="also write per-scenario JSON rows"
    )
    parser.add_argument(
        "--filter",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        dest="filters",
        help="keep only grid points whose param matches (repeatable; all must match)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect engine counters per run and print a profile summary",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="FILE",
        help="record every run's telemetry stream to one JSONL file",
    )
    return parser.parse_args(argv)


def _list_catalogue() -> None:
    """The catalogue, grouped by subsystem tag (a scenario carrying
    several tags appears under each), with each scenario's one-line
    description (its run function's first docstring line)."""
    specs = all_scenarios()
    groups: list[tuple[str, list[ScenarioSpec]]] = []
    by_tag: dict[str, list[ScenarioSpec]] = {}
    for spec in specs:
        for tag in spec.tags or ("untagged",):
            if tag not in by_tag:
                by_tag[tag] = []
                groups.append((tag, by_tag[tag]))
            by_tag[tag].append(spec)
    width = max((len(s.name) for s in specs), default=14)
    for tag, group in groups:
        print(f"[{tag}]")
        for spec in group:
            n_runs = len(spec.expand())
            grid = ", ".join(f"{k}×{len(v)}" for k, v in spec.grid) or "single run"
            tags = ",".join(spec.tags)
            print(f"  {spec.name:<{width}} {spec.title}")
            if spec.description:
                print(f"  {'':<{width}} {spec.description}")
            print(
                f"  {'':<{width}} runs: {n_runs} ({grid}); tags: {tags}; "
                f"workload: {spec.workload}"
            )
        print()


def main(argv: list[str]) -> int:
    args = _parse(argv[1:])
    if args.list:
        _list_catalogue()
        return 0
    filters = parse_filters(args.filters)
    # ``tag=`` selects whole scenarios by subsystem, not grid points — pop
    # it before the runner would try (and fail) to match it as a grid axis.
    tag = filters.pop("tag", None)
    specs = match_scenarios(args.scenarios or None)
    if tag is not None:
        specs = [s for s in specs if tag in s.tags]
    if not specs:
        have = [s.name for s in all_scenarios()]
        if tag is not None:
            tags = sorted({t for s in all_scenarios() for t in s.tags})
            print(f"no scenario matches {args.scenarios} with tag={tag!r}; tags: {tags}")
        else:
            print(f"no scenario matches {args.scenarios}; have {have}")
        return 2
    runner = CampaignRunner(
        jobs=args.jobs,
        seed=args.seed,
        out_dir=args.out,
        filters=filters,
        profile=args.profile,
        telemetry_path=args.telemetry,
    )
    campaign = runner.run(specs)
    for report in campaign.reports:
        print("=" * 72)
        print(f"== {report.spec.name}: {report.spec.title}")
        print("=" * 72)
        print(report.text)
        print()
    if args.profile:
        print("engine profile (per run):")
        for report in campaign.reports:
            for rec in report.records:
                # One atomic write per run: building the whole multi-line
                # block first keeps cells from interleaving when anything
                # else (a pool worker's stderr, a wrapping harness) writes
                # concurrently under --jobs N.
                sys.stdout.write(_profile_block(report.spec.name, rec))
                sys.stdout.flush()
        print()
    if args.out:
        print(f"JSON rows written to {args.out}/")
    if args.telemetry:
        print(f"telemetry stream written to {args.telemetry}")
    return 0


def _profile_block(scenario: str, rec: RunRecord) -> str:
    """One run's complete ``--profile`` text block, as a single string."""
    perf = rec.perf or {}
    params = ",".join(f"{k}={v}" for k, v in rec.params.items()) or "-"
    lines = [
        f"  {scenario}[{rec.index}] {params}: "
        f"{perf.get('events_processed', 0)} events, "
        f"{perf.get('heap_pushes', 0)} pushes, "
        f"{perf.get('dead_timer_skips', 0)} dead skips, "
        f"peak queue {perf.get('peak_queue_depth', 0)}"
    ]
    indent = " " * (len(scenario) + len(str(rec.index)) + 4)
    per_shard = perf.get("per_shard", {})
    # natural order: shard2 before shard10
    for label in sorted(per_shard, key=lambda s: (len(s), s)):
        shard = per_shard[label]
        # Sharded trace replays report each forked shard's engine work
        # next to the merged totals above.
        lines.append(
            f"  {indent}{label}: {shard.get('events_processed', 0)} events, "
            f"peak queue {shard.get('peak_queue_depth', 0)}"
        )
    for row in rec.rows:
        if "slo_attainment" in row:
            # Trace scenarios: surface the SLO shape next to the engine
            # counters of the same run.
            lines.append(
                f"  {indent}slo: p50={row.get('latency_p50_s', 0.0):.2f}s "
                f"p95={row.get('latency_p95_s', 0.0):.2f}s "
                f"p99={row.get('latency_p99_s', 0.0):.2f}s "
                f"wait_p95={row.get('queue_wait_p95_s', 0.0):.2f}s "
                f"attained={row['slo_attainment']:.1%} "
                f"of {row.get('rounds', 0)} rounds"
            )
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
