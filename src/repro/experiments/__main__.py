"""The campaign CLI: run registered scenarios, list the catalogue.

This is the single entry point every experiment goes through — paper
figures and extensions alike are :func:`~repro.scenarios.registry.scenario`
registrations executed by the
:class:`~repro.scenarios.runner.CampaignRunner` (see
``docs/scenario-authoring.md`` for adding your own).

Usage::

    python -m repro.experiments                     # all scenarios
    python -m repro.experiments fig08               # prefix match
    python -m repro.experiments --list              # show the catalogue
    python -m repro.experiments --jobs 4            # parallel campaign
    python -m repro.experiments --seed 7 --out out/ # seed + JSON rows
    python -m repro.experiments stress50 --filter system=LIFL --filter batch=900
    python -m repro.experiments fig08 --profile     # engine counters per run
"""

from __future__ import annotations

import argparse
import sys

from repro.scenarios.registry import all_scenarios, match_scenarios
from repro.scenarios.runner import CampaignRunner, parse_filters


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _parse(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run registered scenarios through the campaign runner.",
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        metavar="NAME",
        help="scenario name prefixes to run (default: all)",
    )
    parser.add_argument("--list", action="store_true", help="list scenarios and exit")
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes (default 1)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S", help="campaign seed (default 0)"
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR", help="also write per-scenario JSON rows"
    )
    parser.add_argument(
        "--filter",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        dest="filters",
        help="keep only grid points whose param matches (repeatable; all must match)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect engine counters per run and print a profile summary",
    )
    return parser.parse_args(argv)


def _list_catalogue() -> None:
    """The catalogue, grouped paper figures first, then extensions, with
    each scenario's one-line description (its run function's first
    docstring line)."""
    specs = all_scenarios()
    groups = (
        ("Paper figures", [s for s in specs if s.paper]),
        ("Extensions (non-paper)", [s for s in specs if not s.paper]),
    )
    width = max((len(s.name) for s in specs), default=14)
    for heading, group in groups:
        if not group:
            continue
        print(f"{heading}:")
        for spec in group:
            n_runs = len(spec.expand())
            grid = ", ".join(f"{k}×{len(v)}" for k, v in spec.grid) or "single run"
            print(f"  {spec.name:<{width}} {spec.title}")
            if spec.description:
                print(f"  {'':<{width}} {spec.description}")
            print(f"  {'':<{width}} runs: {n_runs} ({grid}); workload: {spec.workload}")
        print()


def main(argv: list[str]) -> int:
    args = _parse(argv[1:])
    if args.list:
        _list_catalogue()
        return 0
    specs = match_scenarios(args.scenarios or None)
    if not specs:
        have = [s.name for s in all_scenarios()]
        print(f"no scenario matches {args.scenarios}; have {have}")
        return 2
    runner = CampaignRunner(
        jobs=args.jobs,
        seed=args.seed,
        out_dir=args.out,
        filters=parse_filters(args.filters),
        profile=args.profile,
    )
    campaign = runner.run(specs)
    for report in campaign.reports:
        print("=" * 72)
        print(f"== {report.spec.name}: {report.spec.title}")
        print("=" * 72)
        print(report.text)
        print()
    if args.profile:
        print("engine profile (per run):")
        for report in campaign.reports:
            for rec in report.records:
                perf = rec.perf or {}
                params = ",".join(f"{k}={v}" for k, v in rec.params.items()) or "-"
                print(
                    f"  {report.spec.name}[{rec.index}] {params}: "
                    f"{perf.get('events_processed', 0)} events, "
                    f"{perf.get('heap_pushes', 0)} pushes, "
                    f"{perf.get('dead_timer_skips', 0)} dead skips, "
                    f"peak queue {perf.get('peak_queue_depth', 0)}"
                )
                per_shard = perf.get("per_shard", {})
                # natural order: shard2 before shard10
                for label in sorted(per_shard, key=lambda s: (len(s), s)):
                    shard = per_shard[label]
                    # Sharded trace replays report each forked shard's
                    # engine work next to the merged totals above.
                    print(
                        f"  {'':<{len(report.spec.name) + len(str(rec.index)) + 4}}"
                        f"{label}: {shard.get('events_processed', 0)} events, "
                        f"peak queue {shard.get('peak_queue_depth', 0)}"
                    )
                for row in rec.rows:
                    if "slo_attainment" in row:
                        # Trace scenarios: surface the SLO shape next to
                        # the engine counters of the same run.
                        print(
                            f"  {'':<{len(report.spec.name) + len(str(rec.index)) + 4}}"
                            f"slo: p50={row.get('latency_p50_s', 0.0):.2f}s "
                            f"p95={row.get('latency_p95_s', 0.0):.2f}s "
                            f"p99={row.get('latency_p99_s', 0.0):.2f}s "
                            f"wait_p95={row.get('queue_wait_p95_s', 0.0):.2f}s "
                            f"attained={row['slo_attainment']:.1%} "
                            f"of {row.get('rounds', 0)} rounds"
                        )
        print()
    if args.out:
        print(f"JSON rows written to {args.out}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
