"""Fig. 7 — data-plane improvement for hierarchical aggregation.

(a) latency and (b) CPU of a single intra-node model-update transfer
between a leaf and the top aggregator, for ResNet-18/34/152, under the
serverful (SF), serverless (SL, with its +SC sidecar and +MB broker shares)
and LIFL data planes.  (c) the LIFL round timeline is produced by
:mod:`repro.experiments.fig04_hierarchy_dataplane`'s third setting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import (
    MB,
    RESNET18_BYTES,
    RESNET34_BYTES,
    RESNET152_BYTES,
    cpu_seconds_to_gcycles,
)
from repro.dataplane.calibration import DEFAULT_CALIBRATION, DataplaneCalibration
from repro.dataplane.pipelines import PipelineKind, intra_node_pipeline
from repro.experiments.common import render_table
from repro.scenarios.registry import ScenarioRun, scenario

MODELS = [
    ("ResNet-18", RESNET18_BYTES),
    ("ResNet-34", RESNET34_BYTES),
    ("ResNet-152", RESNET152_BYTES),
]

#: paper's reported LIFL latencies (s) per model, for the comparison column
PAPER_LIFL_LATENCY = {"ResNet-18": 0.14, "ResNet-34": 0.25, "ResNet-152": 0.76}
PAPER_LIFL_GCYCLES = {"ResNet-18": 0.21, "ResNet-34": 0.24, "ResNet-152": 2.45}


@dataclass
class Fig7Row:
    model: str
    nbytes: float
    system: str
    latency_s: float
    gcycles: float
    sidecar_share_s: float = 0.0
    broker_share_s: float = 0.0


def run(cal: DataplaneCalibration = DEFAULT_CALIBRATION) -> list[Fig7Row]:
    rows: list[Fig7Row] = []
    for model, nbytes in MODELS:
        for kind, label in [
            (PipelineKind.LIFL, "LIFL"),
            (PipelineKind.SERVERFUL, "SF"),
            (PipelineKind.SERVERLESS, "SL"),
        ]:
            cost = intra_node_pipeline(kind, cal).cost(nbytes)
            rows.append(
                Fig7Row(
                    model=model,
                    nbytes=nbytes,
                    system=label,
                    latency_s=cost.latency,
                    gcycles=cpu_seconds_to_gcycles(cost.cpu_seconds),
                    sidecar_share_s=cost.latency_by_group.get("sidecar", 0.0),
                    broker_share_s=cost.latency_by_group.get("broker", 0.0),
                )
            )
    return rows


def headline_ratios(rows: list[Fig7Row]) -> dict[str, float]:
    """The §1 contribution-(1) ratios at ResNet-152."""
    by = {r.system: r for r in rows if r.model == "ResNet-152"}
    return {
        "sf_over_lifl": by["SF"].latency_s / by["LIFL"].latency_s,
        "sl_over_lifl": by["SL"].latency_s / by["LIFL"].latency_s,
        "sl_over_sf": by["SL"].latency_s / by["SF"].latency_s,
    }


def _render(rows: list[dict]) -> str:
    lines = ["Fig. 7(a)/(b) — single intra-node model-update transfer"]
    table = []
    for r in rows:
        paper_lat = PAPER_LIFL_LATENCY.get(r["model"]) if r["system"] == "LIFL" else None
        paper_gc = PAPER_LIFL_GCYCLES.get(r["model"]) if r["system"] == "LIFL" else None
        table.append(
            (
                r["model"],
                r["system"],
                f"{r['latency_s']:.3f}",
                f"{paper_lat:.2f}" if paper_lat else "-",
                f"{r['gcycles']:.2f}",
                f"{paper_gc:.2f}" if paper_gc else "-",
                f"{r['sidecar_share_s']:.3f}" if r["sidecar_share_s"] else "-",
                f"{r['broker_share_s']:.3f}" if r["broker_share_s"] else "-",
            )
        )
    lines.append(
        render_table(
            ["model", "system", "lat (s)", "paper", "Gcycles", "paper", "+SC (s)", "+MB (s)"],
            table,
        )
    )
    ratios = headline_ratios([Fig7Row(**r) for r in rows])
    lines.append(
        f"\nResNet-152 latency ratios: SF/LIFL = {ratios['sf_over_lifl']:.1f}x "
        f"(paper 3x), SL/LIFL = {ratios['sl_over_lifl']:.1f}x (paper 5.8x), "
        f"SL/SF = {ratios['sl_over_sf']:.1f}x (paper 2x)"
    )
    return "\n".join(lines)


@scenario(
    name="fig07",
    title="data-plane improvement for hierarchical aggregation",
    render=_render,
    workload="single intra-node transfer, ResNet-18/34/152",
    metrics=("latency_s", "gcycles"),
    tags=('paper',),
)
def fig07_scenario(run_spec: ScenarioRun) -> list[dict]:
    """Fig. 7(a)/(b): pure cost-model evaluation, one run."""
    return [
        {
            "model": r.model,
            "nbytes": r.nbytes,
            "system": r.system,
            "latency_s": r.latency_s,
            "gcycles": r.gcycles,
            "sidecar_share_s": r.sidecar_share_s,
            "broker_share_s": r.broker_share_s,
        }
        for r in run()
    ]


def main() -> None:
    from repro.scenarios.runner import run_scenario

    print(run_scenario("fig07").text)


if __name__ == "__main__":
    main()
