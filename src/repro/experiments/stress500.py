"""500-node multi-tenant stress scenario (non-paper).

``stress50`` pushed one round an order of magnitude past the paper's
testbed; this scenario pushes the *cluster* another order: a 500-node
fleet (10,000-update capacity) running 2–4 concurrent tenant rounds of 300
ResNet-152 updates each on ONE shared fabric.  Tenants keep their own
aggregator trees and ingress resources but every inter-node byte contends
on the same processor-sharing NIC links — the isolation question a
multi-tenant aggregation service has to answer.

Expected shape: LIFL's locality-aware packing barely touches the wire, so
its per-tenant ACT is nearly flat in the tenant count; SL-H's
locality-agnostic spread crosses nodes for most updates, so added tenants
compound on the shared links.  Like stress50, the steady-state round (warm
pool stocked) is what is measured.
"""

from __future__ import annotations

from repro.common.rng import make_rng
from repro.common.units import RESNET152_BYTES
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.experiments.common import ratio, render_table
from repro.scenarios.registry import ScenarioRun, scenario
from repro.workloads.arrival import concurrent_arrivals

N_NODES = 500
TENANT_BATCH = 300
TENANT_COUNTS = (2, 3, 4)
SYSTEMS = ("LIFL", "SL-H")
ARRIVAL_JITTER_S = 3.0


def run_cell(system: str, tenants: int, seed: int = 1) -> dict:
    """One steady-state multi-tenant round on the 500-node cluster."""
    cfg = PlatformConfig.lifl() if system == "LIFL" else PlatformConfig.sl_h()
    nodes = [f"node{i:03d}" for i in range(N_NODES)]
    platform = AggregationPlatform(cfg, node_names=nodes)
    batches = [
        [
            (t, 1.0)
            for t in concurrent_arrivals(
                TENANT_BATCH,
                jitter=ARRIVAL_JITTER_S,
                rng=make_rng(seed, f"stress500-t{k}"),
            )
        ]
        for k in range(tenants)
    ]
    platform.run_multi_tenant(batches, RESNET152_BYTES)  # warm the pool
    results = platform.run_multi_tenant(batches, RESNET152_BYTES)
    acts = [r.act for r in results]
    return {
        "system": system,
        "tenants": tenants,
        "mean_act_s": sum(acts) / len(acts),
        "max_act_s": max(acts),
        "cpu_s": sum(r.cpu_total for r in results),
        "cross_node_transfers": sum(r.cross_node_transfers for r in results),
        "aggregators_reused": sum(r.aggregators_reused for r in results),
        "updates": tenants * TENANT_BATCH,
    }


def _render(rows: list[dict]) -> str:
    lines = [
        f"Stress 500 — {N_NODES} nodes (MC=20), {TENANT_BATCH}-update tenants "
        f"sharing one fabric"
    ]
    lines.append(
        render_table(
            ["system", "tenants", "mean ACT (s)", "max ACT (s)", "CPU (s)", "x-node", "# reused"],
            [
                (
                    r["system"],
                    r["tenants"],
                    f"{r['mean_act_s']:.1f}",
                    f"{r['max_act_s']:.1f}",
                    f"{r['cpu_s']:.0f}",
                    r["cross_node_transfers"],
                    r["aggregators_reused"],
                )
                for r in rows
            ],
        )
    )
    by = {(r["system"], r["tenants"]): r for r in rows}
    gaps = []
    for tenants in TENANT_COUNTS:
        slh = by.get(("SL-H", tenants))
        lifl = by.get(("LIFL", tenants))
        if slh and lifl:
            gaps.append(f"{tenants}: {ratio(slh['mean_act_s'], lifl['mean_act_s']):.2f}x")
    if gaps:  # absent under a single-system --filter
        lines.append("\nSL-H/LIFL mean-ACT ratio by tenant count: " + ", ".join(gaps))
    return "\n".join(lines)


@scenario(
    name="stress500-multitenant",
    title="500-node, 2-4 tenant shared-fabric stress (non-paper)",
    grid={"system": SYSTEMS, "tenants": TENANT_COUNTS},
    render=_render,
    workload=f"{N_NODES} nodes, {'/'.join(map(str, TENANT_COUNTS))} tenants x {TENANT_BATCH} ResNet-152 updates",
    metrics=("mean_act_s", "max_act_s", "cpu_s", "cross_node_transfers"),
    paper=False,
    tags=('chaos', 'scale'),
)
def stress500_scenario(run_spec: ScenarioRun) -> list[dict]:
    """One (system, tenant-count) cell; arrivals seeded like stress50."""
    return [run_cell(run_spec.params["system"], run_spec.params["tenants"])]


def main() -> None:
    from repro.scenarios.runner import run_scenario

    print(run_scenario("stress500-multitenant").text)


if __name__ == "__main__":
    main()
