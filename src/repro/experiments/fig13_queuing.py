"""Fig. 13 / Appendix F — message-queuing overheads of the Fig. 5 designs.

One model update travels client → aggregator under each design (SF-mono,
SF-micro, SL-B, LIFL) for M1/M2/M3 = ResNet-18/34/152.  Reported: CPU cost,
normalized memory cost (queue-resident copies), and end-to-end delay.

Paper shape: SL-B consumes 3× the memory of SF-mono/LIFL; LIFL's CPU is
~1.5× / ~1.9× less than SL-B / SF-micro; delay ~1.3× / ~1.7× less; LIFL is
equivalent to the monolithic serverful design.  Appendix F.1's stateful-tax
comparison falls out of the same pipelines: the gateway (LIFL's only
stateful component) is the cheapest of the four designs' stateful parts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import RESNET18_BYTES, RESNET34_BYTES, RESNET152_BYTES
from repro.dataplane.calibration import DEFAULT_CALIBRATION, DataplaneCalibration
from repro.dataplane.pipelines import QueuingDesign, queuing_pipeline
from repro.experiments.common import render_table
from repro.scenarios.registry import ScenarioRun, scenario

MODELS = [("M1 (R18)", RESNET18_BYTES), ("M2 (R34)", RESNET34_BYTES), ("M3 (R152)", RESNET152_BYTES)]
DESIGNS = [
    ("SF-mono", QueuingDesign.SF_MONO),
    ("LIFL", QueuingDesign.LIFL),
    ("SF-micro", QueuingDesign.SF_MICRO),
    ("SL-B", QueuingDesign.SL_BASIC),
]


@dataclass
class Fig13Row:
    model: str
    design: str
    cpu_s: float
    memory_copies: int
    delay_s: float

    def normalized_memory(self, baseline_copies: int = 1) -> float:
        return self.memory_copies / baseline_copies


def run(cal: DataplaneCalibration = DEFAULT_CALIBRATION) -> list[Fig13Row]:
    rows = []
    for model, nbytes in MODELS:
        for label, design in DESIGNS:
            cost = queuing_pipeline(design, cal).cost(nbytes)
            rows.append(
                Fig13Row(
                    model=model,
                    design=label,
                    cpu_s=cost.cpu_seconds,
                    memory_copies=cost.buffer_copies,
                    delay_s=cost.latency,
                )
            )
    return rows


def ratios_at_m3(rows: list[Fig13Row]) -> dict[str, float]:
    at = {r.design: r for r in rows if r.model.startswith("M3")}
    return {
        "cpu_slb_over_lifl": at["SL-B"].cpu_s / at["LIFL"].cpu_s,
        "cpu_sfmicro_over_lifl": at["SF-micro"].cpu_s / at["LIFL"].cpu_s,
        "delay_slb_over_lifl": at["SL-B"].delay_s / at["LIFL"].delay_s,
        "delay_sfmicro_over_lifl": at["SF-micro"].delay_s / at["LIFL"].delay_s,
        "mem_slb_over_mono": at["SL-B"].memory_copies / at["SF-mono"].memory_copies,
        "lifl_vs_mono_delay": at["LIFL"].delay_s / at["SF-mono"].delay_s,
    }


def _render(rows: list[dict]) -> str:
    lines = ["Fig. 13 — message-queuing overheads (client → aggregator)"]
    lines.append(
        render_table(
            ["model", "design", "CPU (s)", "mem (copies)", "delay (s)"],
            [
                (r["model"], r["design"], f"{r['cpu_s']:.2f}", r["memory_copies"], f"{r['delay_s']:.2f}")
                for r in rows
            ],
        )
    )
    k = ratios_at_m3([Fig13Row(**r) for r in rows])
    lines.append(
        f"\nAt M3: LIFL CPU is {k['cpu_slb_over_lifl']:.1f}x / "
        f"{k['cpu_sfmicro_over_lifl']:.1f}x less than SL-B / SF-micro "
        f"(paper ~1.5x / ~1.9x); delay {k['delay_slb_over_lifl']:.1f}x / "
        f"{k['delay_sfmicro_over_lifl']:.1f}x less (paper ~1.3x / ~1.7x); "
        f"SL-B memory = {k['mem_slb_over_mono']:.0f}x SF-mono (paper 3x); "
        f"LIFL delay = {k['lifl_vs_mono_delay']:.2f}x SF-mono (paper ≈ 1x)."
    )
    return "\n".join(lines)


@scenario(
    name="fig13",
    title="message-queuing overheads of the Fig. 5 designs",
    render=_render,
    workload="one update, client → aggregator, M1/M2/M3",
    metrics=("cpu_s", "memory_copies", "delay_s"),
    tags=('paper',),
)
def fig13_scenario(run_spec: ScenarioRun) -> list[dict]:
    """Fig. 13 / Appendix F: pure cost-model evaluation, one run."""
    return [
        {
            "model": r.model,
            "design": r.design,
            "cpu_s": r.cpu_s,
            "memory_copies": r.memory_copies,
            "delay_s": r.delay_s,
        }
        for r in run()
    ]


def main() -> None:
    from repro.scenarios.runner import run_scenario

    print(run_scenario("fig13").text)


if __name__ == "__main__":
    main()
