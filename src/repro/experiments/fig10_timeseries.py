"""Fig. 10 — time series of arrival rate, active aggregators, CPU/round.

Reuses the Fig. 9 workload runs and extracts, per system:

* (a)/(d) update arrival rate per minute — fluctuating for the mobile
  ResNet-18 population, stable for the ResNet-152 servers;
* (b)/(e) number of active aggregators over time — SF flat at its
  always-on allocation; SL/LIFL load-proportional;
* (c)/(f) cumulative CPU time per round — SL ≫ SF > LIFL.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import WorkloadResult
from repro.experiments.common import render_table
from repro.experiments.fig09_fl_workloads import (
    RESNET18_SETUP,
    RESNET152_SETUP,
    SETUPS,
    SYSTEMS,
    WorkloadSetup,
    run as run_fig09,
    run_system,
)
from repro.scenarios.registry import ScenarioRun, scenario

__all__ = [
    "RESNET18_SETUP",
    "RESNET152_SETUP",
    "SeriesPoint",
    "extract_series",
    "run",
    "summarize",
]


@dataclass
class SeriesPoint:
    wall_hours: float
    arrivals_per_minute: float
    active_aggregators: int
    cpu_per_round: float


def extract_series(result: WorkloadResult) -> list[SeriesPoint]:
    points = []
    for s in result.samples:
        points.append(
            SeriesPoint(
                wall_hours=(s.start_time + s.duration) / 3600.0,
                arrivals_per_minute=s.arrivals_per_minute,
                active_aggregators=s.active_aggregators,
                cpu_per_round=s.cpu_total,
            )
        )
    return points


def run(setup: WorkloadSetup, seed: int = 5, max_rounds: int | None = None) -> dict[str, list[SeriesPoint]]:
    results = run_fig09(setup, seed=seed, max_rounds=max_rounds)
    return {name: extract_series(res) for name, res in results.items()}


def summarize(series: dict[str, list[SeriesPoint]]) -> list[tuple]:
    rows = []
    for name, points in series.items():
        if not points:
            continue
        mean_rate = sum(p.arrivals_per_minute for p in points) / len(points)
        mean_active = sum(p.active_aggregators for p in points) / len(points)
        mean_cpu = sum(p.cpu_per_round for p in points) / len(points)
        rows.append((name, f"{mean_rate:.0f}", f"{mean_active:.0f}", f"{mean_cpu:.0f}"))
    return rows


def _render(rows: list[dict]) -> str:
    lines = []
    for tag in SETUPS:
        lines.append(f"Fig. 10 — {tag} (first 30 rounds)")
        lines.append(
            render_table(
                ["system", "arrivals/min", "active aggs (mean)", "CPU/round (s)"],
                [
                    (r["system"], r["arrivals_per_min"], r["active_aggs"], r["cpu_per_round"])
                    for r in rows
                    if r["setup"] == tag
                ],
            )
        )
        lines.append("")
    return "\n".join(lines)


@scenario(
    name="fig10",
    title="time series of arrival rate, active aggregators, CPU/round",
    grid={"setup": tuple(SETUPS), "system": SYSTEMS},
    render=_render,
    workload="Fig. 9 workloads, first 30 rounds",
    metrics=("arrivals_per_min", "active_aggs", "cpu_per_round"),
    tags=('paper',),
)
def fig10_scenario(run_spec: ScenarioRun) -> list[dict]:
    """Fig. 10: per-(setup, system) series means over the first 30 rounds."""
    setup = SETUPS[run_spec.params["setup"]]
    system = run_spec.params["system"]
    points = extract_series(run_system(setup, system, max_rounds=30))
    summary = summarize({system: points})
    if not summary:
        return []
    name, rate, active, cpu = summary[0]
    return [
        {
            "setup": setup.tag,
            "system": name,
            "arrivals_per_min": rate,
            "active_aggs": active,
            "cpu_per_round": cpu,
        }
    ]


def main() -> None:
    from repro.scenarios.runner import run_scenario

    print(run_scenario("fig10").text)


if __name__ == "__main__":
    main()
