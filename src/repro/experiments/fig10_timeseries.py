"""Fig. 10 — time series of arrival rate, active aggregators, CPU/round.

Reuses the Fig. 9 workload runs and extracts, per system:

* (a)/(d) update arrival rate per minute — fluctuating for the mobile
  ResNet-18 population, stable for the ResNet-152 servers;
* (b)/(e) number of active aggregators over time — SF flat at its
  always-on allocation; SL/LIFL load-proportional;
* (c)/(f) cumulative CPU time per round — SL ≫ SF > LIFL.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import WorkloadResult
from repro.experiments.common import render_table
from repro.experiments.fig09_fl_workloads import (
    RESNET18_SETUP,
    RESNET152_SETUP,
    WorkloadSetup,
    run as run_fig09,
)


@dataclass
class SeriesPoint:
    wall_hours: float
    arrivals_per_minute: float
    active_aggregators: int
    cpu_per_round: float


def extract_series(result: WorkloadResult) -> list[SeriesPoint]:
    points = []
    for s in result.samples:
        points.append(
            SeriesPoint(
                wall_hours=(s.start_time + s.duration) / 3600.0,
                arrivals_per_minute=s.arrivals_per_minute,
                active_aggregators=s.active_aggregators,
                cpu_per_round=s.cpu_total,
            )
        )
    return points


def run(setup: WorkloadSetup, seed: int = 5, max_rounds: int | None = None) -> dict[str, list[SeriesPoint]]:
    results = run_fig09(setup, seed=seed, max_rounds=max_rounds)
    return {name: extract_series(res) for name, res in results.items()}


def summarize(series: dict[str, list[SeriesPoint]]) -> list[tuple]:
    rows = []
    for name, points in series.items():
        if not points:
            continue
        mean_rate = sum(p.arrivals_per_minute for p in points) / len(points)
        mean_active = sum(p.active_aggregators for p in points) / len(points)
        mean_cpu = sum(p.cpu_per_round for p in points) / len(points)
        rows.append((name, f"{mean_rate:.0f}", f"{mean_active:.0f}", f"{mean_cpu:.0f}"))
    return rows


def main() -> None:
    for setup in (RESNET18_SETUP, RESNET152_SETUP):
        series = run(setup, max_rounds=30)
        print(f"Fig. 10 — {setup.tag} (first 30 rounds)")
        print(
            render_table(
                ["system", "arrivals/min", "active aggs (mean)", "CPU/round (s)"],
                summarize(series),
            )
        )
        print()


if __name__ == "__main__":
    main()
