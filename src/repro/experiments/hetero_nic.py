"""Heterogeneous-NIC fleet sweep (non-paper scenario).

The paper's testbed is homogeneous (10 Gb NICs everywhere).  Real clusters
mix generations: this scenario runs the same concurrent-update round on
fleets whose nodes cycle through 1 / 10 / 100 Gbps NICs, comparing LIFL
against SL-H.  Expected shape: LIFL's locality-aware placement keeps most
bytes off the wire, so it degrades mildly as slow NICs enter the mix; the
locality-agnostic SL-H control plane pushes most updates across nodes and
pays for every 1 Gbps NIC in its path.
"""

from __future__ import annotations

from repro.common.rng import make_rng
from repro.common.units import RESNET152_BYTES
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.experiments.common import ratio, render_table
from repro.scenarios.registry import ScenarioRun, derive_seed, scenario
from repro.workloads.arrival import concurrent_arrivals

N_NODES = 16
BATCH = 96
ARRIVAL_JITTER_S = 3.0
GBPS = 1.25e8  # 1 Gb/s in bytes/s

#: NIC capacity cycles, applied round-robin over the node list
PROFILES: dict[str, tuple[float, ...]] = {
    "10G uniform": (10 * GBPS,),
    "1G/10G mix": (GBPS, 10 * GBPS),
    "1G/10G/100G mix": (GBPS, 10 * GBPS, 100 * GBPS),
}
SYSTEMS = ("LIFL", "SL-H")


def nic_map(profile: str, node_names: list[str]) -> dict[str, float]:
    cycle = PROFILES[profile]
    return {name: cycle[i % len(cycle)] for i, name in enumerate(node_names)}


def run_cell(profile: str, system: str, seed: int) -> dict:
    cfg = PlatformConfig.lifl() if system == "LIFL" else PlatformConfig.sl_h()
    nodes = [f"node{i:02d}" for i in range(N_NODES)]
    platform = AggregationPlatform(
        cfg, node_names=nodes, nic_bps_by_node=nic_map(profile, nodes)
    )
    arrivals = [
        (t, 1.0)
        for t in concurrent_arrivals(
            BATCH, jitter=ARRIVAL_JITTER_S, rng=make_rng(seed, "hetero-arrivals")
        )
    ]
    # Steady state, like the stress scenarios: warm round, then measure.
    platform.run_round(arrivals, RESNET152_BYTES, include_eval=False, record_timeline=False)
    result = platform.run_round(
        arrivals, RESNET152_BYTES, include_eval=False, record_timeline=False
    )
    return {
        "profile": profile,
        "system": system,
        "act_s": result.act,
        "cpu_s": result.cpu_total,
        "cross_node_transfers": result.cross_node_transfers,
        "nodes_used": result.nodes_used,
    }


def _render(rows: list[dict]) -> str:
    lines = [f"Heterogeneous NICs — {N_NODES} nodes, {BATCH} concurrent ResNet-152 updates"]
    lines.append(
        render_table(
            ["profile", "system", "ACT (s)", "CPU (s)", "x-node", "# nodes"],
            [
                (
                    r["profile"],
                    r["system"],
                    f"{r['act_s']:.1f}",
                    f"{r['cpu_s']:.0f}",
                    r["cross_node_transfers"],
                    r["nodes_used"],
                )
                for r in rows
            ],
        )
    )
    by = {(r["profile"], r["system"]): r for r in rows}
    gaps = []
    for profile in PROFILES:
        slh = by.get((profile, "SL-H"))
        lifl = by.get((profile, "LIFL"))
        if slh and lifl:
            gaps.append(f"{profile}: {ratio(slh['act_s'], lifl['act_s']):.2f}x")
    if gaps:  # absent under a single-system --filter
        lines.append("\nSL-H/LIFL ACT ratio by NIC profile: " + ", ".join(gaps))
    return "\n".join(lines)


@scenario(
    name="hetero-nic",
    title="mixed 1/10/100 Gbps fleet sweep (non-paper)",
    grid={"profile": tuple(PROFILES), "system": SYSTEMS},
    render=_render,
    workload=f"{N_NODES} nodes cycling NIC speeds, {BATCH} ResNet-152 updates",
    metrics=("act_s", "cpu_s", "cross_node_transfers"),
    paper=False,
    tags=('chaos', 'workload'),
)
def hetero_nic_scenario(run_spec: ScenarioRun) -> list[dict]:
    """One (NIC profile, system) cell of the heterogeneity sweep."""
    profile = run_spec.params["profile"]
    # Both systems at one profile must see the same arrival trace, so the
    # workload seed depends on the profile (and campaign seed), not the run.
    seed = derive_seed(
        run_spec.campaign_seed, "hetero-nic", list(PROFILES).index(profile)
    )
    return [run_cell(profile, run_spec.params["system"], seed=seed)]


def main() -> None:
    from repro.scenarios.runner import run_scenario

    print(run_scenario("hetero-nic").text)


if __name__ == "__main__":
    main()
