"""The arrival-driven serving loop: replay a trace against a platform.

Every scenario before this subsystem fired one fully-populated round at a
time and waited for it.  :class:`TraceReplayEngine` instead *serves*: a
dispatcher process walks a :class:`~repro.traces.models.Trace` on the
simulation clock and admits rounds as their arrival events fire —

* **overlapping rounds** — each admitted round is installed mid-simulation
  via :meth:`RoundEngine.install_round` on ONE shared environment and
  fabric, so rounds in flight (same tenant or not) contend on the same
  processor-sharing NIC links;
* **bounded admission** — at most ``max_inflight`` rounds per tenant run
  concurrently; excess arrivals wait in a bounded FIFO queue (queue wait
  is measured) and overflow beyond ``queue_limit`` is *rejected* — the
  load-shedding a real serving tier does under burst;
* **warm-pool turnover** — every settled round restocks the engine's
  lifecycle warm pool, so a steady trace converges to warm-start serving
  exactly like consecutive ``run_round`` calls did;
* **availability-aware participation** — with an
  :class:`~repro.traces.models.AvailabilityTrace`, each round samples its
  clients from the population available at the arrival instant (optionally
  through the :class:`repro.fl.selector.Selector`'s over-provisioning
  policy), so day-night swings thin real rounds;
* **correlated chaos** — with a :class:`ChaosCorrelation`, rounds admitted
  during availability dips get a seeded
  :class:`~repro.chaos.FaultInjector` dropout wave whose magnitude scales
  with the dip — the multi-round recovery loop the chaos subsystem could
  previously only exercise one round at a time;
* **closed-loop control** — with a
  :class:`~repro.controlplane.reactive.ControllerConfig`, a
  :class:`~repro.controlplane.reactive.Controller` tick process runs
  alongside the dispatcher: per-tenant admission limits and the warm pool
  scale reactively, placement avoids nodes a fresh
  :meth:`Fabric.node_health() <repro.cluster.network.Fabric.node_health>`
  snapshot reports degraded or partitioned (with bounded re-placement
  retries), overflow arrivals are *deferred* with a deadline instead of
  rejected, and an optional per-round watchdog aborts stalled rounds.
  With ``controller=None`` (the default) none of this machinery is
  constructed and the replay is byte-identical to a controller-less build.
  ``fault_plan`` installs a replay-scoped fabric chaos timeline
  (partitions / NIC degradations / slow nodes) for the controller to
  react to.

Determinism: every random draw (participants, arrival offsets, chaos
victims) derives from ``(seed, tenant, round_id)`` — never from admission
timing — so a replay is byte-reproducible from its seed.

Multi-core: ``run(shards=N)`` (with a ``platform_factory``) hands the
replay to :class:`~repro.traces.shard.ShardedReplayEngine`, which
partitions tenants across N forked worker processes — see
:mod:`repro.traces.shard`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.errors import ConfigError
from repro.common.rng import RngRegistry, make_rng
from repro.common.units import RESNET18_BYTES
from repro.core.policies import AdmissionContext, SelectionContext, resolve_policy
from repro.sim.engine import Environment, Process
from repro.telemetry.bus import ambient_bus
from repro.traces.models import AvailabilityTrace, Trace
from repro.traces.slo import SloTracker

if TYPE_CHECKING:  # import-light: replay only needs these for typing
    from typing import Callable

    from repro.chaos.plan import FaultPlan
    from repro.controlplane.reactive import ControllerConfig, ControllerReport
    from repro.core.platform import AggregationPlatform
    from repro.fl.client import FLClient
    from repro.fl.population import ClientPopulation
    from repro.fl.selector import Selector
    from repro.telemetry.bus import TelemetryBus
    from repro.traces.shard import ShardedReplayResult

__all__ = ["ChaosCorrelation", "ReplayConfig", "ReplayResult", "RoundRecord", "TraceReplayEngine"]


@dataclass(frozen=True)
class ReplayConfig:
    """Serving-loop knobs for one replay."""

    #: participants per round (the aggregation goal)
    round_updates: int = 8
    #: update wire size (bytes)
    nbytes: float = RESNET18_BYTES
    #: concurrent rounds admitted per tenant before queueing
    max_inflight: int = 4
    #: bounded admission queue per tenant; arrivals beyond it are rejected
    queue_limit: int = 16
    #: end-to-end (queue wait + service) target a round must meet
    slo_target_s: float = 30.0
    #: within-round update arrival spread (uniform [0, spread))
    arrival_spread_s: float = 2.0
    include_eval: bool = False
    #: selection-policy name (``"selection"`` family of
    #: :mod:`repro.core.policies`).  Empty string derives the default from
    #: the inputs given — ``population`` / ``availability-aware`` /
    #: ``random`` — reproducing pre-registry behaviour byte for byte.
    selection_policy: str = ""
    #: admission-policy name (``"admission"`` family).  Empty string means
    #: ``bounded-queue``, or ``defer-with-deadline`` when a controller
    #: with a deferral deadline runs — again the pre-registry behaviour.
    admission_policy: str = ""
    #: deferral budget for a standalone ``defer-with-deadline`` admission
    #: policy (a controller's ``ControllerConfig.defer_deadline_s`` takes
    #: precedence when one runs)
    defer_deadline_s: float = 0.0
    #: accumulate per-round simulated CPU cost (``RoundResult.cpu_total``)
    #: and report ``cost_cpu_s`` / ``attainment_per_cost`` columns — off
    #: by default so existing rows stay byte-identical
    track_cost: bool = False

    def validate(self) -> None:
        if self.round_updates < 1:
            raise ConfigError("round_updates must be >= 1")
        if self.max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1")
        if self.queue_limit < 0:
            raise ConfigError("queue_limit must be >= 0")
        if self.slo_target_s <= 0:
            raise ConfigError("slo_target_s must be positive")
        if self.arrival_spread_s < 0:
            raise ConfigError("arrival_spread_s must be >= 0")
        if self.nbytes <= 0:
            raise ConfigError("nbytes must be positive")
        if self.defer_deadline_s < 0:
            raise ConfigError("defer_deadline_s must be >= 0")


@dataclass(frozen=True)
class ChaosCorrelation:
    """Couple fault injection to availability dips.

    A round admitted while the availability fraction sits below
    ``dip_threshold`` gets one dropout wave ``wave_delay_s`` after
    admission; the wave's dropout fraction grows linearly with the depth
    of the dip, up to ``max_fraction``.  Quorum/heartbeat knobs mirror
    :class:`repro.chaos.FaultPlan`.
    """

    dip_threshold: float = 0.5
    max_fraction: float = 0.6
    wave_delay_s: float = 0.5
    quorum_fraction: float = 0.4
    heartbeat_timeout: float = 4.0
    sweep_interval: float = 1.0
    #: recovery-policy name (``"recovery"`` family of
    #: :mod:`repro.core.policies`) for the waves' recovery controllers
    recovery_policy: str = "shrink-or-abort"

    def validate(self) -> None:
        if not 0.0 < self.dip_threshold <= 1.0:
            raise ConfigError("dip_threshold must be in (0, 1]")
        if not 0.0 < self.max_fraction <= 1.0:
            raise ConfigError("max_fraction must be in (0, 1]")
        if self.wave_delay_s < 0:
            raise ConfigError("wave_delay_s must be >= 0")

    def wave_fraction(self, availability: float) -> float:
        """Dropout fraction for a round seeing ``availability`` (0 = no
        wave; deeper dips drop more clients)."""
        if availability >= self.dip_threshold:
            return 0.0
        depth = (self.dip_threshold - availability) / self.dip_threshold
        return min(self.max_fraction, round(self.max_fraction * depth, 6))


@dataclass
class RoundRecord:
    """One served round's life: arrival → admission → completion."""

    tenant: int
    round_id: int
    arrival_at: float
    updates: int
    admit_at: float = -1.0
    complete_at: float = -1.0
    aborted: bool = False
    rejected: bool = False
    #: waited in the controller's deferral room past the bounded queue
    deferred: bool = False
    #: dropped by the control plane (deferral deadline or placement retries)
    shed: bool = False
    chaos_fraction: float = 0.0
    #: participant (offset, weight) pairs sampled at arrival time
    participants: list[tuple[float, float]] = field(default_factory=list)

    @property
    def queue_wait(self) -> float:
        return max(0.0, self.admit_at - self.arrival_at)

    @property
    def service(self) -> float:
        return max(0.0, self.complete_at - self.admit_at)

    @property
    def latency(self) -> float:
        return self.queue_wait + self.service


@dataclass
class ReplayResult:
    """Everything one replay produced."""

    records: list[RoundRecord]
    slo: SloTracker
    horizon: float
    peak_inflight: int = 0
    peak_inflight_per_tenant: dict[int, int] = field(default_factory=dict)
    chaos_waves: int = 0
    clients_dropped: int = 0
    #: the control loop's report when the replay ran one (None otherwise,
    #: which keeps controller-less rows byte-identical)
    controller: "ControllerReport | None" = None
    #: simulated CPU-seconds spent serving (sum of finished rounds'
    #: ``cpu_total``) — always accumulated, reported only when the config
    #: asked for cost tracking
    cost_cpu_s: float = 0.0
    track_cost: bool = False

    @property
    def rounds_overlapped(self) -> bool:
        return self.peak_inflight > 1

    def row(self) -> dict:
        """The flat scenario row: SLO report + serving-shape counters."""
        out = self.slo.report()
        out.update(
            peak_inflight=self.peak_inflight,
            tenants=len(self.peak_inflight_per_tenant),
            chaos_waves=self.chaos_waves,
            clients_dropped=self.clients_dropped,
        )
        if self.controller is not None:
            out.update(self.controller.row())
        if self.track_cost:
            # The tournament columns: simulated cost and the ranking metric
            # (SLO attainment bought per simulated CPU-second).
            cost = round(self.cost_cpu_s, 6)
            attain = out["slo_attainment"]
            out.update(
                cost_cpu_s=cost,
                attainment_per_cost=round(attain / cost, 9) if cost > 0 else 0.0,
            )
        return out


class TraceReplayEngine:
    """Drive one platform through one trace, measuring SLO behaviour.

    ``availability``/``weights`` opt into availability-aware rounds;
    ``selector``+``clients`` additionally route participation through the
    FL selector's over-provisioning policy; ``chaos`` couples dropout
    waves to availability dips.  The platform's engine, lifecycle stage
    (warm pool), and node fleet are shared by every round of the replay.
    """

    def __init__(
        self,
        platform: "AggregationPlatform | None",
        trace: Trace,
        config: ReplayConfig | None = None,
        availability: AvailabilityTrace | None = None,
        weights: dict[str, float] | None = None,
        selector: "Selector | None" = None,
        clients: "list[FLClient] | None" = None,
        chaos: ChaosCorrelation | None = None,
        seed: int = 0,
        platform_factory: "Callable[[], AggregationPlatform] | None" = None,
        population: "ClientPopulation | None" = None,
        controller: "ControllerConfig | None" = None,
        fault_plan: "FaultPlan | None" = None,
        telemetry: "TelemetryBus | None" = None,
    ) -> None:
        if platform is None and platform_factory is None:
            raise ConfigError("replay needs a platform or a platform_factory")
        self.platform = platform
        #: True when the caller handed us a live platform (vs one built
        #: lazily from the factory) — sharded runs must refuse it, since
        #: shards build their own platforms and a differently-configured
        #: factory would silently diverge from the supplied instance.
        self._platform_supplied = platform is not None
        self.platform_factory = platform_factory
        self.trace = trace
        self.config = config or ReplayConfig()
        self.config.validate()
        self.availability = availability
        self.weights = dict(weights) if weights else {}
        if population is not None:
            # The struct-of-arrays path: availability masks, selection, and
            # weights all come from the population's arrays — it replaces
            # the clients-list + AvailabilityTrace + weights-dict trio.
            if clients is not None:
                raise ConfigError("population and clients are mutually exclusive")
            if selector is None:
                raise ConfigError("population-driven replay needs a selector")
            if availability is not None:
                raise ConfigError(
                    "population carries its own availability windows — "
                    "do not also pass an availability trace"
                )
            if chaos is not None:
                raise ConfigError(
                    "chaos correlation needs the AvailabilityTrace path "
                    "(population replay does not support it yet)"
                )
            if population.total_windows == 0:
                raise ConfigError(
                    "population-driven replay needs availability windows "
                    "(generate with horizon > 0)"
                )
        elif (selector is None) != (clients is None):
            raise ConfigError("selector and clients must be given together")
        if selector is not None and availability is None and population is None:
            raise ConfigError("selector-driven replay needs an availability trace")
        self.selector = selector
        self.clients = list(clients) if clients else []
        self.population = population
        self.chaos = chaos
        if chaos is not None:
            chaos.validate()
            if availability is None:
                raise ConfigError("chaos correlation needs an availability trace")
        self.controller_config = controller
        if controller is not None:
            controller.validate()
        self.fault_plan = fault_plan
        if fault_plan is not None:
            fault_plan.validate()
            if fault_plan.crashes or fault_plan.dropouts:
                raise ConfigError(
                    "a replay fault_plan must be fabric-only (partitions, "
                    "NIC degradations, slow nodes) — crash/dropout events "
                    "target a single round's aggregators and belong to "
                    "ChaosCorrelation or FaultInjector.install()"
                )
        self.seed = seed
        #: the telemetry bus this replay emits into: an explicit argument
        #: wins, else the ambient bus a ``capture()`` block installed, else
        #: None — and a bus nobody subscribed to drops to None at run
        #: start, so the serving loop pays nothing per event (see
        #: :mod:`repro.telemetry.bus`)
        self.telemetry = telemetry if telemetry is not None else ambient_bus()
        #: one registry per replay: per-round participant streams and the
        #: policies' bound streams all derive from the replay seed
        self._rngs = RngRegistry(seed)
        self._selection = resolve_policy(
            "selection", self._selection_name(), self._rngs
        )
        self._admission = resolve_policy(
            "admission", self._admission_name(), self._rngs
        )

    # ------------------------------------------------------------- policies
    def _selection_name(self) -> str:
        """The configured selection policy, or the default derived from
        the inputs given — exactly the pre-registry branch order."""
        name = self.config.selection_policy
        if not name:
            if self.population is not None:
                return "population"
            return "availability-aware" if self.selector is not None else "random"
        if name == "population" and self.population is None:
            raise ConfigError("selection policy 'population' needs a population")
        if name == "availability-aware" and (
            self.selector is None or self.availability is None
        ):
            raise ConfigError(
                "selection policy 'availability-aware' needs selector, "
                "clients, and an availability trace"
            )
        return name

    def _admission_name(self) -> str:
        """The configured admission policy, or the default: the bounded
        queue — upgraded to the controller's deferral discipline when one
        runs with a deadline, as before the registry."""
        name = self.config.admission_policy
        if name:
            return name
        ctl = self.controller_config
        if ctl is not None and ctl.defer_deadline_s > 0:
            return "defer-with-deadline"
        return "bounded-queue"

    @property
    def _defer_deadline_s(self) -> float:
        ctl = self.controller_config
        return ctl.defer_deadline_s if ctl is not None else self.config.defer_deadline_s

    # ----------------------------------------------------------- participants
    def _selection_context(self, ev) -> SelectionContext:
        return SelectionContext(
            at=ev.at,
            tenant=ev.tenant,
            round_id=ev.round_id,
            round_updates=self.config.round_updates,
            availability=self.availability,
            weights=self.weights,
            selector=self.selector,
            clients=self.clients,
            population=self.population,
        )

    def _participants(self, ev) -> list[tuple[float, float]]:
        """Sample one round's (arrival offset, weight) pairs at its trace
        arrival instant, through the resolved selection policy — seeded by
        round identity, so admission timing never perturbs the draw.

        Draw order is fixed by contract: the policy's selection draws
        first, then the offset batch, then the (draw-free) weight lookup —
        so a registered default reproduces the pre-registry stream
        exactly.
        """
        cfg = self.config
        rng = self._rngs.stream(f"participants:{ev.tenant}:{ev.round_id}")
        ctx = self._selection_context(ev)
        picked = self._selection.select(ctx, rng)
        if len(picked) == 0:
            return []
        spread = cfg.arrival_spread_s
        offsets = (
            rng.uniform(0.0, spread, size=len(picked))
            if spread > 0
            else [0.0] * len(picked)
        )
        weights = self._selection.participant_weights(ctx, picked)
        return [(float(off), float(w)) for off, w in zip(offsets, weights)]

    # ---------------------------------------------------------------- replay
    def run(
        self, shards: int = 1, workers: int | None = None, inline: bool = False
    ) -> "ReplayResult | ShardedReplayResult":
        """Replay the trace; ``shards > 1`` partitions it across worker
        processes.

        Sharding needs a ``platform_factory`` (each shard builds its own
        platform) and returns a
        :class:`~repro.traces.shard.ShardedReplayResult` whose ``row()``
        matches this method's single-shard report shape.  ``workers``
        caps the forked worker processes (default: available CPUs);
        ``inline=True`` forces the shards to run in-process (forked and
        inline runs are byte-identical).  ``shards=1`` is exactly the
        sequential replay.
        """
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        if shards > 1:
            if self.platform_factory is None:
                raise ConfigError(
                    "sharded replay needs a platform_factory "
                    "(each shard builds its own platform)"
                )
            if self._platform_supplied:
                raise ConfigError(
                    "sharded replay ignores a supplied platform instance — "
                    "pass platform=None and let every shard build its own "
                    "from platform_factory"
                )
            from repro.traces.shard import ShardedReplayEngine

            return ShardedReplayEngine(
                self.platform_factory,
                self.trace,
                self.config,
                availability=self.availability,
                weights=self.weights or None,
                selector=self.selector,
                clients=self.clients or None,
                chaos=self.chaos,
                seed=self.seed,
                shards=shards,
                workers=workers,
                population=self.population,
                controller=self.controller_config,
                fault_plan=self.fault_plan,
                telemetry=self.telemetry,
            ).run(inline=inline)
        if self.platform is None:
            self.platform = self.platform_factory()
        cfg = self.config
        ctl_cfg = self.controller_config
        #: None unless someone is listening — every emission site below is
        #: guarded on this local, so an unsubscribed replay does no
        #: telemetry work at all
        tel = self.telemetry.or_none() if self.telemetry is not None else None
        engine = self.platform.engine
        env = Environment()
        fabric = engine.build_fabric(env)
        if self.fault_plan is not None:
            from repro.chaos import FaultInjector

            FaultInjector(self.fault_plan, telemetry=tel).install_fabric(env, fabric)
        admission = self._admission
        defer_deadline_s = self._defer_deadline_s
        if ctl_cfg is None:
            # A standalone deferral policy sheds rounds just like the
            # controller's would — surface the shed/deferred columns then.
            tracker = SloTracker(
                cfg.slo_target_s,
                controller=(admission.name == "defer-with-deadline"),
            )
        else:
            tracker = SloTracker(
                cfg.slo_target_s, window_s=ctl_cfg.burn_window_s, controller=True
            )
        records: list[RoundRecord] = []
        n_tenants = max(self.trace.tenants, 1)
        inflight = [0] * n_tenants
        pending: list[deque[RoundRecord]] = [deque() for _ in range(n_tenants)]
        #: overflow arrivals parked with a shed deadline (deferral policy)
        deferred: list[deque[tuple[RoundRecord, float]]] = [
            deque() for _ in range(n_tenants)
        ]
        result = ReplayResult(
            records=records,
            slo=tracker,
            horizon=self.trace.horizon,
            peak_inflight_per_tenant={t: 0 for t in range(n_tenants)},
            track_cost=cfg.track_cost,
        )
        #: terminal outcomes seen (reject/shed/abort/complete); the
        #: controller's tick loop ends when every trace event has one
        done = [0]
        if tel is not None:
            # The stream's self-describing prologue: everything a reader
            # needs to rebuild SLO accounting from the records alone.
            tel.emit(
                "replay-start",
                0.0,
                tenants=n_tenants,
                horizon=self.trace.horizon,
                slo_target_s=cfg.slo_target_s,
                events=len(self.trace.events),
                controller=tracker.controller,
            )

        def _shed(rec: RoundRecord, reason: str) -> None:
            rec.shed = True
            tracker.shed(at=env.now)
            if tel is not None:
                tel.emit(
                    "round-shed",
                    env.now,
                    tenant=rec.tenant,
                    round_id=rec.round_id,
                    reason=reason,
                )
            if controller is not None:
                controller._record(
                    env.now, "shed", f"t{rec.tenant}r{rec.round_id}", 0, reason
                )
            done[0] += 1

        def _promote(t: int) -> None:
            """Move deferred arrivals into the bounded queue as room opens,
            shedding any whose deadline already passed."""
            room = deferred[t]
            while room and len(pending[t]) < cfg.queue_limit:
                rec, deadline = room.popleft()
                if deadline <= env.now:
                    _shed(rec, "deferral deadline")
                    continue
                pending[t].append(rec)

        def _sweep(now: float) -> None:
            """Controller tick hook: expire deferred arrivals in place."""
            for t in range(n_tenants):
                room = deferred[t]
                while room and room[0][1] <= now:
                    rec, _ = room.popleft()
                    _shed(rec, "deferral deadline")

        def _drain(t: int) -> None:
            """Admit queued rounds while the tenant has free slots."""
            while inflight[t] < limits[t]:
                _promote(t)  # no-op unless a deferral policy parked rounds
                queue = pending[t]
                if not queue:
                    break
                admit(queue.popleft())

        def admit(rec: RoundRecord) -> None:
            if tel is not None:
                tel.emit(
                    "round-admitted",
                    env.now,
                    tenant=rec.tenant,
                    round_id=rec.round_id,
                    queued_s=max(0.0, env.now - rec.arrival_at),
                )
            inflight[rec.tenant] += 1
            total = sum(inflight)
            if total > result.peak_inflight:
                result.peak_inflight = total
            if inflight[rec.tenant] > result.peak_inflight_per_tenant[rec.tenant]:
                result.peak_inflight_per_tenant[rec.tenant] = inflight[rec.tenant]
            if controller is not None and ctl_cfg.placement_aware:
                Process(env, _place(rec), f"place:t{rec.tenant}r{rec.round_id}")
            else:
                updates, plan = self.platform.prepare_round(rec.participants, cfg.nbytes)
                _install(rec, updates, plan)

        def _place(rec: RoundRecord):
            """Chaos-aware placement: restrict placement to nodes passing
            the controller's health bar, re-check the chosen plan against a
            fresh snapshot before install, and retry with backoff when a
            node degraded in between.  Exhausted retries shed the round."""
            attempts = 0
            while True:
                healthy = controller.healthy_nodes()
                updates, plan = self.platform.prepare_round(
                    rec.participants, cfg.nbytes, nodes=healthy or None
                )
                bad = controller.plan_unhealthy(plan)
                if not bad:
                    _install(rec, updates, plan)
                    return
                attempts += 1
                controller._record(
                    env.now, "replan", ",".join(bad), 0, f"attempt={attempts}"
                )
                if attempts > ctl_cfg.placement_retries:
                    inflight[rec.tenant] -= 1
                    _shed(rec, "placement retries exhausted")
                    _drain(rec.tenant)
                    return
                if ctl_cfg.retry_backoff_s > 0:
                    yield env.timeout(ctl_cfg.retry_backoff_s)

        def _install(rec: RoundRecord, updates, plan) -> None:
            rec.admit_at = env.now
            if tel is not None:
                tel.emit(
                    "round-installed",
                    env.now,
                    tenant=rec.tenant,
                    round_id=rec.round_id,
                    updates=rec.updates,
                )
            tenant_round = engine.install_round(
                env, fabric, updates, plan, label=f"t{rec.tenant}r{rec.round_id}"
            )
            self._maybe_inject(env, fabric, engine, rec, tenant_round, result, tel)
            if controller is not None and ctl_cfg.round_deadline_s > 0:
                deadline_s = ctl_cfg.round_deadline_s

                def watchdog(_evt) -> None:
                    if tenant_round.top_done.triggered:
                        return
                    controller._record(
                        env.now,
                        "deadline-abort",
                        tenant_round.label,
                        0,
                        f"deadline={deadline_s}s",
                    )
                    tenant_round.top_done.fail(
                        DeadlineExceeded(tenant_round.label, deadline_s)
                    )

                env.timeout(deadline_s).callbacks.append(watchdog)

            def settled(evt) -> None:
                if not evt._ok:
                    evt.defuse()  # a quorum abort must not crash the replay
                    rec.aborted = True
                rec.complete_at = env.now
                res = engine.finish_round(
                    tenant_round, cfg.include_eval, start_time=rec.admit_at
                )
                result.clients_dropped += res.clients_dropped
                result.cost_cpu_s += res.cpu_total
                if rec.aborted:
                    tracker.abort(at=env.now)
                    if tel is not None:
                        tel.emit(
                            "round-aborted",
                            env.now,
                            tenant=rec.tenant,
                            round_id=rec.round_id,
                            queue_wait=rec.queue_wait,
                        )
                else:
                    tracker.observe(
                        rec.queue_wait, rec.service, deferred=rec.deferred, at=env.now
                    )
                    if tel is not None:
                        # Exactly the values the tracker just ingested, so
                        # slo_from_records rebuilds bit-identical digests.
                        tel.emit(
                            "round-settled",
                            env.now,
                            tenant=rec.tenant,
                            round_id=rec.round_id,
                            queue_wait=rec.queue_wait,
                            service=rec.service,
                            latency=rec.latency,
                            attained=rec.latency <= cfg.slo_target_s,
                            deferred=rec.deferred,
                        )
                done[0] += 1
                inflight[rec.tenant] -= 1
                _drain(rec.tenant)

            tenant_round.top_done.callbacks.append(settled)

        def _reject(rec: RoundRecord, reason: str = "queue-full") -> None:
            rec.rejected = True
            tracker.reject(at=env.now)
            if tel is not None:
                tel.emit(
                    "round-rejected",
                    env.now,
                    tenant=rec.tenant,
                    round_id=rec.round_id,
                    reason=reason,
                )
            done[0] += 1

        def _apply_admission(rec: RoundRecord) -> None:
            """Route one overflow arrival through the admission policy."""
            t = rec.tenant
            decision = admission.decide(
                AdmissionContext(
                    tenant=t,
                    queue_len=len(pending[t]),
                    queue_limit=cfg.queue_limit,
                    now=env.now,
                    defer_deadline_s=defer_deadline_s,
                )
            )
            if decision == "enqueue":
                if len(pending[t]) >= cfg.queue_limit:
                    raise ConfigError(
                        f"admission policy {admission.name!r} enqueued past "
                        f"queue_limit={cfg.queue_limit}"
                    )
                pending[t].append(rec)
            elif decision == "defer":
                rec.deferred = True
                deadline = env.now + defer_deadline_s
                deferred[t].append((rec, deadline))
                if tel is not None:
                    tel.emit(
                        "round-deferred",
                        env.now,
                        tenant=t,
                        round_id=rec.round_id,
                        deadline=deadline,
                    )
                if controller is not None:
                    controller._record(
                        env.now, "defer", f"t{t}r{rec.round_id}", 0, "queue full"
                    )
            elif decision == "evict-oldest":
                # Head drop: the queue's oldest waiter bounces (a rejection
                # — it never got served) and the newcomer takes its place.
                if pending[t]:
                    _reject(pending[t].popleft(), reason="evicted-oldest")
                pending[t].append(rec)
            elif decision == "reject":
                _reject(rec)
            else:
                raise ConfigError(
                    f"admission policy {admission.name!r} returned unknown "
                    f"decision {decision!r}; valid: enqueue/reject/defer/"
                    "evict-oldest"
                )

        def dispatch():
            for ev in self.trace.events:
                delay = ev.at - env.now
                if delay > 0:
                    yield env.timeout(delay)
                participants = self._participants(ev)
                rec = RoundRecord(
                    tenant=ev.tenant,
                    round_id=ev.round_id,
                    arrival_at=ev.at,
                    updates=len(participants),
                    participants=participants,
                )
                records.append(rec)
                _promote(ev.tenant)
                if not participants:
                    # Nobody available: the service cannot form the round.
                    _reject(rec, reason="no-participants")
                elif inflight[ev.tenant] < limits[ev.tenant]:
                    admit(rec)
                else:
                    _apply_admission(rec)
                if tel is not None:
                    # One bounded queue-depth sample per trace arrival, for
                    # the arriving tenant, after its admission decision.
                    t = ev.tenant
                    tel.emit(
                        "queue-sample",
                        env.now,
                        tenant=t,
                        depth=len(pending[t]),
                        deferred=len(deferred[t]),
                        inflight=inflight[t],
                        limit=limits[t],
                    )

        controller = None
        if ctl_cfg is not None:
            from repro.controlplane.reactive import (
                Controller,
                DeadlineExceeded,
                pool_floor_for,
            )

            if self.fault_plan is not None:
                quorum_fraction = self.fault_plan.quorum_fraction
            elif self.chaos is not None:
                quorum_fraction = self.chaos.quorum_fraction
            else:
                quorum_fraction = 0.5
            pcfg = self.platform.config
            leaves = -(-cfg.round_updates // pcfg.updates_per_leaf)
            controller = Controller(
                ctl_cfg,
                env,
                fabric,
                engine.lifecycle.warm,
                tracker,
                node_names=engine.node_names,
                n_tenants=n_tenants,
                base_limit=cfg.max_inflight,
                pool_floor=pool_floor_for(
                    quorum_fraction, cfg.round_updates, pcfg.updates_per_leaf
                ),
                queue_depth=lambda t: len(pending[t]) + len(deferred[t]),
                on_limit_raised=_drain,
                sweep_deferred=_sweep,
                telemetry=tel,
            )
            controller.instances_per_round = leaves + 1
            limits = controller.limits
            result.controller = controller.report
        else:
            limits = [cfg.max_inflight] * n_tenants

        if self.trace.events:
            Process(env, dispatch(), "trace:dispatch")
            if controller is not None:
                expected = len(self.trace.events)
                controller.start(lambda: done[0] >= expected)
            env.run()
        for t in range(n_tenants):
            # A standalone deferral policy has no controller tick to expire
            # parked arrivals — anything still deferred at horizon is shed.
            while deferred[t]:
                rec, _ = deferred[t].popleft()
                _shed(rec, "replay ended")
        if tel is not None:
            from repro.perf.counters import snapshot

            tel.emit(
                "replay-end",
                env.now,
                rounds=len(records),
                completed=sum(
                    1 for r in records if not (r.aborted or r.rejected or r.shed)
                ),
                aborted=sum(1 for r in records if r.aborted),
                rejected=sum(1 for r in records if r.rejected),
                shed=sum(1 for r in records if r.shed),
                deferred=sum(1 for r in records if r.deferred),
            )
            tel.emit("perf-snapshot", env.now, **snapshot(env))
        return result

    # ----------------------------------------------------------------- chaos
    def _maybe_inject(
        self, env, fabric, engine, rec, tenant_round, result, tel=None
    ) -> None:
        """Attach a dropout wave to rounds admitted during availability
        dips (fraction scales with dip depth; seeded by round identity)."""
        chaos = self.chaos
        if chaos is None:
            return
        frac = chaos.wave_fraction(
            self.availability.availability_fraction(rec.arrival_at)
        )
        if frac <= 0.0:
            return
        from repro.chaos import DropoutWave, FaultInjector, FaultPlan

        plan = FaultPlan(
            seed=int(
                make_rng(self.seed, f"chaos:{rec.tenant}:{rec.round_id}").integers(
                    0, 2**31 - 1
                )
            ),
            quorum_fraction=chaos.quorum_fraction,
            heartbeat_timeout=chaos.heartbeat_timeout,
            sweep_interval=chaos.sweep_interval,
            dropouts=(DropoutWave(at=env.now + chaos.wave_delay_s, fraction=frac),),
            recovery_policy=chaos.recovery_policy,
        )
        FaultInjector(plan, telemetry=tel).install(
            env=env, fabric=fabric, engine=engine, tenants=[tenant_round]
        )
        rec.chaos_fraction = frac
        result.chaos_waves += 1
