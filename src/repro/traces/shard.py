"""Multi-core sharded trace replay: one serving cell per worker process.

A single :class:`~repro.traces.replay.TraceReplayEngine` replays every
round of a trace on one core.  :class:`ShardedReplayEngine` instead
partitions the replay's *tenants* across ``N`` worker processes and runs
each partition as an independent serving cell — its own
:class:`~repro.sim.engine.Environment`, its own fabric, its own warm
pool — then folds the per-shard results into one report:

* **tenant-affine sharding** — a tenant's admission queue, warm-pool
  turnover, and SLO accounting are stateful across that tenant's rounds,
  so every round of a tenant must land in the same worker.  The planner
  (:func:`plan_shards`) balances whole tenants across shards by event
  count (greedy LPT, deterministic tie-breaks); a trace with fewer
  tenants than requested shards simply uses fewer shards.
* **byte-deterministic sub-traces** — :func:`split_trace` filters the
  merged timeline per shard *without renumbering*: because
  :func:`~repro.traces.models.merge_traces` numbers ``round_id`` per
  tenant, the filtered sub-trace carries each tenant's original ids, and
  every seeded draw (participants, chaos victims) keys off
  ``(seed, tenant, round_id)`` — so a shard replays its tenants exactly
  as the unsharded engine would have drawn them.
* **fork-based execution** — shards run on forked worker processes, the
  same machinery ``CampaignRunner --jobs`` uses.  The worker count
  defaults to ``min(shards, available CPUs)`` — a worker granted several
  shards runs them sequentially, so a single-CPU host degrades to the
  inline path instead of paying fork-and-timeslice overhead for nothing.
  Where fork is unavailable (or the caller is already a daemonic pool
  worker, which cannot fork children), shards likewise run inline; every
  execution mode produces byte-identical merged results, which the
  golden-determinism tests pin.
* **exact merging** — per-shard :class:`~repro.traces.slo.SloTracker`
  digests merge by bucket addition (exact, see
  :meth:`LatencyDigest.merge <repro.traces.slo.LatencyDigest.merge>`),
  outcome tallies sum, round records interleave back into arrival order,
  and engine counters (:mod:`repro.perf`) are reported per shard and
  merged.

The semantic difference from the unsharded replay is placement, not
randomness: each shard's tenants contend only with each other on their
shard's fabric, so ``shards=N`` models N independent serving cells fed by
one trace.  With one shard there is no difference at all — a
single-shard run is byte-identical to ``TraceReplayEngine.run()``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from dataclasses import field as dataclass_field
from typing import TYPE_CHECKING, Callable

from repro.common.errors import ConfigError
from repro.core.partition import CohortPlan, plan_cohorts  # noqa: F401 - re-export:
# plan_shards splits *tenants* across serving cells; plan_cohorts (one layer
# down, in repro.core.partition) splits a single round's *cohort* across
# worker processes along the HierarchyPlan boundary.
from repro.perf.counters import COUNTER_FIELDS, EngineCounters, collect, maybe_register
from repro.telemetry.bus import (
    RecordingSubscriber,
    TelemetryBus,
    TelemetryRecord,
    ambient_bus,
    merge_streams,
)
from repro.traces.models import Trace
from repro.traces.replay import ReplayConfig, ReplayResult, TraceReplayEngine
from repro.traces.slo import SloTracker

if TYPE_CHECKING:  # import-light, mirroring replay.py
    from repro.chaos.plan import FaultPlan
    from repro.controlplane.reactive import ControllerConfig
    from repro.core.platform import AggregationPlatform
    from repro.fl.client import FLClient
    from repro.fl.population import ClientPopulation
    from repro.fl.selector import Selector
    from repro.traces.models import AvailabilityTrace
    from repro.traces.replay import ChaosCorrelation

__all__ = [
    "CohortPlan",
    "ShardPlan",
    "ShardReport",
    "ShardedReplayEngine",
    "ShardedReplayResult",
    "plan_cohorts",
    "plan_shards",
    "split_trace",
]


@dataclass(frozen=True)
class ShardPlan:
    """Which tenants each shard serves: ``assignments[i]`` is shard ``i``'s
    sorted tenant-id tuple.  Empty shards are never emitted."""

    assignments: tuple[tuple[int, ...], ...]

    @property
    def n_shards(self) -> int:
        return len(self.assignments)

    def validate(self, trace: Trace) -> None:
        seen: set[int] = set()
        for tenants in self.assignments:
            if not tenants:
                raise ConfigError("shard plan contains an empty shard")
            overlap = seen.intersection(tenants)
            if overlap:
                raise ConfigError(f"tenants assigned to two shards: {sorted(overlap)}")
            seen.update(tenants)
        have = {ev.tenant for ev in trace.events}
        if seen != have:
            raise ConfigError(
                f"shard plan covers tenants {sorted(seen)} but trace has {sorted(have)}"
            )


def plan_shards(trace: Trace, n_shards: int) -> ShardPlan:
    """Balance whole tenants across at most ``n_shards`` shards.

    Greedy longest-processing-time by per-tenant event count: tenants are
    taken heaviest first and each lands on the least-loaded shard, with
    deterministic tie-breaks (tenant id, then shard index).  The effective
    shard count is capped at the number of tenants with events — a
    single-tenant trace always yields one shard, whatever was asked for.
    """
    if n_shards < 1:
        raise ConfigError(f"shards must be >= 1, got {n_shards}")
    counts: dict[int, int] = {}
    for ev in trace.events:
        counts[ev.tenant] = counts.get(ev.tenant, 0) + 1
    if not counts:
        return ShardPlan(assignments=())
    n = min(n_shards, len(counts))
    loads = [0] * n
    members: list[list[int]] = [[] for _ in range(n)]
    for tenant in sorted(counts, key=lambda t: (-counts[t], t)):
        shard = min(range(n), key=lambda i: (loads[i], i))
        loads[shard] += counts[tenant]
        members[shard].append(tenant)
    return ShardPlan(assignments=tuple(tuple(sorted(m)) for m in members))


def split_trace(trace: Trace, tenants: tuple[int, ...]) -> Trace:
    """The sub-trace a shard replays: ``trace`` filtered to ``tenants``.

    Events keep their original times, tenant ids, and per-tenant round
    ids (``merge_traces`` numbers rounds per tenant, so a tenant subset is
    already sequentially numbered) — the filtered trace therefore drives
    the identical seeded draws the full trace would for those tenants.
    The horizon is preserved so rate/time bookkeeping stays comparable.
    """
    keep = set(tenants)
    sub = Trace(
        events=[ev for ev in trace.events if ev.tenant in keep],
        horizon=trace.horizon,
        source=f"{trace.source or '?'} [tenants {','.join(map(str, sorted(keep)))}]",
    )
    sub.validate()
    return sub


@dataclass
class ShardReport:
    """One shard's complete output: its replay result, the engine counters
    its environment accumulated, and its own wall/CPU self-timing (CPU
    seconds are immune to timeslicing, so the slowest shard's CPU time is
    the replay's critical path on an uncontended multi-core host)."""

    shard: int
    tenants: tuple[int, ...]
    result: ReplayResult
    counters: dict[str, int]
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    #: the shard's telemetry stream, in its emission order (empty unless
    #: the sharded engine is streaming); records are picklable, so forked
    #: workers ship them home with the rest of the report
    telemetry: list[TelemetryRecord] = dataclass_field(default_factory=list)


@dataclass
class ShardedReplayResult:
    """A sharded replay's merged view plus the per-shard breakdown.

    ``merged`` is a plain :class:`~repro.traces.replay.ReplayResult` whose
    SLO tracker is the exact fold of every shard's tracker, so
    ``row()``/``report()`` have the same shape (and, for one shard, the
    same bytes) as an unsharded replay.  ``peak_inflight`` sums the
    per-shard peaks — the total concurrent-round capacity the shard fleet
    used.
    """

    merged: ReplayResult
    shards: list[ShardReport]
    #: True when shards ran on forked workers, False for the inline path
    forked: bool
    #: worker processes used (1 for the inline path)
    workers: int = 1

    def row(self) -> dict:
        return self.merged.row()

    def merged_counters(self) -> EngineCounters:
        snap = EngineCounters()
        for rep in self.shards:
            snap.merge_environment(_ShardCounters(f"shard{rep.shard}", rep.counters))
        return snap

    @property
    def critical_path_seconds(self) -> float:
        """The slowest shard's CPU seconds — the wall-clock floor a host
        with at least as many free cores as shards can reach."""
        return max((rep.cpu_seconds for rep in self.shards), default=0.0)


class _ShardCounters:
    """Counter carrier duck-typed as an Environment for the perf collector
    (it exposes the :data:`~repro.perf.counters.COUNTER_FIELDS` attributes),
    so ``--profile`` campaigns see forked shards' engine work."""

    def __init__(self, label: str, counters: dict[str, int]) -> None:
        self.perf_label = label
        for name in COUNTER_FIELDS:
            setattr(self, name, counters.get(name, 0))


class ShardedReplayEngine:
    """Partition one trace replay across worker processes and merge.

    Mirrors :class:`~repro.traces.replay.TraceReplayEngine`'s knobs but
    takes a ``platform_factory`` instead of a platform instance: every
    shard builds its *own* platform (engine, warm pool, node fleet), so a
    shard is a full serving cell and shard results are independent of
    execution order.  The factory must be safe to call once per shard.
    """

    def __init__(
        self,
        platform_factory: "Callable[[], AggregationPlatform]",
        trace: Trace,
        config: ReplayConfig | None = None,
        availability: "AvailabilityTrace | None" = None,
        weights: dict[str, float] | None = None,
        selector: "Selector | None" = None,
        clients: "list[FLClient] | None" = None,
        chaos: "ChaosCorrelation | None" = None,
        seed: int = 0,
        shards: int = 1,
        workers: int | None = None,
        population: "ClientPopulation | None" = None,
        controller: "ControllerConfig | None" = None,
        fault_plan: "FaultPlan | None" = None,
        telemetry: TelemetryBus | None = None,
    ) -> None:
        if not callable(platform_factory):
            raise ConfigError("platform_factory must be callable")
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        if workers is not None and workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.platform_factory = platform_factory
        self.trace = trace
        self.config = config or ReplayConfig()
        self.availability = availability
        self.weights = weights
        self.selector = selector
        self.clients = clients
        self.chaos = chaos
        self.seed = seed
        self.shards = shards
        self.workers = workers
        self.population = population
        #: each shard runs its own controller over its own serving cell —
        #: per-shard ticks stay deterministic and the reports merge
        self.controller = controller
        self.fault_plan = fault_plan
        #: parent-side telemetry bus (explicit argument or the ambient
        #: capture); shards never touch it directly — each shard records
        #: into a fresh private bus and the parent re-publishes the merged,
        #: shard-stamped stream after the workers return, so file-handle
        #: subscribers are never invoked from a forked child
        self.telemetry = telemetry if telemetry is not None else ambient_bus()
        #: set per run(): shards record their streams only when someone is
        #: actually subscribed on the parent side
        self._stream_shards = False

    # ------------------------------------------------------------------ run
    def run(self, inline: bool = False) -> ShardedReplayResult:
        """Replay every shard and merge.

        Shards are distributed over ``min(shards, workers)`` forked worker
        processes (``workers`` defaults to the CPUs this process may run
        on); a worker granted several shards runs them back to back.
        ``inline=True`` — or a single-CPU host, or an unforkable caller —
        runs everything in-process instead.  Every mode is byte-identical:
        the sub-trace split and all seeding are decided before execution
        mode, and each shard builds its own platform either way.
        """
        tel = self.telemetry.or_none() if self.telemetry is not None else None
        self._stream_shards = tel is not None
        plan = plan_shards(self.trace, self.shards)
        if plan.n_shards == 0:
            # An empty trace: one empty replay keeps the report shape.
            report = self._run_shard(0, self.trace)
            self._publish_streams(tel, [report])
            return ShardedReplayResult(
                merged=report.result, shards=[report], forked=False
            )
        tasks = [
            (i, split_trace(self.trace, tenants), tenants)
            for i, tenants in enumerate(plan.assignments)
        ]
        n_workers = min(plan.n_shards, self.workers or _available_cpus())
        fork = not inline and n_workers > 1 and _fork_available()
        if fork:
            reports = self._run_forked(tasks, n_workers)
            # Forked shards' environments lived in the children; credit
            # their counters to any active --profile collector here.
            for rep in reports:
                maybe_register(_ShardCounters(f"shard{rep.shard}", rep.counters))
        else:
            reports = [self._run_shard(i, sub, tenants) for i, sub, tenants in tasks]
        self._publish_streams(tel, reports)
        return ShardedReplayResult(
            merged=self._merge(reports),
            shards=reports,
            forked=fork,
            workers=n_workers if fork else 1,
        )

    def _publish_streams(
        self, tel: TelemetryBus | None, reports: "list[ShardReport]"
    ) -> None:
        """Fold the shards' recorded streams into arrival order (stamping
        each record's shard) and forward them to the parent's subscribers."""
        if tel is None:
            return
        ordered = sorted(reports, key=lambda r: r.shard)
        for rec in merge_streams([rep.telemetry for rep in ordered]):
            tel.publish(rec)

    # ---------------------------------------------------------------- workers
    def _run_shard(
        self, shard_id: int, sub: Trace, tenants: tuple[int, ...] = ()
    ) -> ShardReport:
        """Replay one shard in the current process, collecting counters.

        The shard always gets its own private bus (never the parent's):
        when streaming it records into a plain list shipped home in the
        report, and when not it blocks any ambient bus from reaching the
        child replay — the parent owns all subscriber-facing emission.
        """
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        shard_bus = TelemetryBus()
        recorder = (
            RecordingSubscriber(shard_bus) if self._stream_shards else None
        )
        with collect() as perf:
            engine = TraceReplayEngine(
                self.platform_factory(),
                sub,
                self.config,
                availability=self.availability,
                weights=self.weights,
                selector=self.selector,
                clients=self.clients,
                chaos=self.chaos,
                seed=self.seed,
                population=self.population,
                controller=self.controller,
                fault_plan=self.fault_plan,
                telemetry=shard_bus,
            )
            result = engine.run()
        return ShardReport(
            shard=shard_id,
            tenants=tenants,
            result=result,
            counters=perf.counters().as_dict(),
            wall_seconds=time.perf_counter() - wall0,
            cpu_seconds=time.process_time() - cpu0,
            telemetry=recorder.records if recorder is not None else [],
        )

    def _run_forked(
        self,
        tasks: list[tuple[int, Trace, tuple[int, ...]]],
        n_workers: int,
    ) -> list[ShardReport]:
        """Fan the shards out over ``n_workers`` forked workers.

        Shards are dealt round-robin (they are already LPT-balanced, so
        neighbouring indices carry similar load); each worker replays its
        share sequentially and ships the reports home over a pipe.  The
        parent receives before joining so a large report cannot deadlock
        against a full pipe buffer; a worker that dies without reporting
        surfaces as an error naming its shards.
        """
        ctx = multiprocessing.get_context("fork")
        groups = [tasks[w::n_workers] for w in range(n_workers)]
        procs = []
        for w, group in enumerate(groups):
            rx, tx = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=self._worker_main,
                args=(group, tx),
                name=f"trace-shard-w{w}",
            )
            proc.start()
            tx.close()
            procs.append((group, proc, rx))
        reports: list[ShardReport] = []
        failures: list[str] = []
        for group, proc, rx in procs:
            shard_ids = ",".join(str(i) for i, _, _ in group)
            try:
                status, payload = rx.recv()
            except EOFError:
                status, payload = "err", "worker died without reporting"
            proc.join()
            if status == "ok":
                reports.extend(payload)
            else:
                failures.append(f"shards [{shard_ids}]: {payload}")
        if failures:
            raise RuntimeError("sharded replay failed: " + "; ".join(failures))
        return reports

    def _worker_main(self, group, conn) -> None:
        try:
            out = [self._run_shard(i, sub, tuple(tenants)) for i, sub, tenants in group]
            conn.send(("ok", out))
        except BaseException:
            conn.send(("err", traceback.format_exc()))
        finally:
            conn.close()

    # ------------------------------------------------------------------ merge
    def _merge(self, reports: list[ShardReport]) -> ReplayResult:
        """Fold shard results into one :class:`ReplayResult`.

        SLO digests/tallies merge exactly; records re-interleave into the
        dispatch order (arrival time, tenant, round id) the unsharded
        engine emits; per-shard peak in-flight counts *sum* (shards peak
        independently — the sum bounds the fleet's concurrent rounds).
        """
        reports = sorted(reports, key=lambda r: r.shard)
        merged_slo = SloTracker(self.config.slo_target_s)
        records = []
        peak_per_tenant: dict[int, int] = {}
        merged = ReplayResult(
            records=records,
            slo=merged_slo,
            horizon=self.trace.horizon,
            track_cost=self.config.track_cost,
        )
        for rep in reports:
            res = rep.result
            merged_slo.merge(res.slo)
            records.extend(res.records)
            merged.peak_inflight += res.peak_inflight
            merged.chaos_waves += res.chaos_waves
            merged.clients_dropped += res.clients_dropped
            merged.cost_cpu_s += res.cost_cpu_s
            for tenant, peak in res.peak_inflight_per_tenant.items():
                if peak > peak_per_tenant.get(tenant, -1):
                    peak_per_tenant[tenant] = peak
            if res.controller is not None:
                if merged.controller is None:
                    from repro.controlplane.reactive import ControllerReport

                    merged.controller = ControllerReport()
                merged.controller.merge(res.controller)
        records.sort(key=lambda r: (r.arrival_at, r.tenant, r.round_id))
        merged.peak_inflight_per_tenant = dict(sorted(peak_per_tenant.items()))
        return merged


def _fork_available() -> bool:
    """Fork workers need the fork start method and a non-daemonic parent
    (``CampaignRunner --jobs`` pool workers are daemonic and cannot have
    children — there the shards run inline, byte-identically)."""
    if "fork" not in multiprocessing.get_all_start_methods():
        return False
    return not multiprocessing.current_process().daemon


def _available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware where the OS
    exposes it) — the default worker-count cap."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1
