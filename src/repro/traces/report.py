"""Summarize recorded trace campaigns: ``python -m repro.traces.report``.

Reads the per-scenario JSON files a campaign wrote with ``--out DIR``
(``python -m repro.experiments trace --out results/``), keeps the rows
that carry SLO columns, and prints one line per grid cell: percentiles,
queue-wait share, and attainment against the target.

Usage::

    python -m repro.traces.report results/                 # whole dir
    python -m repro.traces.report results/trace-poisson-slo.json
    python -m repro.traces.report results/ --slo-target 20  # re-score
    python -m repro.traces.report results/ --html report.html \\
        --telemetry run.jsonl --bench BENCH_engine.json     # HTML report
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.experiments.common import render_table

#: columns a row must carry to count as an SLO row
SLO_KEYS = ("latency_p50_s", "latency_p95_s", "latency_p99_s", "slo_attainment")


def _load_docs(path: str) -> list[dict]:
    if os.path.isdir(path):
        files = sorted(
            os.path.join(path, name)
            for name in os.listdir(path)
            if name.endswith(".json")
        )
    elif os.path.isfile(path):
        files = [path]
    else:
        return []
    docs = []
    for file in files:
        with open(file, encoding="utf-8") as fh:
            doc = json.load(fh)
        if isinstance(doc, dict) and "runs" in doc:
            docs.append(doc)
    return docs


def slo_rows(doc: dict) -> list[tuple[dict, dict]]:
    """(params, row) pairs of the document's SLO-bearing rows."""
    out = []
    for run in doc.get("runs", []):
        for row in run.get("rows", []):
            if all(key in row for key in SLO_KEYS):
                out.append((run.get("params", {}), row))
    return out


def render_slo_report(docs: list[dict], slo_target: float | None = None) -> str:
    """One table per scenario with SLO rows; non-SLO scenarios are noted."""
    lines: list[str] = []
    for doc in docs:
        pairs = slo_rows(doc)
        if not pairs:
            continue
        lines.append(f"{doc.get('scenario', '?')} — {doc.get('title', '')}")
        # Controller-enabled campaigns carry the shed/deferred split; the
        # extra columns appear only when some row has them, so reports for
        # controller-less campaigns keep their original shape.
        controlled = any("shed" in row or "deferred" in row for _, row in pairs)
        rows = []
        for params, row in pairs:
            cell = ",".join(f"{k}={v}" for k, v in params.items()) or "-"
            target = slo_target if slo_target is not None else row.get("slo_target_s")
            attain = row["slo_attainment"]
            if slo_target is not None:
                # Re-scoring against another target needs the percentile
                # shape, not the raw samples: report which percentile band
                # the new target falls in instead of a fake exact number.
                attain = _rescore_band(row, slo_target)
            ctl_cols = (
                (row.get("shed", 0), row.get("deferred", 0)) if controlled else ()
            )
            rows.append(
                (
                    cell,
                    row.get("rounds", 0),
                    *ctl_cols,
                    f"{row['latency_p50_s']:.2f}",
                    f"{row['latency_p95_s']:.2f}",
                    f"{row['latency_p99_s']:.2f}",
                    f"{row.get('queue_wait_p95_s', 0.0):.2f}",
                    f"{row.get('service_p95_s', 0.0):.2f}",
                    f"{target:.0f}s" if target is not None else "-",
                    attain if isinstance(attain, str) else f"{attain:.1%}",
                )
            )
        ctl_headers = ["shed", "defer"] if controlled else []
        lines.append(
            render_table(
                ["cell", "rounds", *ctl_headers, "p50 (s)", "p95 (s)", "p99 (s)", "wait p95", "svc p95", "SLO", "attained"],
                rows,
            )
        )
        lines.append("")
    if not lines:
        return "no SLO rows found (run a trace-* scenario with --out first)"
    return "\n".join(lines).rstrip()


def render_ranking(docs: list[dict], metric: str) -> str:
    """Rank every SLO row carrying ``metric`` (tournament campaigns track
    cost and emit ``attainment_per_cost``), best first, across all docs.

    Rows without the metric — ordinary trace campaigns — are skipped, so
    pointing the ranking at a mixed results directory is safe.
    """
    ranked = []
    for doc in docs:
        scenario = doc.get("scenario", "?")
        for params, row in slo_rows(doc):
            if metric not in row:
                continue
            cell = ",".join(f"{k}={v}" for k, v in params.items()) or "-"
            ranked.append((scenario, cell, row))
    if not ranked:
        return (
            f"no rows carry {metric!r} (run a cost-tracked campaign, e.g. "
            "policy-tournament, with --out first)"
        )
    ranked.sort(key=lambda item: (-item[2][metric], item[0], item[1]))
    rows = [
        (
            rank,
            scenario,
            cell,
            f"{row['slo_attainment']:.1%}",
            f"{row.get('cost_cpu_s', 0.0):.1f}",
            f"{row[metric]:.6f}",
        )
        for rank, (scenario, cell, row) in enumerate(ranked, start=1)
    ]
    return "\n".join(
        [
            f"ranked by {metric} (best first)",
            render_table(
                ["#", "scenario", "cell", "attained", "cost (cpu·s)", metric],
                rows,
            ),
        ]
    )


def _rescore_band(row: dict, target: float) -> str:
    """Bracket attainment for a target the campaign was not scored at."""
    p50, p95, p99 = (
        row["latency_p50_s"],
        row["latency_p95_s"],
        row["latency_p99_s"],
    )
    if target < p50:
        return "<50%"
    if target < p95:
        return "50-95%"
    if target < p99:
        return "95-99%"
    return ">=99%"


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.traces.report",
        description="Summarize SLO rows from recorded trace campaigns.",
    )
    parser.add_argument("path", help="campaign --out directory or one <scenario>.json")
    parser.add_argument(
        "--slo-target",
        type=float,
        default=None,
        metavar="S",
        help="bracket attainment against a different target (seconds)",
    )
    parser.add_argument(
        "--rank-by",
        choices=["attainment_per_cost"],
        default=None,
        metavar="METRIC",
        help="append a cross-scenario ranking of cost-tracked rows "
        "(tournament mode); choices: attainment_per_cost",
    )
    parser.add_argument(
        "--html",
        default=None,
        metavar="FILE",
        help="also write a standalone HTML report (tables, outcome bars, "
        "attainment curves, timelines)",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="FILE",
        help="telemetry JSONL stream to chart in the HTML report",
    )
    parser.add_argument(
        "--bench",
        default=None,
        metavar="FILE",
        help="BENCH_*.json trajectory to sparkline in the HTML report",
    )
    args = parser.parse_args(argv[1:])
    docs = _load_docs(args.path)
    if not docs and not (args.html and (args.telemetry or args.bench)):
        print(f"no campaign JSON found under {args.path}")
        return 2
    if docs:
        print(render_slo_report(docs, slo_target=args.slo_target))
    if args.rank_by and docs:
        print()
        print(render_ranking(docs, args.rank_by))
    if args.html:
        from repro.telemetry.html import build_report
        from repro.telemetry.sink import _iter_lines

        telemetry = (
            [obj for _, obj in _iter_lines(args.telemetry)] if args.telemetry else None
        )
        bench = None
        if args.bench:
            with open(args.bench, encoding="utf-8") as fh:
                bench = json.load(fh)
        page = build_report(docs, telemetry=telemetry, bench=bench)
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(page)
        print(f"HTML report written to {args.html}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
