"""Trace-driven workload subsystem.

Three layers turn the one-shot round engine into a *served* system:

* :mod:`repro.traces.models` — seeded round-arrival traces (Poisson,
  diurnal, Markov-modulated bursts), per-client availability traces
  (session/churn with day-night participation), and a CSV/JSONL loader
  for external traces — all replaying byte-identically from a seed;
* :mod:`repro.traces.replay` — the arrival-driven serving loop:
  :class:`TraceReplayEngine` admits rounds as trace events fire,
  overlaps them on one shared fabric with bounded admission queues and
  warm-pool reuse, samples participants from the availability trace, and
  can correlate dropout chaos with availability dips;
* :mod:`repro.traces.slo` — fixed-memory streaming latency percentiles
  (p50/p95/p99), queue-wait vs service-time breakdown, and
  SLO-attainment accounting; summarize recorded campaigns with
  ``python -m repro.traces.report``;
* :mod:`repro.traces.shard` — multi-core sharded replay:
  :class:`ShardedReplayEngine` partitions a replay's tenants across
  forked worker processes (each shard a full serving cell) and merges
  the per-shard SLO digests and engine counters exactly.
"""

from repro.traces.models import (
    AvailabilityTrace,
    Trace,
    TraceEvent,
    availability_trace,
    diurnal_trace,
    load_trace,
    merge_traces,
    mmpp_trace,
    poisson_trace,
    save_trace,
)
from repro.traces.replay import (
    ChaosCorrelation,
    ReplayConfig,
    ReplayResult,
    RoundRecord,
    TraceReplayEngine,
)
from repro.traces.shard import (
    ShardedReplayEngine,
    ShardedReplayResult,
    ShardPlan,
    ShardReport,
    plan_shards,
    split_trace,
)
from repro.traces.slo import LatencyDigest, SloTracker

__all__ = [
    "AvailabilityTrace",
    "ChaosCorrelation",
    "LatencyDigest",
    "ReplayConfig",
    "ReplayResult",
    "RoundRecord",
    "ShardPlan",
    "ShardReport",
    "ShardedReplayEngine",
    "ShardedReplayResult",
    "SloTracker",
    "Trace",
    "TraceEvent",
    "TraceReplayEngine",
    "availability_trace",
    "diurnal_trace",
    "load_trace",
    "merge_traces",
    "mmpp_trace",
    "plan_shards",
    "poisson_trace",
    "save_trace",
    "split_trace",
]
