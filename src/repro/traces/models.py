"""Trace models: round-arrival processes and client-availability traces.

Everything here is *pure data from a seed*: a :class:`Trace` is a sorted
timeline of :class:`TraceEvent`\\ s (round arrivals, per tenant), an
:class:`AvailabilityTrace` is a set of per-client availability windows.
The generators draw every sample from :func:`repro.common.rng.make_rng`
streams, so the same ``(generator, parameters, seed)`` triple replays
byte-identically in any process — the property the golden-determinism
tests pin.

Three arrival processes cover the serving-workload literature's shapes:

* :func:`poisson_trace` — homogeneous Poisson (the classic open-loop
  arrival assumption);
* :func:`diurnal_trace` — nonhomogeneous Poisson with a sinusoidal rate
  (day/night load), sampled by thinning;
* :func:`mmpp_trace` — a two-state Markov-modulated Poisson process
  (calm/burst), the standard bursty-traffic model.

External traces load through :func:`load_trace` (CSV or JSONL) so real
cluster logs can drive the same replay loop.
"""

from __future__ import annotations

import csv
import json
import math
import os
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng

__all__ = [
    "AvailabilityTrace",
    "Trace",
    "TraceEvent",
    "availability_trace",
    "diurnal_trace",
    "load_trace",
    "merge_traces",
    "mmpp_trace",
    "poisson_trace",
    "save_trace",
]


@dataclass(frozen=True)
class TraceEvent:
    """One round arrival: tenant ``tenant`` requests round ``round_id`` at
    time ``at`` (seconds from trace start)."""

    at: float
    tenant: int = 0
    round_id: int = 0

    def check(self) -> None:
        if self.at < 0:
            raise ConfigError(f"trace event time must be >= 0, got {self.at}")
        if self.tenant < 0:
            raise ConfigError(f"trace event tenant must be >= 0, got {self.tenant}")


@dataclass
class Trace:
    """A replayable timeline of round arrivals.

    Events are sorted by ``(at, tenant, round_id)``; ``round_id`` numbers
    each tenant's arrivals 0..n-1 in time order.  ``source`` records how
    the trace was built (generator + parameters) for reports.
    """

    events: list[TraceEvent] = field(default_factory=list)
    horizon: float = 0.0
    source: str = ""

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def tenants(self) -> int:
        """Number of distinct tenants (max tenant id + 1; 0 when empty)."""
        return max((ev.tenant for ev in self.events), default=-1) + 1

    def validate(self) -> None:
        prev = None
        seen: dict[int, int] = {}
        for ev in self.events:
            ev.check()
            if ev.at > self.horizon:
                raise ConfigError(
                    f"trace event at t={ev.at} beyond horizon {self.horizon}"
                )
            if prev is not None and ev.at < prev:
                raise ConfigError("trace events must be sorted by time")
            prev = ev.at
            want = seen.get(ev.tenant, 0)
            if ev.round_id != want:
                raise ConfigError(
                    f"tenant {ev.tenant} round ids must be sequential: "
                    f"expected {want}, got {ev.round_id}"
                )
            seen[ev.tenant] = want + 1

    def rate_per_bucket(self, bucket: float = 60.0) -> list[int]:
        """Arrival counts per ``bucket`` seconds — the load time series."""
        if bucket <= 0:
            raise ConfigError("bucket must be positive")
        n = max(1, int(math.ceil(self.horizon / bucket)))
        counts = [0] * n
        for ev in self.events:
            counts[min(int(ev.at // bucket), n - 1)] += 1
        return counts


def _finish(events: list[TraceEvent], horizon: float, source: str) -> Trace:
    """Sort, renumber round ids per tenant, and wrap into a Trace."""
    events.sort(key=lambda e: (e.at, e.tenant, e.round_id))
    next_id: dict[int, int] = {}
    out = []
    for ev in events:
        rid = next_id.get(ev.tenant, 0)
        next_id[ev.tenant] = rid + 1
        out.append(TraceEvent(at=ev.at, tenant=ev.tenant, round_id=rid))
    trace = Trace(events=out, horizon=horizon, source=source)
    trace.validate()
    return trace


# ------------------------------------------------------------------ arrivals
def poisson_trace(
    rate_per_min: float, horizon: float, seed: int = 0, tenant: int = 0
) -> Trace:
    """Homogeneous Poisson round arrivals at ``rate_per_min`` per minute."""
    if rate_per_min <= 0 or horizon <= 0:
        raise ConfigError("rate and horizon must be positive")
    rng = make_rng(seed, f"trace:poisson:{tenant}")
    rate = rate_per_min / 60.0
    events: list[TraceEvent] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t >= horizon:
            break
        events.append(TraceEvent(at=t, tenant=tenant))
    return _finish(
        events, horizon, f"poisson(rate={rate_per_min}/min, horizon={horizon}s)"
    )


def diurnal_trace(
    base_rate_per_min: float,
    horizon: float,
    amplitude: float = 0.8,
    period: float = 86400.0,
    phase: float = 0.0,
    phase_shift_s: float = 0.0,
    seed: int = 0,
    tenant: int = 0,
) -> Trace:
    """Nonhomogeneous Poisson arrivals with a sinusoidal (diurnal) rate.

    The instantaneous rate is ``base × (1 + amplitude · sin(2π(t+phase+
    phase_shift_s)/period))``; sampled exactly by thinning against the
    peak rate, so the trace is deterministic in the seed regardless of
    the rate shape.  ``phase_shift_s`` is an additive offset on top of
    ``phase`` — the follow-the-sun knob: give each region's tenants a
    shift of ``region_index × period / n_regions`` and their load peaks
    march around the planet (:mod:`repro.geo`).  Zero shift reproduces
    the unshifted trace byte for byte.
    """
    if base_rate_per_min <= 0 or horizon <= 0:
        raise ConfigError("rate and horizon must be positive")
    if not 0.0 <= amplitude < 1.0:
        raise ConfigError(f"amplitude must be in [0, 1), got {amplitude}")
    if period <= 0:
        raise ConfigError("period must be positive")
    rng = make_rng(seed, f"trace:diurnal:{tenant}")
    base = base_rate_per_min / 60.0
    peak = base * (1.0 + amplitude)
    two_pi = 2.0 * math.pi
    events: list[TraceEvent] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / peak))
        if t >= horizon:
            break
        shifted = t + phase + phase_shift_s
        rate_t = base * (1.0 + amplitude * math.sin(two_pi * shifted / period))
        if float(rng.uniform()) * peak < rate_t:
            events.append(TraceEvent(at=t, tenant=tenant))
    shift_tag = f", shift={phase_shift_s}s" if phase_shift_s else ""
    return _finish(
        events,
        horizon,
        f"diurnal(base={base_rate_per_min}/min, amp={amplitude}, "
        f"period={period}s{shift_tag}, horizon={horizon}s)",
    )


def mmpp_trace(
    calm_rate_per_min: float,
    burst_rate_per_min: float,
    horizon: float,
    mean_calm: float = 120.0,
    mean_burst: float = 20.0,
    seed: int = 0,
    tenant: int = 0,
) -> Trace:
    """Two-state Markov-modulated Poisson arrivals (calm ↔ burst).

    State sojourns are exponential (``mean_calm`` / ``mean_burst``
    seconds); within a state, arrivals are Poisson at that state's rate —
    the canonical bursty-workload model.
    """
    if calm_rate_per_min <= 0 or burst_rate_per_min <= 0 or horizon <= 0:
        raise ConfigError("rates and horizon must be positive")
    if burst_rate_per_min <= calm_rate_per_min:
        raise ConfigError("burst rate must exceed calm rate")
    if mean_calm <= 0 or mean_burst <= 0:
        raise ConfigError("mean sojourn times must be positive")
    rng = make_rng(seed, f"trace:mmpp:{tenant}")
    rates = (calm_rate_per_min / 60.0, burst_rate_per_min / 60.0)
    means = (mean_calm, mean_burst)
    events: list[TraceEvent] = []
    t = 0.0
    state = 0  # start calm
    while t < horizon:
        sojourn = float(rng.exponential(means[state]))
        end = min(t + sojourn, horizon)
        rate = rates[state]
        at = t
        while True:
            at += float(rng.exponential(1.0 / rate))
            if at >= end:
                break
            events.append(TraceEvent(at=at, tenant=tenant))
        t = end
        state = 1 - state
    return _finish(
        events,
        horizon,
        f"mmpp(calm={calm_rate_per_min}/min, burst={burst_rate_per_min}/min, "
        f"sojourn={mean_calm}/{mean_burst}s, horizon={horizon}s)",
    )


def merge_traces(*traces: Trace) -> Trace:
    """One timeline from several per-tenant traces (round ids renumbered
    per tenant in time order; horizon is the max of the inputs)."""
    if not traces:
        raise ConfigError("merge needs at least one trace")
    events = [ev for trace in traces for ev in trace.events]
    horizon = max(t.horizon for t in traces)
    source = " + ".join(t.source or "?" for t in traces)
    return _finish(events, horizon, source)


# ------------------------------------------------------------- availability
@dataclass
class AvailabilityTrace:
    """Per-client availability windows over a horizon (FedScale-style).

    ``windows[client_id]`` is a sorted tuple of ``[start, end)`` intervals
    during which the client can be selected for a round.  Built by
    :func:`availability_trace` (session/churn distributions with optional
    day-night modulation) or assembled directly from log data.
    """

    horizon: float
    windows: dict[str, tuple[tuple[float, float], ...]] = field(default_factory=dict)
    #: lazily compiled CSR flat index over all windows (sorted-id order):
    #: (ids, win_start, win_end, row_index, fingerprint)
    _compiled: tuple | None = field(default=None, repr=False, compare=False)

    @property
    def client_ids(self) -> list[str]:
        return sorted(self.windows)

    def is_available(self, client_id: str, at: float) -> bool:
        for start, end in self.windows.get(client_id, ()):
            if start <= at < end:
                return True
            if start > at:
                break
        return False

    def _compile(self) -> tuple:
        """Flatten the per-id window dict into parallel numpy arrays, in
        sorted-id order, so availability queries become one vectorized
        interval test instead of a Python loop per client.  Recompiled
        when the dict's shape changes (cheap fingerprint; traces are
        effectively immutable after construction)."""
        fingerprint = (len(self.windows), sum(len(w) for w in self.windows.values()))
        if self._compiled is not None and self._compiled[4] == fingerprint:
            return self._compiled
        ids = self.client_ids
        counts = np.array([len(self.windows[cid]) for cid in ids], dtype=np.int64)
        flat = [span for cid in ids for span in self.windows[cid]]
        if flat:
            arr = np.asarray(flat)
            starts, ends = arr[:, 0], arr[:, 1]
        else:
            starts = ends = np.empty(0)
        rows = np.repeat(np.arange(len(ids), dtype=np.int64), counts)
        self._compiled = (ids, starts, ends, rows, fingerprint)
        return self._compiled

    def available_mask(self, at: float) -> "np.ndarray":
        """Boolean availability per client at ``at``, in sorted-id order —
        the vectorized core of :meth:`available`."""
        ids, starts, ends, rows, _ = self._compile()
        hit = (starts <= at) & (at < ends)
        mask = np.zeros(len(ids), dtype=bool)
        mask[rows[hit]] = True
        return mask

    def available(self, at: float) -> list[str]:
        """Client ids available at time ``at``, in sorted-id order (the
        deterministic sampling base).  Large populations take the compiled
        vectorized path; the output is identical either way."""
        if len(self.windows) >= 512:
            ids, *_ = self._compile()
            mask = self.available_mask(at)
            return [ids[int(i)] for i in np.flatnonzero(mask)]
        return [cid for cid in self.client_ids if self.is_available(cid, at)]

    def availability_fraction(self, at: float) -> float:
        """Fraction of the population available at ``at`` (0 when empty)."""
        if not self.windows:
            return 0.0
        return len(self.available(at)) / len(self.windows)

    def sample(self, at: float, n: int, rng: np.random.Generator) -> list[str]:
        """Draw up to ``n`` distinct available clients at ``at`` (all of
        them when fewer are up) — availability-aware round participation."""
        pool = self.available(at)
        if len(pool) <= n:
            return pool
        idx = rng.choice(len(pool), size=n, replace=False)
        return [pool[int(i)] for i in sorted(idx)]


def availability_trace(
    n_clients: int,
    horizon: float,
    seed: int = 0,
    mean_session: float = 180.0,
    mean_gap: float = 60.0,
    day_night_amplitude: float = 0.0,
    period: float = 86400.0,
    prefix: str = "client",
) -> AvailabilityTrace:
    """Seeded per-client session/churn availability windows.

    Each client alternates offline gaps (Exp(``mean_gap``)) and online
    sessions (Exp(``mean_session``)).  ``day_night_amplitude`` modulates
    the *gap* length sinusoidally over ``period`` — gaps drawn during the
    "day" half stretch and during the "night" half shrink, reproducing the
    FedScale day-night participation swing (mobile clients charge — and
    participate — at night).
    """
    if n_clients < 1:
        raise ConfigError(f"n_clients must be >= 1, got {n_clients}")
    if horizon <= 0 or mean_session <= 0 or mean_gap <= 0:
        raise ConfigError("horizon and session/gap means must be positive")
    if not 0.0 <= day_night_amplitude < 1.0:
        raise ConfigError(
            f"day_night_amplitude must be in [0, 1), got {day_night_amplitude}"
        )
    if period <= 0:
        raise ConfigError("period must be positive")
    two_pi = 2.0 * math.pi
    windows: dict[str, tuple[tuple[float, float], ...]] = {}
    for i in range(n_clients):
        cid = f"{prefix}-{i:04d}"
        rng = make_rng(seed, f"avail:{cid}")
        spans: list[tuple[float, float]] = []
        # Random initial phase: about session/(session+gap) of the fleet
        # starts a trace already online.
        t = 0.0
        online = float(rng.uniform()) < mean_session / (mean_session + mean_gap)
        while t < horizon:
            if online:
                end = t + float(rng.exponential(mean_session))
                spans.append((t, min(end, horizon)))
                t = end
            else:
                gap = float(rng.exponential(mean_gap))
                if day_night_amplitude > 0.0:
                    gap *= 1.0 + day_night_amplitude * math.sin(two_pi * t / period)
                t += gap
            online = not online
        windows[cid] = tuple(spans)
    return AvailabilityTrace(horizon=horizon, windows=windows)


# ------------------------------------------------------------------- loaders
def load_trace(path: str, horizon: float | None = None) -> Trace:
    """Load an external round-arrival trace from CSV or JSONL.

    * ``.csv`` — columns ``at[,tenant]`` (header optional);
    * ``.jsonl`` / ``.ndjson`` — one ``{"at": ..., "tenant": ...}`` object
      per line (``tenant`` optional, default 0).

    Round ids are assigned per tenant in time order; ``horizon`` defaults
    to the last arrival time.
    """
    ext = os.path.splitext(path)[1].lower()
    events: list[TraceEvent] = []
    if ext == ".csv":
        with open(path, newline="", encoding="utf-8") as fh:
            for row in csv.reader(fh):
                if not row or not row[0].strip():
                    continue
                first = row[0].strip()
                try:
                    at = float(first)
                except ValueError:
                    if first.lower() in ("at", "time", "t"):
                        continue  # header row
                    raise ConfigError(f"{path}: unparseable trace row {row!r}") from None
                tenant = int(row[1]) if len(row) > 1 and row[1].strip() else 0
                events.append(TraceEvent(at=at, tenant=tenant))
    elif ext in (".jsonl", ".ndjson"):
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ConfigError(f"{path}: bad JSONL line: {exc}") from exc
                if "at" not in obj:
                    raise ConfigError(f"{path}: JSONL trace lines need an 'at' field")
                events.append(
                    TraceEvent(at=float(obj["at"]), tenant=int(obj.get("tenant", 0)))
                )
    else:
        raise ConfigError(f"unknown trace format {ext!r} (want .csv or .jsonl)")
    if not events:
        raise ConfigError(f"{path}: empty trace")
    hz = horizon if horizon is not None else max(ev.at for ev in events)
    return _finish(events, hz, f"file({os.path.basename(path)})")


def save_trace(trace: Trace, path: str) -> None:
    """Write a trace back out (JSONL) — round-trips through
    :func:`load_trace`."""
    with open(path, "w", encoding="utf-8") as fh:
        for ev in trace.events:
            fh.write(json.dumps({"at": ev.at, "tenant": ev.tenant}) + "\n")
