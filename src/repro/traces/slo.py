"""SLO analytics for trace-driven serving: streaming percentiles and
attainment accounting.

:class:`LatencyDigest` is a fixed-memory streaming quantile estimator — a
log-spaced histogram (HdrHistogram-style) whose relative error is bounded
by the bucket growth factor (~2.2% at the default 128 buckets/decade).  It
never stores samples, so a million-round replay costs the same memory as a
ten-round one, and it is exactly deterministic: the same sample sequence
yields the same counts and the same quantiles in any process.

:class:`SloTracker` is the per-replay accountant: it feeds three digests
(end-to-end latency, queue wait, service time), counts SLO hits against a
target, and folds in rejected/aborted rounds (which by definition never
attain).  ``report()`` emits the flat row the trace scenarios publish.

Both classes *merge exactly*: a digest is a histogram, so folding shard
digests together is plain per-bucket addition — the merged counts (and
therefore every quantile) are identical to a single digest that saw all
the samples, in any order.  That exactness is what lets the sharded
replay (:mod:`repro.traces.shard`) split a trace across worker processes
and still publish one authoritative SLO report.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.common.errors import ConfigError

__all__ = ["LatencyDigest", "SloTracker"]


class LatencyDigest:
    """Fixed-memory log-bucket quantile digest over positive samples.

    Values in ``[lo, hi)`` land in one of ``decades × bins_per_decade``
    geometric buckets; values below ``lo`` clamp into the first bucket and
    values at or above ``hi`` into a dedicated overflow bucket.  Quantiles
    return the geometric midpoint of the selected bucket — a relative
    error of at most half the bucket width (~1.8% / bin at 128/decade).
    """

    __slots__ = ("lo", "hi", "bins_per_decade", "_counts", "_scale", "count", "total", "min", "max")

    def __init__(
        self, lo: float = 1e-3, hi: float = 1e5, bins_per_decade: int = 128
    ) -> None:
        if lo <= 0 or hi <= lo:
            raise ConfigError("digest needs 0 < lo < hi")
        if bins_per_decade < 1:
            raise ConfigError("bins_per_decade must be >= 1")
        self.lo = lo
        self.hi = hi
        self.bins_per_decade = bins_per_decade
        decades = math.log10(hi / lo)
        n_bins = int(math.ceil(decades * bins_per_decade))
        #: bucket i covers [lo·10^(i/bpd), lo·10^((i+1)/bpd)); +1 overflow
        self._counts = [0] * (n_bins + 1)
        self._scale = bins_per_decade / math.log(10.0)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def add(self, value: float) -> None:
        if value < 0:
            raise ConfigError(f"latency samples must be >= 0, got {value}")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value < self.lo:
            idx = 0
        elif value >= self.hi:
            idx = len(self._counts) - 1
        else:
            idx = int(math.log(value / self.lo) * self._scale)
            idx = min(idx, len(self._counts) - 2)
        self._counts[idx] += 1

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimate (0 when the digest is empty)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        # Nearest-rank over the bucket histogram.
        rank = max(1, int(math.ceil(q * self.count)))
        seen = 0
        for idx, n in enumerate(self._counts):
            seen += n
            if seen >= rank:
                if idx == len(self._counts) - 1:
                    return self.max  # overflow bucket: best bound we have
                left = self.lo * 10 ** (idx / self.bins_per_decade)
                right = self.lo * 10 ** ((idx + 1) / self.bins_per_decade)
                mid = math.sqrt(left * right)
                # Never report outside the observed range (tiny digests).
                return min(max(mid, self.min), self.max)
        return self.max

    def merge(self, other: "LatencyDigest") -> None:
        """Fold ``other``'s buckets into this digest — exact, not an
        approximation: bucket counts add, so the merged digest equals one
        that ingested both sample streams directly."""
        if (
            other.lo != self.lo
            or other.hi != self.hi
            or other.bins_per_decade != self.bins_per_decade
        ):
            raise ConfigError("can only merge digests with identical bucketing")
        for idx, n in enumerate(other._counts):
            self._counts[idx] += n
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentiles(self) -> dict[str, float]:
        """The standard p50/p95/p99 triple."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


@dataclass
class _Outcome:
    """Mutable tally of round outcomes."""

    completed: int = 0
    attained: int = 0
    aborted: int = 0
    rejected: int = 0
    #: deferred past the bounded queue and *then served* — a subset of
    #: ``completed``; their latency digests carry the full queue wait
    shed: int = 0
    deferred: int = 0


class SloTracker:
    """Streaming SLO accounting for one replay.

    ``observe`` records one *finished* round's queue wait and service time
    (latency = wait + service) and scores it against ``slo_target_s``;
    ``abort``/``reject``/``shed`` record rounds that never produced a
    model — they count against attainment, since a round the service
    dropped is a round the tenant did not get.  The three are distinct
    categories: *rejected* rounds bounced off a full admission queue at
    arrival, *shed* rounds were first deferred (or displaced by a control
    action) and dropped later, *aborted* rounds were admitted and failed
    mid-flight.  ``observe(deferred=True)`` marks a deferred-then-served
    round — it completes normally (full queue wait included) and is
    additionally tallied so the deferral machinery's reach is visible.

    ``window_s > 0`` additionally keeps a sliding window of timestamped
    outcomes so a controller can read the *burn rate* — the fraction of
    recently offered rounds that missed the SLO (completed late, aborted,
    rejected, or shed).  The window exists only for live control decisions;
    it is not part of ``report()`` and does not participate in ``merge``
    (shards merge after their clocks stop).

    ``controller=True`` marks a tracker owned by a controller-enabled
    replay: ``report()`` then includes the ``shed``/``deferred`` columns.
    Controller-less replays keep the exact pre-controller report shape, so
    recorded scenario rows stay byte-identical.  ``merge`` ORs the flag —
    one controller-enabled shard makes the merged report carry the split.
    """

    def __init__(
        self, slo_target_s: float, window_s: float = 0.0, controller: bool = False
    ) -> None:
        if slo_target_s <= 0:
            raise ConfigError("slo_target_s must be positive")
        if window_s < 0:
            raise ConfigError("window_s must be >= 0")
        self.slo_target_s = slo_target_s
        self.window_s = window_s
        self.controller = controller
        self.latency = LatencyDigest()
        self.queue_wait = LatencyDigest()
        self.service = LatencyDigest()
        self._tally = _Outcome()
        #: (timestamp, missed) outcomes inside the burn-rate window
        self._window: deque[tuple[float, bool]] = deque()

    # ------------------------------------------------------------ recording
    def _window_add(self, at: float | None, missed: bool) -> None:
        if self.window_s > 0 and at is not None:
            self._window.append((at, missed))

    def observe(
        self,
        queue_wait: float,
        service: float,
        deferred: bool = False,
        at: float | None = None,
    ) -> bool:
        """Record one completed round; returns True when it met the SLO."""
        latency = queue_wait + service
        self.latency.add(latency)
        self.queue_wait.add(queue_wait)
        self.service.add(service)
        self._tally.completed += 1
        if deferred:
            self._tally.deferred += 1
        ok = latency <= self.slo_target_s
        if ok:
            self._tally.attained += 1
        self._window_add(at, not ok)
        return ok

    def abort(self, at: float | None = None) -> None:
        self._tally.aborted += 1
        self._window_add(at, True)

    def reject(self, at: float | None = None) -> None:
        self._tally.rejected += 1
        self._window_add(at, True)

    def shed(self, at: float | None = None) -> None:
        """One deferred (or displaced) round dropped by the control plane."""
        self._tally.shed += 1
        self._window_add(at, True)

    def burn_rate(self, now: float) -> float:
        """Fraction of rounds offered in ``[now - window_s, now]`` that
        missed the SLO (0.0 with no window or no recent outcomes)."""
        if self.window_s <= 0:
            return 0.0
        window = self._window
        cutoff = now - self.window_s
        while window and window[0][0] < cutoff:
            window.popleft()
        if not window:
            return 0.0
        return sum(1 for _, missed in window if missed) / len(window)

    def merge(self, other: "SloTracker") -> None:
        """Fold another tracker's accounting into this one (shard merge).

        Digest merges are exact (bucket addition); the outcome tally sums
        — including the shed/deferred split, so sharded controller runs
        report the same categories an unsharded run would.  Both trackers
        must score against the same SLO target — merging
        differently-scored shards would make ``attainment`` meaningless.
        """
        if other.slo_target_s != self.slo_target_s:
            raise ConfigError(
                f"cannot merge SLO trackers with different targets "
                f"({self.slo_target_s} vs {other.slo_target_s})"
            )
        self.latency.merge(other.latency)
        self.queue_wait.merge(other.queue_wait)
        self.service.merge(other.service)
        self._tally.completed += other._tally.completed
        self._tally.attained += other._tally.attained
        self._tally.aborted += other._tally.aborted
        self._tally.rejected += other._tally.rejected
        self._tally.shed += other._tally.shed
        self._tally.deferred += other._tally.deferred
        self.controller = self.controller or other.controller

    # ------------------------------------------------------------ reporting
    @property
    def rounds_total(self) -> int:
        t = self._tally
        return t.completed + t.aborted + t.rejected + t.shed

    @property
    def attainment(self) -> float:
        """Fraction of *offered* rounds that completed within the SLO."""
        total = self.rounds_total
        return self._tally.attained / total if total else 0.0

    def report(self) -> dict:
        """One flat, JSON-ready row of SLO metrics (scenario row shape)."""
        t = self._tally
        lat = self.latency.percentiles()
        wait = self.queue_wait.percentiles()
        svc = self.service.percentiles()
        extra = (
            {"shed": t.shed, "deferred": t.deferred} if self.controller else {}
        )
        return {
            "rounds": self.rounds_total,
            "completed": t.completed,
            "aborted": t.aborted,
            "rejected": t.rejected,
            **extra,
            "slo_target_s": self.slo_target_s,
            "slo_attainment": round(self.attainment, 6),
            "latency_p50_s": round(lat["p50"], 6),
            "latency_p95_s": round(lat["p95"], 6),
            "latency_p99_s": round(lat["p99"], 6),
            "latency_mean_s": round(self.latency.mean, 6),
            "queue_wait_p50_s": round(wait["p50"], 6),
            "queue_wait_p95_s": round(wait["p95"], 6),
            "queue_wait_p99_s": round(wait["p99"], 6),
            "queue_wait_mean_s": round(self.queue_wait.mean, 6),
            "service_p50_s": round(svc["p50"], 6),
            "service_p95_s": round(svc["p95"], 6),
            "service_p99_s": round(svc["p99"], 6),
            "service_mean_s": round(self.service.mean, 6),
        }
