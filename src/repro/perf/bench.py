"""Engine benchmarks: micro (kernel primitives) and macro (scenario cells).

The micro-benchmarks time the discrete-event kernel's primitives in
isolation — timer churn, process spawn/finish, processor-sharing link
state changes — in events (or flows) per second.  The macro-benchmarks
are registry scenario cells, wall-clock each, with the engine counters
attached: the ``stress50`` 900-update round, the ``stress500`` 4-tenant
shared-fabric round, the ``trace-diurnal-multitenant`` arrival-driven
serving cell (~209 overlapping rounds from a diurnal trace), and that
same cell sharded across 4 forked workers
(``macro_trace_diurnal_sharded``: measured wall-clock plus the per-shard
CPU critical path — the multi-core floor).

``python -m repro.perf.bench --out BENCH_engine.json --label <label>``
appends one labelled entry to the JSON trajectory so successive PRs can be
compared (see ``benchmarks/README.md``).  The pytest-benchmark suite in
``benchmarks/test_bench_engine.py`` exercises the same functions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from datetime import datetime, timezone

from repro.perf.counters import EngineCounters, collect
from repro.sim.engine import Environment

# --------------------------------------------------------------- micro


def timer_churn(n_timers: int = 20_000) -> Environment:
    """Schedule and drain ``n_timers`` staggered timeouts."""
    env = Environment()
    for i in range(n_timers):
        env.timeout(float(i % 97) * 1e-3)
    env.run()
    return env


def process_churn(n_processes: int = 5_000) -> Environment:
    """Spawn short-lived processes that wait once and finish."""
    env = Environment()

    def worker(delay: float):
        yield env.timeout(delay)

    for i in range(n_processes):
        env.process(worker(float(i % 13) * 1e-3))
    env.run()
    return env


def ps_link_churn(n_flows: int = 2_000) -> Environment:
    """Drive one processor-sharing link through staggered flow arrivals
    (every arrival/completion is a rate change)."""
    from repro.cluster.network import ProcessorSharingLink

    env = Environment()
    link = ProcessorSharingLink(env, capacity_bps=1e6)

    def feeder():
        for i in range(n_flows):
            link.transfer(1000.0 + (i % 29) * 37.0)
            yield env.timeout(0.4e-3)

    env.process(feeder())
    env.run()
    return env


def fabric_churn(n_transfers: int = 1_000, n_nodes: int = 8) -> Environment:
    """Concurrent fabric transfers contending on TX/RX NICs."""
    from repro.cluster.network import Fabric

    env = Environment()
    fabric = Fabric(env, nic_bps=1e6)
    names = [f"n{i}" for i in range(n_nodes)]
    for name in names:
        fabric.register_node(name)

    def sender(i: int):
        src = names[i % n_nodes]
        dst = names[(i * 7 + 1) % n_nodes]
        if src == dst:
            dst = names[(i * 7 + 2) % n_nodes]
        yield env.timeout((i % 11) * 1e-3)
        yield fabric.transfer(src, dst, 5000.0)

    for i in range(n_transfers):
        env.process(sender(i))
    env.run()
    return env


MICRO_BENCHES = {
    "timer_churn": timer_churn,
    "process_churn": process_churn,
    "ps_link_churn": ps_link_churn,
    "fabric_churn": fabric_churn,
}


def run_micro(repeat: int = 3) -> dict:
    """Best-of-``repeat`` events/second for each micro-benchmark."""
    out: dict[str, dict] = {}
    for name, fn in MICRO_BENCHES.items():
        best = None
        events = 0
        for _ in range(repeat):
            t0 = time.perf_counter()
            env = fn()
            dt = time.perf_counter() - t0
            if best is None or dt < best:
                best = dt
                events = env.events_processed
        out[name] = {
            "seconds": best,
            "events_processed": events,
            "events_per_second": events / best if best else 0.0,
        }
    return out


# --------------------------------------------------------------- macro


def run_macro_stress50(repeat: int = 3, batch: int = 900) -> dict:
    """Wall-clock of one warm+measured stress50 cell per system, plus the
    engine counters of the best run."""
    from repro.experiments.stress50 import run_cell

    out: dict[str, dict] = {}
    for system in ("LIFL", "SL-H"):
        best = None
        counters = EngineCounters()
        for _ in range(repeat):
            with collect() as perf:
                t0 = time.perf_counter()
                run_cell(system, batch)
                dt = time.perf_counter() - t0
            if best is None or dt < best:
                best = dt
                counters = perf.counters()
        out[system] = {
            "seconds": best,
            "batch": batch,
            "counters": counters.as_dict(),
        }
    return out


def run_macro_stress500(repeat: int = 3, tenants: int = 4) -> dict:
    """Wall-clock of one warm+measured ``stress500-multitenant`` cell per
    system (``tenants`` concurrent 300-update rounds on 500 shared-fabric
    nodes), plus the engine counters of the best run."""
    from repro.experiments.stress500 import run_cell

    out: dict[str, dict] = {}
    for system in ("LIFL", "SL-H"):
        best = None
        counters = EngineCounters()
        for _ in range(repeat):
            with collect() as perf:
                t0 = time.perf_counter()
                run_cell(system, tenants)
                dt = time.perf_counter() - t0
            if best is None or dt < best:
                best = dt
                counters = perf.counters()
        out[system] = {
            "seconds": best,
            "tenants": tenants,
            "counters": counters.as_dict(),
        }
    return out


def run_macro_trace_diurnal(repeat: int = 3) -> dict:
    """Wall-clock of one ``trace-diurnal-multitenant`` cell per system —
    the arrival-driven serving loop's trajectory: ~225 overlapping rounds
    across 4 tenants admitted from a diurnal trace with availability-aware
    sampling — plus the engine counters and SLO shape of the best run."""
    from repro.experiments.trace_scenarios import run_diurnal_cell

    out: dict[str, dict] = {}
    for system in ("LIFL", "SL-H"):
        best = None
        counters = EngineCounters()
        row: dict = {}
        for _ in range(repeat):
            with collect() as perf:
                t0 = time.perf_counter()
                cell = run_diurnal_cell(system, seed=1)
                dt = time.perf_counter() - t0
            if best is None or dt < best:
                best = dt
                counters = perf.counters()
                row = cell
        out[system] = {
            "seconds": best,
            "rounds": row.get("rounds", 0),
            "peak_inflight": row.get("peak_inflight", 0),
            "latency_p95_s": row.get("latency_p95_s", 0.0),
            "slo_attainment": row.get("slo_attainment", 0.0),
            "counters": counters.as_dict(),
        }
    return out


def run_macro_trace_diurnal_sharded(repeat: int = 3, shards: int = 4) -> dict:
    """Wall-clock of the ``trace-diurnal-multitenant`` cell unsharded vs
    sharded across ``shards`` forked workers (tenant-affine partition,
    merged SLO digests).

    Reports the honest numbers for *this* host: ``sharded_seconds`` /
    ``measured_speedup`` time ``run(shards=N)`` under the engine's
    default worker policy (min(shards, CPUs) — a single-CPU host degrades
    to inline shards, so this hovers near 1× there and tracks the fork
    fan-out on multi-core hosts), ``forked_seconds`` times the forced
    full fan-out, and ``critical_path_seconds`` — the slowest shard's CPU
    time, measured inside the worker and immune to timeslicing — is the
    wall-clock floor a host with ``shards`` free cores reaches;
    ``critical_path_speedup`` is the sequential wall over that floor.
    ``host_cpus`` records which regime the measurement ran in.
    """
    from repro.experiments.trace_scenarios import _diurnal_replay
    from repro.traces.shard import _available_cpus

    out: dict[str, dict] = {"host_cpus": _available_cpus(), "shards": shards}
    for system in ("LIFL", "SL-H"):
        best_seq = None
        for _ in range(repeat):
            t0 = time.perf_counter()
            _diurnal_replay(system, seed=1).run()
            dt = time.perf_counter() - t0
            if best_seq is None or dt < best_seq:
                best_seq = dt
        best_sharded = None
        for _ in range(repeat):
            t0 = time.perf_counter()
            _diurnal_replay(system, seed=1).run(shards=shards)
            dt = time.perf_counter() - t0
            if best_sharded is None or dt < best_sharded:
                best_sharded = dt
        best_forked = None
        critical = 0.0
        per_shard: list[dict] = []
        for _ in range(repeat):
            t0 = time.perf_counter()
            # workers=shards forces the forked path even on small hosts,
            # so per-shard CPU self-timing is always populated.
            result = _diurnal_replay(system, seed=1).run(shards=shards, workers=shards)
            dt = time.perf_counter() - t0
            if best_forked is None or dt < best_forked:
                best_forked = dt
                critical = result.critical_path_seconds
                per_shard = [
                    {
                        "shard": rep.shard,
                        "tenants": list(rep.tenants),
                        "rounds": len(rep.result.records),
                        "cpu_seconds": rep.cpu_seconds,
                        "events_processed": rep.counters["events_processed"],
                    }
                    for rep in result.shards
                ]
        out[system] = {
            "sequential_seconds": best_seq,
            "sharded_seconds": best_sharded,
            "forked_seconds": best_forked,
            "critical_path_seconds": critical,
            "measured_speedup": best_seq / best_sharded if best_sharded else 0.0,
            "critical_path_speedup": best_seq / critical if critical else 0.0,
            "per_shard": per_shard,
        }
    return out


def run_macro_stress100k(repeat: int = 3, shards: int = 4) -> dict:
    """Wall-clock of the ``stress100k`` 100k-client/10k-participant LIFL
    round pair, sequential vs cohort-partitioned across ``shards`` forked
    workers (:mod:`repro.core.partition`).

    Mirrors ``run_macro_trace_diurnal_sharded``'s honesty rules:
    ``partitioned_seconds``/``measured_speedup`` time the forced fork
    fan-out on *this* host, ``critical_path_seconds`` is the slowest
    cohort's in-worker CPU time plus the serial root phase (the wall-clock
    floor a host with ``shards`` free cores reaches), and ``host_cpus``
    records which regime the measurement ran in.
    """
    from repro.common.units import RESNET18_BYTES
    from repro.core.partition import PartitionedRoundEngine, _available_cpus
    from repro.core.platform import AggregationPlatform, PlatformConfig
    from repro.experiments.stress100k import SCALES, build_population, round_arrivals

    scale = "100k"
    _, participants, n_nodes = SCALES[scale]
    nodes = [f"node{i:03d}" for i in range(n_nodes)]

    def factory() -> AggregationPlatform:
        cfg = PlatformConfig.lifl(ingress_stage="gateway-coalesced")
        return AggregationPlatform(cfg, node_names=list(nodes))

    population = build_population(scale)
    rounds = [round_arrivals(population, scale, r) for r in range(2)]
    out: dict = {
        "host_cpus": _available_cpus(),
        "shards": shards,
        "clients": population.size,
        "participants": participants,
        "nodes": n_nodes,
    }
    best_seq = None
    act = 0.0
    for _ in range(repeat):
        t0 = time.perf_counter()
        run = PartitionedRoundEngine(factory, shards=1).run(rounds, RESNET18_BYTES)
        dt = time.perf_counter() - t0
        if best_seq is None or dt < best_seq:
            best_seq = dt
            act = run.results[1].act
    best_part = None
    critical = 0.0
    per_shard: list[dict] = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        # workers=shards forces the forked path even on small hosts, so
        # per-cohort CPU self-timing is always populated.
        run = PartitionedRoundEngine(factory, shards=shards, workers=shards).run(
            rounds, RESNET18_BYTES
        )
        dt = time.perf_counter() - t0
        if run.results[1].act != act:
            raise RuntimeError(
                f"partitioned ACT {run.results[1].act} != sequential {act}"
            )
        if best_part is None or dt < best_part:
            best_part = dt
            critical = run.critical_path_seconds
            per_shard = [
                {
                    "shard": rep.shard,
                    "nodes": len(rep.nodes),
                    "emissions": rep.emissions,
                    "cpu_seconds": rep.cpu_seconds,
                    "events_processed": rep.counters["events_processed"],
                }
                for rep in run.cohorts
            ]
    out["act_s"] = act
    out["sequential_seconds"] = best_seq
    out["partitioned_seconds"] = best_part
    out["critical_path_seconds"] = critical
    out["measured_speedup"] = best_seq / best_part if best_part else 0.0
    out["critical_path_speedup"] = best_seq / critical if critical else 0.0
    out["per_shard"] = per_shard
    return out


def run_macro_geo_followsun(repeat: int = 3) -> dict:
    """Wall-clock of the ``geo-follow-the-sun`` 3-region LIFL cell: three
    full serving cells, phase-shifted diurnal load, WAN root reduction,
    and the exact merge.  ``wan_flows``/``wan_weight`` pin that the WAN
    stage really ran; ``host_cpus`` records whether the regions forked or
    degraded to inline (single-CPU hosts).
    """
    from repro.experiments.geo_scenarios import run_followsun_cell
    from repro.traces.shard import _available_cpus

    out: dict = {"host_cpus": _available_cpus(), "regions": 3}
    for system in ("LIFL",):
        best = None
        counters = EngineCounters()
        row: dict = {}
        for _ in range(repeat):
            with collect() as perf:
                t0 = time.perf_counter()
                cell = run_followsun_cell(system, 3, seed=1)
                dt = time.perf_counter() - t0
            if best is None or dt < best:
                best = dt
                counters = perf.counters()
                row = cell
        out[system] = {
            "seconds": best,
            "rounds": row.get("rounds", 0),
            "wan_flows": row.get("wan_flows", 0),
            "wan_weight": row.get("wan_weight", 0.0),
            "failover_rounds": row.get("failover_rounds", 0),
            "latency_p95_s": row.get("latency_p95_s", 0.0),
            "slo_attainment": row.get("slo_attainment", 0.0),
            "counters": counters.as_dict(),
        }
    return out


#: macro selector names for ``--only`` -> (metrics key, runner)
MACRO_BENCHES = {
    "stress50": ("macro_stress50", run_macro_stress50),
    "stress500": ("macro_stress500", run_macro_stress500),
    "trace_diurnal": ("macro_trace_diurnal", run_macro_trace_diurnal),
    "trace_diurnal_sharded": ("macro_trace_diurnal_sharded", run_macro_trace_diurnal_sharded),
    "stress100k": ("macro_stress100k", run_macro_stress100k),
    "geo_followsun": ("macro_geo_followsun", run_macro_geo_followsun),
}


def run_suite(repeat: int = 3) -> dict:
    out: dict = {"micro": run_micro(repeat=repeat)}
    for key, fn in MACRO_BENCHES.values():
        out[key] = fn(repeat=repeat)
    return out


# ---------------------------------------------------------------- trend

#: the headline metrics ``--trend`` (and the HTML report's sparklines)
#: follow across a trajectory file's labelled runs:
#: (metric name, unit, scale applied to the stored value, path into
#: one run's ``metrics`` document)
TREND_METRICS: tuple[tuple[str, str, float, tuple[str, ...]], ...] = (
    ("micro/timer_churn", "ev/s", 1.0, ("micro", "timer_churn", "events_per_second")),
    ("micro/process_churn", "ev/s", 1.0, ("micro", "process_churn", "events_per_second")),
    ("micro/ps_link_churn", "ev/s", 1.0, ("micro", "ps_link_churn", "events_per_second")),
    ("micro/fabric_churn", "ev/s", 1.0, ("micro", "fabric_churn", "events_per_second")),
    ("stress50/LIFL", "ms", 1e3, ("macro_stress50", "LIFL", "seconds")),
    ("stress50/SL-H", "ms", 1e3, ("macro_stress50", "SL-H", "seconds")),
    ("stress500/LIFL", "ms", 1e3, ("macro_stress500", "LIFL", "seconds")),
    ("stress500/SL-H", "ms", 1e3, ("macro_stress500", "SL-H", "seconds")),
    ("trace-diurnal/LIFL", "ms", 1e3, ("macro_trace_diurnal", "LIFL", "seconds")),
    ("trace-diurnal/SL-H", "ms", 1e3, ("macro_trace_diurnal", "SL-H", "seconds")),
    (
        "trace-sharded/LIFL speedup",
        "x",
        1.0,
        ("macro_trace_diurnal_sharded", "LIFL", "critical_path_speedup"),
    ),
    (
        "trace-sharded/SL-H speedup",
        "x",
        1.0,
        ("macro_trace_diurnal_sharded", "SL-H", "critical_path_speedup"),
    ),
    ("stress100k seq", "ms", 1e3, ("macro_stress100k", "sequential_seconds")),
    ("stress100k speedup", "x", 1.0, ("macro_stress100k", "critical_path_speedup")),
    ("geo-followsun/LIFL", "ms", 1e3, ("macro_geo_followsun", "LIFL", "seconds")),
)


def _lookup(metrics: dict, path: tuple[str, ...]) -> float | None:
    node: object = metrics
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def trend_series(doc: dict) -> list[dict]:
    """Per-metric trajectories across a trajectory file's labelled runs.

    Returns one ``{"metric", "unit", "points"}`` entry per headline metric
    that appears in at least one run; ``points`` pairs every run label
    with the metric's value there (None where that run never measured
    it — e.g. everything before the benchmark existed).  The ``--trend``
    table and the HTML report's sparklines both read this.
    """
    runs = doc.get("runs", [])
    labels = [run.get("label", f"run{i}") for i, run in enumerate(runs)]
    series: list[dict] = []
    for name, unit, scale, path in TREND_METRICS:
        points: list[tuple[str, float | None]] = []
        for label, run in zip(labels, runs):
            value = _lookup(run.get("metrics", {}), path)
            points.append((label, value * scale if value is not None else None))
        if any(v is not None for _, v in points):
            series.append({"metric": name, "unit": unit, "points": points})
    return series


def _fmt_trend(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 10_000:
        return f"{value:,.0f}"
    return f"{value:.3g}"


def render_trend(doc: dict) -> str:
    """The ``--trend`` table: one row per headline metric, its values in
    run order, and how the last measurement moved against the previous
    one."""
    series = trend_series(doc)
    if not series:
        return "no labelled runs in trajectory"
    labels = [label for label, _ in series[0]["points"]]
    lines = [f"trajectory across {len(labels)} labelled runs:"]
    lines.extend(f"  [{i}] {label}" for i, label in enumerate(labels))
    lines.append("")
    width = max(len(s["metric"]) for s in series)
    for s in series:
        values = [v for _, v in s["points"]]
        cells = " -> ".join(_fmt_trend(v) for v in values)
        measured = [v for v in values if v is not None]
        if len(measured) >= 2 and measured[-2]:
            delta = (measured[-1] - measured[-2]) / measured[-2] * 100.0
            note = f"  (last vs prev: {delta:+.1f}%)"
        else:
            note = ""
        lines.append(f"  {s['metric']:<{width}} {s['unit']:<5} {cells}{note}")
    return "\n".join(lines)


# --------------------------------------------------------------- record


def record_run(path: str, label: str, metrics: dict) -> dict:
    """Record one labelled entry in the trajectory file at ``path``.

    An entry with the same label is *merged*: metric sections present in
    the new run replace their namesakes, sections it did not run (e.g.
    everything a ``--only`` run skipped) are preserved, and the timestamp
    refreshes.  A new label appends, preserving the trajectory of earlier
    PRs."""
    doc: dict = {"benchmark": "engine", "runs": []}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    entry = {
        "label": label,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "metrics": metrics,
    }
    runs = doc.setdefault("runs", [])
    for i, existing in enumerate(runs):
        if existing.get("label") == label:
            kept = dict(existing.get("metrics", {}))
            kept.update(metrics)
            entry["metrics"] = kept
            runs[i] = entry
            break
    else:
        runs.append(entry)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.bench",
        description="Run engine micro/macro benchmarks; optionally record the trajectory.",
    )
    parser.add_argument("--out", default=None, metavar="PATH", help="append to a BENCH_*.json trajectory")
    parser.add_argument("--label", default="dev", help="label for the recorded entry")
    parser.add_argument(
        "--trend",
        action="store_true",
        help="print the per-label metric trajectory from an existing "
        "BENCH_*.json (default BENCH_engine.json; no benchmarks run)",
    )
    parser.add_argument("--repeat", type=int, default=3, help="best-of-N repetitions (default 3)")
    parser.add_argument("--skip-macro", action="store_true", help="micro-benchmarks only")
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="MACRO",
        help="run only the named benchmark(s); repeatable — one of "
        f"{', '.join(['micro', *MACRO_BENCHES])} (recorded entries merge by label)",
    )
    args = parser.parse_args(argv[1:])

    if args.trend:
        path = args.out or "BENCH_engine.json"
        if not os.path.exists(path):
            parser.error(f"no trajectory file at {path}")
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        print(render_trend(doc))
        return 0

    if args.only:
        unknown = [n for n in args.only if n != "micro" and n not in MACRO_BENCHES]
        if unknown:
            parser.error(
                f"unknown --only name(s) {', '.join(unknown)}; "
                f"choose from micro, {', '.join(MACRO_BENCHES)}"
            )
        metrics: dict = {}
        for name in args.only:
            if name == "micro":
                metrics["micro"] = run_micro(repeat=args.repeat)
            else:
                key, fn = MACRO_BENCHES[name]
                metrics[key] = fn(repeat=args.repeat)
    elif args.skip_macro:
        metrics = {"micro": run_micro(repeat=args.repeat)}
    else:
        metrics = run_suite(repeat=args.repeat)

    for name, row in metrics.get("micro", {}).items():
        print(f"  {name:<16} {row['events_per_second']:>12.0f} events/s  ({row['seconds']*1e3:.1f} ms)")
    for system, row in metrics.get("macro_stress50", {}).items():
        c = row["counters"]
        print(
            f"  stress50/{system:<6} {row['seconds']*1e3:>8.1f} ms/cell  "
            f"({c['events_processed']} events, peak queue {c['peak_queue_depth']})"
        )
    for system, row in metrics.get("macro_stress500", {}).items():
        c = row["counters"]
        print(
            f"  stress500/{system:<5} {row['seconds']*1e3:>8.1f} ms/cell  "
            f"({row['tenants']} tenants, {c['events_processed']} events, "
            f"peak queue {c['peak_queue_depth']})"
        )
    for system, row in metrics.get("macro_trace_diurnal", {}).items():
        c = row["counters"]
        print(
            f"  trace-diurnal/{system:<5} {row['seconds']*1e3:>6.1f} ms/cell  "
            f"({row['rounds']} rounds, peak {row['peak_inflight']} in flight, "
            f"p95 {row['latency_p95_s']:.2f}s, attained {row['slo_attainment']:.1%}, "
            f"{c['events_processed']} events)"
        )
    sharded = metrics.get("macro_trace_diurnal_sharded", {})
    for system in ("LIFL", "SL-H"):
        row = sharded.get(system)
        if not row:
            continue
        print(
            f"  trace-sharded/{system:<5} seq {row['sequential_seconds']*1e3:>6.1f} ms "
            f"-> {sharded['shards']} shards {row['sharded_seconds']*1e3:>6.1f} ms "
            f"(measured {row['measured_speedup']:.2f}x, critical path "
            f"{row['critical_path_seconds']*1e3:.1f} ms = {row['critical_path_speedup']:.2f}x, "
            f"{sharded['host_cpus']} host cpu(s))"
        )
    geo = metrics.get("macro_geo_followsun", {})
    for system in ("LIFL",):
        row = geo.get(system)
        if not row:
            continue
        c = row["counters"]
        print(
            f"  geo-followsun/{system:<5} {row['seconds']*1e3:>6.1f} ms/cell  "
            f"({geo['regions']} regions, {row['rounds']} rounds, "
            f"{row['wan_flows']} wan flows, p95 {row['latency_p95_s']:.2f}s, "
            f"attained {row['slo_attainment']:.1%}, {c['events_processed']} events, "
            f"{geo['host_cpus']} host cpu(s))"
        )
    big = metrics.get("macro_stress100k")
    if big:
        print(
            f"  stress100k/LIFL   seq {big['sequential_seconds']*1e3:>7.1f} ms "
            f"-> {big['shards']} cohorts {big['partitioned_seconds']*1e3:>7.1f} ms "
            f"(measured {big['measured_speedup']:.2f}x, critical path "
            f"{big['critical_path_seconds']*1e3:.1f} ms = {big['critical_path_speedup']:.2f}x, "
            f"{big['clients']} clients, {big['participants']} participants, "
            f"{big['host_cpus']} host cpu(s))"
        )
    if args.out:
        record_run(args.out, args.label, metrics)
        print(f"recorded '{args.label}' in {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
