"""Engine telemetry: counters the event kernel maintains, and a collector.

The simulation kernel (:mod:`repro.sim.engine`) counts its own heap
traffic — events processed, heap pushes/pops, dead-timer skips, peak queue
depth, fast-path hits — as plain integer attributes on each
:class:`~repro.sim.engine.Environment` (cheap enough to leave always-on).
This module gives those counters a structured shape and a way to aggregate
them across every environment a piece of code creates:

    with collect() as perf:
        run_cell("LIFL", 900)
    print(perf.counters().as_dict())

The collector is what the campaign runner's ``--profile`` flag uses; the
benchmark suite reads the same counters to assert structural properties
(e.g. that superseded processor-sharing timers are skipped dead instead of
being processed).

This module must stay import-light: the engine imports it at module load,
so it cannot import anything that (transitively) imports the engine.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Any, Iterator

#: counter attributes mirrored 1:1 from ``Environment``
COUNTER_FIELDS = (
    "events_processed",
    "heap_pushes",
    "heap_pops",
    "dead_timer_skips",
    "timers_cancelled",
    "immediate_reuses",
    "peak_queue_depth",
)


@dataclass
class EngineCounters:
    """A snapshot of the engine's self-accounting.

    ``peak_queue_depth`` aggregates as a *max* across environments; every
    other field is a sum.  ``environments`` counts how many environments
    contributed to the snapshot.
    """

    events_processed: int = 0
    heap_pushes: int = 0
    heap_pops: int = 0
    #: cancelled entries popped and skipped without processing
    dead_timer_skips: int = 0
    #: events lazily cancelled (they stay in the heap until popped)
    timers_cancelled: int = 0
    #: reuses of a process's preallocated immediate-resume event
    immediate_reuses: int = 0
    peak_queue_depth: int = 0
    environments: int = 0

    @classmethod
    def from_environment(cls, env: Any) -> "EngineCounters":
        kw = {name: getattr(env, name) for name in COUNTER_FIELDS}
        return cls(environments=1, **kw)

    def merge_environment(self, env: Any) -> None:
        """Fold one environment's counters into this snapshot."""
        for name in COUNTER_FIELDS:
            value = getattr(env, name)
            if name == "peak_queue_depth":
                if value > self.peak_queue_depth:
                    self.peak_queue_depth = value
            else:
                setattr(self, name, getattr(self, name) + value)
        self.environments += 1

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class PerfCollector:
    """Aggregates counters from every Environment created while active.

    Environments register themselves (via :func:`maybe_register`, called
    from ``Environment.__init__``) only while a collector is installed, so
    the non-profiling path pays one truthiness check per environment —
    nothing per event.
    """

    def __init__(self) -> None:
        self._envs: list[Any] = []

    def register(self, env: Any) -> None:
        self._envs.append(env)

    @property
    def environments(self) -> int:
        return len(self._envs)

    def counters(self) -> EngineCounters:
        snap = EngineCounters()
        for env in self._envs:
            snap.merge_environment(env)
        return snap

    def labelled(self) -> dict[str, EngineCounters]:
        """Counters grouped by ``perf_label`` for registered sources that
        carry one (e.g. the per-shard carriers a sharded trace replay
        registers); plain environments have no label and are skipped.
        Labels repeat across runs, so same-label sources merge."""
        out: dict[str, EngineCounters] = {}
        for env in self._envs:
            label = getattr(env, "perf_label", None)
            if label is None:
                continue
            snap = out.setdefault(label, EngineCounters())
            snap.merge_environment(env)
        return out


def snapshot(env: Any) -> dict[str, int]:
    """One environment's counter attributes as a flat dict — the payload
    of the telemetry bus's ``perf-snapshot`` record."""
    return {name: getattr(env, name) for name in COUNTER_FIELDS}


_ACTIVE: list[PerfCollector] = []


def maybe_register(env: Any) -> None:
    """Called by ``Environment.__init__``; a no-op unless collecting."""
    if _ACTIVE:
        for collector in _ACTIVE:
            collector.register(env)


@contextmanager
def collect() -> Iterator[PerfCollector]:
    """Collect counters from every environment created in the body."""
    collector = PerfCollector()
    _ACTIVE.append(collector)
    try:
        yield collector
    finally:
        _ACTIVE.remove(collector)
