"""Engine telemetry and benchmarks.

* :mod:`repro.perf.counters` — the engine's self-accounting (events
  processed, heap pushes/pops, dead-timer skips, peak queue depth) and the
  :func:`collect` context manager that aggregates it across environments.
  The campaign runner's ``--profile`` flag is built on this.
* :mod:`repro.perf.bench` — engine micro-benchmarks plus the ``stress50``
  macro-benchmark; ``python -m repro.perf.bench --out BENCH_engine.json``
  records the perf trajectory.
"""

from repro.perf.counters import EngineCounters, PerfCollector, collect

__all__ = ["EngineCounters", "PerfCollector", "collect"]
