"""LIFL reproduction — a lightweight, event-driven serverless platform for
federated learning (MLSys 2024), rebuilt as a self-contained Python library.

Subpackages:

* :mod:`repro.common` — units, errors, RNG, timelines;
* :mod:`repro.sim` — the discrete-event simulation kernel;
* :mod:`repro.cluster` — worker nodes, NICs, the network fabric;
* :mod:`repro.dataplane` — calibrated hop/pipeline cost models (kernel,
  shared memory, sidecars, brokers, gateways);
* :mod:`repro.runtime` — the **real** node runtime: shared-memory object
  store, sockmap/SKMSG routing, gateways, metrics maps, checkpoints;
* :mod:`repro.controlplane` — placement, hierarchy planning, autoscaling,
  reuse, TAG, coordinator, per-node agents;
* :mod:`repro.fl` — FedAvg (+ FedProx/FedAdam/FedYogi/FedAdagrad), real
  NumPy training, synthetic non-IID federated datasets, clients, selection;
* :mod:`repro.workloads` — FedScale-like populations and arrival traces;
* :mod:`repro.core` — the platforms (LIFL / SF / SL / SL-H) and the round
  and workload simulators;
* :mod:`repro.scenarios` — the ``@scenario`` registry and deterministic
  parallel campaign runner;
* :mod:`repro.experiments` — every paper figure and extension scenario,
  runnable via ``python -m repro.experiments``;
* :mod:`repro.perf` — engine counters, ``--profile`` collection, and the
  ``BENCH_engine.json`` trajectory recorder;
* :mod:`repro.chaos` — seeded declarative fault injection for live rounds;
* :mod:`repro.traces` — arrival/availability traces, the arrival-driven
  serving loop with SLO analytics, and multi-core sharded replay.

See ``README.md`` for a tour, ``docs/architecture.md`` for how a round
moves through the stack, and ``docs/scenario-authoring.md`` for adding
experiments.
"""

__version__ = "1.0.0"

from repro.core.platform import AggregationPlatform, PlatformConfig  # noqa: F401

__all__ = ["AggregationPlatform", "PlatformConfig", "__version__"]
