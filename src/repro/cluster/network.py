"""Processor-sharing network links and the cluster fabric.

A NIC is modelled as a *processor-sharing* link: all active flows share the
link capacity equally, and rates are recomputed whenever a flow starts or
finishes.  This captures the contention the paper observes in Fig. 4, where
four leaf aggregators sending intermediate updates to the top aggregator
compete for the same NIC and kernel network processing.

Implementation: **virtual service time**.  The link tracks ``_service`` —
the cumulative bytes *each* active flow has received since the link was
created (all flows in a processor-sharing link drain at the same per-flow
rate, so one scalar serves every flow).  A flow arriving when the virtual
service clock reads ``V`` finishes when the clock reads ``V + nbytes``;
that finish point is computed once, on arrival, and pushed on a heap.  A
flow start/finish is then O(log F): advance the clock, pop newly finished
flows, retime the single pending timer against the heap top.  Superseded
timers are *cancelled* (skipped dead when popped) instead of being left to
fire as no-ops — the counters in :mod:`repro.perf.counters` make the
difference observable.

Fault injection (:mod:`repro.chaos`) plugs in through two hooks:

* :meth:`ProcessorSharingLink.set_rate_factor` rescales the link's
  effective capacity mid-flow (NIC degradation; factor ``0`` freezes every
  flow in place until the link is restored — a partition window);
* :meth:`Fabric.set_node_rate_factor` / :meth:`Fabric.partition` /
  :meth:`Fabric.heal` apply the same per node, composing a persistent
  degradation factor with transient partition windows.

The fabric also accepts a per-node NIC capacity at registration, so
heterogeneous fleets (mixed 1/10/100 Gbps nodes) share one interconnect.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.common.errors import SimulationError
from repro.sim.engine import Environment, Event, Timeout


@dataclass(frozen=True)
class NodeHealth:
    """One node's fabric health at a snapshot instant.

    ``degrade_factor`` is the persistent NIC degradation (1.0 when
    healthy); ``partitioned`` is the transient partition-window state;
    ``rate_factor`` composes the two exactly as the links do — 0.0 while
    partitioned, the degradation factor otherwise.
    """

    degrade_factor: float
    partitioned: bool

    @property
    def rate_factor(self) -> float:
        return 0.0 if self.partitioned else self.degrade_factor

    @property
    def healthy(self) -> bool:
        """Fully healthy: not partitioned and not degraded at all."""
        return not self.partitioned and self.degrade_factor >= 1.0


class Flow:
    """One in-flight transfer on a :class:`ProcessorSharingLink`."""

    __slots__ = ("nbytes", "done", "started_at", "label")

    def __init__(self, env: Environment, nbytes: float, label: str = "") -> None:
        if nbytes <= 0:
            raise SimulationError(f"flow size must be positive, got {nbytes}")
        self.nbytes = float(nbytes)
        self.done: Event = Event(env)
        self.started_at = env.now
        self.label = label


class ProcessorSharingLink:
    """A link of fixed capacity shared equally among its active flows.

    ``capacity_bps`` is in **bytes per second** (the library's convention is
    bytes everywhere; the 10 Gb NIC of the testbed is ``1.25e9``).
    """

    def __init__(self, env: Environment, capacity_bps: float, name: str = "link") -> None:
        if capacity_bps <= 0:
            raise SimulationError(f"link capacity must be positive, got {capacity_bps}")
        self.env = env
        self.capacity_bps = float(capacity_bps)
        self.name = name
        #: cumulative per-flow service (bytes) — the virtual service clock
        self._service = 0.0
        #: (finish service point, arrival seq, flow), a heap
        self._heap: list[tuple[float, int, Flow]] = []
        self._seq = 0
        self._last_update = env.now
        self._timer: Optional[Timeout] = None
        self.bytes_carried = 0.0
        #: chaos hook state: effective rate = capacity × factor.  The rate
        #: is precomputed so the hot path costs exactly what it did before
        #: the hook existed (no per-advance multiply on healthy links).
        self._factor = 1.0
        self._rate_bps = self.capacity_bps

    @property
    def active_flows(self) -> int:
        return len(self._heap)

    @property
    def rate_factor(self) -> float:
        """The chaos rescale factor currently applied (1.0 when healthy)."""
        return self._factor

    def utilization_rate(self) -> float:
        """Current aggregate send rate (bytes/s)."""
        return self._rate_bps if self._heap else 0.0

    def set_rate_factor(self, factor: float) -> None:
        """Rescale the link's effective capacity mid-flow (chaos hook).

        In-flight flows keep their virtual finish points; only the clock's
        advance rate changes, so service already received is preserved
        exactly.  ``factor == 0`` freezes the link (a partition window):
        flows neither progress nor time out until the factor is restored.
        """
        if factor < 0:
            raise SimulationError(f"rate factor must be >= 0, got {factor}")
        if factor == self._factor:
            return
        # Settle service accrued at the old rate before switching.
        self._advance()
        self._factor = float(factor)
        self._rate_bps = self.capacity_bps * self._factor
        timer = self._timer
        if timer is not None and not timer._processed:
            self.env.cancel(timer)
        self._reschedule()

    def transfer(self, nbytes: float, label: str = "") -> Event:
        """Start a flow; the returned event fires at completion."""
        self._advance()
        flow = Flow(self.env, nbytes, label)
        self._seq += 1
        heapq.heappush(self._heap, (self._service + flow.nbytes, self._seq, flow))
        timer = self._timer
        if timer is not None and not timer._processed:
            # The rate change moved the next completion: retire the armed
            # timer (it is skipped dead at pop) instead of letting it fire
            # as a stale no-op.
            self.env.cancel(timer)
        self._reschedule()
        return flow.done

    # -- internals --------------------------------------------------------
    #: flows whose remainder would drain in less than this many seconds at
    #: the current rate are considered finished — the residue is float
    #: noise, and sweeping it eagerly prevents zero-length timer loops when
    #: timestamps collide.  (A time threshold scales with the link rate; a
    #: fixed byte threshold silently dropped the tail of small transfers.)
    _EPSILON_SECONDS = 1e-9

    def _advance(self) -> None:
        """Advance the virtual service clock and pop finished flows."""
        env = self.env
        now = env.now
        dt = now - self._last_update
        self._last_update = now
        heap = self._heap
        if not heap:
            return
        n = len(heap)
        rate = self._rate_bps / n
        if dt > 0:
            dv = rate * dt
            self._service += dv
            self.bytes_carried += dv * n
        service = self._service
        horizon = service + rate * self._EPSILON_SECONDS
        while heap and heap[0][0] <= horizon:
            finish_at, _, flow = heapq.heappop(heap)
            # A flow's total contribution must be exactly its size: correct
            # for the float residue/overshoot accrued in interval math.
            self.bytes_carried += finish_at - service
            flow.done.succeed(now - flow.started_at)

    def _reschedule(self) -> None:
        """Arm a fresh timer for the next flow completion (the previous
        timer, if any, must be processed or cancelled by the caller)."""
        heap = self._heap
        if not heap or self._rate_bps == 0.0:
            # A frozen link (factor 0) arms no timer: nothing completes
            # until set_rate_factor() restores a positive rate.
            self._timer = None
            return
        env = self.env
        rate = self._rate_bps / len(heap)
        delay = (heap[0][0] - self._service) / rate
        if delay < 0:
            delay = 0.0
        timer = Timeout(env, delay)
        timer.callbacks.append(self._on_timer)
        self._timer = timer

    def _on_timer(self, timer: Event) -> None:
        if timer is not self._timer:
            return  # superseded by a newer state change
        self._advance()
        self._reschedule()


class _PairCompletion:
    """Callback counting down the two legs of a fabric transfer; fires the
    single completion event when the slower leg finishes."""

    __slots__ = ("result", "pending")

    def __init__(self, result: Event) -> None:
        self.result = result
        self.pending = 2

    def __call__(self, event: Event) -> None:
        self.pending -= 1
        if self.pending == 0:
            self.result.succeed(event.env.now)


class Fabric:
    """The cluster interconnect: one TX and one RX link per node.

    A transfer from node A to node B occupies A's TX link and B's RX link;
    its completion time is governed by the slower of the two (modelled by
    running the bytes through both links sequentially at half size would be
    wrong — instead we take the max of two concurrent flow completions).

    ``nic_bps`` is the default NIC capacity; :meth:`register_node` accepts
    a per-node override for heterogeneous fleets.
    """

    def __init__(self, env: Environment, nic_bps: float) -> None:
        self.env = env
        self.nic_bps = float(nic_bps)
        self._tx: dict[str, ProcessorSharingLink] = {}
        self._rx: dict[str, ProcessorSharingLink] = {}
        #: chaos state per node: persistent degradation factor and the set
        #: of currently partitioned nodes.  Effective factor = 0 while
        #: partitioned, the degradation factor otherwise.
        self._degraded: dict[str, float] = {}
        self._partitioned: set[str] = set()

    def register_node(self, name: str, nic_bps: float | None = None) -> None:
        if name in self._tx:
            raise SimulationError(f"node {name!r} already registered on fabric")
        bps = self.nic_bps if nic_bps is None else float(nic_bps)
        self._tx[name] = ProcessorSharingLink(self.env, bps, f"{name}/tx")
        self._rx[name] = ProcessorSharingLink(self.env, bps, f"{name}/rx")

    def tx_link(self, name: str) -> ProcessorSharingLink:
        return self._tx[name]

    def rx_link(self, name: str) -> ProcessorSharingLink:
        return self._rx[name]

    # -- chaos hooks -------------------------------------------------------
    def _require(self, name: str) -> None:
        if name not in self._tx:
            raise SimulationError(f"unknown node {name!r} on fabric")

    def _apply(self, name: str) -> None:
        factor = 0.0 if name in self._partitioned else self._degraded.get(name, 1.0)
        self._tx[name].set_rate_factor(factor)
        self._rx[name].set_rate_factor(factor)

    def set_node_rate_factor(self, name: str, factor: float) -> None:
        """Degrade (or restore) one node's NIC: both links rescale to
        ``factor`` × capacity.  Composes with partitions — a healed node
        returns to its degradation factor, not blindly to full rate."""
        self._require(name)
        if factor < 0:
            raise SimulationError(f"rate factor must be >= 0, got {factor}")
        if factor == 1.0:
            self._degraded.pop(name, None)
        else:
            self._degraded[name] = float(factor)
        self._apply(name)

    def node_rate_factor(self, name: str) -> float:
        self._require(name)
        return 0.0 if name in self._partitioned else self._degraded.get(name, 1.0)

    def partition(self, names: Iterable[str]) -> None:
        """Sever the named nodes from the cluster: their TX/RX links freeze
        (in-flight flows stall in place) until :meth:`heal`."""
        for name in names:
            self._require(name)
            self._partitioned.add(name)
            self._apply(name)

    def heal(self, names: Iterable[str]) -> None:
        """End a partition window; stalled flows resume where they froze."""
        for name in names:
            self._require(name)
            self._partitioned.discard(name)
            self._apply(name)

    @property
    def partitioned_nodes(self) -> set[str]:
        return set(self._partitioned)

    @property
    def nodes(self) -> tuple[str, ...]:
        """Every node registered on this fabric, in registration order."""
        return tuple(self._tx)

    def node_health(self) -> dict[str, NodeHealth]:
        """One consolidated health snapshot for every registered node.

        This is the API control-plane policies consume: instead of probing
        ``node_rate_factor`` and ``partitioned_nodes`` separately (and
        racing a chaos event between the two reads), a caller takes one
        snapshot and reasons about degrade factor and partition state
        together.  The snapshot is a plain dict of frozen records — it
        never mutates when the fabric's state changes afterwards.
        """
        return {
            name: NodeHealth(
                degrade_factor=self._degraded.get(name, 1.0),
                partitioned=name in self._partitioned,
            )
            for name in self._tx
        }

    def transfer(self, src: str, dst: str, nbytes: float, label: str = "") -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``; fires when both NICs done.

        The returned event is the completion event itself — it fires in the
        same event step as the slower leg's flow completion, with the
        completion time as its value.

        Intra-node "transfers" (src == dst) complete immediately — higher
        layers model the intra-node cost explicitly (shared memory vs
        loopback kernel path) through the dataplane cost models.
        """
        if src not in self._tx or dst not in self._rx:
            raise SimulationError(f"unknown endpoint in transfer {src!r}->{dst!r}")
        if src == dst:
            ev = Event(self.env)
            ev.succeed(0.0)
            return ev
        tx_done = self._tx[src].transfer(nbytes, label)
        rx_done = self._rx[dst].transfer(nbytes, label)
        result = Event(self.env)
        pair = _PairCompletion(result)
        tx_done.callbacks.append(pair)
        rx_done.callbacks.append(pair)
        return result
