"""Processor-sharing network links and the cluster fabric.

A NIC is modelled as a *processor-sharing* link: all active flows share the
link capacity equally, and rates are recomputed whenever a flow starts or
finishes.  This captures the contention the paper observes in Fig. 4, where
four leaf aggregators sending intermediate updates to the top aggregator
compete for the same NIC and kernel network processing.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import SimulationError
from repro.sim.engine import Environment, Event


class Flow:
    """One in-flight transfer on a :class:`ProcessorSharingLink`."""

    __slots__ = ("nbytes", "remaining", "done", "started_at", "label")

    def __init__(self, env: Environment, nbytes: float, label: str = "") -> None:
        if nbytes <= 0:
            raise SimulationError(f"flow size must be positive, got {nbytes}")
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.done: Event = Event(env)
        self.started_at = env.now
        self.label = label


class ProcessorSharingLink:
    """A link of fixed capacity shared equally among its active flows.

    ``capacity_bps`` is in **bytes per second** (the library's convention is
    bytes everywhere; the 10 Gb NIC of the testbed is ``1.25e9``).
    """

    def __init__(self, env: Environment, capacity_bps: float, name: str = "link") -> None:
        if capacity_bps <= 0:
            raise SimulationError(f"link capacity must be positive, got {capacity_bps}")
        self.env = env
        self.capacity_bps = float(capacity_bps)
        self.name = name
        self._flows: list[Flow] = []
        self._last_update = env.now
        self._timer: Optional[Event] = None
        self._timer_gen = 0
        self.bytes_carried = 0.0

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def utilization_rate(self) -> float:
        """Current aggregate send rate (bytes/s)."""
        return self.capacity_bps if self._flows else 0.0

    def transfer(self, nbytes: float, label: str = "") -> Event:
        """Start a flow; the returned event fires at completion."""
        self._advance()
        flow = Flow(self.env, nbytes, label)
        self._flows.append(flow)
        self._reschedule()
        return flow.done

    # -- internals --------------------------------------------------------
    def _per_flow_rate(self) -> float:
        return self.capacity_bps / len(self._flows)

    #: flows whose remainder would drain in less than this many seconds at
    #: the current rate are considered finished — the residue is float
    #: noise, and sweeping it eagerly prevents zero-length timer loops when
    #: timestamps collide.  (A time threshold scales with the link rate; a
    #: fixed byte threshold silently dropped the tail of small transfers.)
    _EPSILON_SECONDS = 1e-9

    def _advance(self) -> None:
        """Drain progress accrued since the last state change."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if not self._flows:
            return
        rate = self._per_flow_rate()
        sent = rate * dt if dt > 0 else 0.0
        residue = rate * self._EPSILON_SECONDS
        finished: list[Flow] = []
        for f in self._flows:
            if sent > 0:
                self.bytes_carried += min(sent, f.remaining)
                f.remaining -= sent
            if f.remaining <= residue:
                finished.append(f)
        for f in finished:
            self._flows.remove(f)
            f.done.succeed(self.env.now - f.started_at)

    def _reschedule(self) -> None:
        """(Re)arm the timer for the next flow completion."""
        self._timer_gen += 1
        gen = self._timer_gen
        if not self._flows:
            return
        rate = self._per_flow_rate()
        next_done = min(f.remaining for f in self._flows) / rate
        timer = self.env.timeout(max(next_done, 0.0))

        def on_timer(_: Event) -> None:
            if gen != self._timer_gen:
                return  # superseded by a newer state change
            self._advance()
            self._reschedule()

        timer.callbacks.append(on_timer)
        self._timer = timer


class Fabric:
    """The cluster interconnect: one TX and one RX link per node.

    A transfer from node A to node B occupies A's TX link and B's RX link;
    its completion time is governed by the slower of the two (modelled by
    running the bytes through both links sequentially at half size would be
    wrong — instead we take the max of two concurrent flow completions).
    """

    def __init__(self, env: Environment, nic_bps: float) -> None:
        self.env = env
        self.nic_bps = float(nic_bps)
        self._tx: dict[str, ProcessorSharingLink] = {}
        self._rx: dict[str, ProcessorSharingLink] = {}

    def register_node(self, name: str) -> None:
        if name in self._tx:
            raise SimulationError(f"node {name!r} already registered on fabric")
        self._tx[name] = ProcessorSharingLink(self.env, self.nic_bps, f"{name}/tx")
        self._rx[name] = ProcessorSharingLink(self.env, self.nic_bps, f"{name}/rx")

    def tx_link(self, name: str) -> ProcessorSharingLink:
        return self._tx[name]

    def rx_link(self, name: str) -> ProcessorSharingLink:
        return self._rx[name]

    def transfer(self, src: str, dst: str, nbytes: float, label: str = "") -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``; fires when both NICs done.

        Intra-node "transfers" (src == dst) complete immediately — higher
        layers model the intra-node cost explicitly (shared memory vs
        loopback kernel path) through the dataplane cost models.
        """
        if src not in self._tx or dst not in self._rx:
            raise SimulationError(f"unknown endpoint in transfer {src!r}->{dst!r}")
        if src == dst:
            ev = Event(self.env)
            ev.succeed(0.0)
            return ev
        tx_done = self._tx[src].transfer(nbytes, label)
        rx_done = self._rx[dst].transfer(nbytes, label)
        both = self.env.all_of([tx_done, rx_done])
        result = Event(self.env)

        def on_both(e: Event) -> None:
            result.succeed(self.env.now)

        both.callbacks.append(on_both)
        return result
