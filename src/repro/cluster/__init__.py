"""Cluster hardware model: worker nodes, NICs, and the network fabric.

Matches the paper's testbed abstraction (§6): homogeneous worker nodes with
many cores and a 10 Gb NIC, connected through a non-blocking switch.  Nodes
expose CPU cores as a simulated resource and account CPU-seconds per
component so that the evaluation's "cumulative CPU time" figures can be
reproduced.
"""

from repro.cluster.network import Fabric, Flow, ProcessorSharingLink
from repro.cluster.node import NodeSpec, WorkerNode
from repro.cluster.topology import Cluster, ClusterSpec

__all__ = [
    "Cluster",
    "ClusterSpec",
    "Fabric",
    "Flow",
    "NodeSpec",
    "ProcessorSharingLink",
    "WorkerNode",
]
