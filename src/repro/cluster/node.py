"""Worker node model: cores, memory, and per-component CPU accounting.

The paper's evaluation reports cumulative CPU time per system (Figs. 8(b),
9(b)/(d), 10(c)/(f)).  Reproducing those requires an explicit account of
*which component* burned CPU: aggregation compute, kernel network
processing, sidecar mediation, broker hops, gateway payload processing,
cold-start initialization.  :class:`WorkerNode` tallies each bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.common.errors import SimulationError
from repro.common.units import GB
from repro.sim.engine import Environment, Event
from repro.sim.resources import Container, Resource


@dataclass(frozen=True, slots=True)
class NodeSpec:
    """Static hardware description of one worker node.

    Defaults follow the paper's CloudLab testbed (§6): 64-core Cascade Lake,
    192 GB memory, 10 Gb NIC (1.25e9 bytes/s).
    """

    name: str
    cores: int = 64
    memory_bytes: float = 192 * GB
    nic_bps: float = 1.25e9
    #: Maximum service capacity MC_i — max model updates aggregated
    #: simultaneously (§5.1; measured offline per Appendix E; 20 on testbed).
    max_service_capacity: int = 20

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise SimulationError(f"node needs >= 1 core, got {self.cores}")
        if self.memory_bytes <= 0 or self.nic_bps <= 0:
            raise SimulationError("memory and NIC capacity must be positive")
        if self.max_service_capacity < 1:
            raise SimulationError("max_service_capacity must be >= 1")


@dataclass
class CpuAccount:
    """CPU-seconds burned on this node, bucketed by component."""

    buckets: dict[str, float] = field(default_factory=dict)

    def charge(self, component: str, cpu_seconds: float) -> None:
        if cpu_seconds < 0:
            raise SimulationError(f"negative CPU charge: {cpu_seconds}")
        try:
            self.buckets[component] += cpu_seconds
        except KeyError:
            self.buckets[component] = cpu_seconds

    def total(self) -> float:
        return sum(self.buckets.values())

    def get(self, component: str) -> float:
        return self.buckets.get(component, 0.0)


class WorkerNode:
    """A simulated worker node: core pool, memory pool, CPU ledger."""

    def __init__(self, env: Environment, spec: NodeSpec) -> None:
        self.env = env
        self.spec = spec
        self.name = spec.name
        self.cores = Resource(env, capacity=spec.cores)
        self.memory = Container(env, capacity=spec.memory_bytes, init=spec.memory_bytes)
        self.cpu = CpuAccount()
        #: shared-memory object store usage, bytes (tracked for Fig. 13(b))
        self.shm_bytes_in_use = 0.0
        self.shm_high_water = 0.0

    # -- CPU --------------------------------------------------------------
    def execute(self, cpu_seconds: float, component: str) -> Generator[Event, None, None]:
        """Run a CPU-bound task: hold one core for ``cpu_seconds``.

        Yields from inside a simulation process.  Charges the node's CPU
        ledger under ``component``.
        """
        if cpu_seconds < 0:
            raise SimulationError(f"negative execution time: {cpu_seconds}")
        req = self.cores.request()
        yield req
        try:
            yield self.env.timeout(cpu_seconds)
            self.cpu.charge(component, cpu_seconds)
        finally:
            self.cores.release(req)

    def charge_cpu(self, cpu_seconds: float, component: str) -> None:
        """Account CPU work that does not occupy a core slot exclusively
        (e.g. kernel softirq processing amortized across cores)."""
        self.cpu.charge(component, cpu_seconds)

    # -- memory / shared memory -------------------------------------------
    def shm_alloc(self, nbytes: float) -> None:
        if nbytes < 0:
            raise SimulationError("negative shm allocation")
        if self.shm_bytes_in_use + nbytes > self.spec.memory_bytes:
            raise SimulationError(
                f"node {self.name}: shm allocation of {nbytes} exceeds memory"
            )
        self.shm_bytes_in_use += nbytes
        self.shm_high_water = max(self.shm_high_water, self.shm_bytes_in_use)

    def shm_free(self, nbytes: float) -> None:
        if nbytes < 0 or nbytes > self.shm_bytes_in_use + 1e-6:
            raise SimulationError(
                f"node {self.name}: freeing {nbytes} with only {self.shm_bytes_in_use} in use"
            )
        self.shm_bytes_in_use -= nbytes

    def __repr__(self) -> str:
        return f"WorkerNode({self.name!r}, cores={self.spec.cores})"
