"""Cluster assembly: a set of worker nodes on a common fabric."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.cluster.network import Fabric
from repro.cluster.node import NodeSpec, WorkerNode
from repro.sim.engine import Environment


@dataclass(frozen=True)
class ClusterSpec:
    """How many aggregation nodes to build, and their hardware spec.

    The paper (§6.2) uses 5 aggregation nodes out of 20; trainers live on
    the remaining 15 and are modelled as traffic sources rather than nodes.
    """

    node_count: int = 5
    node_template: NodeSpec = field(default_factory=lambda: NodeSpec(name="node"))

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ConfigError(f"cluster needs >= 1 node, got {self.node_count}")


class Cluster:
    """Worker nodes plus the interconnect fabric."""

    def __init__(self, env: Environment, spec: ClusterSpec) -> None:
        self.env = env
        self.spec = spec
        self.fabric = Fabric(env, spec.node_template.nic_bps)
        self.nodes: dict[str, WorkerNode] = {}
        for i in range(spec.node_count):
            name = f"node{i}"
            node_spec = NodeSpec(
                name=name,
                cores=spec.node_template.cores,
                memory_bytes=spec.node_template.memory_bytes,
                nic_bps=spec.node_template.nic_bps,
                max_service_capacity=spec.node_template.max_service_capacity,
            )
            self.nodes[name] = WorkerNode(env, node_spec)
            self.fabric.register_node(name)
        # External traffic sources (clients/trainers) attach through a
        # dedicated pseudo-endpoint so their NICs do not contend with
        # aggregation nodes.
        self.fabric.register_node("__external__")

    @property
    def node_names(self) -> list[str]:
        return list(self.nodes)

    def node(self, name: str) -> WorkerNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise ConfigError(f"unknown node {name!r}; have {sorted(self.nodes)}") from None

    def total_cpu_seconds(self, component: str | None = None) -> float:
        """Cluster-wide CPU ledger total (optionally one component bucket)."""
        if component is None:
            return sum(n.cpu.total() for n in self.nodes.values())
        return sum(n.cpu.get(component) for n in self.nodes.values())

    def cpu_breakdown(self) -> dict[str, float]:
        """Cluster-wide CPU-seconds per component bucket."""
        out: dict[str, float] = {}
        for node in self.nodes.values():
            for comp, secs in node.cpu.buckets.items():
                out[comp] = out.get(comp, 0.0) + secs
        return out
