"""Geo-distributed multi-cell federation: regions over WAN links.

The paper's serving story is single-cluster; :mod:`repro.geo` extends it
to planet scale.  A :class:`~repro.geo.topology.RegionTopology` names a
set of regions — each a full serving cell built from a
``platform_factory(region)`` — coupled by directed WAN
:class:`~repro.cluster.network.ProcessorSharingLink`\\ s with per-pair
latency/capacity asymmetry.  The
:class:`~repro.geo.federation.GeoReplayEngine` routes a trace across the
regions (tenant home affinity, chaos-driven failover to a configured
fallback), replays each region as an independent cell (forked workers
where available), ships every completed non-root round's aggregated
update to the root region over the WAN (exact weight accounting through
the boundary), and merges the results exactly.

Unused, this package costs nothing: nothing here is imported by the
replay path, and a one-region topology reproduces the unsharded replay
byte for byte — both pinned by the golden/differential suites.
"""

from repro.geo.federation import (
    FailoverEpisode,
    GeoReplayEngine,
    GeoReplayResult,
    GeoRoute,
    RegionReport,
    WanShipment,
    placement_nodes,
    route_trace,
)
from repro.geo.topology import RegionTopology, WanLink, validate_geo_faults

__all__ = [
    "FailoverEpisode",
    "GeoReplayEngine",
    "GeoReplayResult",
    "GeoRoute",
    "RegionReport",
    "RegionTopology",
    "WanLink",
    "WanShipment",
    "placement_nodes",
    "route_trace",
    "validate_geo_faults",
]
