"""Region topologies: named serving cells coupled by WAN links.

A :class:`RegionTopology` is pure data — which regions exist, how their
WAN links are shaped (per directed pair: propagation latency and pipe
capacity, so asymmetric routes are first-class), which region is the
aggregation **root**, and where each region's tenants drain when the
region is chaos-partitioned (the ``fallbacks`` map).  The
:class:`~repro.geo.federation.GeoReplayEngine` turns a topology plus a
trace into one federated replay.

Region-scoped chaos reuses :class:`repro.chaos.plan.PartitionWindow`
unchanged: a geo fault plan's partition windows name *regions* instead of
fabric nodes, and :func:`validate_geo_faults` pins the rules — partitions
only (region cells own their intra-region faults), every window names
known regions, a partitioned region must have a fallback, and a region
and its fallback may never be down at once (there would be nowhere to
drain to).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError

__all__ = [
    "RegionTopology",
    "WanLink",
    "validate_geo_faults",
]

#: default WAN propagation latency between regions (one way, seconds)
DEFAULT_WAN_LATENCY_S = 0.04
#: default WAN pipe capacity (bytes/s) — a 1 Gb/s inter-region pipe,
#: an order of magnitude under the intra-region 10 Gb NICs
DEFAULT_WAN_CAPACITY_BPS = 1.25e8


@dataclass(frozen=True)
class WanLink:
    """One *directed* inter-region pipe: ``src -> dst``.

    Asymmetry is modelled by giving the two directions of a pair
    different links (different latency and/or capacity); a direction
    without an explicit link falls back to the topology defaults.
    """

    src: str
    dst: str
    latency_s: float = DEFAULT_WAN_LATENCY_S
    capacity_bps: float = DEFAULT_WAN_CAPACITY_BPS

    def check(self) -> None:
        if not self.src or not self.dst:
            raise ConfigError("WAN link needs non-empty src and dst regions")
        if self.src == self.dst:
            raise ConfigError(f"WAN link {self.src!r} -> itself is meaningless")
        if self.latency_s < 0:
            raise ConfigError(f"WAN latency must be >= 0, got {self.latency_s}")
        if self.capacity_bps <= 0:
            raise ConfigError(
                f"WAN capacity must be positive, got {self.capacity_bps}"
            )


class RegionTopology:
    """Named regions, their WAN coupling, and the failover map.

    ``regions`` fixes the region *order* — tenant home assignment
    defaults to round-robin over it and every merge tie-break uses it —
    and ``root`` names the region performing the cross-cell root
    reduction (default: the first region).  ``links`` overrides specific
    directed pairs; unlisted pairs use the topology-wide defaults, so a
    fully-connected mesh needs no explicit links at all.
    """

    def __init__(
        self,
        regions: tuple[str, ...] | list[str],
        links: tuple[WanLink, ...] | list[WanLink] = (),
        fallbacks: dict[str, str] | None = None,
        root: str | None = None,
        default_latency_s: float = DEFAULT_WAN_LATENCY_S,
        default_capacity_bps: float = DEFAULT_WAN_CAPACITY_BPS,
    ) -> None:
        self.regions = tuple(regions)
        self.links = tuple(links)
        self.fallbacks = dict(fallbacks or {})
        self.root = root if root is not None else (self.regions[0] if self.regions else "")
        self.default_latency_s = float(default_latency_s)
        self.default_capacity_bps = float(default_capacity_bps)
        self._by_pair = {(lnk.src, lnk.dst): lnk for lnk in self.links}
        self.validate()

    # ----------------------------------------------------------- validation
    def validate(self) -> None:
        if not self.regions:
            raise ConfigError("a topology needs at least one region")
        seen: set[str] = set()
        for name in self.regions:
            if not name:
                raise ConfigError("region names must be non-empty")
            if name in seen:
                raise ConfigError(f"duplicate region name {name!r}")
            seen.add(name)
        if self.root not in seen:
            raise ConfigError(f"root region {self.root!r} is not in the topology")
        if self.default_latency_s < 0:
            raise ConfigError("default WAN latency must be >= 0")
        if self.default_capacity_bps <= 0:
            raise ConfigError("default WAN capacity must be positive")
        pairs: set[tuple[str, str]] = set()
        for lnk in self.links:
            lnk.check()
            if lnk.src not in seen or lnk.dst not in seen:
                raise ConfigError(
                    f"WAN link {lnk.src!r}->{lnk.dst!r} references an unknown region"
                )
            if (lnk.src, lnk.dst) in pairs:
                raise ConfigError(
                    f"duplicate WAN link for pair {lnk.src!r}->{lnk.dst!r}"
                )
            pairs.add((lnk.src, lnk.dst))
        for region, fb in self.fallbacks.items():
            if region not in seen:
                raise ConfigError(f"fallback for unknown region {region!r}")
            if fb not in seen:
                raise ConfigError(
                    f"region {region!r} falls back to unknown region {fb!r}"
                )
            if fb == region:
                raise ConfigError(f"region {region!r} cannot fall back to itself")

    # ------------------------------------------------------------- accessors
    @property
    def n_regions(self) -> int:
        return len(self.regions)

    def link(self, src: str, dst: str) -> WanLink:
        """The directed WAN link ``src -> dst`` (defaults when unlisted)."""
        if src not in self.regions or dst not in self.regions:
            raise ConfigError(f"unknown region in pair {src!r}->{dst!r}")
        if src == dst:
            raise ConfigError(f"no WAN link from {src!r} to itself")
        found = self._by_pair.get((src, dst))
        if found is not None:
            return found
        return WanLink(
            src=src,
            dst=dst,
            latency_s=self.default_latency_s,
            capacity_bps=self.default_capacity_bps,
        )

    def fallback(self, region: str) -> str:
        """Where ``region``'s tenants drain when it is partitioned
        ('' when no fallback is configured)."""
        return self.fallbacks.get(region, "")

    def home_of(self, tenant: int, homes: dict[int, str] | None = None) -> str:
        """``tenant``'s home region: the explicit map, else round-robin
        over the region order."""
        if homes is not None:
            found = homes.get(tenant, "")
            if found:
                if found not in self.regions:
                    raise ConfigError(
                        f"tenant {tenant} homed in unknown region {found!r}"
                    )
                return found
        return self.regions[tenant % len(self.regions)]

    def zero_wan(self) -> bool:
        """True when every configured link (and the defaults) carries zero
        propagation latency — the differential tests' flat-WAN case."""
        if self.default_latency_s != 0.0:
            return False
        return all(lnk.latency_s == 0.0 for lnk in self.links)


def validate_geo_faults(plan, topology: RegionTopology) -> None:
    """Pin the region-scoped fault-plan rules (see module docstring).

    ``plan`` is a :class:`repro.chaos.plan.FaultPlan` whose partition
    windows name regions.  Raises :class:`ConfigError` on any violation.
    """
    plan.validate()
    if plan.crashes or plan.dropouts or plan.nic_degradations or plan.slow_nodes:
        raise ConfigError(
            "a geo fault plan must be partitions-only — crashes, dropouts, "
            "NIC degradations, and slow nodes act inside a region cell and "
            "belong to the cell's own chaos configuration"
        )
    known = set(topology.regions)
    windows: list[tuple[str, float, float]] = []
    for win in plan.partitions:
        for name in win.nodes:
            if name not in known:
                raise ConfigError(
                    f"geo partition window names unknown region {name!r}; "
                    f"topology has {sorted(known)}"
                )
            if not topology.fallback(name):
                raise ConfigError(
                    f"region {name!r} is partitioned but has no fallback — "
                    "its tenants would have nowhere to drain"
                )
            windows.append((name, win.start, win.end))
    # A region and its fallback must never be down at once.
    for region, start, end in windows:
        fb = topology.fallback(region)
        for other, ostart, oend in windows:
            if other == fb and start < oend and ostart < end:
                raise ConfigError(
                    f"region {region!r} and its fallback {fb!r} are "
                    f"partitioned simultaneously ([{start}, {end}) vs "
                    f"[{ostart}, {oend}))"
                )
