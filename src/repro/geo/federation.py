"""The geo-federated replay: one serving cell per region, coupled by WAN.

:class:`GeoReplayEngine` is the planet-scale sibling of
:class:`~repro.traces.shard.ShardedReplayEngine`.  Where the sharded
engine splits *tenants* across identical cells, the geo engine splits
them across **regions** — named cells from a
:class:`~repro.geo.topology.RegionTopology`, each built by a
``platform_factory(region)`` — and then couples the cells:

* **routing with failover** — every arrival is routed *before* execution:
  a tenant's round goes to its home region unless a region-scoped
  :class:`~repro.chaos.plan.PartitionWindow` covers the arrival instant,
  in which case it drains to the home's configured fallback region; the
  heal returns routing to the home.  Routing is a pure function of
  ``(trace, topology, fault plan)``, so forked and inline execution are
  byte-identical.  Failover arrivals enter the fallback cell through its
  ordinary admission policy — with a deferral-aware policy configured,
  drained rounds park in the deferral room rather than bouncing
  (the re-admission discipline the partition scenario exercises).
* **in-region leaf aggregation, cross-region root reduction** — each
  region cell aggregates its rounds exactly as the unsharded engine
  would (leaf/top hierarchy inside the cell); every *completed* round
  served outside the topology's root region then ships one aggregated
  update (round weight riding along) over the region's directed WAN
  :class:`~repro.cluster.network.ProcessorSharingLink` to the root.
  Simultaneous shipments contend on the shared pipe; partition windows
  freeze the affected links (flows stall, never drop); the round's
  end-to-end latency grows by propagation + transfer time.  Weight is
  conserved exactly through the boundary: the per-pair shipped weight
  equals the completed weight of the rounds that crossed it.
* **exact merging** — per-region SLO accounting is rebuilt from the
  WAN-adjusted round records (digest bucket addition is exact), per-cell
  peaks sum, controller reports merge, telemetry streams come home
  region-stamped through :func:`~repro.telemetry.bus.merge_streams`.

With one region there is nothing to couple: no WAN flows, no failover,
and the single cell's :class:`~repro.traces.replay.ReplayResult` is
returned as ``merged`` unchanged — byte-identical to
``TraceReplayEngine.run()`` on the same inputs, which the differential
suite pins.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, replace
from dataclasses import field as dataclass_field
from typing import TYPE_CHECKING, Callable

from repro.common.errors import ConfigError
from repro.cluster.network import ProcessorSharingLink
from repro.geo.topology import RegionTopology, validate_geo_faults
from repro.perf.counters import collect, maybe_register
from repro.sim.engine import Environment, Process
from repro.telemetry.bus import (
    RecordingSubscriber,
    TelemetryBus,
    TelemetryRecord,
    ambient_bus,
    merge_streams,
)
from repro.traces.models import Trace, TraceEvent
from repro.traces.replay import ReplayConfig, ReplayResult, TraceReplayEngine
from repro.traces.shard import _available_cpus, _fork_available, _ShardCounters
from repro.traces.slo import SloTracker

if TYPE_CHECKING:  # import-light, mirroring shard.py
    from repro.chaos.plan import FaultPlan
    from repro.controlplane.reactive import ControllerConfig
    from repro.core.platform import AggregationPlatform
    from repro.fl.client import FLClient
    from repro.fl.population import ClientPopulation
    from repro.fl.selector import Selector
    from repro.traces.models import AvailabilityTrace
    from repro.traces.replay import ChaosCorrelation

__all__ = [
    "FailoverEpisode",
    "GeoReplayEngine",
    "GeoReplayResult",
    "GeoRoute",
    "RegionReport",
    "WanShipment",
    "placement_nodes",
    "route_trace",
]


# ------------------------------------------------------------------ routing
@dataclass(frozen=True)
class FailoverEpisode:
    """One region draining to its fallback for one partition window."""

    region: str
    fallback: str
    start: float
    end: float
    #: tenants homed in the region (the ones whose arrivals drain)
    tenants: tuple[int, ...]


@dataclass(frozen=True)
class GeoRoute:
    """The pre-computed routing of one trace over one topology."""

    #: region name -> that region's events (original tenant/round ids)
    assignments: dict[str, tuple[TraceEvent, ...]]
    #: (tenant, round_id) -> region the round was served in
    served_in: dict[tuple[int, int], str]
    #: tenant -> home region
    homes: dict[int, str]
    #: one episode per (region, partition window), in window order
    episodes: tuple[FailoverEpisode, ...]

    @property
    def failover_rounds(self) -> int:
        """Rounds served away from their tenant's home region."""
        return sum(
            1
            for (tenant, _), region in self.served_in.items()
            if region != self.homes[tenant]
        )


def _partitioned_at(plan: "FaultPlan | None", region: str, at: float) -> bool:
    if plan is None:
        return False
    for win in plan.partitions:
        if region in win.nodes and win.start <= at < win.end:
            return True
    return False


def route_trace(
    trace: Trace,
    topology: RegionTopology,
    homes: dict[int, str] | None = None,
    fault_plan: "FaultPlan | None" = None,
) -> GeoRoute:
    """Route every arrival to a region — home, or fallback while the home
    is inside a partition window.

    Pure data in, pure data out: no RNG, no simulation state, so the
    routing (and everything seeded downstream of it) is independent of
    execution mode.
    """
    if fault_plan is not None:
        validate_geo_faults(fault_plan, topology)
    home_map = {
        tenant: topology.home_of(tenant, homes)
        for tenant in sorted({ev.tenant for ev in trace.events})
    }
    assignments: dict[str, list[TraceEvent]] = {r: [] for r in topology.regions}
    served_in: dict[tuple[int, int], str] = {}
    for ev in trace.events:
        region = home_map[ev.tenant]
        if _partitioned_at(fault_plan, region, ev.at):
            region = topology.fallback(region)
        assignments[region].append(ev)
        served_in[(ev.tenant, ev.round_id)] = region
    episodes: list[FailoverEpisode] = []
    if fault_plan is not None:
        for win in sorted(fault_plan.partitions, key=lambda w: (w.start, w.nodes)):
            for region in win.nodes:
                episodes.append(
                    FailoverEpisode(
                        region=region,
                        fallback=topology.fallback(region),
                        start=win.start,
                        end=win.end,
                        tenants=tuple(
                            t for t, h in sorted(home_map.items()) if h == region
                        ),
                    )
                )
    return GeoRoute(
        assignments={r: tuple(evs) for r, evs in assignments.items()},
        served_in=served_in,
        homes=home_map,
        episodes=tuple(episodes),
    )


def region_subtrace(trace: Trace, region: str, events: tuple[TraceEvent, ...]) -> Trace:
    """The sub-trace one region replays.

    Unlike :func:`repro.traces.shard.split_trace`, failover routing can
    split one tenant's rounds *across* regions, so a region's view of a
    tenant legitimately has round-id gaps — events keep their original
    ``(tenant, round_id)`` identity (the seeded-draw key) and only time
    order is validated.
    """
    prev = 0.0
    for ev in events:
        ev.check()
        if ev.at < prev:
            raise ConfigError("region events must be time-sorted")
        prev = ev.at
    return Trace(
        events=list(events),
        horizon=trace.horizon,
        source=f"{trace.source or '?'} [region {region}]",
    )


def placement_nodes(
    region_nodes: dict[str, tuple[str, ...]],
    home: str,
    fallback: str,
    partitioned: set[str] | frozenset[str] = frozenset(),
) -> tuple[str, ...]:
    """The node set a placement policy may use for a tenant homed in
    ``home``: the home region's nodes, or the fallback's while the home
    is partitioned — never a partitioned region's nodes.

    This is the restriction the per-region cells enforce structurally
    (each cell only owns its own nodes); the policy-conformance suite
    uses it to exercise registered placement policies against
    region-restricted node sets directly.
    """
    if home in region_nodes and home not in partitioned:
        return tuple(region_nodes[home])
    if not fallback:
        raise ConfigError(f"region {home!r} is unavailable and has no fallback")
    if fallback in partitioned:
        raise ConfigError(
            f"fallback region {fallback!r} for {home!r} is partitioned too"
        )
    return tuple(region_nodes[fallback])


# ------------------------------------------------------------------ results
@dataclass
class RegionReport:
    """One region cell's complete output (mirrors
    :class:`~repro.traces.shard.ShardReport` with a name for a shard id)."""

    index: int
    region: str
    tenants: tuple[int, ...]
    result: ReplayResult
    counters: dict[str, int]
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    telemetry: list[TelemetryRecord] = dataclass_field(default_factory=list)


@dataclass(frozen=True)
class WanShipment:
    """One completed round's aggregated update crossing the WAN."""

    src: str
    dst: str
    tenant: int
    round_id: int
    at: float  #: local completion instant (shipment departure)
    nbytes: float
    weight: float
    latency_s: float
    transfer_s: float = 0.0

    @property
    def wan_extra_s(self) -> float:
        return self.latency_s + self.transfer_s


@dataclass
class GeoReplayResult:
    """A federated replay's merged view plus the per-region breakdown."""

    merged: ReplayResult
    regions: list[RegionReport]
    route: GeoRoute
    shipments: list[WanShipment]
    forked: bool
    workers: int = 1

    def row(self) -> dict:
        out = self.merged.row()
        out.update(
            regions=len(self.regions),
            failovers=len(self.route.episodes),
            failover_rounds=self.route.failover_rounds,
            wan_flows=len(self.shipments),
            wan_bytes=round(sum(s.nbytes for s in self.shipments), 6),
            wan_weight=round(sum(s.weight for s in self.shipments), 6),
        )
        return out

    def wan_weight_by_pair(self) -> dict[tuple[str, str], float]:
        """Exact weight shipped per directed region pair — the boundary
        side of the conservation invariant the tests pin."""
        out: dict[tuple[str, str], float] = {}
        for s in self.shipments:
            out[(s.src, s.dst)] = out.get((s.src, s.dst), 0.0) + s.weight
        return out

    def region_report(self, region: str) -> RegionReport:
        for rep in self.regions:
            if rep.region == region:
                return rep
        raise ConfigError(f"no region {region!r} in this result")


# ------------------------------------------------------------------- engine
class GeoReplayEngine:
    """Replay one trace across a region topology and merge exactly.

    Mirrors :class:`~repro.traces.shard.ShardedReplayEngine`'s knobs;
    ``platform_factory`` takes the *region name* so cells can brand their
    node fleets, and ``fault_plan`` here is **region-scoped** (partition
    windows naming regions — see
    :func:`~repro.geo.topology.validate_geo_faults`).
    """

    def __init__(
        self,
        topology: RegionTopology,
        platform_factory: "Callable[[str], AggregationPlatform]",
        trace: Trace,
        config: ReplayConfig | None = None,
        homes: dict[int, str] | None = None,
        availability: "AvailabilityTrace | None" = None,
        weights: dict[str, float] | None = None,
        selector: "Selector | None" = None,
        clients: "list[FLClient] | None" = None,
        chaos: "ChaosCorrelation | None" = None,
        seed: int = 0,
        population: "ClientPopulation | None" = None,
        controller: "ControllerConfig | None" = None,
        fault_plan: "FaultPlan | None" = None,
        wan_nbytes: float | None = None,
        workers: int | None = None,
        telemetry: TelemetryBus | None = None,
    ) -> None:
        if not callable(platform_factory):
            raise ConfigError("platform_factory must be callable")
        if workers is not None and workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if wan_nbytes is not None and wan_nbytes <= 0:
            raise ConfigError(f"wan_nbytes must be positive, got {wan_nbytes}")
        self.topology = topology
        self.platform_factory = platform_factory
        self.trace = trace
        self.config = config or ReplayConfig()
        self.homes = dict(homes) if homes else None
        self.availability = availability
        self.weights = weights
        self.selector = selector
        self.clients = clients
        self.chaos = chaos
        self.seed = seed
        self.population = population
        self.controller = controller
        self.fault_plan = fault_plan
        #: bytes one cross-region shipment carries (the *aggregated*
        #: update — one model's worth, not the round's full ingress)
        self.wan_nbytes = wan_nbytes
        self.workers = workers
        self.telemetry = telemetry if telemetry is not None else ambient_bus()
        self._stream_cells = False
        if fault_plan is not None:
            validate_geo_faults(fault_plan, topology)

    # ------------------------------------------------------------------ run
    def run(self, inline: bool = False) -> GeoReplayResult:
        """Replay every region cell (forked where possible) and merge.

        Routing, sub-traces, and all seeding are fixed before execution
        mode is chosen, so forked and inline runs are byte-identical —
        and a one-region topology returns the single cell's result as
        ``merged`` unchanged (byte-identical to the unsharded replay).
        """
        tel = self.telemetry.or_none() if self.telemetry is not None else None
        self._stream_cells = tel is not None
        route = route_trace(self.trace, self.topology, self.homes, self.fault_plan)
        tasks = [
            (i, region, region_subtrace(self.trace, region, route.assignments[region]))
            for i, region in enumerate(self.topology.regions)
        ]
        n_workers = min(len(tasks), self.workers or _available_cpus())
        fork = not inline and n_workers > 1 and _fork_available()
        if fork:
            reports = self._run_forked(tasks, n_workers)
            for rep in reports:
                maybe_register(_ShardCounters(f"region:{rep.region}", rep.counters))
        else:
            reports = [self._run_region(i, region, sub) for i, region, sub in tasks]
        reports.sort(key=lambda r: r.index)
        shipments = self._run_wan(reports, route)
        merged = self._merge(reports, shipments)
        self._publish_streams(tel, reports, route, shipments)
        return GeoReplayResult(
            merged=merged,
            regions=reports,
            route=route,
            shipments=shipments,
            forked=fork,
            workers=n_workers if fork else 1,
        )

    # ---------------------------------------------------------------- cells
    def _run_region(self, index: int, region: str, sub: Trace) -> RegionReport:
        """Replay one region cell in the current process (same discipline
        as :meth:`ShardedReplayEngine._run_shard`: private bus, own
        counters, own platform from the factory)."""
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        cell_bus = TelemetryBus()
        recorder = RecordingSubscriber(cell_bus) if self._stream_cells else None
        with collect() as perf:
            engine = TraceReplayEngine(
                self.platform_factory(region),
                sub,
                self.config,
                availability=self.availability,
                weights=self.weights,
                selector=self.selector,
                clients=self.clients,
                chaos=self.chaos,
                seed=self.seed,
                population=self.population,
                controller=self.controller,
                telemetry=cell_bus,
            )
            result = engine.run()
        return RegionReport(
            index=index,
            region=region,
            tenants=tuple(sorted({r.tenant for r in result.records})),
            result=result,
            counters=perf.counters().as_dict(),
            wall_seconds=time.perf_counter() - wall0,
            cpu_seconds=time.process_time() - cpu0,
            telemetry=recorder.records if recorder is not None else [],
        )

    def _run_forked(
        self, tasks: list[tuple[int, str, Trace]], n_workers: int
    ) -> list[RegionReport]:
        """One ShardedReplayEngine-style worker fleet, one region per
        task: fork, deal round-robin, receive before join."""
        ctx = multiprocessing.get_context("fork")
        groups = [tasks[w::n_workers] for w in range(n_workers)]
        procs = []
        for w, group in enumerate(groups):
            rx, tx = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=self._worker_main, args=(group, tx), name=f"geo-region-w{w}"
            )
            proc.start()
            tx.close()
            procs.append((group, proc, rx))
        reports: list[RegionReport] = []
        failures: list[str] = []
        for group, proc, rx in procs:
            names = ",".join(region for _, region, _ in group)
            try:
                status, payload = rx.recv()
            except EOFError:
                status, payload = "err", "worker died without reporting"
            proc.join()
            if status == "ok":
                reports.extend(payload)
            else:
                failures.append(f"regions [{names}]: {payload}")
        if failures:
            raise RuntimeError("geo replay failed: " + "; ".join(failures))
        return reports

    def _worker_main(self, group, conn) -> None:
        try:
            out = [self._run_region(i, region, sub) for i, region, sub in group]
            conn.send(("ok", out))
        except BaseException:
            conn.send(("err", traceback.format_exc()))
        finally:
            conn.close()

    # ------------------------------------------------------------------ WAN
    def _run_wan(
        self, reports: list[RegionReport], route: GeoRoute
    ) -> list[WanShipment]:
        """Ship every completed non-root round's aggregated update to the
        root region over the directed WAN links, in a dedicated virtual
        environment.

        Shipments departing together contend on the shared pipe (the
        links are processor-sharing); partition windows freeze the links
        touching the partitioned region, stalling in-flight shipments
        until the heal — delayed, never lost.
        """
        root = self.topology.root
        if self.topology.n_regions == 1:
            return []
        nbytes = self.wan_nbytes if self.wan_nbytes is not None else self.config.nbytes
        pending: list[WanShipment] = []
        for rep in reports:
            if rep.region == root:
                continue
            spec = self.topology.link(rep.region, root)
            for rec in rep.result.records:
                if rec.aborted or rec.rejected or rec.shed or rec.complete_at < 0:
                    continue
                pending.append(
                    WanShipment(
                        src=rep.region,
                        dst=root,
                        tenant=rec.tenant,
                        round_id=rec.round_id,
                        at=rec.complete_at,
                        nbytes=nbytes,
                        weight=sum(w for _, w in rec.participants),
                        latency_s=spec.latency_s,
                    )
                )
        if not pending:
            return []
        pending.sort(key=lambda s: (s.at, s.src, s.tenant, s.round_id))
        env = Environment()
        links: dict[tuple[str, str], ProcessorSharingLink] = {}
        for pair in sorted({(s.src, s.dst) for s in pending}):
            spec = self.topology.link(*pair)
            links[pair] = ProcessorSharingLink(
                env, spec.capacity_bps, f"wan:{pair[0]}->{pair[1]}"
            )
        if self.fault_plan is not None:
            for win in sorted(
                self.fault_plan.partitions, key=lambda w: (w.start, w.nodes)
            ):
                frozen = [
                    link
                    for pair, link in links.items()
                    if pair[0] in win.nodes or pair[1] in win.nodes
                ]
                if frozen:
                    Process(
                        env,
                        _freeze_window(env, frozen, win.start, win.end),
                        f"wan:partition:{','.join(win.nodes)}",
                    )
        done: list[WanShipment] = []
        for shp in pending:
            Process(
                env,
                _ship(env, links[(shp.src, shp.dst)], shp, done.append),
                f"wan:t{shp.tenant}r{shp.round_id}",
            )
        env.run()
        if len(done) != len(pending):
            raise ConfigError(
                f"WAN simulation lost shipments: {len(done)} of {len(pending)}"
            )
        done.sort(key=lambda s: (s.at, s.src, s.tenant, s.round_id))
        return done

    # ---------------------------------------------------------------- merge
    def _merge(
        self, reports: list[RegionReport], shipments: list[WanShipment]
    ) -> ReplayResult:
        """Fold region results into one WAN-adjusted
        :class:`~repro.traces.replay.ReplayResult`.

        One region short-circuits to the cell's own result (byte-identity
        with the unsharded replay).  Otherwise every cross-region
        completed round's ``complete_at`` grows by its shipment's
        propagation + transfer time, and the merged SLO tracker is
        rebuilt from the adjusted records — digest addition is exact, so
        the totals equal a tracker that had observed the adjusted rounds
        live.
        """
        if len(reports) == 1:
            return reports[0].result
        cfg = self.config
        extra = {(s.tenant, s.round_id): s.wan_extra_s for s in shipments}
        records = []
        tracker = SloTracker(
            cfg.slo_target_s,
            controller=any(rep.result.slo.controller for rep in reports),
        )
        merged = ReplayResult(
            records=records,
            slo=tracker,
            horizon=self.trace.horizon,
            track_cost=cfg.track_cost,
        )
        peak_per_tenant: dict[int, int] = {}
        for rep in reports:
            res = rep.result
            for rec in res.records:
                wan_extra = extra.get((rec.tenant, rec.round_id))
                if wan_extra:
                    rec = replace(rec, complete_at=rec.complete_at + wan_extra)
                records.append(rec)
            merged.peak_inflight += res.peak_inflight
            merged.chaos_waves += res.chaos_waves
            merged.clients_dropped += res.clients_dropped
            merged.cost_cpu_s += res.cost_cpu_s
            for tenant, peak in res.peak_inflight_per_tenant.items():
                if peak > peak_per_tenant.get(tenant, -1):
                    peak_per_tenant[tenant] = peak
            if res.controller is not None:
                if merged.controller is None:
                    from repro.controlplane.reactive import ControllerReport

                    merged.controller = ControllerReport()
                merged.controller.merge(res.controller)
        records.sort(key=lambda r: (r.arrival_at, r.tenant, r.round_id))
        for rec in records:
            if rec.rejected:
                tracker.reject(at=rec.arrival_at)
            elif rec.shed:
                tracker.shed(at=rec.arrival_at)
            elif rec.aborted:
                tracker.abort(at=rec.complete_at)
            elif rec.complete_at >= 0:
                tracker.observe(
                    rec.queue_wait, rec.service, deferred=rec.deferred, at=rec.complete_at
                )
            else:
                raise ConfigError(
                    f"round t{rec.tenant}r{rec.round_id} has no terminal outcome"
                )
        merged.peak_inflight_per_tenant = dict(sorted(peak_per_tenant.items()))
        return merged

    # ------------------------------------------------------------ telemetry
    def _publish_streams(
        self,
        tel: TelemetryBus | None,
        reports: list[RegionReport],
        route: GeoRoute,
        shipments: list[WanShipment],
    ) -> None:
        """Region-stamp and fold the cells' streams, weave in the
        parent's own records (failover episodes, WAN samples), and
        forward everything to the parent's subscribers in time order."""
        if tel is None:
            return
        merged = merge_streams(
            [rep.telemetry for rep in reports],
            regions=[rep.region for rep in reports],
        )
        extras: list[TelemetryRecord] = []
        for ep in route.episodes:
            common = dict(
                fallback=ep.fallback,
                tenants=",".join(str(t) for t in ep.tenants),
            )
            extras.append(
                TelemetryRecord(
                    at=ep.start,
                    kind="region-failover",
                    region=ep.region,
                    fields=tuple(sorted({**common, "phase": "drain"}.items())),
                )
            )
            extras.append(
                TelemetryRecord(
                    at=ep.end,
                    kind="region-failover",
                    region=ep.region,
                    fields=tuple(sorted({**common, "phase": "heal"}.items())),
                )
            )
        for shp in shipments:
            extras.append(
                TelemetryRecord(
                    at=shp.at + shp.wan_extra_s,
                    kind="wan-sample",
                    tenant=shp.tenant,
                    round_id=shp.round_id,
                    region=shp.src,
                    fields=tuple(
                        sorted(
                            dict(
                                src=shp.src,
                                dst=shp.dst,
                                nbytes=shp.nbytes,
                                weight=shp.weight,
                                latency_s=shp.latency_s,
                                transfer_s=shp.transfer_s,
                            ).items()
                        )
                    ),
                )
            )
        merged.extend(extras)
        merged.sort(key=lambda rec: (rec.at, rec.region, rec.shard))
        for rec in merged:
            tel.publish(rec)


def _freeze_window(env: Environment, links, start: float, end: float):
    """Freeze the given WAN links for [start, end) — in-flight shipments
    stall in place and resume at the heal."""
    if start > 0:
        yield env.timeout(start)
    for link in links:
        link.set_rate_factor(0.0)
    yield env.timeout(end - env.now)
    for link in links:
        link.set_rate_factor(1.0)


def _ship(env: Environment, link: ProcessorSharingLink, shp: WanShipment, emit):
    """One shipment: wait for departure, pay propagation, then contend on
    the shared pipe; reports the measured transfer time."""
    if shp.at > 0:
        yield env.timeout(shp.at)
    if shp.latency_s > 0:
        yield env.timeout(shp.latency_s)
    started = env.now
    yield link.transfer(shp.nbytes, label=f"t{shp.tenant}r{shp.round_id}")
    emit(replace(shp, transfer_s=env.now - started))
