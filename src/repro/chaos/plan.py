"""Declarative, seeded fault plans.

A :class:`FaultPlan` is pure data: *what* fails and *when*, independent of
any particular round.  The same plan can be applied to a single-tenant
round, a multi-tenant campaign, or a property test's randomized sweep —
the :class:`~repro.chaos.injector.FaultInjector` turns it into simulation
processes.  All randomness (victim selection inside a dropout wave or a
crash event) derives from ``plan.seed``, so a plan is reproducible down to
the byte across sequential and parallel campaign runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.common.errors import ChaosError

#: fault-event ``tenant`` value meaning "apply to every installed tenant"
ALL_TENANTS = -1


@dataclass(frozen=True)
class AggregatorCrash:
    """Kill up to ``count`` live aggregator instances at time ``at``.

    ``node`` restricts victims to one worker node (any node when empty);
    ``role`` restricts to ``"leaf"`` / ``"middle"`` / ``"top"``.  Victims
    are drawn seeded from the live candidates; each is restarted through
    the lifecycle stage's stateless-restart path (§3).
    """

    at: float
    count: int = 1
    node: str = ""
    role: str = ""
    tenant: int = ALL_TENANTS

    def check(self) -> None:
        if self.at < 0:
            raise ChaosError(f"crash time must be >= 0, got {self.at}")
        if self.count < 1:
            raise ChaosError(f"crash count must be >= 1, got {self.count}")
        if self.role not in ("", "leaf", "middle", "top"):
            raise ChaosError(f"unknown role filter {self.role!r}")


@dataclass(frozen=True)
class DropoutWave:
    """At time ``at``, a random ``fraction`` of the clients whose updates
    have not yet been delivered die mid-round (mobile clients going dark).
    Their ingress is interrupted; the keep-alive monitor detects them."""

    at: float
    fraction: float
    tenant: int = ALL_TENANTS

    def check(self) -> None:
        if self.at < 0:
            raise ChaosError(f"dropout time must be >= 0, got {self.at}")
        if not 0.0 < self.fraction <= 1.0:
            raise ChaosError(f"dropout fraction must be in (0, 1], got {self.fraction}")


@dataclass(frozen=True)
class NicDegrade:
    """One node's NIC runs at ``factor`` × capacity during [start, end)."""

    node: str
    start: float
    end: float
    factor: float

    def check(self) -> None:
        if not self.node:
            raise ChaosError("NIC degradation needs a node name")
        _check_window(self.start, self.end, "NIC degradation")
        if not 0.0 < self.factor < 1.0:
            raise ChaosError(f"degradation factor must be in (0, 1), got {self.factor}")


@dataclass(frozen=True)
class PartitionWindow:
    """The named nodes are severed from the cluster during [start, end):
    their TX/RX links freeze, in-flight flows stall until the heal."""

    nodes: tuple[str, ...]
    start: float
    end: float

    def check(self) -> None:
        if not self.nodes:
            raise ChaosError("partition needs at least one node")
        _check_window(self.start, self.end, "partition")


@dataclass(frozen=True)
class SlowNode:
    """A straggling node: during [start, end) it drains its flows
    ``slowdown`` × slower than its NIC allows (CPU preemption, thermal
    throttling — the paper's hibernating-client pathology at node scale).
    """

    node: str
    start: float
    end: float
    slowdown: float

    def check(self) -> None:
        if not self.node:
            raise ChaosError("slow node needs a node name")
        _check_window(self.start, self.end, "slow node")
        if self.slowdown <= 1.0:
            raise ChaosError(f"slowdown must be > 1, got {self.slowdown}")


def _check_window(start: float, end: float, what: str) -> None:
    if start < 0:
        raise ChaosError(f"{what} start must be >= 0, got {start}")
    if not end > start:
        raise ChaosError(f"{what} window must have end > start, got [{start}, {end})")
    if end == float("inf"):
        raise ChaosError(f"{what} window must end (an endless window hangs the round)")


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong in one round, plus the recovery knobs.

    ``quorum_fraction`` is the paper's over-provisioning margin inverted:
    the round must still aggregate at least ``ceil(fraction × clients)``
    updates or abort with :class:`~repro.common.errors.RoundAbort`.
    ``heartbeat_timeout`` / ``sweep_interval`` parameterize the keep-alive
    failure detector (§3).  ``recovery_policy`` names the registered
    :class:`~repro.core.policies.RecoveryPolicy` that decides, per failed
    client, whether the round shrinks its goal or aborts outright.
    """

    seed: int = 0
    quorum_fraction: float = 0.5
    heartbeat_timeout: float = 5.0
    sweep_interval: float = 1.0
    recovery_policy: str = "shrink-or-abort"
    crashes: tuple[AggregatorCrash, ...] = ()
    dropouts: tuple[DropoutWave, ...] = ()
    nic_degradations: tuple[NicDegrade, ...] = ()
    partitions: tuple[PartitionWindow, ...] = ()
    slow_nodes: tuple[SlowNode, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (
            self.crashes
            or self.dropouts
            or self.nic_degradations
            or self.partitions
            or self.slow_nodes
        )

    def validate(self) -> None:
        if not 0.0 < self.quorum_fraction <= 1.0:
            raise ChaosError(
                f"quorum_fraction must be in (0, 1], got {self.quorum_fraction}"
            )
        if self.heartbeat_timeout <= 0:
            raise ChaosError("heartbeat_timeout must be positive")
        if self.sweep_interval <= 0:
            raise ChaosError("sweep_interval must be positive")
        for ev in (
            *self.crashes,
            *self.dropouts,
            *self.nic_degradations,
            *self.partitions,
            *self.slow_nodes,
        ):
            ev.check()
        # Rate-affecting windows on one node must not overlap: the fabric
        # tracks a single degradation factor per node, so "last write
        # wins" would silently mis-apply overlapping windows.
        windows: dict[str, list[tuple[float, float]]] = {}
        for deg in self.nic_degradations:
            windows.setdefault(deg.node, []).append((deg.start, deg.end))
        for slow in self.slow_nodes:
            windows.setdefault(slow.node, []).append((slow.start, slow.end))
        for node, spans in windows.items():
            spans.sort()
            for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
                if next_start < prev_end:
                    raise ChaosError(
                        f"overlapping rate windows on node {node!r}: "
                        f"degradation/slow-node windows must not intersect"
                    )
        # Same per node for partitions (the fabric heals by set removal, so
        # overlapping windows on one node would end the partition early).
        part_windows: dict[str, list[tuple[float, float]]] = {}
        for part in self.partitions:
            for node in part.nodes:
                part_windows.setdefault(node, []).append((part.start, part.end))
        for node, spans in part_windows.items():
            spans.sort()
            for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
                if next_start < prev_end:
                    raise ChaosError(
                        f"overlapping partition windows on node {node!r}"
                    )

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)


@dataclass
class _PlanDraft:
    """Mutable accumulator used only while generating random plans."""

    crashes: list[AggregatorCrash] = field(default_factory=list)
    dropouts: list[DropoutWave] = field(default_factory=list)
    nic_degradations: list[NicDegrade] = field(default_factory=list)
    partitions: list[PartitionWindow] = field(default_factory=list)
    slow_nodes: list[SlowNode] = field(default_factory=list)


def random_fault_plan(
    rng: np.random.Generator,
    node_names: list[str],
    horizon: float,
    seed: int = 0,
    quorum_fraction: float = 0.5,
    heartbeat_timeout: float = 4.0,
    sweep_interval: float = 1.0,
    max_events: int = 4,
) -> FaultPlan:
    """A random-but-valid plan for property tests and chaos sweeps.

    Draws up to ``max_events`` fault events with times inside ``horizon``.
    Rate windows are laid out non-overlapping per node by construction, so
    the result always passes :meth:`FaultPlan.validate`.
    """
    if horizon <= 0:
        raise ChaosError(f"horizon must be positive, got {horizon}")
    draft = _PlanDraft()
    #: nodes whose rate is already claimed by a window (no overlap math —
    #: one window per node keeps generation simple and always-valid)
    rate_claimed: set[str] = set()
    n_events = int(rng.integers(1, max_events + 1))
    for _ in range(n_events):
        kind = int(rng.integers(0, 5))
        at = float(rng.uniform(0.0, horizon * 0.6))
        if kind == 0:
            draft.crashes.append(
                AggregatorCrash(at=at, count=int(rng.integers(1, 3)))
            )
        elif kind == 1:
            draft.dropouts.append(
                DropoutWave(at=at, fraction=float(rng.uniform(0.05, 0.4)))
            )
        else:
            free = [n for n in node_names if n not in rate_claimed]
            if not free:
                continue
            node = free[int(rng.integers(0, len(free)))]
            rate_claimed.add(node)
            end = at + float(rng.uniform(horizon * 0.05, horizon * 0.35))
            if kind == 2:
                draft.nic_degradations.append(
                    NicDegrade(node=node, start=at, end=end, factor=float(rng.uniform(0.05, 0.9)))
                )
            elif kind == 3:
                draft.partitions.append(
                    PartitionWindow(nodes=(node,), start=at, end=end)
                )
            else:
                draft.slow_nodes.append(
                    SlowNode(node=node, start=at, end=end, slowdown=float(rng.uniform(1.5, 8.0)))
                )
    plan = FaultPlan(
        seed=seed,
        quorum_fraction=quorum_fraction,
        heartbeat_timeout=heartbeat_timeout,
        sweep_interval=sweep_interval,
        crashes=tuple(draft.crashes),
        dropouts=tuple(draft.dropouts),
        nic_degradations=tuple(draft.nic_degradations),
        partitions=tuple(draft.partitions),
        slow_nodes=tuple(draft.slow_nodes),
    )
    plan.validate()
    return plan
