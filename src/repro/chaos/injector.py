"""Executing a fault plan against an installed round.

Two cooperating pieces:

* :class:`FaultInjector` — turns a :class:`~repro.chaos.plan.FaultPlan`
  into a timeline process on the round's environment: it kills aggregator
  instances (restarted statelessly through the lifecycle stage), interrupts
  client ingress (dropout waves), and drives the fabric's rate-rescale /
  partition hooks for NIC and straggler windows.
* :class:`RecoveryController` — one per tenant, the paper's §3 recovery
  loop: a :class:`~repro.fl.failures.HeartbeatMonitor` tracks keep-alives
  (clients check in at round start, beat while alive, and go silent when a
  dropout wave kills them), a periodic sweep declares stale clients
  failed, shrinks the affected leaf's aggregation goal (the
  over-provisioning margin absorbs the loss), and aborts the round with a
  typed :class:`~repro.common.errors.RoundAbort` when the survivors can no
  longer cover the quorum.  Rounds therefore never hang: every fault path
  ends in completion or a typed abort.

The injector plugs into :meth:`repro.core.roundsim.RoundEngine.run_round`
(or ``run_multi_tenant``) via the ``injector=`` parameter; the engine calls
``install(env=..., fabric=..., engine=..., tenants=[...])`` after the round
is built but before the clock starts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Callable

import numpy as np

from repro.chaos.plan import ALL_TENANTS, FaultPlan
from repro.cluster.network import Fabric
from repro.common.errors import ChaosError, RoundAbort
from repro.common.rng import make_rng
from repro.core.aggregator import InstanceState
from repro.core.policies import RecoveryContext, resolve_policy
from repro.core.stages import LifecycleStage
from repro.fl.failures import HeartbeatMonitor
from repro.sim.engine import Environment, Process


@dataclass
class ChaosReport:
    """What the injector actually did to the round (for scenario rows)."""

    crashes_injected: int = 0
    clients_dropped: int = 0
    clients_declared_failed: int = 0
    goal_reductions: int = 0
    nic_events: int = 0
    partition_events: int = 0
    slow_node_events: int = 0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class RecoveryController:
    """Per-tenant keep-alive tracking and over-provisioning recovery."""

    def __init__(
        self, env: Environment, tenant, plan: FaultPlan, report: ChaosReport
    ) -> None:
        self.env = env
        self.tenant = tenant
        self.plan = plan
        self.report = report
        self.policy = resolve_policy("recovery", plan.recovery_policy)
        self.monitor = HeartbeatMonitor(timeout=plan.heartbeat_timeout)
        self.delivered: set[int] = set()
        self.dropped: set[int] = set()
        self._uid_by_client = {u.client_id: u.uid for u in tenant.updates}
        now = env.now
        for u in tenant.updates:
            self.monitor.beat(u.client_id, now)  # round-start check-in
        tenant.on_delivery = self._on_delivery
        self.process = Process(env, self._run(), f"recovery:{tenant.label}")

    # -- hooks -------------------------------------------------------------
    def _on_delivery(self, update) -> None:
        self.delivered.add(update.uid)
        if update.uid in self.dropped:
            # A dropout raced a same-instant delivery and lost: the update
            # made it into a mailbox, so the client was not really gone.
            self.dropped.discard(update.uid)
            self.tenant.dropped_uids.discard(update.uid)
            self.tenant.clients_dropped -= 1
            self.report.clients_dropped -= 1
        self.monitor.beat(update.client_id, self.env.now)

    def note_dropped(self, uid: int) -> bool:
        """Record one killed client; returns False if it already delivered."""
        if uid in self.delivered or uid in self.dropped:
            return False
        self.dropped.add(uid)
        self.tenant.dropped_uids.add(uid)
        self.tenant.clients_dropped += 1
        return True

    # -- the §3 recovery loop ----------------------------------------------
    def _run(self):
        env = self.env
        tenant = self.tenant
        plan = self.plan
        monitor = self.monitor
        updates = tenant.updates
        total = len(updates)
        quorum = math.ceil(plan.quorum_fraction * total)
        top_done = tenant.top_done
        while not top_done.triggered:
            yield env.timeout(plan.sweep_interval)
            if top_done.triggered:
                return
            now = env.now
            # Live clients keep sending keep-alives (modelled in one pass:
            # only genuinely dropped clients go silent and age out).
            dropped = self.dropped
            for u in updates:
                if u.uid not in dropped:
                    monitor.beat(u.client_id, now)
            for cid in monitor.sweep(now):
                self.report.clients_declared_failed += 1
                verdict = self.policy.on_client_failed(
                    RecoveryContext(
                        client_id=cid,
                        survivors=total - len(monitor.failed),
                        quorum=quorum,
                        total=total,
                    )
                )
                if verdict == "abort":
                    if not top_done.triggered:
                        top_done.fail(
                            RoundAbort(total - len(monitor.failed), quorum, total)
                        )
                    return
                uid = self._uid_by_client[cid]
                leaf_id = tenant.leaf_assignment[uid]
                inst = tenant.instances[leaf_id]
                if inst.reduce_goal(1):
                    self.report.goal_reductions += 1
                if inst.fan_in == 0 and not inst._created:
                    # Every client of a reactive (create-on-delivery) leaf
                    # died before its first delivery: force the leaf up so
                    # it emits its empty intermediate and the tree unblocks.
                    tenant.create(inst)
            survivors = total - len(monitor.failed)
            if self.policy.should_abort(survivors, quorum, total):
                if not top_done.triggered:
                    top_done.fail(RoundAbort(survivors, quorum, total))
                return


class FaultInjector:
    """Executes one :class:`FaultPlan` against one installed round.

    ``telemetry`` takes a :class:`~repro.telemetry.bus.TelemetryBus` (or
    an already-resolved one); each executed fault action then emits one
    ``chaos-fault`` record, timestamped at the instant the action fired —
    the live-view's chaos windows come from pairing these records.
    """

    def __init__(self, plan: FaultPlan, telemetry=None) -> None:
        plan.validate()
        self.plan = plan
        self.report = ChaosReport()
        self.controllers: list[RecoveryController] = []
        self._telemetry = telemetry.or_none() if telemetry is not None else None
        self._env: Environment | None = None

    def _emit(self, fault: str, target: str, value: float, tenant: int = -1) -> None:
        tel = self._telemetry
        if tel is not None and self._env is not None:
            tel.emit(
                "chaos-fault",
                self._env.now,
                tenant=tenant,
                fault=fault,
                target=target,
                value=value,
            )

    # The engine calls this duck-typed (keyword arguments), so the core
    # never imports the chaos package.
    def install(self, env: Environment, fabric: Fabric, engine, tenants: list) -> None:
        plan = self.plan
        self._env = env
        if plan.crashes:
            lifecycle = engine.lifecycle
            if type(lifecycle).restart_instance is LifecycleStage.restart_instance:
                raise ChaosError(
                    f"lifecycle stage {lifecycle.name!r} cannot restart crashed "
                    f"aggregators; configure lifecycle_stage='resilient'"
                )
        known_nodes = set(engine.node_names)
        for ev in (*plan.nic_degradations, *plan.slow_nodes):
            if ev.node not in known_nodes:
                raise ChaosError(f"fault targets unknown node {ev.node!r}")
        for part in plan.partitions:
            missing = set(part.nodes) - known_nodes
            if missing:
                raise ChaosError(f"partition targets unknown nodes {sorted(missing)}")
        for ev in (*plan.crashes, *plan.dropouts):
            if ev.tenant != ALL_TENANTS and not 0 <= ev.tenant < len(tenants):
                raise ChaosError(
                    f"fault targets tenant {ev.tenant}, round has {len(tenants)}"
                )

        # Recovery (keep-alive sweeps, goal shrinking, quorum aborts) only
        # matters when clients can actually disappear; for crash/NIC-only
        # plans the controller could provably never act, and its per-sweep
        # O(clients) beat loop would be pure event overhead at stress scale.
        if plan.dropouts:
            self.controllers = [
                RecoveryController(env, tenant, plan, self.report) for tenant in tenants
            ]
        for tenant in tenants:
            tenant.chaos_active = True
        if plan.crashes:
            # Stateless restarts re-read consumed inputs from shm — turn
            # retention on only when something can actually crash.
            for tenant in tenants:
                for inst in tenant.instances.values():
                    inst.retain_inputs = True

        rng = make_rng(plan.seed, "chaos")
        actions: list[tuple[float, int, Callable[[], None]]] = []

        def add(at: float, fn: Callable[[], None]) -> None:
            actions.append((at, len(actions), fn))

        for crash in plan.crashes:
            add(crash.at, lambda ev=crash: self._crash(env, engine, tenants, ev, rng))
        for wave in plan.dropouts:
            add(wave.at, lambda ev=wave: self._dropout(tenants, ev, rng))
        self._add_fabric_actions(fabric, add)
        if actions:
            actions.sort(key=lambda a: (a[0], a[1]))
            Process(env, self._timeline(env, actions), "chaos:timeline")

    def install_fabric(self, env: Environment, fabric: Fabric) -> None:
        """Install only the plan's fabric-level weather — NIC degradation,
        partition windows, slow nodes — with no round attached.

        This is the hook long-horizon serving loops
        (:class:`~repro.traces.replay.TraceReplayEngine`) use: cluster
        weather spans many rounds, so it belongs on the replay's shared
        fabric rather than on any one installed round.  Plans carrying
        round-scoped events (crashes, dropout waves) are refused — those
        need tenants to act on.
        """
        plan = self.plan
        self._env = env
        if plan.crashes or plan.dropouts:
            raise ChaosError(
                "fabric-only install cannot execute crash/dropout events — "
                "install them on a round via install()"
            )
        known_nodes = set(fabric.nodes)
        for ev in (*plan.nic_degradations, *plan.slow_nodes):
            if ev.node not in known_nodes:
                raise ChaosError(f"fault targets unknown node {ev.node!r}")
        for part in plan.partitions:
            missing = set(part.nodes) - known_nodes
            if missing:
                raise ChaosError(f"partition targets unknown nodes {sorted(missing)}")
        actions: list[tuple[float, int, Callable[[], None]]] = []

        def add(at: float, fn: Callable[[], None]) -> None:
            actions.append((at, len(actions), fn))

        self._add_fabric_actions(fabric, add)
        if actions:
            actions.sort(key=lambda a: (a[0], a[1]))
            Process(env, self._timeline(env, actions), "chaos:timeline")

    def _add_fabric_actions(
        self, fabric: Fabric, add: Callable[[float, Callable[[], None]], None]
    ) -> None:
        """Queue the plan's fabric-level events (shared by both installs)."""
        plan = self.plan
        for deg in plan.nic_degradations:
            add(deg.start, lambda n=deg.node, f=deg.factor: self._rescale(fabric, n, f))
            add(deg.end, lambda n=deg.node: self._rescale(fabric, n, 1.0))
        for part in plan.partitions:
            add(part.start, lambda ns=part.nodes: self._partition(fabric, ns))
            add(part.end, lambda ns=part.nodes: self._heal(fabric, ns))
        for slow in plan.slow_nodes:
            factor = 1.0 / slow.slowdown
            add(slow.start, lambda n=slow.node, f=factor: self._slow(fabric, n, f))
            add(slow.end, lambda n=slow.node: self._slow(fabric, n, 1.0))

    # -- fault actions ------------------------------------------------------
    def _timeline(self, env: Environment, actions: list):
        for at, _, action in actions:
            delay = at - env.now
            if delay > 0:
                yield env.timeout(delay)
            action()

    def _crash(self, env, engine, tenants, event, rng: np.random.Generator) -> None:
        candidates = []
        for idx, tenant in enumerate(tenants):
            if event.tenant not in (ALL_TENANTS, idx):
                continue
            for agg_id in sorted(tenant.instances):
                inst = tenant.instances[agg_id]
                if not inst._created or inst.state is InstanceState.FINISHED:
                    continue
                if event.node and inst.node != event.node:
                    continue
                if event.role and inst.role != event.role:
                    continue
                candidates.append(inst)
        if not candidates:
            return
        k = min(event.count, len(candidates))
        picks = sorted(int(p) for p in rng.permutation(len(candidates))[:k])
        for i in picks:
            engine.lifecycle.restart_instance(candidates[i], env, engine.config)
            self.report.crashes_injected += 1
        self._emit("crash", event.node or "any", float(len(picks)))

    def _dropout(self, tenants, wave, rng: np.random.Generator) -> None:
        for idx, (tenant, controller) in enumerate(zip(tenants, self.controllers)):
            if wave.tenant not in (ALL_TENANTS, idx):
                continue
            candidates = sorted(
                uid
                for uid in tenant.ingress_procs
                if uid not in controller.delivered and uid not in controller.dropped
            )
            if not candidates:
                continue
            mask = rng.uniform(size=len(candidates)) < wave.fraction
            dropped = 0
            for uid, hit in zip(candidates, mask):
                if not hit:
                    continue
                if not controller.note_dropped(uid):
                    continue
                proc = tenant.ingress_procs[uid]
                if proc.is_alive:
                    proc.defuse()
                    proc.interrupt("client-dropout")
                self.report.clients_dropped += 1
                dropped += 1
            self._emit(
                "dropout", f"{dropped}/{len(candidates)}", wave.fraction, tenant=idx
            )

    def _rescale(self, fabric: Fabric, node: str, factor: float) -> None:
        fabric.set_node_rate_factor(node, factor)
        self.report.nic_events += 1
        self._emit("nic-rescale", node, factor)

    def _slow(self, fabric: Fabric, node: str, factor: float) -> None:
        fabric.set_node_rate_factor(node, factor)
        self.report.slow_node_events += 1
        self._emit("slow-node", node, factor)

    def _partition(self, fabric: Fabric, nodes) -> None:
        fabric.partition(nodes)
        self.report.partition_events += 1
        self._emit("partition", ",".join(nodes), float(len(nodes)))

    def _heal(self, fabric: Fabric, nodes) -> None:
        fabric.heal(nodes)
        self.report.partition_events += 1
        self._emit("heal", ",".join(nodes), float(len(nodes)))
