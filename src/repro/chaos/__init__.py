"""Fault injection for the round engine (§3 resilience, made testable).

The paper's resilience story — keep-alive failure detection, client
over-provisioning, stateless aggregators restarting without state
synchronization — is exercised here as a first-class subsystem:

* :mod:`repro.chaos.plan` — :class:`FaultPlan`, a seeded, declarative
  description of what goes wrong and when: aggregator crashes, client
  dropout waves, NIC degradation windows, network partitions, slow-node
  stragglers;
* :mod:`repro.chaos.injector` — :class:`FaultInjector`, the process that
  executes a plan against an installed round, and
  :class:`RecoveryController`, the keep-alive/recovery loop that wires
  :class:`~repro.fl.failures.HeartbeatMonitor` into the running round and
  implements the over-provisioning recovery (shrinking aggregation goals,
  aborting with :class:`~repro.common.errors.RoundAbort` below quorum).

A round with no injector attached pays nothing: the hooks are inert and
the engine's event sequence is byte-identical to the pre-chaos engine.
"""

from repro.chaos.injector import ChaosReport, FaultInjector, RecoveryController
from repro.chaos.plan import (
    AggregatorCrash,
    DropoutWave,
    FaultPlan,
    NicDegrade,
    PartitionWindow,
    SlowNode,
    random_fault_plan,
)

__all__ = [
    "AggregatorCrash",
    "ChaosReport",
    "DropoutWave",
    "FaultInjector",
    "FaultPlan",
    "NicDegrade",
    "PartitionWindow",
    "RecoveryController",
    "SlowNode",
    "random_fault_plan",
]
