"""Scenario registry + campaign runner.

``repro.scenarios`` is the experiment harness's spine: scenarios register
themselves with the :func:`~repro.scenarios.registry.scenario` decorator,
and the :class:`~repro.scenarios.runner.CampaignRunner` expands, executes
(optionally in parallel) and reports them.  See
``python -m repro.experiments --list`` for the catalogue.
"""

from repro.scenarios.registry import (  # noqa: F401
    ScenarioRun,
    ScenarioSpec,
    all_scenarios,
    derive_seed,
    discover,
    get_scenario,
    match_scenarios,
    scenario,
)
from repro.scenarios.runner import (  # noqa: F401
    CampaignResult,
    CampaignRunner,
    RunRecord,
    ScenarioReport,
    run_scenario,
)

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "RunRecord",
    "ScenarioReport",
    "ScenarioRun",
    "ScenarioSpec",
    "all_scenarios",
    "derive_seed",
    "discover",
    "get_scenario",
    "match_scenarios",
    "run_scenario",
    "scenario",
]
