"""The campaign runner: expand scenarios into runs, execute, report.

One engine-warm path for every benchmark and sweep: the runner expands
each :class:`~repro.scenarios.registry.ScenarioSpec` into its grid of
runs, executes them sequentially or on a ``multiprocessing`` pool
(``jobs > 1``), and renders per-scenario reports from the collected rows.

Determinism: runs are seeded from ``(campaign_seed, scenario, index)``
before dispatch, results are reassembled in expansion order, and tables
are rendered in the parent from the structured rows — so a parallel
campaign's report is byte-identical to the sequential one (for scenarios
whose rows are themselves deterministic; wall-clock-measuring scenarios
like ``overhead`` vary run to run by nature).
"""

from __future__ import annotations

import json
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Sequence

from repro.common.errors import ConfigError
from repro.experiments.common import render_table
from repro.scenarios.registry import (
    ScenarioRun,
    ScenarioSpec,
    discover,
    get_scenario,
)


@dataclass
class RunRecord:
    """One executed run: its grid point plus the rows it produced."""

    scenario: str
    index: int
    params: dict
    seed: int
    rows: list[dict]
    #: engine counters for the run (``--profile`` campaigns only)
    perf: dict | None = None
    #: the run's telemetry stream as JSON-ready record objects
    #: (``--telemetry`` campaigns only) — serialized in the worker so
    #: parallel runs ship plain data home, and the parent writes one
    #: ordered JSONL file whatever the job count
    telemetry: list[dict] | None = None


@dataclass
class ScenarioReport:
    """All runs of one scenario, plus the rendered report text."""

    spec: ScenarioSpec
    records: list[RunRecord]
    text: str

    @property
    def rows(self) -> list[dict]:
        return [row for rec in self.records for row in rec.rows]


@dataclass
class CampaignResult:
    """Everything one campaign produced, in scenario order."""

    seed: int
    jobs: int
    reports: list[ScenarioReport] = field(default_factory=list)

    def report_for(self, name: str) -> ScenarioReport:
        for rep in self.reports:
            if rep.spec.name == name:
                return rep
        raise ConfigError(f"campaign has no scenario {name!r}")


def _execute_payload(payload: tuple[str, int, dict, int, int, bool, bool]) -> RunRecord:
    """Worker entry point: look the scenario up (re-discovering in spawned
    interpreters) and run one grid point."""
    scenario_name, index, params, seed, campaign_seed, profile, telemetry = payload
    discover()
    spec = get_scenario(scenario_name)
    run = ScenarioRun(
        scenario=scenario_name,
        index=index,
        params=params,
        seed=seed,
        campaign_seed=campaign_seed,
    )
    perf: dict | None = None
    stream: list[dict] | None = None

    def execute() -> list[dict]:
        if not telemetry:
            return spec.run(run)
        # An ambient bus + recorder: any replay engine the scenario builds
        # picks the bus up without the scenario knowing about telemetry.
        from repro.telemetry.bus import RecordingSubscriber, TelemetryBus, capture
        from repro.telemetry.sink import records_to_objs

        bus = TelemetryBus()
        recorder = RecordingSubscriber(bus)
        with capture(bus):
            out = spec.run(run)
        nonlocal stream
        stream = records_to_objs(recorder.records)
        return out

    if profile:
        from repro.perf.counters import collect

        with collect() as collector:
            rows = execute()
        perf = collector.counters().as_dict()
        labelled = collector.labelled()
        if labelled:
            # Sharded trace replays register one labelled carrier per
            # shard; surface them so --profile can print the breakdown.
            perf["per_shard"] = {
                label: counters.as_dict() for label, counters in labelled.items()
            }
    else:
        rows = execute()
    _check_rows(scenario_name, rows)
    return RunRecord(
        scenario=scenario_name,
        index=index,
        params=dict(params),
        seed=seed,
        rows=rows,
        perf=perf,
        telemetry=stream,
    )


def parse_filters(pairs: Sequence[str]) -> dict[str, str]:
    """Parse repeated ``key=value`` CLI tokens into a filter mapping."""
    filters: dict[str, str] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ConfigError(f"--filter expects key=value, got {pair!r}")
        filters[key] = value
    return filters


def _value_matches(value: object, want: str) -> bool:
    """Compare one grid value against a CLI filter token.

    The token arrives as a string; coerce it to the axis value's own type
    so ``--filter tenants=4`` matches the int ``4``, ``--filter rate=2.0``
    matches the float ``2.0`` (and ``rate=2`` does too), and
    ``--filter chaos=true`` matches the bool ``True`` — instead of the
    old string comparison, which silently matched nothing whenever the
    repr differed from the user's spelling.
    """
    if isinstance(value, bool):
        return want.strip().lower() in (
            ("true", "1", "yes", "on") if value else ("false", "0", "no", "off")
        )
    if isinstance(value, (int, float)):
        try:
            return float(value) == float(want)
        except ValueError:
            return False
    return str(value) == want


def _matches(params: dict, filters: dict[str, str]) -> bool:
    """A run matches when every filter key is a grid axis of the run and
    its value (type-coerced) equals the filter value."""
    for key, want in filters.items():
        if key not in params or not _value_matches(params[key], want):
            return False
    return True


def _check_rows(name: str, rows: list[dict]) -> None:
    if not isinstance(rows, list) or not all(isinstance(r, dict) for r in rows):
        raise ConfigError(f"scenario {name!r} must return a list of row dicts")
    try:
        json.dumps(rows)
    except TypeError as exc:
        raise ConfigError(f"scenario {name!r} returned non-JSON rows: {exc}") from exc


def default_render(spec: ScenarioSpec, rows: list[dict]) -> str:
    """Fallback report: one table over the union of row keys."""
    if not rows:
        return f"{spec.name}: no rows"
    headers: list[str] = []
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)
    return render_table(headers, [[row.get(h, "") for h in headers] for row in rows])


class CampaignRunner:
    """Expand → execute (maybe in parallel) → render → persist."""

    def __init__(
        self,
        jobs: int = 1,
        seed: int = 0,
        out_dir: str | None = None,
        filters: dict[str, str] | None = None,
        profile: bool = False,
        telemetry_path: str | None = None,
    ) -> None:
        """``filters`` selects a grid subset (``{"system": "LIFL"}`` keeps
        only runs whose expanded params match every pair; per-run seeds are
        derived from the *unfiltered* expansion, so a filtered run equals
        the same run in a full campaign).  ``profile`` attaches engine
        counters to each :class:`RunRecord`.  ``telemetry_path`` records
        every run's telemetry stream and writes one schema-versioned JSONL
        file after the campaign — runs execute with an ambient
        :class:`~repro.telemetry.bus.TelemetryBus` and ship their records
        home, so the file is ordered (scenario order, then run index)
        regardless of ``jobs``."""
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.seed = seed
        self.out_dir = out_dir
        self.filters = dict(filters) if filters else {}
        self.profile = profile
        self.telemetry_path = telemetry_path

    # ---------------------------------------------------------------- expand
    def expand(self, specs: Sequence[ScenarioSpec]) -> list[ScenarioRun]:
        """The campaign's full run list, in scenario declaration order."""
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate scenarios in campaign: {names}")
        runs: list[ScenarioRun] = []
        for spec in specs:
            expanded = spec.expand(self.seed)
            if self.filters:
                expanded = [r for r in expanded if _matches(dict(r.params), self.filters)]
            runs.extend(expanded)
        return runs

    # --------------------------------------------------------------- execute
    def run(self, specs: Sequence[ScenarioSpec]) -> CampaignResult:
        runs = self.expand(specs)
        payloads = [
            (
                r.scenario,
                r.index,
                dict(r.params),
                r.seed,
                r.campaign_seed,
                self.profile,
                self.telemetry_path is not None,
            )
            for r in runs
        ]
        if self.jobs > 1 and len(payloads) > 1:
            records = self._run_parallel(payloads)
        else:
            records = [_execute_payload(p) for p in payloads]
        by_scenario: dict[str, list[RunRecord]] = {}
        for rec in records:
            by_scenario.setdefault(rec.scenario, []).append(rec)
        result = CampaignResult(seed=self.seed, jobs=self.jobs)
        for spec in specs:
            recs = sorted(by_scenario.get(spec.name, []), key=lambda r: r.index)
            rows = [row for rec in recs for row in rec.rows]
            # Custom renders assume the full grid: on a filtered campaign a
            # failing render falls back to the generic table; on a full
            # campaign a render bug must surface, not be swallowed.
            if spec.render and rows:
                if self.filters:
                    try:
                        text = spec.render(rows)
                    except Exception:
                        text = default_render(spec, rows)
                else:
                    text = spec.render(rows)
            else:
                text = default_render(spec, rows)
            result.reports.append(ScenarioReport(spec=spec, records=recs, text=text))
        if self.out_dir:
            self.write_json(result)
        if self.telemetry_path:
            self.write_telemetry(result)
        return result

    def _run_parallel(self, payloads: list[tuple]) -> list[RunRecord]:
        # fork keeps the already-populated registry; spawned workers
        # re-discover it inside _execute_payload.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        with ctx.Pool(processes=min(self.jobs, len(payloads))) as pool:
            return pool.map(_execute_payload, payloads)

    # --------------------------------------------------------------- outputs
    def write_json(self, result: CampaignResult) -> list[str]:
        """One ``<scenario>.json`` per scenario: spec metadata + run rows."""
        assert self.out_dir is not None
        os.makedirs(self.out_dir, exist_ok=True)
        paths = []
        for rep in result.reports:
            doc = {
                "scenario": rep.spec.name,
                "title": rep.spec.title,
                "workload": rep.spec.workload,
                "metrics": list(rep.spec.metrics),
                "campaign_seed": result.seed,
                "runs": [
                    {
                        "index": rec.index,
                        "params": rec.params,
                        "seed": rec.seed,
                        "rows": rec.rows,
                    }
                    for rec in rep.records
                ],
            }
            path = os.path.join(self.out_dir, f"{rep.spec.name}.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            paths.append(path)
        return paths

    def write_telemetry(self, result: CampaignResult) -> str:
        """One JSONL stream for the whole campaign: the schema-versioned
        header, then per run a ``run-start`` context line followed by the
        run's records — scenario order, run-index order, always."""
        assert self.telemetry_path is not None
        from repro.telemetry.sink import JsonlSink

        parent = os.path.dirname(self.telemetry_path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.telemetry_path, "w", encoding="utf-8") as fh:
            sink = JsonlSink(
                fh,
                flush_every=256,
                campaign_seed=result.seed,
                scenarios=[rep.spec.name for rep in result.reports],
            )
            for rep in result.reports:
                for rec in rep.records:
                    sink.context(
                        "run-start",
                        scenario=rec.scenario,
                        index=rec.index,
                        params=rec.params,
                        seed=rec.seed,
                    )
                    for obj in rec.telemetry or []:
                        sink.write_obj(obj)
            fh.flush()
        return self.telemetry_path


def run_scenario(name: str, jobs: int = 1, seed: int = 0) -> ScenarioReport:
    """Convenience: run one scenario through the campaign path and return
    its report (the per-module ``main()`` entry points use this)."""
    spec = get_scenario(name)
    campaign = CampaignRunner(jobs=jobs, seed=seed).run([spec])
    return campaign.report_for(name)
