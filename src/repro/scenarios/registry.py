"""Scenario specs and the decorator-based registry.

A *scenario* is one named, reproducible experiment: a run function plus a
parameter grid.  The grid is expanded into individual :class:`RunSpec`\\ s
(the cartesian product of the axes, in declaration order); each run is an
independent, picklable unit of work the campaign runner can execute in a
worker process.  Run functions return JSON-serializable *rows* (lists of
flat dicts); a scenario-level ``render`` callable turns the concatenated
rows back into the report text (tables, ratio lines) the paper-figure
modules have always printed — so sequential and parallel campaigns produce
byte-identical reports.

Registering a scenario::

    @scenario(
        name="fig04",
        title="hierarchy x data plane, one node",
        grid={"setting": ("NH (kernel)", "WH (kernel)", "WH (LIFL)")},
        render=_render,
        workload="8 trainers, ResNet-152",
        metrics=("round_seconds",),
    )
    def fig04(run: ScenarioRun) -> list[dict]:
        ...
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng

#: a run function: receives one expanded grid point, returns JSON rows
RunFn = Callable[["ScenarioRun"], list[dict]]
#: renders the concatenated rows of all runs into the scenario's report
RenderFn = Callable[[list[dict]], str]


@dataclass(frozen=True)
class ScenarioRun:
    """One expanded grid point, handed to the scenario's run function."""

    scenario: str
    index: int
    params: Mapping[str, Any]
    #: deterministic per-run seed derived from (campaign seed, scenario,
    #: index).  Paper-figure scenarios pin their own calibrated seeds and
    #: ignore this; exploratory scenarios should draw all randomness from
    #: it (via :meth:`rng`) so campaigns are reproducible end to end.
    seed: int
    #: the campaign-level seed, for scenarios that must share one workload
    #: across several grid points (e.g. comparing systems on one trace)
    campaign_seed: int = 0

    def rng(self, stream: str = "") -> np.random.Generator:
        return make_rng(self.seed, stream or self.scenario)


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario: metadata + run/render callables."""

    name: str
    title: str
    run: RunFn
    #: ordered parameter grid; expanded as a cartesian product
    grid: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    render: RenderFn | None = None
    #: human description of the workload the scenario drives
    workload: str = ""
    #: the metric columns the scenario's rows report
    metrics: tuple[str, ...] = ()
    #: True when the scenario reproduces a paper figure/table
    paper: bool = True
    description: str = ""
    #: subsystem tags (``paper``, ``traces``, ``chaos``, ``perf``, …) —
    #: ``--list`` groups the catalogue by these and ``--filter tag=X``
    #: selects scenarios by subsystem
    tags: tuple[str, ...] = ()

    def expand(self, campaign_seed: int = 0) -> list[ScenarioRun]:
        """The scenario's run list: one :class:`ScenarioRun` per grid point
        (a single parameterless run when the grid is empty)."""
        axes = [(key, tuple(values)) for key, values in self.grid]
        for key, values in axes:
            if not values:
                raise ConfigError(f"scenario {self.name!r}: empty grid axis {key!r}")
        combos: Iterable[tuple[Any, ...]] = itertools.product(*(v for _, v in axes)) if axes else [()]
        runs = []
        for index, combo in enumerate(combos):
            params = {key: value for (key, _), value in zip(axes, combo)}
            runs.append(
                ScenarioRun(
                    scenario=self.name,
                    index=index,
                    params=params,
                    seed=derive_seed(campaign_seed, self.name, index),
                    campaign_seed=campaign_seed,
                )
            )
        return runs


def derive_seed(campaign_seed: int, scenario: str, index: int) -> int:
    """Deterministic per-run seed, stable across processes and job counts."""
    return int(make_rng(campaign_seed, f"run:{scenario}:{index}").integers(0, 2**31 - 1))


_REGISTRY: dict[str, ScenarioSpec] = {}


def scenario(
    name: str,
    title: str,
    grid: Mapping[str, Sequence[Any]] | None = None,
    render: RenderFn | None = None,
    workload: str = "",
    metrics: Sequence[str] = (),
    paper: bool = True,
    tags: Sequence[str] = (),
) -> Callable[[RunFn], RunFn]:
    """Decorator: register ``fn`` as scenario ``name``.

    The decorated function stays usable directly (tests call it with a
    hand-built :class:`ScenarioRun`); registration only adds it to the
    campaign catalogue.  ``tags`` name the subsystems the scenario
    exercises (``--filter tag=chaos`` selects by them).
    """

    def deco(fn: RunFn) -> RunFn:
        if name in _REGISTRY:
            # ``python -m repro.experiments.figXX`` imports the package
            # (which registers the scenario) and then re-executes the same
            # module as __main__; that re-registration is benign.  Two
            # different modules claiming one name is a real error.
            if fn.__module__ != "__main__":
                raise ConfigError(f"scenario {name!r} already registered")
        _REGISTRY[name] = ScenarioSpec(
            name=name,
            title=title,
            run=fn,
            grid=tuple((k, tuple(v)) for k, v in (grid or {}).items()),
            render=render,
            workload=workload,
            metrics=tuple(metrics),
            paper=paper,
            description=(fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else "",
            tags=tuple(tags),
        )
        return fn

    return deco


def get_scenario(name: str) -> ScenarioSpec:
    discover()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; have {sorted(_REGISTRY)}"
        ) from None


def all_scenarios() -> list[ScenarioSpec]:
    """Every registered scenario, in registration order."""
    discover()
    return list(_REGISTRY.values())


def match_scenarios(prefixes: Sequence[str] | None) -> list[ScenarioSpec]:
    """Scenarios selected by the CLI's historical prefix match: a spec is
    kept when any wanted token is a prefix of its name or vice versa."""
    specs = all_scenarios()
    if not prefixes:
        return specs
    return [
        s
        for s in specs
        if any(s.name.startswith(w) or w.startswith(s.name) for w in prefixes)
    ]


_DISCOVERED = False


def discover() -> None:
    """Import every module that registers scenarios (idempotent).

    Worker processes call this too, so a spawned interpreter rebuilds the
    same registry the parent expanded runs from.
    """
    global _DISCOVERED
    if _DISCOVERED:
        return
    import repro.experiments  # noqa: F401  (registers all figure scenarios)

    # Only mark discovery complete once the import succeeded; otherwise a
    # transient import failure would leave an empty registry that masks
    # the real error on every later lookup.
    _DISCOVERED = True
