"""Structured timeline events.

The paper's Figs. 4 and 7(c) are Gantt-style timelines of "Network", "Agg."
and "Eval." tasks per aggregator.  :class:`EventLog` is the common sink those
experiments (and the simulator generally) write to, and the plotting/report
code reads from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class TimelineEvent:
    """One horizontal bar in a timeline figure.

    Attributes:
        actor: row label, e.g. ``"Top"``, ``"LF1"``, ``"node3/gw"``.
        kind: task category — the paper uses ``network`` / ``agg`` / ``eval``;
            the control plane also logs ``coldstart`` / ``reuse`` / ``queue``.
        start: event start time (seconds since experiment start).
        end: event end time.
        detail: free-form annotation (model version, peer, object key, ...).
    """

    actor: str
    kind: str
    start: float
    end: float
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"event ends before it starts: {self}")


@dataclass
class EventLog:
    """Append-only collection of :class:`TimelineEvent` with simple queries."""

    events: list[TimelineEvent] = field(default_factory=list)

    def record(self, actor: str, kind: str, start: float, end: float, detail: str = "") -> TimelineEvent:
        ev = TimelineEvent(actor=actor, kind=kind, start=start, end=end, detail=detail)
        self.events.append(ev)
        return ev

    def extend(self, events: Iterable[TimelineEvent]) -> None:
        self.events.extend(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TimelineEvent]:
        return iter(self.events)

    def for_actor(self, actor: str) -> list[TimelineEvent]:
        return [e for e in self.events if e.actor == actor]

    def of_kind(self, kind: str) -> list[TimelineEvent]:
        return [e for e in self.events if e.kind == kind]

    def actors(self) -> list[str]:
        """Row labels in first-appearance order (stable for rendering)."""
        seen: dict[str, None] = {}
        for e in self.events:
            seen.setdefault(e.actor, None)
        return list(seen)

    def span(self) -> tuple[float, float]:
        """(earliest start, latest end); (0.0, 0.0) when empty."""
        if not self.events:
            return (0.0, 0.0)
        return (min(e.start for e in self.events), max(e.end for e in self.events))

    def busy_time(self, actor: str, kind: str | None = None) -> float:
        """Total bar length for an actor, optionally restricted to a kind."""
        return sum(e.duration for e in self.events if e.actor == actor and (kind is None or e.kind == kind))

    def render_ascii(self, width: int = 72) -> str:
        """Render the log as an ASCII Gantt chart (used by example scripts)."""
        lo, hi = self.span()
        if hi <= lo:
            return "(empty timeline)"
        scale = width / (hi - lo)
        glyphs = {"network": "N", "agg": "A", "eval": "E", "coldstart": "C", "queue": "q", "train": "T"}
        lines = []
        for actor in self.actors():
            row = [" "] * width
            for e in self.for_actor(actor):
                a = int((e.start - lo) * scale)
                b = max(a + 1, int((e.end - lo) * scale))
                g = glyphs.get(e.kind, "#")
                for i in range(a, min(b, width)):
                    row[i] = g
            lines.append(f"{actor:>8} |{''.join(row)}|")
        lines.append(f"{'':>8}  {lo:.1f}s{'':>{max(0, width - 12)}}{hi:.1f}s")
        return "\n".join(lines)
