"""Shared utilities: units, errors, RNG management, configuration, event logs.

Everything in :mod:`repro.common` is dependency-free (stdlib + numpy only) and
used by every other subpackage.
"""

from repro.common.errors import (
    CalibrationError,
    CapacityExceededError,
    ConfigError,
    LiflError,
    ObjectStoreError,
    RoutingError,
    SimulationError,
)
from repro.common.eventlog import EventLog, TimelineEvent
from repro.common.rng import RngRegistry, make_rng
from repro.common.units import (
    GB,
    GIGA,
    KB,
    MB,
    MILLIS,
    MINUTES,
    Bytes,
    Seconds,
    fmt_bytes,
    fmt_duration,
)

__all__ = [
    "Bytes",
    "CalibrationError",
    "CapacityExceededError",
    "ConfigError",
    "EventLog",
    "GB",
    "GIGA",
    "KB",
    "LiflError",
    "MB",
    "MILLIS",
    "MINUTES",
    "ObjectStoreError",
    "RngRegistry",
    "RoutingError",
    "Seconds",
    "SimulationError",
    "TimelineEvent",
    "fmt_bytes",
    "fmt_duration",
    "make_rng",
]
