"""Exception hierarchy for the LIFL reproduction.

A single root (:class:`LiflError`) lets applications catch everything the
library raises, while the specific subclasses keep error handling precise in
tests and internal call sites.
"""

from __future__ import annotations


class LiflError(Exception):
    """Root of the library's exception hierarchy."""


class ConfigError(LiflError):
    """A configuration value is missing, out of range, or inconsistent."""


class SimulationError(LiflError):
    """The discrete-event engine was misused (e.g. event scheduled in past)."""


class CapacityExceededError(LiflError):
    """A placement or admission decision would exceed a node's capacity."""


class ObjectStoreError(LiflError):
    """Shared-memory object store misuse (unknown key, double free, ...)."""


class RoutingError(LiflError):
    """No route exists for a (source, destination) aggregator pair."""


class CalibrationError(LiflError):
    """Calibration constants are inconsistent with the model they describe."""


class ChaosError(LiflError):
    """A fault plan is malformed or cannot be applied to this round."""


class RoundAbort(LiflError):
    """A chaos round lost too many clients to meet its quorum (§3).

    Raised out of the round engine when the recovery controller determines
    that the surviving clients can no longer cover the quorum — the typed
    alternative to a hung round.
    """

    def __init__(self, survivors: int, quorum: int, total: int) -> None:
        super().__init__(
            f"round aborted: {survivors}/{total} clients survive, quorum is {quorum}"
        )
        self.survivors = survivors
        self.quorum = quorum
        self.total = total
