"""Unit conventions used throughout the reproduction.

All internal quantities use SI base units:

* time — seconds (``float``),
* data — bytes (``int`` where exactness matters, ``float`` in cost models),
* CPU work — CPU-seconds (``float``) and cycles (``float``; the paper's
  Fig. 7(b) reports Giga-cycles, converted with :data:`CYCLES_PER_SECOND`).

The constants below let calling code say ``44 * MB`` or ``2 * MINUTES``
instead of sprinkling magic powers of ten.
"""

from __future__ import annotations

# Type aliases used in signatures for readability.  They are plain floats —
# the simulator is numeric code and stays on the fast path.
Seconds = float
Bytes = float
CpuSeconds = float
Cycles = float

KB: float = 1e3
MB: float = 1e6
GB: float = 1e9
GIGA: float = 1e9

MICROS: float = 1e-6
MILLIS: float = 1e-3
SECONDS: float = 1.0
MINUTES: float = 60.0
HOURS: float = 3600.0

#: Clock rate of the paper's testbed CPUs (Intel Cascade Lake @ 2.8 GHz).
#: Used to convert between CPU-seconds and the Giga-cycle axis of Fig. 7(b).
CYCLES_PER_SECOND: float = 2.8e9

#: Paper model sizes (§4.1, §6.1): a single model update's wire size.
RESNET18_BYTES: float = 44 * MB
RESNET34_BYTES: float = 83 * MB
RESNET152_BYTES: float = 232 * MB


def cpu_seconds_to_gcycles(cpu_seconds: CpuSeconds) -> float:
    """Convert CPU-seconds to Giga-cycles at the testbed clock rate."""
    return cpu_seconds * CYCLES_PER_SECOND / GIGA


def gcycles_to_cpu_seconds(gcycles: float) -> CpuSeconds:
    """Convert Giga-cycles (Fig. 7(b) axis) to CPU-seconds."""
    return gcycles * GIGA / CYCLES_PER_SECOND


def fmt_bytes(n: Bytes) -> str:
    """Render a byte count the way the paper does (``~232MB``)."""
    if n >= GB:
        return f"{n / GB:.2f}GB"
    if n >= MB:
        return f"{n / MB:.1f}MB"
    if n >= KB:
        return f"{n / KB:.1f}KB"
    return f"{n:.0f}B"


def fmt_duration(seconds: Seconds) -> str:
    """Render a duration compactly (``1.4h``, ``44.9s``, ``17ms``)."""
    if seconds >= HOURS:
        return f"{seconds / HOURS:.2f}h"
    if seconds >= MINUTES:
        return f"{seconds / MINUTES:.1f}min"
    if seconds >= 1.0:
        return f"{seconds:.1f}s"
    if seconds >= MILLIS:
        return f"{seconds / MILLIS:.1f}ms"
    return f"{seconds / MICROS:.1f}us"
