"""Deterministic random-number management.

Every stochastic component in the reproduction (client availability, training
durations, data partitioning, ...) draws from a named stream derived from a
single experiment seed, so that

* a whole experiment is reproducible from one integer, and
* adding a new consumer of randomness does not perturb existing streams.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int, stream: str = "") -> np.random.Generator:
    """Create an independent generator for ``(seed, stream)``.

    The stream name is folded into the seed sequence so distinct components
    get decorrelated streams even with the same experiment seed.
    """
    spawn_key = tuple(stream.encode("utf-8")) if stream else ()
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(seed, spawn_key=spawn_key)))


class RngRegistry:
    """Factory handing out named, decorrelated RNG streams for one seed.

    Components ask for streams by name (``registry.stream("clients")``); the
    registry memoizes them so repeated lookups share state within a run.
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = make_rng(self._seed, name)
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. per-trial) with a distinct seed."""
        child_seed = int(make_rng(self._seed, f"fork:{name}").integers(0, 2**63 - 1))
        return RngRegistry(child_seed)
