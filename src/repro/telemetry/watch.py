"""Terminal live view over a telemetry JSONL stream.

``python -m repro.telemetry.watch run.jsonl`` renders one summary frame
of the stream as recorded; ``--follow`` tails the file and redraws every
``--interval`` seconds, so a campaign started with ``--telemetry
run.jsonl`` in another terminal can be watched while it runs.

The state machine is deliberately split from the terminal plumbing:
:class:`WatchState` consumes raw JSONL objects (envelope + payload, as
written by :mod:`repro.telemetry.sink`) and :func:`render_frame` turns a
state into one frame string — both pure, both unit-tested without a TTY.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import deque
from dataclasses import dataclass, field

from repro.telemetry.sink import _iter_lines

#: eight-step unicode ramp for the per-tenant latency sparklines
_SPARKS = "▁▂▃▄▅▆▇█"

#: clear screen + home — the ``--follow`` redraw prefix
ANSI_CLEAR = "\x1b[2J\x1b[H"


def sparkline(values: list[float], width: int = 24) -> str:
    """The last ``width`` values as a unicode sparkline (empty input →
    empty string).  Scaled to the window's own max, so shape survives
    any unit."""
    tail = values[-width:]
    if not tail:
        return ""
    top = max(tail)
    if top <= 0:
        return _SPARKS[0] * len(tail)
    return "".join(_SPARKS[min(7, int(v / top * 7.999))] for v in tail)


@dataclass
class TenantView:
    """What the frame shows per tenant."""

    depth: int = 0
    deferred: int = 0
    inflight: int = 0
    limit: int = 0
    settled: int = 0
    attained: int = 0
    latencies: deque = field(default_factory=lambda: deque(maxlen=64))


@dataclass
class RegionView:
    """Per-region rollup (geo streams only: records carrying a region)."""

    records: int = 0
    settled: int = 0
    attained: int = 0
    wan_flows: int = 0
    wan_bytes: float = 0.0
    draining: str = ""  # fallback region while a failover drain is open


class WatchState:
    """Accumulates a telemetry stream into the live view's model.

    Feed it raw JSONL objects in file order; every counter is a pure
    function of the records seen so far, so a frame rendered mid-file
    equals a frame of a truncated file.
    """

    def __init__(self, burn_window_s: float = 120.0) -> None:
        self.burn_window_s = burn_window_s
        self.schema_version: int | None = None
        self.header: dict = {}
        self.run_label = ""
        self.now = 0.0
        self.records = 0
        self.tenants: dict[int, TenantView] = {}
        self.settled = 0
        self.attained = 0
        self.aborted = 0
        self.rejected = 0
        self.shed = 0
        self.deferred = 0
        #: (at, attained) outcomes inside the sliding burn window
        self._burn: deque = deque()
        self.last_tick: dict | None = None
        self.actions: deque = deque(maxlen=6)
        self.recent_faults: deque = deque(maxlen=6)
        #: chaos windows currently open: partition target -> opened at
        self.open_partitions: dict[str, float] = {}
        #: degraded nodes: node -> factor (slow-node / nic-rescale != 1.0)
        self.degraded: dict[str, float] = {}
        self.perf: dict | None = None
        #: region -> rollup; empty for single-cell (region-less) streams
        self.regions: dict[str, RegionView] = {}
        self.failovers: deque = deque(maxlen=6)

    # ------------------------------------------------------------- feed
    def feed(self, obj: dict) -> None:
        kind = obj.get("kind")
        if kind == "stream-header":
            self.schema_version = obj.get("schema_version")
            self.header = {
                k: v for k, v in obj.items() if k not in ("v", "kind", "schema_version")
            }
            return
        if kind == "run-start":
            params = obj.get("params") or {}
            grid = ",".join(f"{k}={v}" for k, v in params.items())
            self.run_label = f"{obj.get('scenario')}[{obj.get('index')}] {grid}".strip()
            return
        self.records += 1
        at = float(obj.get("at", 0.0))
        self.now = max(self.now, at)
        tenant = int(obj.get("tenant", -1))
        region = str(obj.get("region", ""))
        if region:
            rview = self.regions.setdefault(region, RegionView())
            rview.records += 1
            if kind == "round-settled":
                rview.settled += 1
                rview.attained += bool(obj.get("attained"))
        if kind == "queue-sample":
            view = self.tenants.setdefault(tenant, TenantView())
            view.depth = int(obj.get("depth", 0))
            view.deferred = int(obj.get("deferred", 0))
            view.inflight = int(obj.get("inflight", 0))
            view.limit = int(obj.get("limit", 0))
        elif kind == "round-settled":
            view = self.tenants.setdefault(tenant, TenantView())
            view.settled += 1
            view.latencies.append(float(obj.get("latency", 0.0)))
            self.settled += 1
            hit = bool(obj.get("attained"))
            view.attained += hit
            self.attained += hit
            self._burn.append((at, hit))
            self._trim_burn(at)
        elif kind == "round-aborted":
            self.aborted += 1
            self._burn.append((at, False))
            self._trim_burn(at)
        elif kind == "round-rejected":
            self.rejected += 1
        elif kind == "round-shed":
            self.shed += 1
        elif kind == "round-deferred":
            self.deferred += 1
        elif kind == "controller-tick":
            self.last_tick = obj
        elif kind == "control-action":
            self.actions.append(obj)
        elif kind == "chaos-fault":
            self._feed_fault(obj, at)
        elif kind == "region-failover":
            self.failovers.append(obj)
            if region:
                view = self.regions.setdefault(region, RegionView())
                view.draining = (
                    str(obj.get("fallback", "")) if obj.get("phase") == "drain" else ""
                )
        elif kind == "wan-sample":
            if region:
                view = self.regions.setdefault(region, RegionView())
                view.wan_flows += 1
                view.wan_bytes += float(obj.get("nbytes", 0.0))
        elif kind == "perf-snapshot":
            self.perf = obj

    def _feed_fault(self, obj: dict, at: float) -> None:
        fault = obj.get("fault", "")
        target = str(obj.get("target", ""))
        value = float(obj.get("value", 0.0))
        self.recent_faults.append(obj)
        if fault == "partition":
            self.open_partitions[target] = at
        elif fault == "heal":
            # a heal names the nodes it rejoins; close any partition
            # window whose node set it covers
            healed = set(target.split(","))
            for key in [
                k for k in self.open_partitions if set(k.split(",")) <= healed
            ]:
                del self.open_partitions[key]
        elif fault in ("slow-node", "nic-rescale"):
            if value == 1.0:
                self.degraded.pop(target, None)
            else:
                self.degraded[target] = value

    def _trim_burn(self, now: float) -> None:
        floor = now - self.burn_window_s
        while self._burn and self._burn[0][0] < floor:
            self._burn.popleft()

    # ------------------------------------------------------------ derive
    @property
    def burn(self) -> float:
        """Fraction of window-recent round outcomes that missed the SLO."""
        if not self._burn:
            return 0.0
        misses = sum(1 for _, hit in self._burn if not hit)
        return misses / len(self._burn)


def render_frame(state: WatchState) -> str:
    """One frame of the live view, as a plain string (no ANSI inside —
    the follow loop owns the screen)."""
    lines = []
    seed = state.header.get("campaign_seed")
    head = f"telemetry watch — schema v{state.schema_version}"
    if seed is not None:
        head += f" — campaign seed {seed}"
    lines.append(head)
    if state.run_label:
        lines.append(f"run: {state.run_label}")
    pct = state.attained / state.settled if state.settled else 0.0
    lines.append(
        f"now {state.now:8.1f}s virtual   {state.records} records   "
        f"rounds: {state.settled} settled / {state.aborted} aborted / "
        f"{state.rejected} rejected / {state.shed} shed / {state.deferred} deferred"
    )
    lines.append(
        f"slo: {pct:.1%} attained ({state.attained}/{state.settled})   "
        f"burn {state.burn:.3f} over last {state.burn_window_s:.0f}s"
    )
    if state.tenants:
        lines.append("")
        lines.append("tenant  depth  defer  inflight  attained          latency")
        for tenant in sorted(state.tenants):
            view = state.tenants[tenant]
            share = view.attained / view.settled if view.settled else 0.0
            inflight = f"{view.inflight}/{view.limit}" if view.limit else str(view.inflight)
            lines.append(
                f"  t{tenant:<4} {view.depth:>5} {view.deferred:>6}  {inflight:>8}  "
                f"{view.attained:>4}/{view.settled:<4} {share:>6.1%}  "
                f"{sparkline(list(view.latencies))}"
            )
    if state.regions:
        lines.append("")
        lines.append("region  records  settled  attained  wan out         status")
        for name in sorted(state.regions):
            view = state.regions[name]
            share = view.attained / view.settled if view.settled else 0.0
            wan = (
                f"{view.wan_flows} fl/{view.wan_bytes / 1e6:.0f}MB"
                if view.wan_flows
                else "-"
            )
            status = f"draining→{view.draining}" if view.draining else "serving"
            lines.append(
                f"  {name:<6} {view.records:>7} {view.settled:>8}  {share:>7.1%}  "
                f"{wan:<14}  {status}"
            )
        for ev in state.failovers:
            lines.append(
                f"  {ev.get('at', 0.0):8.1f}s  {ev.get('phase')} region "
                f"{ev.get('region')} fallback={ev.get('fallback')} "
                f"tenants={ev.get('tenants')}"
            )
    if state.last_tick is not None:
        tick = state.last_tick
        lines.append("")
        lines.append(
            f"controller: pool {tick.get('pool')}  spinning {tick.get('spinning')}  "
            f"limits {tick.get('limits')}  burn {tick.get('burn'):.3f}"
        )
        for act in state.actions:
            lines.append(
                f"  {act.get('at', 0.0):8.1f}s  {act.get('action')} "
                f"{act.get('target')} delta={act.get('delta')} ({act.get('reason')})"
            )
    if state.recent_faults or state.open_partitions or state.degraded:
        lines.append("")
        open_parts = ", ".join(sorted(state.open_partitions)) or "none"
        slow = (
            ", ".join(f"{n}×{f:g}" for n, f in sorted(state.degraded.items())) or "none"
        )
        lines.append(f"chaos: open partitions: {open_parts}   degraded: {slow}")
        for fault in state.recent_faults:
            lines.append(
                f"  {fault.get('at', 0.0):8.1f}s  {fault.get('fault')} "
                f"{fault.get('target')} value={fault.get('value'):g}"
            )
    if state.perf is not None:
        perf = state.perf
        lines.append("")
        lines.append(
            f"engine: {perf.get('events_processed')} events, "
            f"{perf.get('heap_pushes')} pushes, "
            f"{perf.get('dead_timer_skips')} dead skips, "
            f"peak queue {perf.get('peak_queue_depth')}"
        )
    return "\n".join(lines) + "\n"


def _follow(path: str, interval: float, burn_window_s: float) -> int:
    """Tail ``path``, redrawing a frame whenever new lines arrive."""
    state = WatchState(burn_window_s=burn_window_s)
    offset = 0
    while True:
        grew = False
        try:
            with open(path, encoding="utf-8") as fh:
                fh.seek(offset)
                for line in fh:
                    if not line.endswith("\n"):
                        break  # partial write; re-read next pass
                    offset += len(line.encode("utf-8"))
                    if line.strip():
                        state.feed(json.loads(line))
                        grew = True
        except FileNotFoundError:
            pass
        if grew:
            sys.stdout.write(ANSI_CLEAR + render_frame(state))
            sys.stdout.flush()
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.watch",
        description="Render a live summary of a telemetry JSONL stream.",
    )
    parser.add_argument("path", metavar="FILE", help="telemetry JSONL stream")
    parser.add_argument(
        "--follow", action="store_true", help="tail the file and redraw (ctrl-c stops)"
    )
    parser.add_argument(
        "--interval", type=float, default=0.5, metavar="S", help="redraw period (default 0.5s)"
    )
    parser.add_argument(
        "--window",
        type=float,
        default=120.0,
        metavar="S",
        help="burn-rate sliding window in virtual seconds (default 120)",
    )
    args = parser.parse_args(argv[1:])
    if args.follow:
        return _follow(args.path, args.interval, args.window)
    state = WatchState(burn_window_s=args.window)
    for _, obj in _iter_lines(args.path):
        state.feed(obj)
    sys.stdout.write(render_frame(state))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
