"""The telemetry bus: typed, timestamped records, zero-cost when unused.

A :class:`TelemetryRecord` is one observation at one instant of virtual
time — a round changing state, an SLO outcome, a queue-depth sample, a
controller action, a chaos fault firing, a per-shard perf snapshot.  The
catalogue of record kinds (and the field names each may carry) lives in
:data:`RECORD_KINDS`; the stream format is versioned by
:data:`SCHEMA_VERSION` and serialized by :mod:`repro.telemetry.sink`.

Emitters follow one discipline, mirrored from :mod:`repro.perf.counters`:

* every emission site is guarded by ``if tel is not None`` on a local the
  emitter resolved once at construction;
* a bus **without subscribers resolves to None** (see
  :meth:`TelemetryBus.or_none`), so handing a dormant bus around costs
  nothing per event;
* with no bus at all (the default everywhere) nothing is allocated — the
  golden determinism suite pins the figure experiments byte-identical
  with this module imported but unsubscribed.

``capture(bus)`` installs an *ambient* bus for a code block, the way the
perf collector does: code that builds a
:class:`~repro.traces.replay.TraceReplayEngine` inside the block — e.g. a
registered scenario run by the campaign CLI's ``--telemetry`` flag — picks
the bus up without any parameter plumbing.  An explicitly passed
``telemetry=`` always wins over the ambient bus.

Determinism: records never feed back into the simulation (no RNG draws,
no event-queue traffic), so a subscribed replay produces the same bytes
as an unsubscribed one — plus the stream.  The stream itself is
deterministic: record order is emission order, and
:func:`merge_streams` folds per-shard streams into arrival order with
fixed tie-breaks.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

from repro.common.errors import ConfigError

if TYPE_CHECKING:
    from repro.traces.slo import SloTracker

__all__ = [
    "RECORD_KINDS",
    "SCHEMA_VERSION",
    "RecordingSubscriber",
    "TelemetryBus",
    "TelemetryRecord",
    "ambient_bus",
    "capture",
    "merge_streams",
    "slo_from_records",
]

#: version of the record schema written by :mod:`repro.telemetry.sink`;
#: bump when a kind's fields change incompatibly
SCHEMA_VERSION = 1

#: every record kind an emitter may produce -> the field names it may
#: carry (beyond the envelope: ``at``, ``kind``, ``tenant``, ``round``,
#: ``shard``).  The sink's validator enforces this catalogue.
RECORD_KINDS: dict[str, tuple[str, ...]] = {
    # one per replay: the workload/config envelope a reader needs to
    # reconstruct SLO accounting from the stream alone
    "replay-start": ("tenants", "horizon", "slo_target_s", "events", "controller"),
    # one per replay: the final outcome tally, for cross-checking readers
    "replay-end": ("rounds", "completed", "aborted", "rejected", "shed", "deferred"),
    # round lifecycle (tenant/round set on all of these)
    "round-admitted": ("queued_s",),
    "round-installed": ("updates",),
    "round-settled": ("queue_wait", "service", "latency", "attained", "deferred"),
    "round-aborted": ("queue_wait",),
    "round-rejected": ("reason",),
    "round-deferred": ("deadline",),
    "round-shed": ("reason",),
    # queue-depth sample for the arriving tenant, after its admission
    # decision (bounded: one per trace arrival)
    "queue-sample": ("depth", "deferred", "inflight", "limit"),
    # control plane
    "controller-tick": ("burn", "pool", "spinning", "limits"),
    "control-action": ("action", "target", "delta", "reason"),
    # chaos fault windows and round-scoped faults
    "chaos-fault": ("fault", "target", "value"),
    # geo federation (:mod:`repro.geo`): a region draining its tenants to
    # its fallback (phase "drain") and taking them back (phase "heal")
    "region-failover": ("fallback", "phase", "tenants"),
    # one cross-region WAN shipment: a round's aggregated update crossing
    # the src->dst boundary (weight rides along for exact accounting)
    "wan-sample": ("src", "dst", "nbytes", "weight", "latency_s", "transfer_s"),
    # engine counter snapshot at replay end (one per serving cell/shard)
    "perf-snapshot": (
        "events_processed",
        "heap_pushes",
        "heap_pops",
        "dead_timer_skips",
        "timers_cancelled",
        "immediate_reuses",
        "peak_queue_depth",
    ),
}


@dataclass(frozen=True)
class TelemetryRecord:
    """One typed observation at one instant of virtual time.

    ``tenant``/``round_id`` are -1 when the record is not round-scoped;
    ``shard`` is -1 until a sharded merge stamps the originating shard;
    ``region`` is "" until a geo merge stamps the originating region
    (:mod:`repro.geo`).  ``fields`` holds the kind-specific payload as a
    sorted tuple of ``(name, value)`` pairs — hashable, picklable, and
    JSON-ready.
    """

    at: float
    kind: str
    tenant: int = -1
    round_id: int = -1
    shard: int = -1
    region: str = ""
    fields: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in RECORD_KINDS:
            raise ConfigError(
                f"unknown telemetry record kind {self.kind!r}; "
                f"have {sorted(RECORD_KINDS)}"
            )
        allowed = RECORD_KINDS[self.kind]
        unknown = [name for name, _ in self.fields if name not in allowed]
        if unknown:
            raise ConfigError(
                f"telemetry record {self.kind!r} carries unknown fields "
                f"{unknown}; allowed: {list(allowed)}"
            )

    @property
    def data(self) -> dict[str, Any]:
        """The kind-specific payload as a dict."""
        return dict(self.fields)

    def get(self, name: str, default: Any = None) -> Any:
        for key, value in self.fields:
            if key == name:
                return value
        return default


class TelemetryBus:
    """Dispatches records to subscribers; inert without any.

    Subscribers are plain callables taking one :class:`TelemetryRecord`.
    Subscribe *before* handing the bus to an emitter: emitters resolve
    :meth:`or_none` once at construction, so a bus that is empty at that
    point stays invisible for the whole run (that is the zero-overhead
    guarantee, not a limitation).
    """

    __slots__ = ("_subscribers",)

    def __init__(self) -> None:
        self._subscribers: list[Callable[[TelemetryRecord], None]] = []

    def subscribe(self, fn: Callable[[TelemetryRecord], None]) -> Callable[[], None]:
        """Add a subscriber; returns a zero-argument unsubscribe."""
        self._subscribers.append(fn)

        def unsubscribe() -> None:
            if fn in self._subscribers:
                self._subscribers.remove(fn)

        return unsubscribe

    @property
    def active(self) -> bool:
        return bool(self._subscribers)

    def or_none(self) -> "TelemetryBus | None":
        """This bus, or None when nothing is listening — emitters hold the
        result so an unsubscribed bus costs one check at construction and
        nothing afterwards."""
        return self if self._subscribers else None

    def emit(
        self,
        kind: str,
        at: float,
        tenant: int = -1,
        round_id: int = -1,
        **fields: Any,
    ) -> None:
        """Build one record and hand it to every subscriber, in order."""
        self.publish(
            TelemetryRecord(
                at=at,
                kind=kind,
                tenant=tenant,
                round_id=round_id,
                fields=tuple(sorted(fields.items())),
            )
        )

    def publish(self, record: TelemetryRecord) -> None:
        """Hand an already-built record to every subscriber — the sharded
        merge uses this to forward shard-stamped records unchanged."""
        for fn in self._subscribers:
            fn(record)


class RecordingSubscriber:
    """Collects a stream into a list (shard workers and tests use this)."""

    __slots__ = ("records",)

    def __init__(self, bus: TelemetryBus | None = None) -> None:
        self.records: list[TelemetryRecord] = []
        if bus is not None:
            bus.subscribe(self)

    def __call__(self, record: TelemetryRecord) -> None:
        self.records.append(record)


# ------------------------------------------------------------- ambient bus
_AMBIENT: list[TelemetryBus] = []


def ambient_bus() -> TelemetryBus | None:
    """The innermost bus installed by :func:`capture`, or None."""
    return _AMBIENT[-1] if _AMBIENT else None


@contextmanager
def capture(bus: TelemetryBus) -> Iterator[TelemetryBus]:
    """Install ``bus`` as the ambient bus for the block — replay engines
    constructed inside pick it up without parameter plumbing (an explicit
    ``telemetry=`` argument still wins)."""
    _AMBIENT.append(bus)
    try:
        yield bus
    finally:
        _AMBIENT.remove(bus)


# ----------------------------------------------------------------- streams
def merge_streams(
    streams: Sequence[Sequence[TelemetryRecord]],
    regions: Sequence[str] | None = None,
) -> list[TelemetryRecord]:
    """Fold per-shard (or per-region) streams into one, ordered by
    virtual time.

    Each input stream is already in its cell's emission order; the merge
    stamps records with their stream index (the ``shard`` field) — and,
    when ``regions`` names the streams, the originating region — then
    sorts by ``(at, region, shard)``.  Simultaneous records therefore
    keep region order, then shard order, then per-stream emission order
    (the sort is stable), and the merged stream is a deterministic
    function of the inputs.  The explicit ``(region, shard)`` tie-break
    matters for geo merges: a bare stable sort on ``at`` would leave
    simultaneous records ordered by whichever stream the caller happened
    to list first, which stream-index stamping alone cannot disambiguate
    once regions nest shard-merged streams.
    """
    if regions is not None and len(regions) != len(streams):
        raise ConfigError(
            f"merge_streams got {len(streams)} streams but {len(regions)} "
            "region names"
        )
    merged: list[TelemetryRecord] = []
    for shard_id, stream in enumerate(streams):
        if regions is None:
            merged.extend(replace(rec, shard=shard_id) for rec in stream)
        else:
            region = regions[shard_id]
            merged.extend(
                replace(rec, shard=shard_id, region=region) for rec in stream
            )
    merged.sort(key=lambda rec: (rec.at, rec.region, rec.shard))
    return merged


def slo_from_records(records: Iterable[TelemetryRecord]) -> "SloTracker":
    """Rebuild a :class:`~repro.traces.slo.SloTracker` from a stream.

    Replays every round outcome (settled / aborted / rejected / shed)
    into a fresh tracker configured from the stream's ``replay-start``
    record(s) — the property test pins the result ``report()``-identical
    to the tracker the engine itself kept, including for merged sharded
    streams (digest addition is commutative, so record order is
    irrelevant to the totals).
    """
    from repro.traces.slo import SloTracker

    tracker: SloTracker | None = None
    controller = False
    pending: list[TelemetryRecord] = []

    def apply(tr: SloTracker, rec: TelemetryRecord) -> None:
        if rec.kind == "round-settled":
            tr.observe(
                rec.get("queue_wait"),
                rec.get("service"),
                deferred=bool(rec.get("deferred")),
                at=rec.at,
            )
        elif rec.kind == "round-aborted":
            tr.abort(at=rec.at)
        elif rec.kind == "round-rejected":
            tr.reject(at=rec.at)
        elif rec.kind == "round-shed":
            tr.shed(at=rec.at)

    for rec in records:
        if rec.kind == "replay-start":
            controller = controller or bool(rec.get("controller"))
            if tracker is None:
                tracker = SloTracker(rec.get("slo_target_s"))
                for queued in pending:
                    apply(tracker, queued)
                pending.clear()
            tracker.controller = controller
        elif tracker is None:
            pending.append(rec)
        else:
            tracker.controller = controller
            apply(tracker, rec)
    if tracker is None:
        raise ConfigError(
            "stream carries no replay-start record; cannot rebuild SLO "
            "accounting without the target"
        )
    tracker.controller = controller
    return tracker
