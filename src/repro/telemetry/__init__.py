"""Streaming telemetry: typed event records emitted while a replay runs.

Every subsystem built since the engine rework reports post-hoc — the SLO
tracker, the controller report, the chaos report, and the perf counters
all publish one flat row *after* a campaign cell exits.  This package is
the live counterpart: a :class:`~repro.telemetry.bus.TelemetryBus` that
the serving loop (:mod:`repro.traces.replay`), the sharded replay
(:mod:`repro.traces.shard`), the reactive controller
(:mod:`repro.controlplane.reactive`), and the fault injector
(:mod:`repro.chaos.injector`) emit timestamped records into as events
happen, plus the layers on top of the stream:

* :mod:`repro.telemetry.sink` — the schema-versioned JSONL record format
  (``--telemetry out.jsonl`` on the campaign CLI) and its validator;
* :mod:`repro.telemetry.watch` — ``python -m repro.telemetry.watch``, a
  terminal live view of queue depths, attainment, burn rate, and active
  chaos windows over a live or finished stream;
* :mod:`repro.telemetry.html` — the campaign HTML report builder behind
  ``python -m repro.traces.report --html``.

The bus follows the repo's zero-overhead-when-unused discipline: with no
bus installed (the default) no emission site allocates anything, and a bus
without subscribers is dropped at replay construction — the golden
determinism suite pins all eight figure experiments byte-identical with
this package imported but unsubscribed.  Emission never touches the
simulation: records are synchronous appends derived from state the replay
already computes, so a subscribed replay is byte-identical to an
unsubscribed one in everything except the stream it writes.
"""

from repro.telemetry.bus import (
    RECORD_KINDS,
    SCHEMA_VERSION,
    RecordingSubscriber,
    TelemetryBus,
    TelemetryRecord,
    ambient_bus,
    capture,
    merge_streams,
    slo_from_records,
)
from repro.telemetry.sink import (
    JsonlSink,
    read_jsonl,
    record_from_obj,
    record_to_obj,
    validate_stream,
)

__all__ = [
    "JsonlSink",
    "RECORD_KINDS",
    "RecordingSubscriber",
    "SCHEMA_VERSION",
    "TelemetryBus",
    "TelemetryRecord",
    "ambient_bus",
    "capture",
    "merge_streams",
    "read_jsonl",
    "record_from_obj",
    "record_to_obj",
    "slo_from_records",
    "validate_stream",
]
