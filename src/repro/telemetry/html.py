"""Self-contained campaign HTML reports.

:func:`build_report` renders one standalone HTML document — inline CSS,
inline SVG, no external assets — from up to three inputs:

* the campaign's ``--out`` JSON documents (SLO summary tables and the
  shed/defer/abort outcome bars),
* a recorded telemetry JSONL stream (per-tenant cumulative attainment
  curves as small multiples, controller-action/chaos timelines),
* a ``BENCH_engine.json`` trajectory (per-metric sparklines, shared with
  ``python -m repro.perf.bench --trend``).

``python -m repro.traces.report results/ --html out.html`` is the CLI.

Chart discipline: categorical hues come from the validated palette in
fixed slot order and never encode rank; single-series charts carry their
identity in the title (no legend), multi-series charts always get one;
series text wears ink tokens, never the series hue; dark mode is a
selected palette (its own hex per slot), not a filter.
"""

from __future__ import annotations

import html as html_mod
from typing import Any, Iterable, Sequence

from repro.perf.bench import trend_series

__all__ = ["build_report", "split_runs"]

#: how many telemetry runs the report details before folding the rest
#: into a visible note (a campaign can easily record dozens)
MAX_RUNS = 8

# The validated categorical palette (light, dark) per slot — adjacent
# pairs pass the CVD separation and normal-vision floors; see the
# palette reference. Slot order is fixed; hues follow entities, not rank.
_SLOTS = (("#2a78d6", "#3987e5"), ("#eb6834", "#d95926"), ("#1baf7a", "#199e70"))

_CSS = """
:root {
  --surface: #fcfcfb; --ink: #1f1e1d; --ink-2: #5c5a55; --ink-3: #8a887f;
  --grid: #e1e0d9; --neutral: #c9c7bf;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #ebe9e4; --ink-2: #a9a7a0; --ink-3: #7c7a73;
    --grid: #2c2c2a; --neutral: #4a4945;
    --s1: #3987e5; --s2: #d95926; --s3: #199e70;
  }
}
* { box-sizing: border-box; }
body {
  margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
  background: var(--surface); color: var(--ink);
  font: 15px/1.5 system-ui, sans-serif;
}
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2.2rem; }
h3 { font-size: 0.95rem; color: var(--ink-2); font-weight: 600; }
p.note { color: var(--ink-3); font-size: 0.85rem; }
table { border-collapse: collapse; font-size: 0.85rem; font-variant-numeric: tabular-nums; }
th, td { padding: 0.25rem 0.7rem; text-align: right; }
th:first-child, td:first-child { text-align: left; }
th { color: var(--ink-2); font-weight: 600; border-bottom: 1px solid var(--grid); }
tr + tr td { border-top: 1px solid var(--grid); }
svg text { fill: var(--ink-2); font: 11px system-ui, sans-serif; }
svg .axis { stroke: var(--grid); stroke-width: 1; }
.legend { display: flex; gap: 1.2rem; font-size: 0.8rem; color: var(--ink-2); margin: 0.3rem 0; }
.legend span::before {
  content: ""; display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 0.35rem; background: var(--swatch);
}
.multiples { display: flex; flex-wrap: wrap; gap: 1rem; }
.bar { display: flex; height: 18px; border-radius: 4px; overflow: hidden;
       background: var(--surface); max-width: 40rem; gap: 2px; }
.bar div { height: 100%; }
.bar-row { display: grid; grid-template-columns: 16rem 1fr; gap: 0.8rem;
           align-items: center; margin: 0.3rem 0; font-size: 0.85rem;
           color: var(--ink-2); }
.spark { vertical-align: middle; }
"""


def _esc(value: Any) -> str:
    return html_mod.escape(str(value))


def _fmt(value: float) -> str:
    if value >= 10_000:
        return f"{value:,.0f}"
    return f"{value:.3g}"


# ---------------------------------------------------------------- stream
def split_runs(objs: Iterable[dict]) -> tuple[dict, list[dict]]:
    """Split a stream's raw objects into ``(header, runs)`` where each
    run is ``{"label", "records"}`` bracketed by ``run-start`` context
    lines (a headerless single-run stream yields one unlabelled run)."""
    header: dict = {}
    runs: list[dict] = []
    current: dict = {"label": "", "records": []}
    for obj in objs:
        kind = obj.get("kind")
        if kind == "stream-header":
            header = obj
        elif kind == "run-start":
            if current["records"]:
                runs.append(current)
            params = obj.get("params") or {}
            grid = ",".join(f"{k}={v}" for k, v in params.items())
            label = f"{obj.get('scenario')}[{obj.get('index')}] {grid}".strip()
            current = {"label": label, "records": []}
        else:
            current["records"].append(obj)
    if current["records"]:
        runs.append(current)
    return header, runs


def _attainment_curves(records: list[dict]) -> dict[int, list[tuple[float, float]]]:
    """Per-tenant cumulative SLO attainment over virtual time."""
    curves: dict[int, list[tuple[float, float]]] = {}
    hits: dict[int, int] = {}
    seen: dict[int, int] = {}
    for obj in records:
        if obj.get("kind") != "round-settled":
            continue
        tenant = int(obj.get("tenant", -1))
        seen[tenant] = seen.get(tenant, 0) + 1
        hits[tenant] = hits.get(tenant, 0) + bool(obj.get("attained"))
        curves.setdefault(tenant, []).append(
            (float(obj.get("at", 0.0)), hits[tenant] / seen[tenant])
        )
    return curves


# ------------------------------------------------------------------- svg
def _curve_svg(points: Sequence[tuple[float, float]], t_max: float) -> str:
    """One small-multiple attainment curve: y fixed to 0..100%, x to the
    run's horizon so the multiples share scales."""
    w, h, pad = 260, 120, 28
    t_max = max(t_max, 1e-9)
    coords = [
        (pad + at / t_max * (w - pad - 8), (h - pad) - frac * (h - pad - 10))
        for at, frac in points
    ]
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    grid = "".join(
        f'<line class="axis" x1="{pad}" y1="{(h - pad) - frac * (h - pad - 10):.1f}"'
        f' x2="{w - 8}" y2="{(h - pad) - frac * (h - pad - 10):.1f}"/>'
        f'<text x="{pad - 4}" y="{(h - pad) - frac * (h - pad - 10) + 4:.1f}"'
        f' text-anchor="end">{int(frac * 100)}%</text>'
        for frac in (0.0, 0.5, 1.0)
    )
    last = points[-1][1] if points else 0.0
    return (
        f'<svg class="chart" width="{w}" height="{h}" viewBox="0 0 {w} {h}"'
        f' role="img" aria-label="cumulative SLO attainment">{grid}'
        f'<polyline points="{path}" fill="none" stroke="var(--s1)"'
        f' stroke-width="2" stroke-linejoin="round"/>'
        f'<text x="{w - 8}" y="12" text-anchor="end">{last:.1%}</text>'
        f'<text x="{pad}" y="{h - 6}">0s</text>'
        f'<text x="{w - 8}" y="{h - 6}" text-anchor="end">{t_max:.0f}s</text>'
        "</svg>"
    )


def _timeline_svg(lanes: list[tuple[str, list[dict]]], t_max: float) -> str:
    """Event lanes over virtual time: one row per action/fault kind,
    a ≥8px marker per event carrying a native tooltip."""
    w, lane_h, pad_l, pad_t = 720, 26, 130, 8
    h = pad_t + lane_h * len(lanes) + 22
    t_max = max(t_max, 1e-9)
    parts = [
        f'<svg class="chart" width="{w}" height="{h}" viewBox="0 0 {w} {h}"'
        f' role="img" aria-label="control-plane and chaos timeline">'
    ]
    slot = 0
    for i, (name, events) in enumerate(lanes):
        y = pad_t + lane_h * i + lane_h // 2
        color = f"var(--s{slot + 1})"
        slot = (slot + 1) % len(_SLOTS)
        parts.append(
            f'<line class="axis" x1="{pad_l}" y1="{y}" x2="{w - 8}" y2="{y}"/>'
            f'<text x="{pad_l - 6}" y="{y + 4}" text-anchor="end">{_esc(name)}</text>'
        )
        for obj in events:
            x = pad_l + float(obj.get("at", 0.0)) / t_max * (w - pad_l - 16)
            tip = ", ".join(
                f"{k}={v}" for k, v in obj.items() if k not in ("kind", "shard")
            )
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y}" r="4" fill="{color}"'
                f' stroke="var(--surface)" stroke-width="2">'
                f"<title>{_esc(tip)}</title></circle>"
            )
    parts.append(
        f'<text x="{pad_l}" y="{h - 6}">0s</text>'
        f'<text x="{w - 8}" y="{h - 6}" text-anchor="end">{t_max:.0f}s</text></svg>'
    )
    return "".join(parts)


def _spark_svg(values: Sequence[float | None]) -> str:
    """Inline sparkline for one benchmark metric's trajectory."""
    w, h = 120, 26
    known = [(i, v) for i, v in enumerate(values) if v is not None]
    if not known:
        return ""
    top = max(v for _, v in known) or 1.0
    n = max(len(values) - 1, 1)
    path = " ".join(
        f"{4 + i / n * (w - 8):.1f},{(h - 4) - v / top * (h - 8):.1f}" for i, v in known
    )
    x_last, y_last = known[-1]
    return (
        f'<svg class="spark" width="{w}" height="{h}" viewBox="0 0 {w} {h}">'
        f'<polyline points="{path}" fill="none" stroke="var(--s1)" stroke-width="2"/>'
        f'<circle cx="{4 + x_last / n * (w - 8):.1f}"'
        f' cy="{(h - 4) - y_last / top * (h - 8):.1f}" r="3" fill="var(--s1)"/></svg>'
    )


# -------------------------------------------------------------- sections
#: outcome bar segments: (row key, display name, CSS color) — completed
#: wears the neutral token; the non-completed outcomes take categorical
#: slots in fixed order
_OUTCOMES = (
    ("completed", "completed", "var(--neutral)"),
    ("deferred", "deferred", "var(--s1)"),
    ("shed", "shed", "var(--s2)"),
    ("aborted", "aborted/rejected", "var(--s3)"),
)


def _outcome_counts(row: dict) -> dict[str, int]:
    rounds = int(row.get("rounds", 0))
    shed = int(row.get("shed", 0))
    deferred = int(row.get("deferred", 0))
    aborted = int(row.get("aborted", 0)) + int(row.get("rejected", 0))
    return {
        "completed": max(0, rounds - aborted),
        "deferred": deferred,
        "shed": shed,
        "aborted": aborted,
    }


def _section_slo(docs: list[dict]) -> str:
    from repro.traces.report import slo_rows

    parts: list[str] = []
    for doc in docs:
        pairs = slo_rows(doc)
        if not pairs:
            continue
        parts.append(
            f"<h2>{_esc(doc.get('scenario', '?'))} — {_esc(doc.get('title', ''))}</h2>"
        )
        controlled = any("shed" in row or "deferred" in row for _, row in pairs)
        head = ["cell", "rounds"]
        if controlled:
            head += ["shed", "defer"]
        head += ["p50 (s)", "p95 (s)", "p99 (s)", "wait p95", "attained"]
        body = []
        for params, row in pairs:
            cell = ",".join(f"{k}={v}" for k, v in params.items()) or "-"
            cols = [cell, row.get("rounds", 0)]
            if controlled:
                cols += [row.get("shed", 0), row.get("deferred", 0)]
            cols += [
                f"{row['latency_p50_s']:.2f}",
                f"{row['latency_p95_s']:.2f}",
                f"{row['latency_p99_s']:.2f}",
                f"{row.get('queue_wait_p95_s', 0.0):.2f}",
                f"{row['slo_attainment']:.1%}",
            ]
            body.append("<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in cols) + "</tr>")
        parts.append(
            "<table><thead><tr>"
            + "".join(f"<th>{_esc(c)}</th>" for c in head)
            + "</tr></thead><tbody>"
            + "".join(body)
            + "</tbody></table>"
        )
        if controlled:
            parts.append(_outcome_bars(pairs))
    return "".join(parts)


def _outcome_bars(pairs: list[tuple[dict, dict]]) -> str:
    parts = ["<h3>round outcomes</h3>"]
    parts.append(
        '<div class="legend">'
        + "".join(
            f'<span style="--swatch:{color}">{_esc(name)}</span>'
            for _, name, color in _OUTCOMES
        )
        + "</div>"
    )
    for params, row in pairs:
        counts = _outcome_counts(row)
        total = sum(counts.values()) or 1
        cell = ",".join(f"{k}={v}" for k, v in params.items()) or "-"
        segs = "".join(
            f'<div style="width:{counts[key] / total * 100:.2f}%;'
            f'background:{color}" title="{_esc(name)}: {counts[key]}"></div>'
            for key, name, color in _OUTCOMES
            if counts[key]
        )
        parts.append(
            f'<div class="bar-row"><span>{_esc(cell)}</span>'
            f'<div class="bar">{segs}</div></div>'
        )
    return "".join(parts)


def _region_rollup(records: list[dict]) -> dict[str, dict]:
    """Per-region counters for geo streams (empty when no record carries
    a region — single-cell reports render exactly as before)."""
    regions: dict[str, dict] = {}
    for obj in records:
        name = str(obj.get("region", ""))
        if not name:
            continue
        roll = regions.setdefault(
            name,
            {"records": 0, "settled": 0, "attained": 0, "wan": 0, "bytes": 0.0, "failovers": 0},
        )
        roll["records"] += 1
        kind = obj.get("kind")
        if kind == "round-settled":
            roll["settled"] += 1
            roll["attained"] += bool(obj.get("attained"))
        elif kind == "wan-sample":
            roll["wan"] += 1
            roll["bytes"] += float(obj.get("nbytes", 0.0))
        elif kind == "region-failover":
            roll["failovers"] += 1
    return regions


def _section_telemetry(header: dict, runs: list[dict]) -> str:
    parts = ["<h2>telemetry streams</h2>"]
    seed = header.get("campaign_seed")
    if seed is not None:
        parts.append(f'<p class="note">campaign seed {_esc(seed)}</p>')
    shown = runs[:MAX_RUNS]
    for run in shown:
        records = run["records"]
        label = run["label"] or "recorded run"
        t_max = max((float(o.get("at", 0.0)) for o in records), default=0.0)
        parts.append(f"<h3>{_esc(label)}</h3>")
        curves = _attainment_curves(records)
        if curves:
            parts.append('<div class="multiples">')
            for tenant in sorted(curves):
                parts.append(
                    "<figure style='margin:0'>"
                    f"<figcaption style='font-size:0.8rem;color:var(--ink-2)'>"
                    f"tenant {tenant}</figcaption>"
                    + _curve_svg(curves[tenant], t_max)
                    + "</figure>"
                )
            parts.append("</div>")
        regions = _region_rollup(records)
        if regions:
            parts.append(
                "<table><thead><tr><th>region</th><th>records</th><th>settled</th>"
                "<th>attained</th><th>wan flows</th><th>wan MB</th>"
                "<th>failover events</th></tr></thead><tbody>"
            )
            for name in sorted(regions):
                roll = regions[name]
                share = roll["attained"] / roll["settled"] if roll["settled"] else 0.0
                parts.append(
                    f"<tr><td>{_esc(name)}</td><td>{roll['records']}</td>"
                    f"<td>{roll['settled']}</td><td>{share:.1%}</td>"
                    f"<td>{roll['wan']}</td><td>{roll['bytes'] / 1e6:.0f}</td>"
                    f"<td>{roll['failovers']}</td></tr>"
                )
            parts.append("</tbody></table>")
        lanes: dict[str, list[dict]] = {}
        for obj in records:
            if obj.get("kind") == "control-action":
                lanes.setdefault(f"action: {obj.get('action')}", []).append(obj)
            elif obj.get("kind") == "chaos-fault":
                lanes.setdefault(f"chaos: {obj.get('fault')}", []).append(obj)
            elif obj.get("kind") == "region-failover":
                lanes.setdefault(f"failover: {obj.get('region')}", []).append(obj)
        if lanes:
            parts.append(_timeline_svg(sorted(lanes.items()), t_max))
    if len(runs) > len(shown):
        parts.append(
            f'<p class="note">{len(runs) - len(shown)} further run(s) recorded '
            "in the stream but not charted — re-run the report against a "
            "filtered campaign to see them.</p>"
        )
    return "".join(parts)


def _section_bench(bench: dict) -> str:
    series = trend_series(bench)
    if not series:
        return ""
    labels = [label for label, _ in series[0]["points"]]
    parts = [
        "<h2>engine benchmark trajectory</h2>",
        f'<p class="note">labels, oldest first: {_esc(" → ".join(labels))}</p>',
        "<table><thead><tr><th>metric</th><th>trajectory</th>"
        "<th>last</th><th>unit</th></tr></thead><tbody>",
    ]
    for s in series:
        values = [v for _, v in s["points"]]
        measured = [v for v in values if v is not None]
        parts.append(
            f"<tr><td>{_esc(s['metric'])}</td><td>{_spark_svg(values)}</td>"
            f"<td>{_fmt(measured[-1])}</td><td>{_esc(s['unit'])}</td></tr>"
        )
    parts.append("</tbody></table>")
    return "".join(parts)


# ------------------------------------------------------------------ page
def build_report(
    docs: list[dict],
    telemetry: list[dict] | None = None,
    bench: dict | None = None,
    title: str = "campaign report",
) -> str:
    """The complete standalone HTML document, as a string."""
    body: list[str] = [f"<h1>{_esc(title)}</h1>"]
    if docs:
        body.append(_section_slo(docs))
    if telemetry:
        header, runs = split_runs(telemetry)
        if runs:
            body.append(_section_telemetry(header, runs))
    if bench:
        body.append(_section_bench(bench))
    if len(body) == 1:
        body.append('<p class="note">nothing to report — no inputs carried data.</p>')
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        "<body>\n" + "\n".join(body) + "\n</body></html>\n"
    )
