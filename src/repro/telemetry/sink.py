"""The schema-versioned JSONL stream format and its validator.

One JSON object per line.  The first line of a file is a **header**::

    {"v": 1, "kind": "stream-header", "schema_version": 1, ...}

then one line per record, flat::

    {"at": 12.5, "kind": "round-settled", "tenant": 0, "round": 7,
     "shard": -1, "queue_wait": 0.0, "service": 3.2, ...}

Context lines (``run-start``, written by the campaign runner between
runs) carry the scenario/params envelope so one file can hold a whole
campaign.  Floats round-trip exactly (Python's ``json`` serializes by
``repr``), which is what lets :func:`repro.telemetry.bus.slo_from_records`
rebuild byte-identical SLO totals from a file.

:func:`validate_stream` is the CI smoke's checker: header first,
schema version supported, every record kind in the catalogue, no unknown
fields, timestamps numeric and non-negative.
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterable, Iterator

from repro.common.errors import ConfigError
from repro.telemetry.bus import RECORD_KINDS, SCHEMA_VERSION, TelemetryRecord

__all__ = [
    "JsonlSink",
    "header_obj",
    "read_jsonl",
    "record_from_obj",
    "record_to_obj",
    "validate_stream",
]

#: envelope keys a record line may carry (``region`` only when a geo
#: merge stamped one, so pre-geo streams are byte-unchanged)
ENVELOPE_KEYS = ("at", "kind", "tenant", "round", "shard", "region")
#: non-record context line kinds a stream may carry
CONTEXT_KINDS = ("stream-header", "run-start")


def record_to_obj(record: TelemetryRecord) -> dict[str, Any]:
    """One flat JSON-ready object for one record (envelope + payload)."""
    obj: dict[str, Any] = {"at": record.at, "kind": record.kind}
    if record.tenant >= 0:
        obj["tenant"] = record.tenant
    if record.round_id >= 0:
        obj["round"] = record.round_id
    if record.shard >= 0:
        obj["shard"] = record.shard
    if record.region:
        obj["region"] = record.region
    obj.update(record.fields)
    return obj


def record_from_obj(obj: dict[str, Any]) -> TelemetryRecord:
    """The inverse of :func:`record_to_obj` (context lines are refused)."""
    kind = obj.get("kind")
    if kind in CONTEXT_KINDS:
        raise ConfigError(f"line kind {kind!r} is stream context, not a record")
    fields = tuple(
        sorted((k, v) for k, v in obj.items() if k not in ENVELOPE_KEYS)
    )
    return TelemetryRecord(
        at=obj["at"],
        kind=kind,
        tenant=obj.get("tenant", -1),
        round_id=obj.get("round", -1),
        shard=obj.get("shard", -1),
        region=obj.get("region", ""),
        fields=fields,
    )


def header_obj(**extra: Any) -> dict[str, Any]:
    """The stream's first line: schema version + caller context."""
    obj = {"v": SCHEMA_VERSION, "kind": "stream-header", "schema_version": SCHEMA_VERSION}
    obj.update(extra)
    return obj


class JsonlSink:
    """A bus subscriber that appends one JSON line per record.

    Writes the header eagerly on construction so even an empty stream is
    identifiable.  ``context()`` writes a non-record context line (the
    campaign runner brackets each run with one).  The sink flushes on
    every line by default so a live ``watch --follow`` sees records as
    they happen; pass ``flush_every`` to batch.
    """

    def __init__(self, fh: IO[str], flush_every: int = 1, **header: Any) -> None:
        self._fh = fh
        self._flush_every = max(1, flush_every)
        self._since_flush = 0
        self._write(header_obj(**header))

    def _write(self, obj: dict[str, Any]) -> None:
        self._fh.write(json.dumps(obj, sort_keys=True) + "\n")
        self._since_flush += 1
        if self._since_flush >= self._flush_every:
            self._fh.flush()
            self._since_flush = 0

    def context(self, kind: str, **fields: Any) -> None:
        if kind not in CONTEXT_KINDS:
            raise ConfigError(f"unknown context line kind {kind!r}")
        self._write({"kind": kind, **fields})

    def write_obj(self, obj: dict[str, Any]) -> None:
        """Append one pre-serialized record object (the campaign runner's
        path: workers ship record objects home, the parent writes)."""
        self._write(obj)

    def __call__(self, record: TelemetryRecord) -> None:
        self._write(record_to_obj(record))


def _iter_lines(path: str) -> Iterator[tuple[int, dict[str, Any]]]:
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigError(f"{path}:{lineno}: not JSON: {exc}") from exc
            yield lineno, obj


def read_jsonl(path: str) -> list[TelemetryRecord]:
    """Load a stream file's records (header/context lines skipped)."""
    records = []
    for _, obj in _iter_lines(path):
        if obj.get("kind") in CONTEXT_KINDS:
            continue
        records.append(record_from_obj(obj))
    return records


def validate_stream(path: str) -> dict[str, int]:
    """Validate one JSONL stream file; returns ``{kind: count}``.

    Raises :class:`~repro.common.errors.ConfigError` on the first
    malformed line: missing/failed header, unsupported schema version,
    unknown record kind, unknown field, or a bad timestamp.  The CI
    telemetry smoke runs this against a freshly recorded campaign.
    """
    counts: dict[str, int] = {}
    saw_header = False
    for lineno, obj in _iter_lines(path):
        kind = obj.get("kind")
        if not saw_header:
            if kind != "stream-header":
                raise ConfigError(f"{path}:{lineno}: first line must be the stream-header")
            version = obj.get("schema_version")
            if version != SCHEMA_VERSION:
                raise ConfigError(
                    f"{path}:{lineno}: schema_version {version!r} unsupported "
                    f"(expected {SCHEMA_VERSION})"
                )
            saw_header = True
            continue
        if kind in CONTEXT_KINDS:
            counts[kind] = counts.get(kind, 0) + 1
            continue
        if kind not in RECORD_KINDS:
            raise ConfigError(f"{path}:{lineno}: unknown record kind {kind!r}")
        at = obj.get("at")
        if not isinstance(at, (int, float)) or at < 0:
            raise ConfigError(f"{path}:{lineno}: bad timestamp {at!r}")
        allowed = RECORD_KINDS[kind]
        unknown = [k for k in obj if k not in ENVELOPE_KEYS and k not in allowed]
        if unknown:
            raise ConfigError(
                f"{path}:{lineno}: record {kind!r} carries unknown fields {unknown}"
            )
        counts[kind] = counts.get(kind, 0) + 1
    if not saw_header:
        raise ConfigError(f"{path}: empty stream (no header line)")
    return counts


def records_to_objs(records: Iterable[TelemetryRecord]) -> list[dict[str, Any]]:
    """Serialize a stream to JSON-ready objects (pickle-light transport
    for campaign workers)."""
    return [record_to_obj(rec) for rec in records]
