"""Synthetic FedScale-like client population (§6.2).

The paper selects active clients "from a total of 2,800 real clients
provided by FedScale".  We reproduce the population's statistical structure:
heavy-tailed per-client dataset sizes (the FedAvg weights), lognormal device
speeds, and the two §6.2 behaviour profiles (hibernating mobiles for the
ResNet-18 setup, always-on servers for ResNet-152).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import RngRegistry
from repro.fl.client import ClientConfig, FLClient
from repro.fl.model import ModelSpec


@dataclass(frozen=True)
class PopulationProfile:
    """Behavioural profile of a client population."""

    name: str
    hibernate_max: float  # seconds; 0 = always-on
    speed_sigma: float  # lognormal sigma of device speeds
    samples_mean: int  # mean local dataset size
    samples_exponent: float  # Pareto tail exponent


MOBILE_PROFILE = PopulationProfile(
    name="mobile", hibernate_max=60.0, speed_sigma=0.35, samples_mean=140, samples_exponent=1.6
)
SERVER_PROFILE = PopulationProfile(
    name="server", hibernate_max=0.0, speed_sigma=0.10, samples_mean=400, samples_exponent=2.5
)


@dataclass
class FedScalePopulation:
    """The full client pool plus its per-client FedAvg weights."""

    clients: list[FLClient]
    sample_counts: dict[str, int]
    profile: PopulationProfile

    @property
    def size(self) -> int:
        return len(self.clients)

    def weights(self) -> dict[str, float]:
        return {cid: float(n) for cid, n in self.sample_counts.items()}


def make_population(
    n_clients: int = 2800,
    spec: ModelSpec | None = None,
    profile: PopulationProfile = MOBILE_PROFILE,
    seed: int = 0,
) -> FedScalePopulation:
    """Build the synthetic population for one workload setup."""
    if n_clients < 1:
        raise ConfigError(f"n_clients must be >= 1, got {n_clients}")
    if spec is None:
        from repro.fl.model import model_spec

        spec = model_spec("resnet18")
    rngs = RngRegistry(seed)
    speed_rng = rngs.stream("speeds")
    sample_rng = rngs.stream("samples")
    speeds = speed_rng.lognormal(0.0, profile.speed_sigma, size=n_clients)
    raw = sample_rng.pareto(profile.samples_exponent, size=n_clients) + 1.0
    counts = np.maximum(10, raw / raw.mean() * profile.samples_mean).astype(int)
    clients: list[FLClient] = []
    sample_counts: dict[str, int] = {}
    for i in range(n_clients):
        cid = f"{profile.name}-{i:04d}"
        cfg = ClientConfig(
            client_id=cid,
            speed_factor=float(speeds[i]),
            hibernate_max=profile.hibernate_max,
        )
        clients.append(FLClient(cfg, spec))
        sample_counts[cid] = int(counts[i])
    return FedScalePopulation(clients=clients, sample_counts=sample_counts, profile=profile)
