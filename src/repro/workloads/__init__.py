"""Workload generation: client populations, availability traces, arrivals.

* :mod:`repro.workloads.fedscale` — a 2,800-client synthetic population with
  FedScale-like heterogeneity (the paper draws its clients from FedScale's
  real FEMNIST mapping);
* :mod:`repro.workloads.traces` — per-round availability and update-arrival
  traces for the two §6.2 client setups (hibernating mobiles vs always-on
  servers);
* :mod:`repro.workloads.arrival` — arrival processes for microbenchmarks
  (Fig. 8's "N updates arriving concurrently", Poisson streams for capacity
  probing).
"""

from repro.workloads.arrival import concurrent_arrivals, poisson_arrivals, staggered_arrivals
from repro.workloads.fedscale import FedScalePopulation, make_population
from repro.workloads.traces import ClientArrival, RoundTrace, generate_round_trace

__all__ = [
    "ClientArrival",
    "FedScalePopulation",
    "RoundTrace",
    "concurrent_arrivals",
    "generate_round_trace",
    "make_population",
    "poisson_arrivals",
    "staggered_arrivals",
]
