"""Arrival processes for microbenchmarks.

Fig. 8 feeds the aggregation service batches of 20/60/100 model updates
"arriving at the aggregation service concurrently"; the capacity probe of
Appendix E drives a node with increasing Poisson rates.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError


def concurrent_arrivals(n: int, jitter: float = 0.0, rng: np.random.Generator | None = None) -> list[float]:
    """``n`` updates at t=0, optionally with small uniform jitter (real
    trainers never hit the wire at the same nanosecond)."""
    if n < 1:
        raise ConfigError(f"n must be >= 1, got {n}")
    if jitter < 0:
        raise ConfigError("jitter must be non-negative")
    if jitter == 0.0 or rng is None:
        return [0.0] * n
    return sorted(float(t) for t in rng.uniform(0.0, jitter, size=n))


def staggered_arrivals(n: int, spread: float) -> list[float]:
    """``n`` updates evenly spread over ``spread`` seconds (lazy-vs-eager
    illustrations, Fig. 1)."""
    if n < 1:
        raise ConfigError(f"n must be >= 1, got {n}")
    if spread < 0:
        raise ConfigError("spread must be non-negative")
    if n == 1:
        return [0.0]
    return [spread * i / (n - 1) for i in range(n)]


def poisson_arrivals(rate: float, horizon: float, rng: np.random.Generator) -> list[float]:
    """Poisson process of ``rate`` arrivals/s over ``horizon`` seconds
    (Appendix E's capacity probing)."""
    if rate <= 0 or horizon <= 0:
        raise ConfigError("rate and horizon must be positive")
    times = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t >= horizon:
            break
        times.append(t)
    return times
