"""Per-round update-arrival traces.

A round trace answers: *when does each selected client's model update reach
the aggregation service?*  For the mobile profile that is hibernation +
local training + upload; for the server profile just training + upload.
The resulting arrival-rate time series is what Fig. 10(a)/(d) plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigError
from repro.fl.client import FLClient


@dataclass(frozen=True)
class ClientArrival:
    """One client's update arrival within a round (relative seconds)."""

    client_id: str
    arrival_time: float
    weight: float  # FedAvg sample-count weight
    train_duration: float
    hibernation: float


@dataclass
class RoundTrace:
    """All arrivals for one round, sorted by time."""

    arrivals: list[ClientArrival] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.arrivals)

    def arrival_times(self) -> list[float]:
        return [a.arrival_time for a in self.arrivals]

    def time_to_goal(self, goal: int) -> float:
        """When the ``goal``-th update has arrived (the eager-aggregation
        cutoff); raises if the round cannot meet the goal."""
        if goal < 1 or goal > len(self.arrivals):
            raise ConfigError(f"goal {goal} outside [1, {len(self.arrivals)}]")
        return self.arrivals[goal - 1].arrival_time

    def rate_per_minute(self, horizon: float, bucket: float = 60.0) -> list[int]:
        """Arrival counts per bucket — Fig. 10(a)/(d)'s series."""
        n_buckets = int(np.ceil(horizon / bucket))
        counts = [0] * max(1, n_buckets)
        for a in self.arrivals:
            idx = min(int(a.arrival_time // bucket), len(counts) - 1)
            counts[idx] += 1
        return counts


def generate_round_trace(
    participants: list[FLClient],
    weights: dict[str, float],
    rng: np.random.Generator,
    upload_seconds: float = 0.0,
) -> RoundTrace:
    """Simulate one round's client behaviour into an arrival trace.

    ``upload_seconds`` is the client→cluster transfer time (the experiment
    platforms usually model the upload themselves and pass 0 here).
    """
    if not participants:
        raise ConfigError("round needs at least one participant")
    arrivals = []
    for client in participants:
        hib = client.hibernation(rng)
        train = client.training_duration(rng)
        arrivals.append(
            ClientArrival(
                client_id=client.client_id,
                arrival_time=hib + train + upload_seconds,
                weight=weights.get(client.client_id, 1.0),
                train_duration=train,
                hibernation=hib,
            )
        )
    arrivals.sort(key=lambda a: a.arrival_time)
    return RoundTrace(arrivals=arrivals)
