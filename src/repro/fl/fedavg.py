"""FedAvg with cumulative weighted averaging (§2.1).

The paper's aggregation abstraction:

    w_i = f({(w_i^k, A_i^k) | 1 ≤ k ≤ n}),   f = Σ w_i^k c_i^k / T_i,
    T_i = Σ c_i^k,  A_i^k = c_i^k (sample counts).

:class:`FedAvgAccumulator` computes this **cumulatively** — the running
weighted sum is updated as each update arrives — which is exactly the
property that makes *eager* aggregation produce the same result as lazy
batch aggregation ("the eager method is feasible for FedAvg with cumulative
averaging", §2.1).  The equivalence is covered by property-based tests.

The same accumulator aggregates at every tree level: a leaf aggregates
client updates and emits an intermediate update whose auxiliary weight is
the *sum* of its inputs' weights, so middle/top aggregators compose
correctly (hierarchical FedAvg is associative in this representation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.fl.model import Model


@dataclass(frozen=True)
class ModelUpdate:
    """One (weights, auxiliary info) pair moving up the tree.

    ``weight`` is c_i^k — the training sample count for a client update, or
    the accumulated sample count for an intermediate update.
    ``producer`` identifies the client or aggregator that produced it.
    """

    model: Model
    weight: float
    producer: str = ""
    version: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError(f"update weight must be positive, got {self.weight}")


#: fan-in at which batch folding switches from the serial loop to the
#: vectorized :meth:`Model.weighted_sum` path.  Below this the stacking
#: overhead outweighs the NumPy win.
BATCH_FOLD_THRESHOLD = 8


@dataclass
class FedAvgAccumulator:
    """Running weighted average over incoming updates."""

    _sum: Model | None = None
    _total_weight: float = 0.0
    count: int = field(default=0)

    def add(self, update: ModelUpdate) -> None:
        """Fold one update in (the Agg step's core, Fig. 14)."""
        if self._sum is None:
            self._sum = update.model.scaled(update.weight)
        else:
            self._sum.add_scaled_(update.model, update.weight)
        self._total_weight += update.weight
        self.count += 1

    def add_batch(self, updates: "list[ModelUpdate]") -> None:
        """Fold a whole cohort in at once.

        Equivalent to ``for u in updates: self.add(u)`` up to float
        summation order; large fan-ins (``>= BATCH_FOLD_THRESHOLD``) run
        the weighted sum as one NumPy reduction per tensor instead of one
        Python-level ``add_scaled_`` per update — the lazy Agg burst over
        hundreds of updates is where this pays off.
        """
        if len(updates) < BATCH_FOLD_THRESHOLD:
            for u in updates:
                self.add(u)
            return
        batch = Model.weighted_sum(
            [u.model for u in updates], [u.weight for u in updates]
        )
        if self._sum is None:
            self._sum = batch
        else:
            self._sum.add_scaled_(batch, 1.0)
        self._total_weight += sum(u.weight for u in updates)
        self.count += len(updates)

    @property
    def total_weight(self) -> float:
        return self._total_weight

    @property
    def is_empty(self) -> bool:
        return self._sum is None

    def result(self, producer: str = "", version: int = 0) -> ModelUpdate:
        """The weighted average so far, as an update whose weight carries
        the accumulated sample count (hierarchy-composable)."""
        if self._sum is None:
            raise ConfigError("result() on an empty accumulator")
        avg = self._sum.scaled(1.0 / self._total_weight)
        return ModelUpdate(
            model=avg, weight=self._total_weight, producer=producer, version=version
        )

    def merge(self, other: "FedAvgAccumulator") -> None:
        """Combine two partial accumulations (aggregator reuse path)."""
        if other._sum is None:
            return
        if self._sum is None:
            self._sum = other._sum.copy()
        else:
            self._sum.add_scaled_(other._sum, 1.0)
        self._total_weight += other._total_weight
        self.count += other.count

    def reset(self) -> None:
        self._sum = None
        self._total_weight = 0.0
        self.count = 0


def federated_average(updates: list[ModelUpdate]) -> ModelUpdate:
    """One-shot (lazy) FedAvg over a batch — the reference implementation
    the eager accumulator is tested against.

    Large cohorts run through the vectorized batch fold (identical up to
    float summation order; the equivalence tests use tolerances)."""
    if not updates:
        raise ConfigError("federated_average needs at least one update")
    acc = FedAvgAccumulator()
    acc.add_batch(updates)
    return acc.result()
