"""Real local training: a NumPy MLP with softmax cross-entropy and SGD.

The paper's clients run "Stochastic Gradient Descent ... batch size of 32 in
a local training epoch, with the learning rate set to 0.01" (§6.2).  This
module implements that client loop for models small enough to actually train
in-process, fully vectorized per the project's performance guide (no Python
loops over samples — only over mini-batches).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigError
from repro.fl.algorithms import fedprox_proximal_gradient
from repro.fl.datasets import ClientShard
from repro.fl.model import Model


@dataclass(frozen=True)
class TrainingConfig:
    """Client-side hyperparameters (§6.2 defaults)."""

    batch_size: int = 32
    learning_rate: float = 0.01
    epochs: int = 1
    #: FedProx proximal coefficient; 0 disables the proximal term
    fedprox_mu: float = 0.0

    def __post_init__(self) -> None:
        if self.batch_size < 1 or self.epochs < 1:
            raise ConfigError("batch_size and epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")
        if self.fedprox_mu < 0:
            raise ConfigError("fedprox_mu must be non-negative")


class MLP:
    """One-hidden-layer perceptron: dim → hidden → classes.

    Stateless functional style: parameters live in a :class:`Model`
    (tensors ``w1``, ``b1``, ``w2``, ``b2``), so the same arrays flow
    through the aggregation machinery unchanged.
    """

    def __init__(self, dim: int, hidden: int, num_classes: int) -> None:
        if min(dim, hidden, num_classes) < 1:
            raise ConfigError("all layer sizes must be >= 1")
        self.dim = dim
        self.hidden = hidden
        self.num_classes = num_classes

    def init_params(self, rng: np.random.Generator) -> Model:
        """He-initialized parameters."""
        w1 = rng.standard_normal((self.dim, self.hidden)) * np.sqrt(2.0 / self.dim)
        w2 = rng.standard_normal((self.hidden, self.num_classes)) * np.sqrt(2.0 / self.hidden)
        return Model(
            {
                "w1": w1.astype(np.float32),
                "b1": np.zeros(self.hidden, dtype=np.float32),
                "w2": w2.astype(np.float32),
                "b2": np.zeros(self.num_classes, dtype=np.float32),
            }
        )

    # -- forward/backward ------------------------------------------------------
    def logits(self, params: Model, x: np.ndarray) -> np.ndarray:
        h = np.maximum(x @ params["w1"] + params["b1"], 0.0)
        return h @ params["w2"] + params["b2"]

    def loss_and_grads(
        self, params: Model, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, Model]:
        """Mean cross-entropy and its gradient w.r.t. every tensor."""
        n = x.shape[0]
        pre = x @ params["w1"] + params["b1"]
        h = np.maximum(pre, 0.0)
        logits = h @ params["w2"] + params["b2"]
        # stable softmax CE
        shifted = logits - logits.max(axis=1, keepdims=True)
        expz = np.exp(shifted)
        probs = expz / expz.sum(axis=1, keepdims=True)
        loss = float(-np.log(probs[np.arange(n), y] + 1e-12).mean())
        dlogits = probs
        dlogits[np.arange(n), y] -= 1.0
        dlogits /= n
        dw2 = h.T @ dlogits
        db2 = dlogits.sum(axis=0)
        dh = dlogits @ params["w2"].T
        dh[pre <= 0.0] = 0.0
        dw1 = x.T @ dh
        db1 = dh.sum(axis=0)
        grads = Model(
            {
                "w1": dw1.astype(np.float32),
                "b1": db1.astype(np.float32),
                "w2": dw2.astype(np.float32),
                "b2": db2.astype(np.float32),
            }
        )
        return loss, grads

    def accuracy(self, params: Model, x: np.ndarray, y: np.ndarray) -> float:
        return float((self.logits(params, x).argmax(axis=1) == y).mean())


@dataclass
class LocalTrainer:
    """The client training loop (local SGD, optional FedProx)."""

    mlp: MLP
    config: TrainingConfig = TrainingConfig()

    def train(
        self,
        global_params: Model,
        shard: ClientShard,
        rng: np.random.Generator,
    ) -> tuple[Model, float]:
        """Run local epochs from the global model; returns (new params,
        final mini-batch loss)."""
        params = global_params.copy()
        x, y = shard.features, shard.labels
        n = shard.num_samples
        lr = self.config.learning_rate
        mu = self.config.fedprox_mu
        last_loss = float("nan")
        for _ in range(self.config.epochs):
            perm = rng.permutation(n)
            for start in range(0, n, self.config.batch_size):
                idx = perm[start : start + self.config.batch_size]
                loss, grads = self.mlp.loss_and_grads(params, x[idx], y[idx])
                if mu > 0.0:
                    grads.add_scaled_(fedprox_proximal_gradient(params, global_params, mu), 1.0)
                params.add_scaled_(grads, -lr)
                last_loss = loss
        return params, last_loss
