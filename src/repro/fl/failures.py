"""Client-failure handling (§3).

"LIFL detects client failures with keep-alive heartbeats and enhances
resilience by over-provisioning the number of clients.  Aggregators in LIFL
are stateless, so new ones start without state synchronization upon an
aggregator failure."

* :class:`HeartbeatMonitor` — per-client keep-alive bookkeeping with a
  timeout-based failure verdict;
* :func:`apply_dropouts` — workload-side failure injection: removes a
  random subset of a round's arrivals, modelling mobile clients dying
  mid-round (used by the failure-injection tests to show the
  over-provisioned aggregation goal is still met).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigError
from repro.workloads.traces import ClientArrival, RoundTrace


@dataclass
class HeartbeatMonitor:
    """Keep-alive tracking: a client is failed once its last heartbeat is
    older than ``timeout`` seconds."""

    timeout: float = 30.0
    _last_seen: dict[str, float] = field(default_factory=dict)
    _declared_failed: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ConfigError("heartbeat timeout must be positive")

    def beat(self, client_id: str, now: float) -> None:
        """Record a keep-alive; a failed client that beats again recovers."""
        self._last_seen[client_id] = now
        self._declared_failed.discard(client_id)

    def last_seen(self, client_id: str) -> float | None:
        return self._last_seen.get(client_id)

    def is_alive(self, client_id: str, now: float) -> bool:
        """A client is alive when tracked, not declared failed, and its last
        beat is within the timeout.

        The declared-failed check matters: once :meth:`sweep` declares a
        client, only a fresh :meth:`beat` revives it.  Without the check an
        out-of-order query (``now`` earlier than the declaring sweep) would
        report a declared-failed client as alive, and the recovery layer
        would disagree with :attr:`failed` about who is gone.
        """
        if client_id in self._declared_failed:
            return False
        seen = self._last_seen.get(client_id)
        return seen is not None and (now - seen) <= self.timeout

    def sweep(self, now: float) -> list[str]:
        """Declare newly-failed clients; returns only the *new* failures so
        callers can react once per failure."""
        fresh = []
        for cid, seen in self._last_seen.items():
            if (now - seen) > self.timeout and cid not in self._declared_failed:
                self._declared_failed.add(cid)
                fresh.append(cid)
        return sorted(fresh)

    @property
    def failed(self) -> set[str]:
        return set(self._declared_failed)

    def tracked(self) -> int:
        return len(self._last_seen)


def apply_dropouts(
    trace: RoundTrace, dropout_rate: float, rng: np.random.Generator
) -> tuple[RoundTrace, list[ClientArrival]]:
    """Remove a random ``dropout_rate`` fraction of a round's arrivals.

    Returns (surviving trace, dropped arrivals).  With the selector's
    over-provisioning (§3), the surviving arrivals still cover the
    aggregation goal for any dropout rate below the provisioning margin.
    """
    if not 0.0 <= dropout_rate < 1.0:
        raise ConfigError(f"dropout_rate must be in [0, 1), got {dropout_rate}")
    if dropout_rate == 0.0 or not trace.arrivals:
        # An already-empty round has nothing to drop; returning early keeps
        # the RNG stream untouched so downstream draws are unaffected by
        # whether an empty round passed through the dropout stage.
        return RoundTrace(arrivals=list(trace.arrivals)), []
    mask = rng.uniform(size=len(trace.arrivals)) >= dropout_rate
    survivors = [a for a, keep in zip(trace.arrivals, mask) if keep]
    dropped = [a for a, keep in zip(trace.arrivals, mask) if not keep]
    return RoundTrace(arrivals=survivors), dropped
