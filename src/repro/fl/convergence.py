"""Calibrated accuracy-vs-round curves for ResNet-scale workloads.

Rationale (see DESIGN.md's substitution table): in Fig. 9 the *learning
algorithm is identical* across SF / SL / LIFL — all three run synchronous
FedAvg over the same client population — so accuracy as a function of the
**round number** is system-independent.  What differs per system is how much
wall-clock time and CPU each round costs, which the simulator produces.
Time-to-accuracy is then ``round_duration ∘ rounds_to(accuracy)``.

The curve is a saturating exponential with mild noise,

    acc(r) = a_max · (1 − exp(−r / τ)),

whose (a_max, τ) presets are fitted so the paper's round counts land where
Fig. 9/10 put them: FEMNIST ResNet-18 crosses 70 % around round ~60 of an
~80-round budget; ResNet-152 crosses around round ~55.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class AccuracyCurve:
    """Deterministic saturating learning curve with optional noise."""

    a_max: float
    tau: float
    noise_scale: float = 0.004
    seed: int = 7

    def __post_init__(self) -> None:
        if not 0 < self.a_max <= 1.0:
            raise ConfigError(f"a_max must be in (0, 1], got {self.a_max}")
        if self.tau <= 0:
            raise ConfigError(f"tau must be positive, got {self.tau}")
        if self.noise_scale < 0:
            raise ConfigError("noise_scale must be non-negative")

    def accuracy_at(self, round_index: int) -> float:
        """Test accuracy after ``round_index`` completed rounds."""
        if round_index < 0:
            raise ConfigError(f"round_index must be non-negative, got {round_index}")
        if round_index == 0:
            return 0.0
        base = self.a_max * (1.0 - math.exp(-round_index / self.tau))
        if self.noise_scale == 0:
            return base
        # Deterministic per-round jitter so repeated queries agree.
        rng = np.random.Generator(np.random.PCG64(self.seed + round_index))
        jitter = float(rng.normal(0.0, self.noise_scale))
        return float(min(self.a_max, max(0.0, base + jitter)))

    def rounds_to(self, accuracy: float) -> int:
        """Smallest round count whose *noise-free* accuracy ≥ target."""
        if not 0 < accuracy < self.a_max:
            raise ConfigError(
                f"target accuracy {accuracy} outside (0, a_max={self.a_max})"
            )
        return int(math.ceil(-self.tau * math.log(1.0 - accuracy / self.a_max)))


_CURVES = {
    # tau chosen so rounds-to-70% lands where the paper's wall-clock and
    # per-round numbers intersect: ResNet-18 ≈ round 69 (0.9 h for LIFL at
    # ~47 s/round), ResNet-152 ≈ round 150 (1.9 h at ~46 s/round).
    "resnet18": AccuracyCurve(a_max=0.82, tau=36.0),
    "resnet34": AccuracyCurve(a_max=0.83, tau=40.0),
    "resnet152": AccuracyCurve(a_max=0.84, tau=83.7),
    "mlp-small": AccuracyCurve(a_max=0.93, tau=6.0, noise_scale=0.0),
}


def curve_for(model_name: str) -> AccuracyCurve:
    """Preset learning curve for a model (keyed like ``model_spec``)."""
    try:
        return _CURVES[model_name]
    except KeyError:
        raise ConfigError(f"no learning curve for {model_name!r}; have {sorted(_CURVES)}") from None
