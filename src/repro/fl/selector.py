"""The selector (§2.2): client selection + gateway mediation.

Two roles, per the paper: (1) choose a diverse set of participants so the
round sees a representative data sample; (2) act as the gateway-facing
mediator mapping selected clients to backend aggregators — in LIFL, to
worker-node gateways, which is exactly the placement plan's client→node
grouping (§5.1).

Resilience: LIFL "enhances resilience by over-provisioning the number of
clients" (§3) — the selector picks ``ceil(goal × over_provision)`` clients
so that the aggregation goal is met even if some clients drop out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.common.errors import ConfigError
from repro.fl.client import FLClient


@dataclass(frozen=True)
class SelectorConfig:
    """Selection policy knobs."""

    aggregation_goal: int
    over_provision: float = 1.2
    #: "diverse": weight selection by unique data size; "uniform": plain
    diversity: str = "uniform"

    def __post_init__(self) -> None:
        if self.aggregation_goal < 1:
            raise ConfigError("aggregation_goal must be >= 1")
        if self.over_provision < 1.0:
            raise ConfigError("over_provision must be >= 1.0")
        if self.diversity not in ("uniform", "diverse"):
            raise ConfigError(f"unknown diversity policy {self.diversity!r}")


class Selector:
    """Round-wise client selection over the available population."""

    def __init__(self, config: SelectorConfig) -> None:
        self.config = config

    def target_count(self) -> int:
        """Clients to select, including the over-provisioning margin."""
        return int(np.ceil(self.config.aggregation_goal * self.config.over_provision))

    def select(self, available: list[FLClient], rng: np.random.Generator) -> list[FLClient]:
        """Choose participants for one round.

        Fewer available clients than the target is fine — FL proceeds with
        what it has as long as the aggregation goal can eventually be met.
        """
        if not available:
            raise ConfigError("no clients available for selection")
        want = min(self.target_count(), len(available))
        if self.config.diversity == "uniform":
            idx = rng.choice(len(available), size=want, replace=False)
            return [available[int(i)] for i in idx]
        # "diverse": sample-size-proportional without replacement, favouring
        # clients with more (hence likely more varied) local data.
        weights = np.array([max(1, c.num_samples) for c in available], dtype=float)
        probs = weights / weights.sum()
        idx = rng.choice(len(available), size=want, replace=False, p=probs)
        return [available[int(i)] for i in idx]

    def select_available(
        self,
        clients: list[FLClient],
        rng: np.random.Generator,
        is_available: Callable[[str], bool],
    ) -> list[FLClient]:
        """Availability-aware selection: filter the population through an
        availability predicate (e.g. an
        :class:`~repro.traces.models.AvailabilityTrace` evaluated at the
        round's arrival instant), then select from whoever is up.

        Returns an empty list when nobody is available — trace-driven
        serving treats that round as unformable rather than erroring, so
        day-night participation dips thin rounds instead of crashing the
        replay.
        """
        pool = [c for c in clients if is_available(c.client_id)]
        if not pool:
            return []
        return self.select(pool, rng)
