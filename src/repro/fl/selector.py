"""The selector (§2.2): client selection + gateway mediation.

Two roles, per the paper: (1) choose a diverse set of participants so the
round sees a representative data sample; (2) act as the gateway-facing
mediator mapping selected clients to backend aggregators — in LIFL, to
worker-node gateways, which is exactly the placement plan's client→node
grouping (§5.1).

Resilience: LIFL "enhances resilience by over-provisioning the number of
clients" (§3) — the selector picks ``ceil(goal × over_provision)`` clients
so that the aggregation goal is met even if some clients drop out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.common.errors import ConfigError
from repro.fl.client import FLClient

if TYPE_CHECKING:
    from repro.fl.population import ClientPopulation


@dataclass(frozen=True)
class SelectorConfig:
    """Selection policy knobs."""

    aggregation_goal: int
    over_provision: float = 1.2
    #: "diverse": weight selection by unique data size; "uniform": plain
    diversity: str = "uniform"

    def __post_init__(self) -> None:
        if self.aggregation_goal < 1:
            raise ConfigError("aggregation_goal must be >= 1")
        if self.over_provision < 1.0:
            raise ConfigError("over_provision must be >= 1.0")
        if self.diversity not in ("uniform", "diverse"):
            raise ConfigError(f"unknown diversity policy {self.diversity!r}")


class Selector:
    """Round-wise client selection over the available population."""

    def __init__(self, config: SelectorConfig) -> None:
        self.config = config

    def target_count(self) -> int:
        """Clients to select, including the over-provisioning margin."""
        return int(np.ceil(self.config.aggregation_goal * self.config.over_provision))

    def select(self, available: list[FLClient], rng: np.random.Generator) -> list[FLClient]:
        """Choose participants for one round.

        Fewer available clients than the target is fine — FL proceeds with
        what it has as long as the aggregation goal can eventually be met.
        """
        if not available:
            raise ConfigError("no clients available for selection")
        want = min(self.target_count(), len(available))
        if self.config.diversity == "uniform":
            idx = rng.choice(len(available), size=want, replace=False)
            return [available[int(i)] for i in idx]
        # "diverse": sample-size-proportional without replacement, favouring
        # clients with more (hence likely more varied) local data.
        weights = np.array([max(1, c.num_samples) for c in available], dtype=float)
        probs = weights / weights.sum()
        idx = rng.choice(len(available), size=want, replace=False, p=probs)
        return [available[int(i)] for i in idx]

    def select_available(
        self,
        clients: list[FLClient],
        rng: np.random.Generator,
        is_available: Callable[[str], bool],
    ) -> list[FLClient]:
        """Availability-aware selection: filter the population through an
        availability predicate (e.g. an
        :class:`~repro.traces.models.AvailabilityTrace` evaluated at the
        round's arrival instant), then select from whoever is up.

        Returns an empty list when nobody is available — trace-driven
        serving treats that round as unformable rather than erroring, so
        day-night participation dips thin rounds instead of crashing the
        replay.
        """
        pool = [c for c in clients if is_available(c.client_id)]
        if not pool:
            return []
        return self.select(pool, rng)

    def select_population(
        self,
        population: "ClientPopulation",
        rng: np.random.Generator,
        mask: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`select_available` over a struct-of-arrays
        :class:`~repro.fl.population.ClientPopulation`.

        ``mask`` is the availability mask (e.g.
        ``population.available_mask(at)``); returns the selected client
        *indices* in draw order.  Consumes the RNG stream exactly like the
        per-object path — same ``rng.choice`` call over a pool of the same
        size in the same order — so for matching populations the two paths
        pick the same clients (property-tested).  Empty pool returns an
        empty index array (the unformable-round case).
        """
        pool = np.flatnonzero(mask)
        if pool.size == 0:
            return pool
        want = min(self.target_count(), pool.size)
        if self.config.diversity == "uniform":
            idx = rng.choice(pool.size, size=want, replace=False)
            return pool[idx]
        weights = np.maximum(1, population.num_samples[pool]).astype(float)
        probs = weights / weights.sum()
        idx = rng.choice(pool.size, size=want, replace=False, p=probs)
        return pool[idx]
