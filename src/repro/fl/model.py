"""Model parameter containers and the paper's model specs.

:class:`Model` is a named dict of NumPy arrays with the arithmetic the
aggregation path needs (weighted accumulate, scale, distance).  For the
cluster-scale experiments the *contents* of ResNet parameters don't matter —
only their wire size does — so :class:`ModelSpec` records the byte sizes the
paper uses (§4.1/§6.1: ResNet-18 ≈ 44 MB, ResNet-34 ≈ 83 MB, ResNet-152 ≈
232 MB) and can materialize dummy parameter blocks when a real payload is
required (e.g. the runtime examples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.common.errors import ConfigError
from repro.common.units import MB, RESNET18_BYTES, RESNET34_BYTES, RESNET152_BYTES


@dataclass(frozen=True)
class ModelSpec:
    """Static description of a model as the platform sees it."""

    name: str
    nbytes: float
    #: mean seconds for one client to train a local epoch on reference
    #: hardware (scaled by per-client speed factors)
    local_train_seconds: float

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ConfigError(f"model {self.name}: nbytes must be positive")
        if self.local_train_seconds < 0:
            raise ConfigError(f"model {self.name}: negative train time")

    @property
    def param_count(self) -> int:
        """float32 parameter count implied by the wire size."""
        return int(self.nbytes // 4)

    def dummy_parameters(self, rng: np.random.Generator | None = None, max_bytes: float = 8 * MB) -> "Model":
        """A real parameter block of (capped) representative size — used by
        the runtime examples and tests, where moving full 232 MB payloads
        would only slow the suite without changing behaviour."""
        nbytes = min(self.nbytes, max_bytes)
        n = max(1, int(nbytes // 4))
        if rng is None:
            data = np.zeros(n, dtype=np.float32)
        else:
            data = rng.standard_normal(n).astype(np.float32)
        return Model({"block": data})


_SPECS: dict[str, ModelSpec] = {
    # local_train_seconds calibrated in §6.2 terms: ResNet-18 clients are
    # compute-constrained mobile devices (8 per physical node); ResNet-152
    # clients are dedicated servers.
    "resnet18": ModelSpec("resnet18", RESNET18_BYTES, local_train_seconds=12.0),
    "resnet34": ModelSpec("resnet34", RESNET34_BYTES, local_train_seconds=35.0),
    "resnet152": ModelSpec("resnet152", RESNET152_BYTES, local_train_seconds=35.0),
    # small, actually-trainable model used by examples and small-scale runs
    "mlp-small": ModelSpec("mlp-small", 0.3 * MB, local_train_seconds=0.05),
}


def model_spec(name: str) -> ModelSpec:
    """Look up a model spec by name (``resnet18``/``resnet34``/``resnet152``
    /``mlp-small``)."""
    try:
        return _SPECS[name]
    except KeyError:
        raise ConfigError(f"unknown model {name!r}; have {sorted(_SPECS)}") from None


class Model:
    """Named parameter tensors with aggregation arithmetic.

    Arrays are float32 by convention (the wire sizes above assume it).
    Operations return new models; in-place accumulation is explicit via
    :meth:`add_scaled_` for the hot aggregation path.
    """

    def __init__(self, params: Mapping[str, np.ndarray]) -> None:
        if not params:
            raise ConfigError("model must have at least one parameter tensor")
        self._params = {k: np.asarray(v) for k, v in params.items()}

    # -- container protocol ---------------------------------------------------
    def __getitem__(self, name: str) -> np.ndarray:
        return self._params[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._params)

    def __len__(self) -> int:
        return len(self._params)

    def items(self) -> Iterator[tuple[str, np.ndarray]]:
        return iter(self._params.items())

    def keys(self) -> list[str]:
        return list(self._params)

    def as_dict(self) -> dict[str, np.ndarray]:
        return dict(self._params)

    @property
    def nbytes(self) -> int:
        return sum(int(v.nbytes) for v in self._params.values())

    # -- construction helpers ---------------------------------------------------
    def copy(self) -> "Model":
        return Model({k: v.copy() for k, v in self._params.items()})

    def zeros_like(self) -> "Model":
        return Model({k: np.zeros_like(v) for k, v in self._params.items()})

    @staticmethod
    def weighted_sum(models: "list[Model]", weights: "list[float] | np.ndarray") -> "Model":
        """``Σ w_i · m_i`` in one vectorized pass per tensor.

        The batched equivalent of folding each model in with
        :meth:`add_scaled_`; large aggregation fan-ins go through here so
        the inner loop runs in NumPy instead of Python (see
        ``FedAvgAccumulator.add_batch``).  Accumulation dtype follows each
        tensor's dtype, like the serial path.
        """
        if not models:
            raise ConfigError("weighted_sum needs at least one model")
        if len(models) != len(weights):
            raise ConfigError(
                f"weighted_sum: {len(models)} models but {len(weights)} weights"
            )
        first = models[0]
        for other in models[1:]:
            first._check_compatible(other)
        out: dict[str, np.ndarray] = {}
        w64 = np.asarray(weights, dtype=np.float64)
        for k, ref in first._params.items():
            stacked = np.stack([m._params[k] for m in models])
            w = w64.astype(ref.dtype, copy=False) if ref.dtype != np.float64 else w64
            out[k] = np.tensordot(w, stacked.reshape(len(models), -1), axes=(0, 0)).reshape(
                ref.shape
            )
        return Model(out)

    # -- arithmetic ---------------------------------------------------------------
    def _check_compatible(self, other: "Model") -> None:
        if self.keys() != other.keys():
            raise ConfigError(
                f"incompatible models: {self.keys()} vs {other.keys()}"
            )
        for k in self._params:
            if self._params[k].shape != other._params[k].shape:
                raise ConfigError(f"shape mismatch on {k!r}")

    def add_scaled_(self, other: "Model", scale: float) -> "Model":
        """In-place ``self += scale * other`` (the FedAvg accumulate)."""
        self._check_compatible(other)
        for k in self._params:
            self._params[k] += scale * other._params[k]
        return self

    def scaled(self, scale: float) -> "Model":
        return Model({k: v * scale for k, v in self._params.items()})

    def delta_from(self, reference: "Model") -> "Model":
        """``self − reference`` (a model *update* relative to the global)."""
        self._check_compatible(reference)
        return Model({k: self._params[k] - reference._params[k] for k in self._params})

    def distance_to(self, other: "Model") -> float:
        """L2 distance over all parameters (convergence diagnostics)."""
        self._check_compatible(other)
        total = 0.0
        for k in self._params:
            diff = self._params[k] - other._params[k]
            total += float(np.dot(diff.ravel(), diff.ravel()))
        return float(np.sqrt(total))

    def allclose(self, other: "Model", rtol: float = 1e-5, atol: float = 1e-7) -> bool:
        self._check_compatible(other)
        return all(
            np.allclose(self._params[k], other._params[k], rtol=rtol, atol=atol)
            for k in self._params
        )

    def flatten(self) -> np.ndarray:
        """All parameters as one vector (deterministic key order)."""
        return np.concatenate([self._params[k].ravel() for k in sorted(self._params)])

    def __repr__(self) -> str:
        return f"Model({len(self)} tensors, {self.nbytes} bytes)"
