"""Federated-learning substrate.

Everything the aggregation platform moves around and computes on:

* :mod:`repro.fl.model` — model parameter containers and the paper's model
  size specs (ResNet-18/34/152 wire sizes);
* :mod:`repro.fl.fedavg` — FedAvg with *cumulative* weighted averaging (the
  property that makes eager aggregation correct, §2.1/Fig. 1);
* :mod:`repro.fl.algorithms` — server optimizers beyond FedAvg (FedAdagrad,
  FedAdam, FedYogi from Reddi et al., cited in §7) and FedProx's client
  proximal term;
* :mod:`repro.fl.datasets` — synthetic non-IID federated datasets with
  FedScale-like client heterogeneity;
* :mod:`repro.fl.training` — a real NumPy MLP with SGD, used by clients that
  actually train (small-model runs and all examples);
* :mod:`repro.fl.client` — FL clients: local training + availability
  behaviour (mobile hibernation vs always-on servers, §6.2);
* :mod:`repro.fl.selector` — client selection and gateway mediation;
* :mod:`repro.fl.convergence` — calibrated accuracy-vs-round curves for
  ResNet-scale workloads (see DESIGN.md substitution table).
"""

from repro.fl.algorithms import (
    FedAdagrad,
    FedAdam,
    FedAvgServer,
    FedYogi,
    ServerOptimizer,
    make_server_optimizer,
)
from repro.fl.client import ClientConfig, FLClient
from repro.fl.convergence import AccuracyCurve, curve_for
from repro.fl.datasets import FederatedDataset, make_federated_dataset
from repro.fl.fedavg import FedAvgAccumulator, ModelUpdate
from repro.fl.model import Model, ModelSpec, model_spec
from repro.fl.selector import Selector, SelectorConfig
from repro.fl.training import MLP, LocalTrainer, TrainingConfig

__all__ = [
    "AccuracyCurve",
    "ClientConfig",
    "FLClient",
    "FedAdagrad",
    "FedAdam",
    "FedAvgAccumulator",
    "FedAvgServer",
    "FedYogi",
    "FederatedDataset",
    "LocalTrainer",
    "MLP",
    "Model",
    "ModelSpec",
    "ModelUpdate",
    "Selector",
    "SelectorConfig",
    "ServerOptimizer",
    "TrainingConfig",
    "curve_for",
    "make_federated_dataset",
    "make_server_optimizer",
    "model_spec",
]
