"""Synthetic non-IID federated datasets (FEMNIST/FedScale stand-in).

The paper trains on FEMNIST with FedScale's real client-data mapping
("non-IID datasets ... to keep the setting realistic with different data
distributions across the client population", §6.2).  Offline, we generate
the same statistical structure deterministically:

* features are Gaussian mixtures, one component per class, so the task is
  genuinely learnable by the NumPy models in :mod:`repro.fl.training`;
* per-client sample counts follow a power law (FedScale's hallmark
  heavy-tailed client sizes);
* per-client class proportions are Dirichlet(α) draws — small α gives the
  strongly non-IID label skew of handwriting-by-author datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng


@dataclass(frozen=True)
class ClientShard:
    """One client's local dataset."""

    client_id: str
    features: np.ndarray  # (n_samples, dim) float32
    labels: np.ndarray  # (n_samples,) int64

    @property
    def num_samples(self) -> int:
        return int(self.labels.shape[0])


@dataclass
class FederatedDataset:
    """All client shards plus a held-out centralized test set."""

    shards: dict[str, ClientShard]
    test_features: np.ndarray
    test_labels: np.ndarray
    num_classes: int
    dim: int
    #: class-conditional means, kept for tests/diagnostics
    class_means: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def num_clients(self) -> int:
        return len(self.shards)

    def shard(self, client_id: str) -> ClientShard:
        try:
            return self.shards[client_id]
        except KeyError:
            raise ConfigError(f"unknown client {client_id!r}") from None

    def total_samples(self) -> int:
        return sum(s.num_samples for s in self.shards.values())

    def sample_counts(self) -> dict[str, int]:
        return {cid: s.num_samples for cid, s in self.shards.items()}


def make_federated_dataset(
    n_clients: int = 100,
    num_classes: int = 10,
    dim: int = 32,
    mean_samples: int = 60,
    min_samples: int = 8,
    dirichlet_alpha: float = 0.5,
    powerlaw_exponent: float = 1.5,
    class_sep: float = 3.0,
    noise: float = 1.0,
    test_samples: int = 1000,
    seed: int = 0,
) -> FederatedDataset:
    """Generate a learnable, heterogeneous federated classification task.

    ``dirichlet_alpha`` controls label skew (lower → more non-IID);
    ``powerlaw_exponent`` controls the sample-count tail (FedScale-like);
    ``class_sep`` controls task difficulty (distance between class means).
    """
    if n_clients < 1:
        raise ConfigError(f"n_clients must be >= 1, got {n_clients}")
    if num_classes < 2:
        raise ConfigError(f"num_classes must be >= 2, got {num_classes}")
    if min_samples < 1 or mean_samples < min_samples:
        raise ConfigError("need mean_samples >= min_samples >= 1")
    rng = make_rng(seed, "federated-dataset")

    # Class geometry: well-separated Gaussian means on a random sphere.
    means = rng.standard_normal((num_classes, dim))
    means *= class_sep / np.linalg.norm(means, axis=1, keepdims=True)

    # FedScale-like heavy-tailed sample counts, rescaled to the target mean.
    raw = rng.pareto(powerlaw_exponent, size=n_clients) + 1.0
    counts = np.maximum(min_samples, (raw / raw.mean() * mean_samples)).astype(int)

    shards: dict[str, ClientShard] = {}
    for i in range(n_clients):
        cid = f"client{i:04d}"
        n = int(counts[i])
        # Label skew: Dirichlet class proportions per client.
        probs = rng.dirichlet(np.full(num_classes, dirichlet_alpha))
        labels = rng.choice(num_classes, size=n, p=probs).astype(np.int64)
        feats = means[labels] + noise * rng.standard_normal((n, dim))
        shards[cid] = ClientShard(cid, feats.astype(np.float32), labels)

    test_labels = rng.integers(0, num_classes, size=test_samples).astype(np.int64)
    test_feats = means[test_labels] + noise * rng.standard_normal((test_samples, dim))
    return FederatedDataset(
        shards=shards,
        test_features=test_feats.astype(np.float32),
        test_labels=test_labels,
        num_classes=num_classes,
        dim=dim,
        class_means=means,
    )
