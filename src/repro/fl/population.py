"""Struct-of-arrays client population for 100k-client rounds.

:func:`repro.workloads.fedscale.make_population` builds one
:class:`~repro.fl.client.FLClient` object per client — fine at 2,800, but a
100k-client population costs hundreds of thousands of Python objects and a
per-object method call for every draw.  :class:`ClientPopulation` keeps the
same statistical population as parallel numpy arrays — speed factors,
FedAvg weights (sample counts), availability windows in CSR form, per-client
state and next-event time — so availability queries, selection, and timing
draws are single vectorized kernels.

Three contracts keep it honest:

* **generation parity** — :meth:`ClientPopulation.generate` consumes the
  same named RNG streams with the same formulas as ``make_population``, so
  speed factors and sample counts are byte-identical to the per-object
  path for the same ``(n, profile, seed)``;
* **draw parity** — :meth:`training_durations` / :meth:`hibernations`
  produce exactly the floats a loop of per-object
  ``FLClient.training_duration`` / ``FLClient.hibernation`` calls would,
  because a single ``rng.uniform(..., size=k)`` call consumes the PCG64
  stream identically to ``k`` sequential scalar draws (property-tested);
* **layer discipline** — nothing here is imported by the round engine; the
  population plugs in above the stage registries, via
  :meth:`~repro.fl.selector.Selector.select_population` and the replay
  loop's participant drawing, exactly where ``AvailabilityTrace`` +
  ``FLClient`` lists plug in today.

Availability windows are generated in one vectorized pass (batched
exponentials + a cumulative sum, rather than ``availability_trace``'s
per-client loop over per-client streams), which is what makes a 100k-client
horizon tractable; day-night gap modulation is inherently sequential and is
not supported here — use :func:`repro.traces.models.availability_trace`
when you need it.  Batched event coalescing on the engine side lives in the
``gateway-coalesced`` ingress stage (one walker process wakes each arrival
batch); :meth:`next_events` is the population-side counterpart — one call
yields every client's next churn instant, so a serving loop keeps a single
heap entry per *batch* of clients instead of one per client.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import RngRegistry, make_rng
from repro.fl.model import ModelSpec
from repro.traces.models import AvailabilityTrace
from repro.workloads.fedscale import MOBILE_PROFILE, PopulationProfile

__all__ = ["ClientPopulation"]

#: online/offline markers for the ``state`` array
OFFLINE, ONLINE = 0, 1


@dataclass
class ClientPopulation:
    """A homogeneous client fleet as parallel arrays (index = client)."""

    spec: ModelSpec
    prefix: str
    #: relative compute speeds (lognormal, FedScale-style)
    speed_factors: np.ndarray
    #: per-client dataset sizes — the FedAvg weights
    num_samples: np.ndarray
    hibernate_max: float
    #: availability windows, CSR over all clients: client ``i`` owns
    #: ``win_start[win_offsets[i]:win_offsets[i+1]]`` (sorted, [start, end))
    win_start: np.ndarray = field(default_factory=lambda: np.empty(0))
    win_end: np.ndarray = field(default_factory=lambda: np.empty(0))
    win_offsets: np.ndarray = field(default_factory=lambda: np.zeros(1, dtype=np.int64))
    horizon: float = 0.0
    #: optional per-client NIC capacity (bits/s); None = fabric default
    nic_bps: np.ndarray | None = None
    #: ONLINE/OFFLINE as of the last :meth:`advance` (uint8)
    state: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.uint8))
    #: next availability-boundary instant per client (inf = none left)
    next_event_at: np.ndarray = field(default_factory=lambda: np.empty(0))
    _row_index: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        n = self.size
        if len(self.num_samples) != n:
            raise ConfigError("speed_factors and num_samples lengths differ")
        if len(self.win_offsets) != n + 1:
            raise ConfigError(f"win_offsets must have {n + 1} entries")
        if len(self.win_start) != len(self.win_end):
            raise ConfigError("win_start and win_end lengths differ")
        if self.state.size == 0:
            self.state = np.zeros(n, dtype=np.uint8)
            self.next_event_at = np.full(n, np.inf)
            if self.total_windows:
                self.advance(0.0)

    # ------------------------------------------------------------- identity
    @property
    def size(self) -> int:
        return len(self.speed_factors)

    @property
    def total_windows(self) -> int:
        return len(self.win_start)

    def client_id(self, i: int) -> str:
        return f"{self.prefix}-{i:04d}"

    def ids(self, idx: np.ndarray | None = None) -> list[str]:
        rng = range(self.size) if idx is None else (int(i) for i in idx)
        return [self.client_id(i) for i in rng]

    def weights(self, idx: np.ndarray) -> np.ndarray:
        """FedAvg weights for the given client indices."""
        return self.num_samples[idx].astype(float)

    # ------------------------------------------------------------ generation
    @classmethod
    def generate(
        cls,
        n_clients: int,
        spec: ModelSpec | None = None,
        profile: PopulationProfile = MOBILE_PROFILE,
        seed: int = 0,
        horizon: float = 0.0,
        mean_session: float = 180.0,
        mean_gap: float = 60.0,
    ) -> "ClientPopulation":
        """Build the FedScale-style population as arrays.

        Speeds and sample counts replicate ``make_population`` draw for
        draw (same named streams, same formulas), so the SoA and
        per-object populations are the *same* population.  Availability
        windows (only when ``horizon > 0``) come from a separate batched
        stream, ``"population:windows"`` — per-client Exp(gap)/Exp(session)
        alternation with the usual session/(session+gap) initial-online
        coin, drawn as ``(n, m)`` matrices and cumulatively summed.
        """
        if n_clients < 1:
            raise ConfigError(f"n_clients must be >= 1, got {n_clients}")
        if spec is None:
            from repro.fl.model import model_spec

            spec = model_spec("resnet18")
        rngs = RngRegistry(seed)
        speeds = rngs.stream("speeds").lognormal(0.0, profile.speed_sigma, size=n_clients)
        raw = rngs.stream("samples").pareto(profile.samples_exponent, size=n_clients) + 1.0
        counts = np.maximum(10, raw / raw.mean() * profile.samples_mean).astype(int)
        pop = cls(
            spec=spec,
            prefix=profile.name,
            speed_factors=speeds,
            num_samples=counts.astype(np.int64),
            hibernate_max=profile.hibernate_max,
            win_offsets=np.zeros(n_clients + 1, dtype=np.int64),
        )
        if horizon > 0.0:
            pop._generate_windows(seed, horizon, mean_session, mean_gap)
            pop.advance(0.0)
        return pop

    def _generate_windows(
        self, seed: int, horizon: float, mean_session: float, mean_gap: float
    ) -> None:
        if mean_session <= 0 or mean_gap <= 0:
            raise ConfigError("session/gap means must be positive")
        n = self.size
        rng = make_rng(seed, "population:windows")
        online0 = rng.uniform(size=n) < mean_session / (mean_session + mean_gap)
        # Enough alternations that a client almost surely covers the horizon;
        # the stragglers get a scalar top-up below.
        m = int(horizon / (mean_session + mean_gap) * 3.0) + 8
        sessions = rng.exponential(mean_session, size=(n, m))
        gaps = rng.exponential(mean_gap, size=(n, m))
        dur = np.empty((n, 2 * m))
        dur[online0, 0::2] = sessions[online0]
        dur[online0, 1::2] = gaps[online0]
        dur[~online0, 0::2] = gaps[~online0]
        dur[~online0, 1::2] = sessions[~online0]
        b = np.concatenate([np.zeros((n, 1)), np.cumsum(dur, axis=1)], axis=1)
        starts = np.where(online0[:, None], b[:, 0 : 2 * m : 2], b[:, 1 : 2 * m : 2])
        ends = np.where(online0[:, None], b[:, 1 : 2 * m + 1 : 2], b[:, 2 : 2 * m + 2 : 2])
        # Rare rows whose 2m alternations end short of the horizon: continue
        # the alternation with scalar draws (state after 2m flips = initial).
        extra: dict[int, list[tuple[float, float]]] = {}
        for i in np.flatnonzero(b[:, -1] < horizon):
            t = float(b[i, -1])
            online = bool(online0[i])
            spans: list[tuple[float, float]] = []
            while t < horizon:
                if online:
                    end = t + float(rng.exponential(mean_session))
                    spans.append((t, min(end, horizon)))
                    t = end
                else:
                    t += float(rng.exponential(mean_gap))
                online = not online
            if spans:
                extra[int(i)] = spans
        valid = starts < horizon
        ends = np.minimum(ends, horizon)
        counts = valid.sum(axis=1) + np.array(
            [len(extra.get(i, ())) for i in range(n)], dtype=np.int64
        )
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        if extra:
            ws = np.empty(int(offsets[-1]))
            we = np.empty(int(offsets[-1]))
            for i in range(n):
                row = starts[i, valid[i]]
                lo, hi = offsets[i], offsets[i] + len(row)
                ws[lo:hi] = row
                we[lo:hi] = ends[i, valid[i]]
                for j, (s, e) in enumerate(extra.get(i, ())):
                    ws[hi + j] = s
                    we[hi + j] = e
        else:
            ws = starts[valid]
            we = ends[valid]
        self.win_start, self.win_end, self.win_offsets = ws, we, offsets
        self.horizon = horizon
        self._row_index = None

    # ------------------------------------------------------------- availability
    def _rows(self) -> np.ndarray:
        if self._row_index is None or len(self._row_index) != self.total_windows:
            self._row_index = np.repeat(
                np.arange(self.size, dtype=np.int64), np.diff(self.win_offsets)
            )
        return self._row_index

    def available_mask(self, at: float) -> np.ndarray:
        """Boolean mask over clients: inside an availability window at
        ``at``.  One vectorized pass over all windows — no per-client loop.
        A population without windows is always-on (server profile)."""
        if self.total_windows == 0:
            return np.ones(self.size, dtype=bool)
        hit = (self.win_start <= at) & (at < self.win_end)
        mask = np.zeros(self.size, dtype=bool)
        mask[self._rows()[hit]] = True
        return mask

    def next_events(self, at: float) -> np.ndarray:
        """Each client's next availability boundary strictly after ``at``
        (inf when none remain) — the batched-coalescing primitive: one call
        replaces a heap entry per client with one wake per churn batch."""
        if self.total_windows == 0:
            return np.full(self.size, np.inf)
        cand = np.where(
            self.win_start > at,
            self.win_start,
            np.where(self.win_end > at, self.win_end, np.inf),
        )
        out = np.full(self.size, np.inf)
        np.minimum.at(out, self._rows(), cand)
        return out

    def advance(self, at: float) -> None:
        """Refresh the ``state`` and ``next_event_at`` arrays to ``at``."""
        self.state = self.available_mask(at).astype(np.uint8)
        self.next_event_at = self.next_events(at)

    def to_availability_trace(self) -> AvailabilityTrace:
        """Materialize the CSR windows as a per-id ``AvailabilityTrace``
        (cross-path tests and small-scale interop; O(n) Python)."""
        windows: dict[str, tuple[tuple[float, float], ...]] = {}
        off = self.win_offsets
        for i in range(self.size):
            spans = tuple(
                (float(s), float(e))
                for s, e in zip(self.win_start[off[i] : off[i + 1]], self.win_end[off[i] : off[i + 1]])
            )
            windows[self.client_id(i)] = spans
        return AvailabilityTrace(horizon=self.horizon, windows=windows)

    # ------------------------------------------------------------ timing draws
    def training_durations(self, rng: np.random.Generator, idx: np.ndarray) -> np.ndarray:
        """Batched ``FLClient.training_duration``: reference epoch time over
        client speed, ±20% jitter — one uniform draw per selected client,
        byte-identical to the scalar loop."""
        base = self.spec.local_train_seconds / self.speed_factors[idx]
        return base * rng.uniform(0.8, 1.2, size=len(idx))

    def hibernations(self, rng: np.random.Generator, idx: np.ndarray) -> np.ndarray:
        """Batched ``FLClient.hibernation``; always-on populations draw
        nothing (the scalar path consumes no stream either)."""
        if self.hibernate_max <= 0:
            return np.zeros(len(idx))
        return rng.uniform(0.0, self.hibernate_max, size=len(idx))
