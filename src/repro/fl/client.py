"""FL clients: local training plus availability behaviour (§6.2).

Two client populations appear in the paper's workloads:

* **mobile** (ResNet-18 setup): compute-constrained devices that hibernate
  for a random interval in [0, 60] s between availability windows, creating
  the fluctuating arrival rate of Fig. 10(a);
* **server** (ResNet-152 setup): dedicated, always-on machines producing the
  stable arrivals of Fig. 10(d).

A client is *logical*: its training may be real (small models — the trainer
actually runs SGD on its shard) or *timed* (ResNet-scale models — only the
training duration and the update's wire size matter to the platform).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigError
from repro.fl.datasets import ClientShard
from repro.fl.fedavg import ModelUpdate
from repro.fl.model import Model, ModelSpec
from repro.fl.training import LocalTrainer


@dataclass(frozen=True)
class ClientConfig:
    """Behavioural parameters for one client."""

    client_id: str
    #: relative compute speed (1.0 = reference hardware; FedScale-style
    #: heterogeneity draws these from a lognormal)
    speed_factor: float = 1.0
    #: mobile clients hibernate U[0, hibernate_max] s between rounds (§6.2);
    #: 0 means always-on (server clients)
    hibernate_max: float = 0.0

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ConfigError(f"{self.client_id}: speed_factor must be positive")
        if self.hibernate_max < 0:
            raise ConfigError(f"{self.client_id}: negative hibernate_max")


class FLClient:
    """One participant: data shard + behaviour + (optionally real) training."""

    def __init__(
        self,
        config: ClientConfig,
        spec: ModelSpec,
        shard: ClientShard | None = None,
        trainer: LocalTrainer | None = None,
    ) -> None:
        self.config = config
        self.spec = spec
        self.shard = shard
        self.trainer = trainer
        self.rounds_participated = 0

    @property
    def client_id(self) -> str:
        return self.config.client_id

    @property
    def num_samples(self) -> int:
        """Sample count used as the FedAvg weight; timed clients without a
        shard report a nominal weight of 1."""
        return self.shard.num_samples if self.shard is not None else 1

    # -- timing model (drives the simulation platforms) ----------------------
    def training_duration(self, rng: np.random.Generator) -> float:
        """Seconds of local training for one round on this client: the model
        spec's reference epoch time, scaled by client speed, with ±20%
        run-to-run jitter."""
        base = self.spec.local_train_seconds / self.config.speed_factor
        return float(base * rng.uniform(0.8, 1.2))

    def hibernation(self, rng: np.random.Generator) -> float:
        """Seconds of unavailability before this client starts training."""
        if self.config.hibernate_max <= 0:
            return 0.0
        return float(rng.uniform(0.0, self.config.hibernate_max))

    # -- real training (small models) -------------------------------------------
    def train(self, global_model: Model, rng: np.random.Generator) -> ModelUpdate:
        """Run actual local SGD on the shard; returns the model update."""
        if self.shard is None or self.trainer is None:
            raise ConfigError(
                f"{self.client_id}: real training requires a shard and trainer"
            )
        params, _ = self.trainer.train(global_model, self.shard, rng)
        self.rounds_participated += 1
        return ModelUpdate(model=params, weight=float(self.shard.num_samples), producer=self.client_id)


def make_client_population(
    n_clients: int,
    spec: ModelSpec,
    hibernate_max: float,
    rng: np.random.Generator,
    speed_lognorm_sigma: float = 0.3,
) -> list[FLClient]:
    """Generate a heterogeneous timed-client population (ResNet workloads):
    lognormal speed factors, uniform hibernation behaviour."""
    if n_clients < 1:
        raise ConfigError(f"n_clients must be >= 1, got {n_clients}")
    clients = []
    speeds = rng.lognormal(mean=0.0, sigma=speed_lognorm_sigma, size=n_clients)
    for i in range(n_clients):
        cfg = ClientConfig(
            client_id=f"client{i:04d}",
            speed_factor=float(speeds[i]),
            hibernate_max=hibernate_max,
        )
        clients.append(FLClient(cfg, spec))
    return clients
