"""Server optimizers and client-side algorithm variants.

The paper's evaluation uses plain FedAvg; §7 cites the adaptive federated
optimizers of Reddi et al. (2020) — FedAdagrad / FedAdam / FedYogi — and
FedProx (Li et al., 2020) as orthogonal algorithm work LIFL complements.
They are implemented here so the platform demonstrably supports them: each
consumes the aggregated *pseudo-gradient* (global minus averaged model) and
produces the next global model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigError
from repro.fl.fedavg import ModelUpdate
from repro.fl.model import Model


class ServerOptimizer:
    """Interface: fold one round's aggregate into the global model."""

    def step(self, global_model: Model, round_average: ModelUpdate) -> Model:
        raise NotImplementedError


class FedAvgServer(ServerOptimizer):
    """Vanilla FedAvg: the new global model *is* the weighted average."""

    def step(self, global_model: Model, round_average: ModelUpdate) -> Model:
        return round_average.model.copy()


@dataclass
class _AdaptiveServer(ServerOptimizer):
    """Common machinery for the Reddi et al. family.

    Maintains first moment m and second moment v over the pseudo-gradient
    Δ = avg − global; subclasses define the v update rule.
    """

    eta: float = 0.1  # server learning rate
    beta1: float = 0.9
    beta2: float = 0.99
    tau: float = 1e-3  # adaptivity floor
    _m: Model | None = field(default=None, repr=False)
    _v: dict[str, np.ndarray] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.beta1 < 1 or not 0 <= self.beta2 < 1:
            raise ConfigError("betas must be in [0, 1)")
        if self.eta <= 0 or self.tau <= 0:
            raise ConfigError("eta and tau must be positive")

    def step(self, global_model: Model, round_average: ModelUpdate) -> Model:
        delta = round_average.model.delta_from(global_model)
        if self._m is None:
            self._m = delta.zeros_like()
            self._v = {k: np.full_like(v, self.tau**2) for k, v in delta.items()}
        assert self._v is not None
        self._m = self._m.scaled(self.beta1).add_scaled_(delta, 1.0 - self.beta1)
        new_params: dict[str, np.ndarray] = {}
        for k, d in delta.items():
            self._v[k] = self._update_v(self._v[k], np.square(d))
            step = self.eta * self._m[k] / (np.sqrt(self._v[k]) + self.tau)
            new_params[k] = global_model[k] + step
        return Model(new_params)

    def _update_v(self, v: np.ndarray, d2: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class FedAdagrad(_AdaptiveServer):
    """v accumulates: v ← v + Δ²."""

    def _update_v(self, v: np.ndarray, d2: np.ndarray) -> np.ndarray:
        return v + d2


class FedAdam(_AdaptiveServer):
    """v is an EMA: v ← β₂ v + (1 − β₂) Δ²."""

    def _update_v(self, v: np.ndarray, d2: np.ndarray) -> np.ndarray:
        return self.beta2 * v + (1.0 - self.beta2) * d2


class FedYogi(_AdaptiveServer):
    """Yogi's sign-controlled update: v ← v − (1 − β₂) Δ² sign(v − Δ²)."""

    def _update_v(self, v: np.ndarray, d2: np.ndarray) -> np.ndarray:
        return v - (1.0 - self.beta2) * d2 * np.sign(v - d2)


_SERVER_OPTS = {
    "fedavg": FedAvgServer,
    "fedadagrad": FedAdagrad,
    "fedadam": FedAdam,
    "fedyogi": FedYogi,
}


def make_server_optimizer(name: str, **kwargs: float) -> ServerOptimizer:
    """Factory by name (``fedavg``/``fedadagrad``/``fedadam``/``fedyogi``)."""
    try:
        cls = _SERVER_OPTS[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown server optimizer {name!r}; have {sorted(_SERVER_OPTS)}"
        ) from None
    return cls(**kwargs) if kwargs else cls()


def fedprox_proximal_gradient(local: Model, global_model: Model, mu: float) -> Model:
    """FedProx's proximal-term gradient μ(w − w_global), added to the local
    loss gradient during client training to bound client drift."""
    if mu < 0:
        raise ConfigError(f"mu must be non-negative, got {mu}")
    return local.delta_from(global_model).scaled(mu)
