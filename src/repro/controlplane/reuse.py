"""Opportunistic reuse of aggregator runtimes (§5.3).

LIFL's aggregators use homogenized runtimes — same code and libraries for
every role — so an idle warm instance can change role without restarting:

* a **leaf** that finished its task converts to the node's **middle**;
* the **first middle to finish** its local aggregation converts to **top**.

:class:`WarmPool` tracks warm idle runtimes per node and converts instead of
cold-starting whenever possible, counting cold starts vs reuses so the
Fig. 8(c) "# of aggregators created" series falls out directly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.controlplane.hierarchy import Role


@dataclass
class RuntimeHandle:
    """One sandboxed aggregator runtime (the atomic management unit,
    Appendix D)."""

    runtime_id: str
    node: str
    role: Role
    warm: bool = True
    generation: int = 0  # bumps on each role conversion

    def convert(self, new_role: Role) -> None:
        """Role change without restart — "no further change is required as
        LIFL's aggregator runtime is stateless"."""
        self.role = new_role
        self.generation += 1


@dataclass
class WarmPool:
    """Per-node pools of idle warm runtimes + lifecycle counters."""

    keep_warm: bool = True
    _idle: dict[str, list[RuntimeHandle]] = field(default_factory=dict)
    _seq: "itertools.count[int]" = field(default_factory=itertools.count)
    cold_starts: int = 0
    reuses: int = 0
    terminations: int = 0

    def idle_count(self, node: str) -> int:
        return len(self._idle.get(node, []))

    def total_idle(self) -> int:
        return sum(len(v) for v in self._idle.values())

    def acquire(self, node: str, role: Role) -> tuple[RuntimeHandle, bool]:
        """Obtain a runtime for ``role`` on ``node``.

        Returns ``(handle, was_cold_start)``.  Prefers converting an idle
        warm runtime (LIFO — most recently idled is warmest); cold-starts
        otherwise.
        """
        pool = self._idle.get(node)
        if pool:
            handle = pool.pop()
            handle.convert(role)
            self.reuses += 1
            return handle, False
        handle = RuntimeHandle(
            runtime_id=f"rt{next(self._seq)}@{node}", node=node, role=role, warm=True
        )
        self.cold_starts += 1
        return handle, True

    def release(self, handle: RuntimeHandle) -> None:
        """Return a finished runtime to its node's idle pool (or terminate
        it when keep-warm is disabled — the SL baseline's behaviour)."""
        if not self.keep_warm:
            self.terminations += 1
            return
        self._idle.setdefault(handle.node, []).append(handle)

    def evict_node(self, node: str) -> int:
        """Terminate all idle runtimes on a node (scale-down). Returns the
        number evicted."""
        evicted = len(self._idle.pop(node, []))
        self.terminations += evicted
        return evicted

    def prewarm(self, node: str, count: int, role: Role = Role.LEAF) -> None:
        """Stock a node's pool ahead of a planned hierarchy ("importance of
        having warm aggregators based on the pre-planned hierarchy", §6.1)."""
        if count < 0:
            raise ConfigError(f"prewarm count must be non-negative, got {count}")
        for _ in range(count):
            handle = RuntimeHandle(
                runtime_id=f"rt{next(self._seq)}@{node}", node=node, role=role, warm=True
            )
            self.cold_starts += 1
            self._idle.setdefault(node, []).append(handle)
