"""The per-node LIFL agent (Fig. 3).

Deployed on every worker node, the agent:

* manages the lifecycle of local aggregators (create / terminate), following
  coordinator instructions;
* owns the shared-memory object store (allocation / recycling / destruction,
  §4.1) and submits model checkpoints (Appendix B);
* programs the node's routing state — sockmap entries and SKMSG routes for
  intra-node, gateway routing-table entries for inter-node (Appendix A) —
  each time the hierarchy is renewed;
* periodically drains the eBPF metrics map and reports to the metrics
  server.

This class drives the **real runtime** of :mod:`repro.runtime`; the
simulation experiments use the same planning outputs but apply them to
simulated aggregators.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.common.errors import RoutingError
from repro.controlplane.hierarchy import HierarchyPlan
from repro.controlplane.metrics import MetricsServer
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.gateway import Gateway
from repro.runtime.metrics_map import MetricsMap
from repro.runtime.object_store import SharedMemoryObjectStore
from repro.runtime.skmsg import SkMsgRouter
from repro.runtime.sockmap import Endpoint, SockMap


class NodeAgent:
    """Control-plane agent for one worker node of the real runtime."""

    def __init__(
        self,
        node: str,
        metrics_server: Optional[MetricsServer] = None,
        checkpoint_dir: Optional[str] = None,
        store_capacity_bytes: float = float("inf"),
    ) -> None:
        self.node = node
        self.store = SharedMemoryObjectStore(capacity_bytes=store_capacity_bytes, node=node)
        self.sockmap = SockMap(node)
        self.metrics_map = MetricsMap(node)
        self.router = SkMsgRouter(self.sockmap, self.metrics_map, self.store)
        self.gateway = Gateway(node, self.store, self.router)
        self.metrics_server = metrics_server
        self.checkpoints = CheckpointManager(checkpoint_dir) if checkpoint_dir else None
        self._local_aggregators: set[str] = set()
        self._drain_count = 0

    # -- aggregator lifecycle ------------------------------------------------
    def register_aggregator(self, agg_id: str, endpoint: Endpoint) -> None:
        """Create-side registration: install the aggregator's socket."""
        self.sockmap.update(agg_id, endpoint)
        self._local_aggregators.add(agg_id)

    def terminate_aggregator(self, agg_id: str) -> None:
        if agg_id not in self._local_aggregators:
            raise RoutingError(f"agent {self.node}: {agg_id!r} is not local")
        self.sockmap.delete(agg_id)
        self._local_aggregators.discard(agg_id)

    def local_aggregators(self) -> set[str]:
        return set(self._local_aggregators)

    # -- route programming (online hierarchy update, App. A) -----------------
    def apply_routes(
        self,
        plan: HierarchyPlan,
        agents_by_node: Mapping[str, "NodeAgent"],
    ) -> None:
        """Install this node's slice of a hierarchy plan's routes.

        For every local source aggregator: route to its parent.  If the
        parent is local its socket is already in the sockmap; otherwise the
        sockmap points at the gateway and the gateway learns the remote
        node's gateway (Fig. 12).
        """
        for src_id, dst_id in plan.routes().items():
            src = plan.aggregators[src_id]
            if src.node != self.node:
                continue
            dst = plan.aggregators[dst_id]
            self.router.set_route(src_id, dst_id)
            if dst.node == self.node:
                continue  # destination socket installed by its own agent
            remote = agents_by_node.get(dst.node)
            if remote is None:
                raise RoutingError(
                    f"agent {self.node}: no agent for remote node {dst.node!r}"
                )
            self.sockmap.update(dst_id, self.gateway)
            self.gateway.add_inter_node_route(dst_id, dst.node, remote.gateway)

    # -- metrics drain cycle ---------------------------------------------------
    def drain_metrics(self, now: float = 0.0, window: float = 1.0) -> dict[str, float]:
        """Drain the eBPF metrics map and report k/E to the metrics server.

        ``window`` is the drain period used to turn counters into rates.
        Returns ``{"arrival_rate": k, "exec_time": E}`` for tests.
        """
        drained = self.metrics_map.drain()
        self._drain_count += 1
        updates = sum(m.updates_aggregated for m in drained.values())
        exec_total = sum(m.exec_time_total for m in drained.values())
        exec_count = sum(m.exec_time_count for m in drained.values())
        arrival_rate = updates / window if window > 0 else 0.0
        exec_time = exec_total / exec_count if exec_count else 0.0
        if self.metrics_server is not None:
            self.metrics_server.report(
                self.node, arrival_rate, exec_time, updates_seen=updates, now=now
            )
        return {"arrival_rate": arrival_rate, "exec_time": exec_time}

    # -- checkpoints (App. B) ----------------------------------------------------
    def checkpoint_model(self, version: int, params: Mapping[str, np.ndarray]) -> None:
        """Asynchronously persist the global model (no ACT impact)."""
        if self.checkpoints is None:
            raise RoutingError(f"agent {self.node}: checkpointing not configured")
        self.checkpoints.submit(version, params)

    def close(self) -> None:
        if self.checkpoints is not None:
            self.checkpoints.flush()
            self.checkpoints.close()
        self.store.destroy()

    def __enter__(self) -> "NodeAgent":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
