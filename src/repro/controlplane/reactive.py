"""The closed-loop control plane: a reactive controller in virtual time.

Everything else in the serving stack is open-loop — warm-pool sizes,
per-tenant admission limits, and hierarchy placement are fixed for a whole
replay while :class:`~repro.traces.slo.SloTracker` watches attainment
passively and the fabric's chaos state is invisible to placement.
:class:`Controller` closes the loop: a tick process on the replay's
environment samples three signals —

* **queue depth** per tenant (bounded admission queue + deferral room),
* **SLO burn rate** (the tracker's windowed attainment,
  :meth:`SloTracker.burn_rate <repro.traces.slo.SloTracker.burn_rate>`),
* **node health** (one :meth:`Fabric.node_health()
  <repro.cluster.network.Fabric.node_health>` snapshot per decision) —

and emits typed :class:`ControlAction` records as it actuates:

* **reactive warm-pool scaling** — provision warm aggregator runtimes
  ahead of demand (they become idle-warm after ``pool_spinup_s``) and
  retire idle ones when the queue drains, never below the quorum floor;
* **per-tenant admission limits** — raise a backlogged tenant's
  concurrent-round limit toward ``limit_max`` while the burn rate is
  acceptable, cut it back toward the configured base when the tenant is
  idle or the service is burning its SLO budget;
* **chaos-aware placement** — restrict placement to nodes whose health
  snapshot clears ``min_rate_factor``, re-checking the chosen plan
  against a *fresh* snapshot immediately before install and retrying with
  backoff when a chosen node degraded in between;
* **graceful shedding** — sweep the deferral queues every tick and shed
  entries whose deadline passed (the replay owns the deferral mechanics;
  the controller owns the clock that expires them).

Every scale decision is **hysteretic and bounded**: a signal must persist
for ``hysteresis_ticks`` consecutive ticks before the controller acts, and
each action moves at most one configured step — the loop cannot oscillate
on a flapping signal, and ``limit_min >= 1`` guarantees no tenant is ever
starved outright.

Determinism: the controller takes no random draws at all.  Its tick
timeline interleaves with the replay's events purely through virtual time
and deterministic insertion order, so a controller-enabled replay is
byte-reproducible from the scenario seed — per shard, under
:class:`~repro.traces.shard.ShardedReplayEngine`, exactly as unsharded.
When no :class:`ControllerConfig` is given the replay never constructs a
controller and its output is byte-identical to a build without this
module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.common.errors import ConfigError, LiflError

if TYPE_CHECKING:
    from repro.cluster.network import Fabric
    from repro.controlplane.hierarchy import HierarchyPlan
    from repro.core.stages import WarmState
    from repro.sim.engine import Environment
    from repro.telemetry.bus import TelemetryBus
    from repro.traces.slo import SloTracker

__all__ = [
    "ACTION_KINDS",
    "ControlAction",
    "Controller",
    "ControllerConfig",
    "ControllerReport",
    "DeadlineExceeded",
]


class DeadlineExceeded(LiflError):
    """A round overran the controller's ``round_deadline_s`` watchdog and
    was aborted — the graceful alternative to serving a round that a
    partitioned or degraded node has stalled indefinitely."""

    def __init__(self, label: str, deadline_s: float) -> None:
        super().__init__(f"round {label} exceeded its {deadline_s}s deadline")
        self.label = label
        self.deadline_s = deadline_s


#: every action kind the controller can emit (row keys derive from these)
ACTION_KINDS = (
    "pool-up",
    "pool-down",
    "limit-up",
    "limit-down",
    "defer",
    "shed",
    "replan",
    "deadline-abort",
)


@dataclass(frozen=True)
class ControlAction:
    """One typed control decision, for the action log."""

    at: float
    kind: str
    target: str
    delta: int = 0
    reason: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ACTION_KINDS:
            raise ConfigError(f"unknown control action kind {self.kind!r}")


@dataclass
class ControllerReport:
    """What the control loop did: tick count, per-kind action tally, and
    the full typed action log (dropped when shard reports merge — only the
    tallies fold, the logs stay per shard)."""

    ticks: int = 0
    counts: dict[str, int] = field(
        default_factory=lambda: {kind: 0 for kind in ACTION_KINDS}
    )
    actions: list[ControlAction] = field(default_factory=list)

    def record(self, action: ControlAction) -> None:
        self.counts[action.kind] += 1
        self.actions.append(action)

    def merge(self, other: "ControllerReport") -> None:
        self.ticks += other.ticks
        for kind, n in other.counts.items():
            self.counts[kind] = self.counts.get(kind, 0) + n

    def row(self) -> dict:
        """Flat scenario-row columns (``ctl_`` prefixed)."""
        out = {"ctl_ticks": self.ticks}
        for kind in ACTION_KINDS:
            out[f"ctl_{kind.replace('-', '_')}"] = self.counts.get(kind, 0)
        return out


@dataclass(frozen=True)
class ControllerConfig:
    """Knob panel for one reactive control loop.

    Every feature degrades to a no-op when disabled; a config with all
    four features off still ticks but never acts — useful as an ablation
    control, and pinned by the property tests to perturb nothing.
    """

    #: sampling tick of the control loop (virtual seconds)
    tick_interval_s: float = 1.0

    # -- reactive warm-pool scaling
    pool_scaling: bool = True
    #: ceiling on warm instances (idle + still spinning up) fleet-wide
    pool_max: int = 64
    #: most instances provisioned or retired per tick (bounded step)
    pool_step: int = 2
    #: delay before a provisioned instance is actually idle-warm
    pool_spinup_s: float = 2.0

    # -- per-tenant admission limits
    admission_control: bool = True
    limit_min: int = 1
    limit_max: int = 8
    limit_step: int = 1
    #: queued rounds per tenant that count as backlog (scale-up signal)
    queue_high: int = 2
    #: queued rounds per tenant at or below which the tenant is idle
    queue_low: int = 0
    #: burn rate above which limits are cut (the service is saturated)
    burn_high: float = 0.5
    #: burn rate below which scale-downs toward the base limit may run
    burn_low: float = 0.1
    #: sliding window feeding the burn rate (SloTracker.window_s)
    burn_window_s: float = 60.0
    #: consecutive ticks a signal must persist before the controller acts
    hysteresis_ticks: int = 2

    # -- chaos-aware placement
    placement_aware: bool = True
    #: nodes whose snapshot rate factor sits below this are avoided
    min_rate_factor: float = 0.5
    #: re-placement attempts before the round is shed
    placement_retries: int = 3
    retry_backoff_s: float = 1.0

    # -- graceful shedding / watchdog
    #: how long an arrival may wait in the deferral room past the bounded
    #: queue before it is shed (0 rejects at overflow, as without a
    #: controller)
    defer_deadline_s: float = 30.0
    #: admitted rounds are aborted after this long in flight (0 disables)
    round_deadline_s: float = 0.0

    def validate(self) -> None:
        if self.tick_interval_s <= 0:
            raise ConfigError("tick_interval_s must be positive")
        if self.pool_max < 0 or self.pool_step < 1:
            raise ConfigError("pool_max must be >= 0 and pool_step >= 1")
        if self.pool_spinup_s < 0:
            raise ConfigError("pool_spinup_s must be >= 0")
        if self.limit_min < 1:
            raise ConfigError("limit_min must be >= 1 (a tenant must never starve)")
        if self.limit_max < self.limit_min:
            raise ConfigError("limit_max must be >= limit_min")
        if self.limit_step < 1:
            raise ConfigError("limit_step must be >= 1")
        if self.queue_low < 0 or self.queue_high < self.queue_low:
            raise ConfigError("need 0 <= queue_low <= queue_high")
        if not 0.0 <= self.burn_low <= self.burn_high <= 1.0:
            raise ConfigError("need 0 <= burn_low <= burn_high <= 1")
        if self.burn_window_s <= 0:
            raise ConfigError("burn_window_s must be positive")
        if self.hysteresis_ticks < 1:
            raise ConfigError("hysteresis_ticks must be >= 1")
        if not 0.0 < self.min_rate_factor <= 1.0:
            raise ConfigError("min_rate_factor must be in (0, 1]")
        if self.placement_retries < 0 or self.retry_backoff_s < 0:
            raise ConfigError("placement retries/backoff must be >= 0")
        if self.defer_deadline_s < 0 or self.round_deadline_s < 0:
            raise ConfigError("deadlines must be >= 0")


class _Hysteresis:
    """Per-signal persistence counter: ``push(active)`` returns True only
    after the signal held for ``need`` consecutive observations, then
    re-arms (so a sustained signal fires once every ``need`` ticks — the
    bounded-step pacing)."""

    __slots__ = ("need", "count")

    def __init__(self, need: int) -> None:
        self.need = need
        self.count = 0

    def push(self, active: bool) -> bool:
        if not active:
            self.count = 0
            return False
        self.count += 1
        if self.count >= self.need:
            self.count = 0
            return True
        return False


class Controller:
    """One replay's reactive control loop.

    The replay constructs the controller with live handles into its
    serving state — the shared fabric, the engine's warm pool, the SLO
    tracker, and read/act callbacks — then calls :meth:`start`.  The tick
    process ends itself once ``is_done`` reports every offered round
    settled, so the environment drains normally.
    """

    def __init__(
        self,
        config: ControllerConfig,
        env: "Environment",
        fabric: "Fabric",
        warm: "WarmState",
        tracker: "SloTracker",
        node_names: list[str],
        n_tenants: int,
        base_limit: int,
        pool_floor: int = 0,
        queue_depth: Callable[[int], int] | None = None,
        on_limit_raised: Callable[[int], None] | None = None,
        sweep_deferred: Callable[[float], None] | None = None,
        telemetry: "TelemetryBus | None" = None,
    ) -> None:
        config.validate()
        self.config = config
        self.env = env
        self.fabric = fabric
        self.warm = warm
        self.tracker = tracker
        self.node_names = list(node_names)
        self.n_tenants = n_tenants
        #: the quorum floor: the controller never retires the pool below
        #: this many idle-warm instances fleet-wide
        self.pool_floor = pool_floor
        self._queue_depth = queue_depth or (lambda _t: 0)
        self._on_limit_raised = on_limit_raised
        self._sweep_deferred = sweep_deferred
        #: resolved telemetry bus or None (the replay resolves and guards;
        #: a standalone controller may pass a bus directly)
        self._telemetry = telemetry.or_none() if telemetry is not None else None
        #: per-tenant admission limits, actuated in place (the replay
        #: reads these); the configured base is also the scale-down target
        self.base_limit = max(config.limit_min, min(config.limit_max, base_limit))
        self.limits = [self.base_limit] * n_tenants
        self.report = ControllerReport()
        #: warm instances provisioned but not yet idle (spinning up)
        self._spinning = 0
        need = config.hysteresis_ticks
        self._up = [_Hysteresis(need) for _ in range(n_tenants)]
        self._down = [_Hysteresis(need) for _ in range(n_tenants)]
        self._pool_up = _Hysteresis(need)
        self._pool_down = _Hysteresis(need)

    # ------------------------------------------------------------- lifecycle
    def start(self, is_done: Callable[[], bool]) -> None:
        from repro.sim.engine import Process

        Process(self.env, self._run(is_done), "controlplane:tick")

    def _run(self, is_done: Callable[[], bool]):
        interval = self.config.tick_interval_s
        while not is_done():
            yield self.env.timeout(interval)
            self.tick()

    # ------------------------------------------------------------------ tick
    def tick(self) -> None:
        """One control decision: sweep deferrals, read the three signals,
        actuate limits and the warm pool."""
        now = self.env.now
        self.report.ticks += 1
        if self._sweep_deferred is not None:
            self._sweep_deferred(now)
        burn = self.tracker.burn_rate(now)
        if self._telemetry is not None:
            self._telemetry.emit(
                "controller-tick",
                now,
                burn=burn,
                pool=self.warm.total(),
                spinning=self._spinning,
                limits=list(self.limits),
            )
        if self.config.admission_control:
            self._tick_limits(now, burn)
        if self.config.pool_scaling:
            self._tick_pool(now, burn)

    def _record(self, at: float, kind: str, target: str, delta: int, reason: str) -> None:
        self.report.record(ControlAction(at, kind, target, delta, reason))
        if self._telemetry is not None:
            self._telemetry.emit(
                "control-action", at, action=kind, target=target, delta=delta, reason=reason
            )

    # -- admission limits ---------------------------------------------------
    def _tick_limits(self, now: float, burn: float) -> None:
        cfg = self.config
        for t in range(self.n_tenants):
            depth = self._queue_depth(t)
            limit = self.limits[t]
            overload = burn >= cfg.burn_high
            backlog = depth >= cfg.queue_high and not overload
            if self._up[t].push(backlog) and limit < cfg.limit_max:
                step = min(cfg.limit_step, cfg.limit_max - limit)
                self.limits[t] = limit + step
                self._record(now, "limit-up", f"tenant{t}", step, f"queue={depth}")
                if self._on_limit_raised is not None:
                    self._on_limit_raised(t)
                continue
            # Scale down under SLO burn (protect the service) or back
            # toward the configured base once the tenant goes idle.
            idle = depth <= cfg.queue_low and burn <= cfg.burn_low and limit > self.base_limit
            cut = overload and limit > cfg.limit_min
            if self._down[t].push(cut or idle):
                floor = cfg.limit_min if cut else self.base_limit
                step = min(cfg.limit_step, limit - floor)
                if step > 0:
                    self.limits[t] = limit - step
                    reason = f"burn={burn:.2f}" if cut else f"queue={depth}"
                    self._record(now, "limit-down", f"tenant{t}", -step, reason)

    # -- warm pool ----------------------------------------------------------
    def pool_demand(self) -> int:
        """Warm instances the backlog will want: queued rounds times the
        per-round instance estimate (set by the replay via
        ``instances_per_round``)."""
        queued = sum(self._queue_depth(t) for t in range(self.n_tenants))
        return queued * max(1, self.instances_per_round)

    #: instances one admitted round materializes (leaves + internal nodes);
    #: the replay sets this from the platform config before starting
    instances_per_round: int = 1

    def _tick_pool(self, now: float, burn: float) -> None:
        cfg = self.config
        total = self.warm.total() + self._spinning
        demand = self.pool_demand()
        grow = demand > total and total < cfg.pool_max
        if self._pool_up.push(grow):
            step = min(cfg.pool_step, cfg.pool_max - total, demand - total)
            if step > 0:
                self._provision(now, step)
                self._record(now, "pool-up", "pool", step, f"demand={demand}")
            return
        shrink = (
            demand == 0
            and burn <= cfg.burn_low
            and self._spinning == 0
            and self.warm.total() > self.pool_floor
        )
        if self._pool_down.push(shrink):
            step = min(cfg.pool_step, self.warm.total() - self.pool_floor)
            retired = self._retire(step)
            if retired > 0:
                self._record(now, "pool-down", "pool", -retired, "idle")

    def _provision(self, now: float, count: int) -> None:
        """Spin up ``count`` warm instances on the nodes demand has been
        observed on (the warm pool's known nodes, least-stocked first);
        they join the pool after ``pool_spinup_s``."""
        targets = sorted(self.warm.idle) or [self.node_names[0]]
        picks: list[str] = []
        for i in range(count):
            picks.append(min(targets, key=lambda n: (self.warm.idle.get(n, 0) + picks.count(n), n)))
        self._spinning += count
        spinup = self.config.pool_spinup_s
        if spinup <= 0:
            for node in picks:
                self.warm.put(node)
            self._spinning -= count
            return

        def ready(_evt, nodes=tuple(picks)) -> None:
            for node in nodes:
                self.warm.put(node)
            self._spinning -= len(nodes)

        self.env.timeout(spinup).callbacks.append(ready)

    def _retire(self, count: int) -> int:
        """Take up to ``count`` idle instances out of the pool, most-stocked
        nodes first, never dipping below the quorum floor."""
        retired = 0
        while retired < count and self.warm.total() > self.pool_floor:
            node = max(self.warm.idle, key=lambda n: (self.warm.idle[n], n), default=None)
            if node is None or not self.warm.take(node):
                break
            retired += 1
        return retired

    # -- chaos-aware placement ----------------------------------------------
    def healthy_nodes(self) -> list[str]:
        """Nodes whose *fresh* health snapshot clears the placement bar
        (not partitioned, rate factor at or above ``min_rate_factor``), in
        fleet order.  May be empty — the caller decides the fallback."""
        bar = self.config.min_rate_factor
        health = self.fabric.node_health()
        return [
            name
            for name in self.node_names
            if not health[name].partitioned and health[name].rate_factor >= bar
        ]

    def plan_unhealthy(self, plan: "HierarchyPlan") -> list[str]:
        """Plan nodes failing a fresh health snapshot — the between-plan-
        and-install re-check.  Non-empty means the plan must not install."""
        bar = self.config.min_rate_factor
        health = self.fabric.node_health()
        used = {spec.node for spec in plan.aggregators.values()}
        return sorted(
            n
            for n in used
            if health[n].partitioned or health[n].rate_factor < bar
        )


def pool_floor_for(quorum_fraction: float, round_updates: int, updates_per_leaf: int) -> int:
    """The quorum floor: warm instances needed to serve a quorum-sized
    round — the leaves covering ``ceil(quorum_fraction × round_updates)``
    updates plus the top aggregator.  The controller never scales the pool
    below this, so a freshly arrived round can always warm-start its
    quorum-critical tree."""
    if not 0.0 < quorum_fraction <= 1.0:
        raise ConfigError("quorum_fraction must be in (0, 1]")
    quorum_updates = math.ceil(quorum_fraction * round_updates)
    return math.ceil(quorum_updates / max(1, updates_per_leaf)) + 1
