"""Autoscaling: hierarchy-aware (LIFL, §5.2) vs threshold-based (baseline).

LIFL periodically re-plans the hierarchy on each node from the smoothed
queue estimate ``Q_i,t = k_i,t × E_i,t``, smoothed by an EWMA with
``α = 0.7`` ("based on it yielding the best results in our experiments") to
avoid over-allocating on short-term spikes.  The default re-plan period is
the paper's 2-minute cycle.

The baseline :class:`ThresholdAutoscaler` models the Knative/OpenFaaS
behaviour described in §2.3: a target concurrency per replica, no awareness
of the aggregation hierarchy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.controlplane.hierarchy import HierarchyPlan, plan_hierarchy


class EwmaEstimator:
    """Exponentially weighted moving average over queue estimates.

    The paper's recurrence (§5.2): ``Q̄_t = α × Q̄_{t−1} + (1 − α) × Q_t``,
    with α = 0.7 — heavier weight on history, damping spikes.
    """

    def __init__(self, alpha: float = 0.7) -> None:
        if not 0.0 <= alpha < 1.0:
            raise ConfigError(f"EWMA alpha must be in [0, 1), got {alpha}")
        self.alpha = alpha
        self._value: float | None = None

    @property
    def value(self) -> float:
        """Current smoothed estimate (0 before any observation)."""
        return 0.0 if self._value is None else self._value

    @property
    def initialized(self) -> bool:
        return self._value is not None

    def update(self, observation: float) -> float:
        """Fold in one observation; returns the new smoothed value."""
        if observation < 0:
            raise ConfigError(f"negative queue observation: {observation}")
        if self._value is None:
            self._value = float(observation)
        else:
            self._value = self.alpha * self._value + (1.0 - self.alpha) * observation
        return self._value

    def reset(self) -> None:
        self._value = None


@dataclass
class HierarchyAwareAutoscaler:
    """LIFL's autoscaler: per-node EWMA estimates → hierarchy plans.

    Drive it with :meth:`observe` as per-node metrics arrive (from the
    metrics server), then call :meth:`replan` on the planning cycle.
    """

    alpha: float = 0.7
    updates_per_leaf: int = 2
    replan_period: float = 120.0
    _estimators: dict[str, EwmaEstimator] = field(default_factory=dict)
    _round: int = 0

    def __post_init__(self) -> None:
        if self.updates_per_leaf < 1:
            raise ConfigError("updates_per_leaf must be >= 1")
        if self.replan_period <= 0:
            raise ConfigError("replan_period must be positive")

    def observe(self, node: str, arrival_rate: float, exec_time: float) -> float:
        """Feed one (k_i,t, E_i,t) sample; returns the smoothed Q̄_i,t."""
        est = self._estimators.setdefault(node, EwmaEstimator(self.alpha))
        return est.update(arrival_rate * exec_time)

    def observe_queue(self, node: str, queue_length: float) -> float:
        """Feed a directly-measured queue length (Fig. 8's experiments
        "assume the estimated Q_i,t is equal to the actual queue length")."""
        est = self._estimators.setdefault(node, EwmaEstimator(self.alpha))
        return est.update(queue_length)

    def smoothed(self, node: str) -> float:
        est = self._estimators.get(node)
        return est.value if est is not None else 0.0

    def replan(self, top_node: str | None = None) -> HierarchyPlan:
        """Produce the next hierarchy plan from current estimates."""
        pending = {n: int(round(e.value)) for n, e in self._estimators.items()}
        plan = plan_hierarchy(
            pending,
            updates_per_leaf=self.updates_per_leaf,
            top_node=top_node,
            round_id=self._round,
        )
        self._round += 1
        return plan


@dataclass
class ThresholdAutoscaler:
    """§2.3's application-agnostic baseline: replicas = ceil(load/target).

    ``target_concurrency`` is the user-set requests-per-replica knob.  The
    scaler is *reactive*: it only sees current concurrency, so scaling a
    function chain cold-starts level by level (the "cascading effect" the
    paper cites), which callers model by charging one cold start per level.
    """

    target_concurrency: float = 2.0
    max_replicas: int = 1000
    min_replicas: int = 0

    def __post_init__(self) -> None:
        if self.target_concurrency <= 0:
            raise ConfigError("target_concurrency must be positive")
        if self.min_replicas < 0 or self.max_replicas < max(1, self.min_replicas):
            raise ConfigError("invalid replica bounds")

    def desired_replicas(self, observed_concurrency: float) -> int:
        """Replica count for the observed in-flight request count."""
        if observed_concurrency < 0:
            raise ConfigError(f"negative concurrency: {observed_concurrency}")
        want = math.ceil(observed_concurrency / self.target_concurrency)
        return int(min(self.max_replicas, max(self.min_replicas, want)))
