"""Topology Abstraction Graph (Appendix D).

The TAG is the control plane's generic description of connectivity and
placement affinity, borrowed from Flame: each graph node carries a ``role``
("aggregator" or "client"), each edge a ``channel`` naming the communication
mechanism, and channels carry a ``groupBy`` label — keeping the same label
clusters roles into a placement-affinity group for locality-aware placement.

Built on :mod:`networkx` so structural queries (roots, reachability,
topological order) come for free; the LIFL agent consumes
:meth:`TagGraph.routes` to program sockmaps and gateway routing tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import networkx as nx

from repro.common.errors import ConfigError
from repro.controlplane.hierarchy import HierarchyPlan


class ChannelMechanism(str, Enum):
    """The "channel" metadata: how two roles communicate."""

    SHARED_MEMORY = "shm"
    KERNEL = "kernel"


@dataclass(frozen=True)
class TagNode:
    """A role instance in the graph."""

    name: str
    role: str  # "aggregator" or "client"
    node: str = ""  # worker node, once placed


@dataclass(frozen=True)
class Channel:
    """Directed communication declaration between two roles."""

    src: str
    dst: str
    mechanism: ChannelMechanism
    group_by: str = ""


class TagGraph:
    """Mutable TAG with validation and route extraction."""

    def __init__(self) -> None:
        self._g = nx.DiGraph()

    # -- construction -------------------------------------------------------
    def add_role(self, name: str, role: str, node: str = "") -> None:
        if role not in ("aggregator", "client"):
            raise ConfigError(f"role must be 'aggregator' or 'client', got {role!r}")
        if name in self._g:
            raise ConfigError(f"role {name!r} already in TAG")
        self._g.add_node(name, role=role, node=node)

    def add_channel(
        self,
        src: str,
        dst: str,
        mechanism: ChannelMechanism | None = None,
        group_by: str = "",
    ) -> None:
        for endpoint in (src, dst):
            if endpoint not in self._g:
                raise ConfigError(f"channel endpoint {endpoint!r} not in TAG")
        if mechanism is None:
            src_node = self._g.nodes[src]["node"]
            dst_node = self._g.nodes[dst]["node"]
            same = src_node and src_node == dst_node
            mechanism = ChannelMechanism.SHARED_MEMORY if same else ChannelMechanism.KERNEL
        self._g.add_edge(src, dst, mechanism=mechanism, group_by=group_by)

    @classmethod
    def from_plan(cls, plan: HierarchyPlan) -> "TagGraph":
        """Derive the TAG for one hierarchy plan: aggregator roles wired
        child→parent, channels chosen by co-location, groupBy set to the
        worker node (the affinity label the placement engine honours)."""
        tag = cls()
        for agg in plan.aggregators.values():
            tag.add_role(agg.agg_id, "aggregator", node=agg.node)
        for agg in plan.aggregators.values():
            if agg.parent:
                parent = plan.aggregators[agg.parent]
                same = agg.node == parent.node
                tag.add_channel(
                    agg.agg_id,
                    agg.parent,
                    ChannelMechanism.SHARED_MEMORY if same else ChannelMechanism.KERNEL,
                    group_by=agg.node if same else "",
                )
        return tag

    # -- queries -------------------------------------------------------------
    def roles(self, kind: str | None = None) -> list[str]:
        if kind is None:
            return list(self._g.nodes)
        return [n for n, d in self._g.nodes(data=True) if d["role"] == kind]

    def role_of(self, name: str) -> str:
        return self._g.nodes[name]["role"]

    def worker_node_of(self, name: str) -> str:
        return self._g.nodes[name]["node"]

    def channel(self, src: str, dst: str) -> Channel:
        data = self._g.get_edge_data(src, dst)
        if data is None:
            raise ConfigError(f"no channel {src!r} -> {dst!r}")
        return Channel(src, dst, data["mechanism"], data["group_by"])

    def routes(self) -> dict[str, str]:
        """src → dst map for every aggregator with one outgoing channel
        (the DAG input the routing manager converts to sockmap entries)."""
        out: dict[str, str] = {}
        for src in self._g.nodes:
            succs = list(self._g.successors(src))
            if len(succs) == 1:
                out[src] = succs[0]
            elif len(succs) > 1:
                raise ConfigError(f"{src!r} has multiple outgoing channels; not a tree")
        return out

    def affinity_groups(self) -> dict[str, list[str]]:
        """groupBy label → roles sharing it (placement affinity, App. D)."""
        groups: dict[str, list[str]] = {}
        for src, dst, data in self._g.edges(data=True):
            label = data["group_by"]
            if not label:
                continue
            bucket = groups.setdefault(label, [])
            for endpoint in (src, dst):
                if endpoint not in bucket:
                    bucket.append(endpoint)
        return groups

    def shared_memory_fraction(self) -> float:
        """Fraction of channels served by shared memory — the quantity
        locality-aware placement maximizes."""
        edges = list(self._g.edges(data=True))
        if not edges:
            return 0.0
        shm = sum(1 for *_, d in edges if d["mechanism"] is ChannelMechanism.SHARED_MEMORY)
        return shm / len(edges)

    def validate_single_rooted(self) -> str:
        """Check the aggregator subgraph is a single-rooted in-tree; returns
        the root's name."""
        aggs = set(self.roles("aggregator"))
        sub = self._g.subgraph(aggs)
        roots = [n for n in sub.nodes if sub.out_degree(n) == 0]
        if len(roots) != 1:
            raise ConfigError(f"hierarchy must have exactly one root, found {roots}")
        if not nx.is_directed_acyclic_graph(sub):
            raise ConfigError("hierarchy contains a cycle")
        root = roots[0]
        for n in sub.nodes:
            if n != root and not nx.has_path(sub, n, root):
                raise ConfigError(f"{n!r} cannot reach the root {root!r}")
        return root

    def __len__(self) -> int:
        return len(self._g)

    def edge_count(self) -> int:
        return self._g.number_of_edges()
