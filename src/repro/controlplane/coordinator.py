"""The LIFL coordinator: one orchestration cycle end to end (Fig. 6).

Per planning cycle the coordinator:

1. pulls per-node load (arrival rate, execution time) from the metrics
   server,
2. runs locality-aware placement for the updates expected this cycle (§5.1),
3. re-plans each node's two-level hierarchy from the smoothed queue
   estimates (§5.2),
4. maps planned aggregators onto runtimes through the warm pool, reusing
   opportunistically (§5.3),
5. derives the TAG and the route updates the agents must apply (App. A/D).

The output is an :class:`OrchestrationDecision` — a pure data object the
simulation platforms and the real runtime both consume, so Fig. 8's ablation
toggles (placement policy, hierarchy planning, reuse, eager) exercise this
exact code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.controlplane.autoscaler import HierarchyAwareAutoscaler
from repro.controlplane.hierarchy import AggregatorSpec, HierarchyPlan
from repro.controlplane.metrics import MetricsServer
from repro.controlplane.placement import Placer, PlacementPlan, make_placer
from repro.controlplane.reuse import RuntimeHandle, WarmPool
from repro.controlplane.tag import TagGraph


@dataclass(frozen=True)
class OrchestrationConfig:
    """The ablation switches of Fig. 8 (① ② ③ ④) plus policy knobs."""

    placement_policy: str = "bestfit"  # ① locality-aware placement
    hierarchy_planning: bool = True  # ② hierarchy-aware scaling
    reuse_runtimes: bool = True  # ③ opportunistic reuse
    eager_aggregation: bool = True  # ④ eager aggregation
    updates_per_leaf: int = 2  # the paper's I
    ewma_alpha: float = 0.7
    replan_period: float = 120.0
    #: fallback fan-out when hierarchy planning is disabled: one flat level
    #: of aggregators each taking this many updates (threshold-autoscaler
    #: style, §2.3)
    flat_fan_in: int = 2

    def __post_init__(self) -> None:
        if self.flat_fan_in < 1:
            raise ConfigError("flat_fan_in must be >= 1")


@dataclass
class AggregatorAssignment:
    """A planned aggregator bound to a concrete runtime."""

    spec: AggregatorSpec
    runtime: RuntimeHandle
    cold_start: bool


@dataclass
class OrchestrationDecision:
    """Everything one cycle decided."""

    placement: PlacementPlan
    hierarchy: HierarchyPlan
    assignments: list[AggregatorAssignment] = field(default_factory=list)
    tag: TagGraph | None = None

    @property
    def cold_starts(self) -> int:
        return sum(1 for a in self.assignments if a.cold_start)

    @property
    def reused(self) -> int:
        return sum(1 for a in self.assignments if not a.cold_start)

    @property
    def aggregators_created(self) -> int:
        """Fig. 8(c)'s metric: new instances this cycle (reuse excluded)."""
        return self.cold_starts

    @property
    def nodes_used(self) -> int:
        return self.placement.node_count


class Coordinator:
    """Cluster-wide orchestrator combining all §5 policies."""

    def __init__(self, metrics: MetricsServer, config: OrchestrationConfig | None = None) -> None:
        self.metrics = metrics
        self.config = config or OrchestrationConfig()
        self.placer: Placer = make_placer(self.config.placement_policy)
        self.autoscaler = HierarchyAwareAutoscaler(
            alpha=self.config.ewma_alpha,
            updates_per_leaf=self.config.updates_per_leaf,
            replan_period=self.config.replan_period,
        )
        self.warm_pool = WarmPool(keep_warm=self.config.reuse_runtimes)
        self.cycles = 0

    def orchestrate(self, incoming_updates: int, top_node: str | None = None) -> OrchestrationDecision:
        """Run one full cycle for ``incoming_updates`` expected updates."""
        capacities = self.metrics.capacities()
        if not capacities:
            raise ConfigError("no nodes registered with the metrics server")
        placement = self.placer.place(incoming_updates, capacities)

        for node, count in placement.per_node.items():
            self.autoscaler.observe_queue(node, count)

        if self.config.hierarchy_planning:
            hierarchy = self.autoscaler.replan(top_node=top_node)
        else:
            hierarchy = self._flat_plan(placement, top_node)

        assignments = self._assign_runtimes(hierarchy)
        tag = TagGraph.from_plan(hierarchy) if hierarchy.aggregators else None
        self.cycles += 1
        return OrchestrationDecision(
            placement=placement, hierarchy=hierarchy, assignments=assignments, tag=tag
        )

    def release_round(self, decision: OrchestrationDecision) -> None:
        """Round finished: return runtimes to the warm pool (or terminate
        them when reuse is disabled)."""
        for a in decision.assignments:
            self.warm_pool.release(a.runtime)

    # -- internals -------------------------------------------------------------
    def _assign_runtimes(self, hierarchy: HierarchyPlan) -> list[AggregatorAssignment]:
        out: list[AggregatorAssignment] = []
        # Leaves first: they start working first, and under reuse the warm
        # pool may promote them to middle/top later in the round.
        ordered = sorted(hierarchy.aggregators.values(), key=lambda a: a.role.value, reverse=True)
        for spec in ordered:
            runtime, cold = self.warm_pool.acquire(spec.node, spec.role)
            out.append(AggregatorAssignment(spec=spec, runtime=runtime, cold_start=cold))
        return out

    def _flat_plan(self, placement: PlacementPlan, top_node: str | None) -> HierarchyPlan:
        """No hierarchy planning (②️ off): a flat level of fan-in
        ``flat_fan_in`` aggregators per node plus a top, mirroring what a
        threshold autoscaler would spawn for the same concurrency."""
        from repro.controlplane.hierarchy import plan_hierarchy

        pending = {n: c for n, c in placement.per_node.items() if c > 0}
        return plan_hierarchy(
            pending,
            updates_per_leaf=self.config.flat_fan_in,
            top_node=top_node,
            round_id=self.cycles,
        )
    # NOTE: the flat plan still needs a root to terminate aggregation; the
    # distinguishing cost of ② off is that leaf sizing ignores Q_i,t's EWMA
    # smoothing and the per-node middle consolidation is arbitrary.
