"""LIFL's control plane (§5).

Pure-logic implementations of the orchestration algorithms — the exact code
under test in Fig. 8 and the §6.1 overhead measurements:

* :mod:`repro.controlplane.placement` — locality-aware placement as
  bin-packing over residual service capacity (§5.1): BestFit (LIFL),
  FirstFit, WorstFit (≈ Knative "least connection", the SL-H baseline);
* :mod:`repro.controlplane.hierarchy` — two-level k-ary hierarchy plans per
  node (§5.2);
* :mod:`repro.controlplane.autoscaler` — hierarchy-aware autoscaling with
  EWMA-smoothed queue estimates (§5.2), plus the threshold autoscaler
  baseline (§2.3);
* :mod:`repro.controlplane.reuse` — opportunistic reuse of warm aggregator
  runtimes (§5.3);
* :mod:`repro.controlplane.tag` — the Topology Abstraction Graph used for
  fine-grained control (Appendix D);
* :mod:`repro.controlplane.metrics` — the metrics server fed by the
  eBPF-sidecar metrics maps;
* :mod:`repro.controlplane.agent` / :mod:`repro.controlplane.coordinator` —
  the per-node agent and the cluster-wide coordinator tying it together;
* :mod:`repro.controlplane.reactive` — the closed-loop reactive controller
  the trace replay runs in virtual time: warm-pool scaling, per-tenant
  admission limits, chaos-aware placement, and graceful shedding.
"""

from repro.controlplane.autoscaler import (
    EwmaEstimator,
    HierarchyAwareAutoscaler,
    ThresholdAutoscaler,
)
from repro.controlplane.coordinator import Coordinator, OrchestrationConfig
from repro.controlplane.hierarchy import (
    AggregatorSpec,
    HierarchyPlan,
    NodeHierarchy,
    Role,
    plan_hierarchy,
    plan_node_hierarchy,
)
from repro.controlplane.metrics import MetricsServer, NodeMetrics
from repro.controlplane.reactive import (
    ACTION_KINDS,
    ControlAction,
    Controller,
    ControllerConfig,
    ControllerReport,
    DeadlineExceeded,
    pool_floor_for,
)
from repro.controlplane.placement import (
    BestFitPlacer,
    FirstFitPlacer,
    NodeCapacity,
    Placer,
    PlacementPlan,
    WorstFitPlacer,
    make_placer,
)
from repro.controlplane.reuse import RuntimeHandle, WarmPool
from repro.controlplane.tag import Channel, TagGraph, TagNode

__all__ = [
    "ACTION_KINDS",
    "AggregatorSpec",
    "BestFitPlacer",
    "Channel",
    "ControlAction",
    "Controller",
    "ControllerConfig",
    "ControllerReport",
    "Coordinator",
    "DeadlineExceeded",
    "EwmaEstimator",
    "FirstFitPlacer",
    "HierarchyAwareAutoscaler",
    "HierarchyPlan",
    "MetricsServer",
    "NodeCapacity",
    "NodeHierarchy",
    "NodeMetrics",
    "OrchestrationConfig",
    "Placer",
    "PlacementPlan",
    "Role",
    "RuntimeHandle",
    "TagGraph",
    "TagNode",
    "ThresholdAutoscaler",
    "WarmPool",
    "WorstFitPlacer",
    "make_placer",
    "plan_hierarchy",
    "plan_node_hierarchy",
    "pool_floor_for",
]
