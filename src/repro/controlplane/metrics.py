"""The metrics server (Fig. 3) — the control plane's view of load.

Per-node arrival rates ``k_i,t`` and execution times ``E_i,t`` flow here
from the LIFL agents (which drain the eBPF metrics maps, §4.3).  The
autoscaler and placement engine read from this server; the §6.1 overhead
benchmark measures the estimate path end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.controlplane.placement import NodeCapacity


@dataclass
class NodeMetrics:
    """Rolling per-node load statistics."""

    node: str
    max_capacity: float
    arrival_rate: float = 0.0
    exec_time: float = 0.0
    updates_seen: int = 0
    last_report_time: float = 0.0

    @property
    def queue_estimate(self) -> float:
        """Q_i,t = k_i,t × E_i,t."""
        return self.arrival_rate * self.exec_time

    @property
    def residual_capacity(self) -> float:
        """RC_i,t = MC_i − k_i,t × E_i,t."""
        return self.max_capacity - self.queue_estimate

    def to_capacity(self) -> NodeCapacity:
        return NodeCapacity(
            name=self.node,
            max_capacity=self.max_capacity,
            arrival_rate=self.arrival_rate,
            exec_time=self.exec_time,
        )


class MetricsServer:
    """Cluster-wide metrics aggregation point."""

    def __init__(self) -> None:
        self._nodes: dict[str, NodeMetrics] = {}

    def register_node(self, node: str, max_capacity: float) -> None:
        if node in self._nodes:
            raise ConfigError(f"node {node!r} already registered")
        if max_capacity <= 0:
            raise ConfigError(f"max_capacity must be positive, got {max_capacity}")
        self._nodes[node] = NodeMetrics(node=node, max_capacity=max_capacity)

    def report(
        self,
        node: str,
        arrival_rate: float,
        exec_time: float,
        updates_seen: int = 0,
        now: float = 0.0,
    ) -> None:
        """Agent-side report of one metrics-drain cycle."""
        m = self._metrics(node)
        if arrival_rate < 0 or exec_time < 0:
            raise ConfigError("metrics must be non-negative")
        m.arrival_rate = arrival_rate
        m.exec_time = exec_time
        m.updates_seen += updates_seen
        m.last_report_time = now

    def node_metrics(self, node: str) -> NodeMetrics:
        return self._metrics(node)

    def capacities(self) -> list[NodeCapacity]:
        """Snapshot for the placement engine."""
        return [m.to_capacity() for m in self._nodes.values()]

    def queue_estimates(self) -> dict[str, float]:
        return {n: m.queue_estimate for n, m in self._nodes.items()}

    def nodes(self) -> list[str]:
        return list(self._nodes)

    def _metrics(self, node: str) -> NodeMetrics:
        try:
            return self._nodes[node]
        except KeyError:
            raise ConfigError(f"unknown node {node!r}; registered: {sorted(self._nodes)}") from None
