"""Hierarchy planning (§5.2 "Planning the Hierarchy for Aggregation").

LIFL plans a **two-level k-ary tree within each node**: ``Q_i,t / I`` leaf
aggregators (each consuming ``I`` client updates; the paper keeps ``I``
small, e.g. 2, to minimize a leaf's waiting time) feeding one "central"
middle aggregator.  Every active node produces an intermediate update that
is dispatched to the node chosen to host the **top** aggregator, which
updates the global model.  This caps cross-node transfers at one per active
node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import ConfigError


class Role(str, Enum):
    """Aggregator roles in the tree (Fig. 2(a) terminology)."""

    LEAF = "leaf"
    MIDDLE = "middle"
    TOP = "top"


@dataclass(frozen=True)
class AggregatorSpec:
    """One planned aggregator instance."""

    agg_id: str
    role: Role
    node: str
    #: how many updates this instance must aggregate before emitting
    fan_in: int
    #: aggregator ID the output is sent to ("" for the top aggregator)
    parent: str = ""

    def __post_init__(self) -> None:
        if self.fan_in < 1:
            raise ConfigError(f"{self.agg_id}: fan_in must be >= 1")
        if self.role is Role.TOP and self.parent:
            raise ConfigError(f"{self.agg_id}: top aggregator cannot have a parent")
        if self.role is not Role.TOP and not self.parent:
            raise ConfigError(f"{self.agg_id}: non-top aggregator needs a parent")


@dataclass(frozen=True)
class NodeHierarchy:
    """The per-node slice of the plan: leaf count plus the local middle."""

    node: str
    pending_updates: int
    leaf_count: int
    updates_per_leaf: int
    #: True when the node can skip the middle level (a single leaf's output
    #: goes straight up — degenerate but valid for tiny queues)
    collapsed: bool

    @property
    def aggregator_count(self) -> int:
        return self.leaf_count + (0 if self.collapsed else 1)


def plan_node_hierarchy(node: str, pending_updates: int, updates_per_leaf: int = 2) -> NodeHierarchy:
    """Size the two-level tree on one node for ``pending_updates``.

    ``updates_per_leaf`` is the paper's ``I``.  A node with at most ``I``
    updates needs a single (collapsed) aggregator.
    """
    if updates_per_leaf < 1:
        raise ConfigError(f"updates_per_leaf must be >= 1, got {updates_per_leaf}")
    if pending_updates < 0:
        raise ConfigError(f"pending_updates must be non-negative, got {pending_updates}")
    if pending_updates == 0:
        return NodeHierarchy(node, 0, 0, updates_per_leaf, collapsed=True)
    leaf_count = math.ceil(pending_updates / updates_per_leaf)
    collapsed = leaf_count == 1
    return NodeHierarchy(node, pending_updates, leaf_count, updates_per_leaf, collapsed)


@dataclass
class HierarchyPlan:
    """The full cross-node aggregation tree for one planning round."""

    aggregators: dict[str, AggregatorSpec] = field(default_factory=dict)
    top_node: str = ""
    per_node: dict[str, NodeHierarchy] = field(default_factory=dict)

    @property
    def top(self) -> AggregatorSpec:
        tops = [a for a in self.aggregators.values() if a.role is Role.TOP]
        if len(tops) != 1:
            raise ConfigError(f"plan must have exactly one top aggregator, found {len(tops)}")
        return tops[0]

    def by_role(self, role: Role) -> list[AggregatorSpec]:
        return [a for a in self.aggregators.values() if a.role is role]

    def on_node(self, node: str) -> list[AggregatorSpec]:
        return [a for a in self.aggregators.values() if a.node == node]

    def children_of(self, agg_id: str) -> list[AggregatorSpec]:
        return [a for a in self.aggregators.values() if a.parent == agg_id]

    def routes(self) -> dict[str, str]:
        """Source → destination map (the SKMSG route table content)."""
        return {a.agg_id: a.parent for a in self.aggregators.values() if a.parent}

    def validate(self) -> None:
        """Structural invariants: single-rooted tree, consistent fan-ins.

        Linear in plan size: parent links are checked in one pass, and the
        walk-to-root marks every aggregator on a verified path so each node
        is visited O(1) times across the whole plan (500-aggregator stress
        plans used to spend more time re-walking here than simulating).
        """
        top = self.top  # raises unless exactly one
        has_children: set[str] = set()
        for agg in self.aggregators.values():
            if agg.parent:
                if agg.parent not in self.aggregators:
                    raise ConfigError(f"{agg.agg_id}: parent {agg.parent!r} not in plan")
                has_children.add(agg.parent)
        reaches_top = {top.agg_id}
        for agg in self.aggregators.values():
            # walk to the first already-verified ancestor, guarding cycles
            path: list[str] = []
            seen = {agg.agg_id}
            cur = agg
            while cur.agg_id not in reaches_top:
                path.append(cur.agg_id)
                if not cur.parent:
                    raise ConfigError(f"{agg.agg_id} does not reach the top aggregator")
                cur = self.aggregators[cur.parent]
                if cur.agg_id in seen:
                    raise ConfigError(f"cycle through {cur.agg_id}")
                seen.add(cur.agg_id)
            reaches_top.update(path)
        for agg_id in has_children:
            if self.aggregators[agg_id].role is Role.LEAF:
                raise ConfigError(f"leaf {agg_id} has children")


def plan_hierarchy(
    pending_per_node: dict[str, int],
    updates_per_leaf: int = 2,
    top_node: str | None = None,
    round_id: int = 0,
) -> HierarchyPlan:
    """Build the global tree for this round's per-node queue estimates.

    ``top_node`` defaults to the active node with the largest queue — the
    intermediate updates of other nodes converge there, which minimizes the
    bytes crossing the wire.  Aggregator IDs are deterministic in
    ``round_id`` so re-plans produce fresh IDs.
    """
    active = {n: q for n, q in pending_per_node.items() if q > 0}
    plan = HierarchyPlan()
    if not active:
        return plan
    if top_node is None:
        top_node = max(active, key=lambda n: (active[n], n))
    elif top_node not in pending_per_node:
        raise ConfigError(f"top_node {top_node!r} not among nodes {sorted(pending_per_node)}")

    tag = f"r{round_id}"
    top_id = f"{tag}/top@{top_node}"
    # The top aggregates one intermediate update per active node (itself
    # included); if the top node is otherwise idle it still anchors the tree.
    top_fan_in = len(active) if top_node in active else len(active)
    plan.aggregators[top_id] = AggregatorSpec(top_id, Role.TOP, top_node, max(1, top_fan_in))
    plan.top_node = top_node

    for node, pending in sorted(active.items()):
        nh = plan_node_hierarchy(node, pending, updates_per_leaf)
        plan.per_node[node] = nh
        if nh.collapsed:
            # Single aggregator on this node; it reports straight to the top.
            leaf_id = f"{tag}/leaf0@{node}"
            plan.aggregators[leaf_id] = AggregatorSpec(
                leaf_id, Role.LEAF, node, fan_in=pending, parent=top_id
            )
            continue
        middle_id = f"{tag}/mid@{node}"
        plan.aggregators[middle_id] = AggregatorSpec(
            middle_id, Role.MIDDLE, node, fan_in=nh.leaf_count, parent=top_id
        )
        remaining = pending
        for i in range(nh.leaf_count):
            take = min(updates_per_leaf, remaining)
            remaining -= take
            leaf_id = f"{tag}/leaf{i}@{node}"
            plan.aggregators[leaf_id] = AggregatorSpec(
                leaf_id, Role.LEAF, node, fan_in=take, parent=middle_id
            )
    plan.validate()
    return plan
