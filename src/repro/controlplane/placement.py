"""Locality-aware placement and load balancing (§5.1).

The load-balancing task maps incoming model updates (equivalently, the
clients producing them) onto worker nodes with two criteria:

1. minimize inter-node communication / maximize shared-memory use, and
2. never exceed a node's **residual service capacity**
   ``RC_i,t = MC_i − k_i,t × E_i,t``.

LIFL treats this as bin-packing and uses **BestFit** — concentrate load onto
the fewest nodes.  **WorstFit** spreads load (the Knative "least connection"
behaviour of the SL-H baseline in Fig. 8), and **FirstFit** minimizes search
cost without locality awareness.  All three are implemented below behind one
interface so the Fig. 8 ablation and the §6.1 overhead benchmark (< 17 ms
for 10K clients) run the same code paths.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.common.errors import CapacityExceededError, ConfigError


@dataclass
class NodeCapacity:
    """Placement-relevant state of one worker node at decision time.

    ``max_capacity`` is MC_i (max updates aggregated simultaneously,
    Appendix E); ``arrival_rate`` is k_i,t (updates/s currently directed at
    the node) and ``exec_time`` is E_i,t (average seconds to aggregate one
    update), so ``in_flight = k*E`` is the current queue estimate Q_i,t and
    ``residual = MC − k*E`` is RC_i,t.
    """

    name: str
    max_capacity: float
    arrival_rate: float = 0.0
    exec_time: float = 0.0

    def __post_init__(self) -> None:
        if self.max_capacity <= 0:
            raise ConfigError(f"node {self.name}: max_capacity must be positive")
        if self.arrival_rate < 0 or self.exec_time < 0:
            raise ConfigError(f"node {self.name}: negative rate or exec time")

    @property
    def in_flight(self) -> float:
        """Coarse queue-length estimate Q_i,t = k_i,t × E_i,t."""
        return self.arrival_rate * self.exec_time

    @property
    def residual(self) -> float:
        """Residual service capacity RC_i,t."""
        return self.max_capacity - self.in_flight


@dataclass
class PlacementPlan:
    """Result of one placement round."""

    #: update index → node name, parallel to the input demand sequence
    assignments: list[str]
    #: node name → number of updates it received in this round
    per_node: dict[str, int] = field(default_factory=dict)

    @property
    def nodes_used(self) -> list[str]:
        return [n for n, c in self.per_node.items() if c > 0]

    @property
    def node_count(self) -> int:
        return len(self.nodes_used)

    def cross_node_transfers(self) -> int:
        """Intermediate-update transfers this plan implies: every active
        node except the one hosting the top aggregator ships exactly one
        intermediate update (§5.2 "the communication between a particular
        pair of worker nodes only happens once")."""
        return max(0, self.node_count - 1)


class Placer:
    """Common bin-packing harness; subclasses implement the batch fill.

    Updates are unit-demand, which lets every policy run as a batch fill
    (O(n log n + items)) instead of a per-item argmin scan — this is what
    keeps 10K-client placement under the paper's 17 ms budget (§6.1).
    The batch fills are exactly equivalent to the per-item greedy rules.
    """

    name = "abstract"

    def place(self, n_updates: int, nodes: Sequence[NodeCapacity]) -> PlacementPlan:
        """Assign ``n_updates`` unit-demand model updates to ``nodes``.

        Each update consumes one unit of residual capacity.  When every
        node is saturated, remaining updates overflow round-robin onto all
        nodes (they will queue) — the paper's Fig. 8 "100 updates" case
        where "the service capacity of all five nodes would be maxed out".
        """
        if n_updates < 0:
            raise ConfigError(f"n_updates must be non-negative, got {n_updates}")
        if not nodes:
            raise CapacityExceededError("no nodes available for placement")
        order = [n.name for n in nodes]
        slots = {n.name: int(max(0.0, n.residual)) for n in nodes}
        assignments = self._fill(order, slots, n_updates)
        # All bins full: queue the remainder on nodes round-robin.
        for i in range(n_updates - len(assignments)):
            assignments.append(order[i % len(order)])
        per_node: dict[str, int] = {name: 0 for name in order}
        for name in assignments:
            per_node[name] += 1
        return PlacementPlan(assignments=assignments, per_node=per_node)

    def _fill(self, order: Sequence[str], slots: dict[str, int], n: int) -> list[str]:
        """Assign up to ``n`` updates into free ``slots``; return choices."""
        raise NotImplementedError


class BestFitPlacer(Placer):
    """LIFL's policy: the fullest node that still fits (fewest nodes used).

    With unit demands, greedy best-fit fills the least-residual node to
    exhaustion before touching the next, so a sorted fill is equivalent.
    """

    name = "bestfit"

    def _fill(self, order: Sequence[str], slots: dict[str, int], n: int) -> list[str]:
        assignments: list[str] = []
        for name in sorted(order, key=lambda m: slots[m]):  # stable: ties by order
            if n <= len(assignments):
                break
            take = min(slots[name], n - len(assignments))
            assignments.extend([name] * take)
        return assignments


class FirstFitPlacer(Placer):
    """First node (in fixed order) that fits — cheap, locality-blind."""

    name = "firstfit"

    def _fill(self, order: Sequence[str], slots: dict[str, int], n: int) -> list[str]:
        assignments: list[str] = []
        for name in order:
            if n <= len(assignments):
                break
            take = min(slots[name], n - len(assignments))
            assignments.extend([name] * take)
        return assignments


class WorstFitPlacer(Placer):
    """Most-residual-capacity node first — spreads load like Knative's
    "least connection" policy (the SL-H baseline's behaviour in Fig. 8)."""

    name = "worstfit"

    def _fill(self, order: Sequence[str], slots: dict[str, int], n: int) -> list[str]:
        index = {name: i for i, name in enumerate(order)}
        heap = [(-s, index[name], name) for name, s in slots.items() if s >= 1]
        heapq.heapify(heap)
        assignments: list[str] = []
        while heap and len(assignments) < n:
            neg_s, idx, name = heapq.heappop(heap)
            assignments.append(name)
            if neg_s + 1 < 0:
                heapq.heappush(heap, (neg_s + 1, idx, name))
        return assignments


_PLACERS = {
    "bestfit": BestFitPlacer,
    "firstfit": FirstFitPlacer,
    "worstfit": WorstFitPlacer,
    "least-connection": WorstFitPlacer,  # Knative alias
}


def make_placer(policy: str) -> Placer:
    """Placer factory by policy name (``bestfit``/``firstfit``/``worstfit``)."""
    try:
        return _PLACERS[policy.lower()]()
    except KeyError:
        raise ConfigError(f"unknown placement policy {policy!r}; have {sorted(_PLACERS)}") from None


def group_clients_by_node(
    client_ids: Iterable[str], plan: PlacementPlan
) -> dict[str, list[str]]:
    """Client → node grouping implied by a placement plan (the clients-to-
    worker-node mapping that drives in-place message queuing, §5.1)."""
    groups: dict[str, list[str]] = {}
    for cid, node in zip(client_ids, plan.assignments, strict=True):
        groups.setdefault(node, []).append(cid)
    return groups
