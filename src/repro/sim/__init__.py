"""Discrete-event simulation kernel.

A small, SimPy-style engine: processes are Python generators that ``yield``
events (timeouts, resource requests, other processes), and the
:class:`Environment` advances a virtual clock through a priority queue of
scheduled events.  The cluster, dataplane and control-plane models in the
rest of the library are ordinary Python code running as processes on this
kernel, so the control-plane *algorithms* under test are real implementations
— only time and hardware are simulated.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.resources import Container, PriorityResource, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "Store",
    "Timeout",
]
