"""Core of the discrete-event engine: events, processes, the environment.

Design notes
------------
The engine is deliberately minimal but complete for our workloads:

* **Events** carry callbacks and a value; they are *triggered* (scheduled)
  then *processed* (callbacks run) at their scheduled time.
* **Processes** wrap generators.  A process waits on whatever event it
  yields; when that event fires, the event's value is sent back into the
  generator.  Raising :class:`Interrupt` into a process models preemption
  (used for aggregator termination during hierarchy re-planning).
* **Determinism**: ties in time are broken by insertion order, so repeated
  runs with the same seed produce identical traces — required for the
  experiment harness to be reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.common.errors import SimulationError

ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A happening-at-a-point-in-time that processes can wait on."""

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event value accessed before trigger")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value accessed before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay)


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._schedule(self)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """A running generator; also an event that fires when it returns."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: ProcessGenerator, name: str = "") -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"process requires a generator, got {type(generator)!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return  # already finished; interruption is a no-op
        env = self.env

        def do_interrupt(_: Event) -> None:
            if self._triggered:
                return
            # Detach from whatever event we were waiting on.
            if self._target is not None and self._resume in self._target.callbacks:
                self._target.callbacks.remove(self._resume)
            self._step(Interrupt(cause), throw=True)

        wake = Event(env)
        wake.callbacks.append(do_interrupt)
        wake.succeed()

    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step(event._value, throw=False)
        else:
            event._defused = True
            self._step(event._value, throw=True)

    def _step(self, value: Any, *, throw: bool) -> None:
        self.env._active_process = self
        try:
            if throw:
                exc = value if isinstance(value, BaseException) else SimulationError(str(value))
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.env._active_process = None
            self._ok = True
            self._value = stop.value
            self.env._schedule(self)
            return
        except BaseException as exc:  # propagate failure to waiters
            self.env._active_process = None
            self._ok = False
            self._value = exc
            self.env._schedule(self)
            return
        self.env._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(f"process {self.name!r} yielded non-event {target!r}")
        if target.env is not self.env:
            raise SimulationError("process yielded an event from a different environment")
        if target._processed:
            # Waiting on an already-processed event resumes immediately.
            immediate = Event(self.env)
            immediate._ok = target._ok
            immediate._value = target._value
            immediate.callbacks.append(self._resume)
            self.env._schedule(immediate)
            self._target = immediate
        else:
            target.callbacks.append(self._resume)
            self._target = target


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_completed")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._completed = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes environments")
            if ev._processed:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _collect(self) -> dict[Event, Any]:
        # Only processed events have delivered their value; a triggered but
        # not-yet-processed event (e.g. a Timeout scheduled for a later
        # instant) must not leak into an AnyOf result.
        return {ev: ev._value for ev in self.events if ev._processed}

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; value maps event -> value."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._completed += 1
        if self._completed == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when the first child event fires."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """The simulation clock plus the pending-event queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factory helpers -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._triggered:
            raise SimulationError("event scheduled twice")
        event._triggered = True
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimulationError("step() on an empty queue")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be a time (run up to and including that instant), an
        :class:`Event` (run until it fires; its value is returned), or
        ``None`` (run to quiescence).
        """
        if isinstance(until, Event):
            stop = until
            while not stop._processed:
                if not self._queue:
                    raise SimulationError("deadlock: queue empty before `until` event fired")
                self.step()
            if not stop._ok:
                raise stop._value
            return stop._value
        deadline = float("inf") if until is None else float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline}) is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        if deadline != float("inf"):
            self._now = deadline
        return None
