"""Core of the discrete-event engine: events, processes, the environment.

Design notes
------------
The engine is deliberately minimal but complete for our workloads:

* **Events** carry callbacks and a value; they are *triggered* (scheduled)
  then *processed* (callbacks run) at their scheduled time.
* **Processes** wrap generators.  A process waits on whatever event it
  yields; when that event fires, the event's value is sent back into the
  generator.  Raising :class:`Interrupt` into a process models preemption
  (used for aggregator termination during hierarchy re-planning).
* **Determinism**: ties in time are broken by insertion order, so repeated
  runs with the same seed produce identical traces — required for the
  experiment harness to be reproducible.
* **Allocation discipline**: the hot path (schedule → pop → resume) avoids
  throwaway objects.  A process reuses one preallocated event for the
  already-processed-target resume; interrupts wake through a slotted event
  instead of a closure; superseded timers are *cancelled* lazily (skipped
  when popped) rather than processed as dead no-ops.
* **Telemetry**: every environment counts its own heap traffic (see
  :mod:`repro.perf.counters`); the counters are plain ints and always on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.common.errors import SimulationError
from repro.perf.counters import maybe_register

ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A happening-at-a-point-in-time that processes can wait on."""

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused", "_cancelled")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._defused = False
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event value accessed before trigger")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value accessed before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        # _schedule(), inlined: succeed() is the second-hottest way onto
        # the queue after Timeout.
        env = self.env
        env._eid += 1
        queue = env._queue
        heapq.heappush(queue, (env._now, env._eid, self))
        depth = len(queue)
        if depth > env.peak_queue_depth:
            env.peak_queue_depth = depth
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    # Timeouts are the single most common event; the constructor is written
    # flat (no super() chain, scheduling inlined) to keep the per-wait cost
    # down.
    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defused = False
        self._cancelled = False
        self.delay = delay
        env._eid += 1
        queue = env._queue
        heapq.heappush(queue, (env._now + delay, env._eid, self))
        depth = len(queue)
        if depth > env.peak_queue_depth:
            env.peak_queue_depth = depth


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process", delay: float = 0.0) -> None:
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defused = False
        self._cancelled = False
        env._eid += 1
        queue = env._queue
        heapq.heappush(queue, (env._now + delay, env._eid, self))
        depth = len(queue)
        if depth > env.peak_queue_depth:
            env.peak_queue_depth = depth


class _Immediate(Event):
    """A process-private event used to resume after yielding an
    already-processed target.  One per process, reused between waits."""

    __slots__ = ()

    def reset(self) -> None:
        self._triggered = False
        self._processed = False
        self._defused = False
        self._cancelled = False


class _InterruptWake(Event):
    """Schedules interrupt delivery without allocating a closure."""

    __slots__ = ("_process", "_cause")

    def __init__(self, env: "Environment", process: "Process", cause: Any) -> None:
        super().__init__(env)
        self._process = process
        self._cause = cause
        self.callbacks.append(self._fire)
        env._schedule(self)

    def _fire(self, _: Event) -> None:
        proc = self._process
        if proc._triggered:
            return  # finished before the wake fired
        # A delay-started process may be interrupted before its Initialize
        # fired; retire the pending start so it cannot re-step the process
        # after the interrupt finishes it.
        init = proc._initialize
        if init is not None and not init._processed and not init._cancelled:
            proc.env.cancel(init)
        # Detach from whatever event it was waiting on.
        target = proc._target
        if target is not None and proc._resume in target.callbacks:
            target.callbacks.remove(proc._resume)
        proc._step(Interrupt(self._cause), True)


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """A running generator; also an event that fires when it returns."""

    __slots__ = ("_generator", "_target", "_immediate", "_initialize", "name")

    def __init__(
        self, env: "Environment", generator: ProcessGenerator, name: str = "", delay: float = 0.0
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"process requires a generator, got {type(generator)!r}")
        if delay < 0:
            raise SimulationError(f"negative process start delay: {delay}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self._immediate: Optional[_Immediate] = None
        self.name = name or getattr(generator, "__name__", "process")
        self._initialize: Optional[Initialize] = Initialize(env, self, delay)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return  # already finished; interruption is a no-op
        _InterruptWake(self.env, self, cause)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return  # finished (e.g. interrupted before a delayed start)
        self._target = None
        if event._ok:
            self._step(event._value, False)
        else:
            event._defused = True
            self._step(event._value, True)

    def _finish(self) -> None:
        """Complete the process synchronously.

        A finished process used to schedule itself as a terminal event and
        become *processed* one queue pop later (same instant).  That pop
        was pure overhead — one dead heap entry per process — so
        completion now happens inline: waiters resume within the current
        event step, and an unhandled failure propagates immediately.
        """
        self._triggered = True
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused:
            raise self._value

    def _step(self, value: Any, throw: bool) -> None:
        env = self.env
        env._active_process = self
        try:
            if throw:
                exc = value if isinstance(value, BaseException) else SimulationError(str(value))
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            env._active_process = None
            self._ok = True
            self._value = stop.value
            self._finish()
            return
        except BaseException as exc:  # propagate failure to waiters
            env._active_process = None
            self._ok = False
            self._value = exc
            self._finish()
            return
        env._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(f"process {self.name!r} yielded non-event {target!r}")
        if target.env is not env:
            raise SimulationError("process yielded an event from a different environment")
        if target._processed:
            # Waiting on an already-processed event resumes immediately.
            # Reuse the process's dedicated resume event when it is free
            # (i.e. fully consumed by a previous wait); a fresh one is only
            # allocated when the reusable event is still in the heap.
            imm = self._immediate
            if imm is None or (imm._triggered and not imm._processed):
                imm = self._immediate = _Immediate(env)
            else:
                imm.reset()
                env.immediate_reuses += 1
            imm._ok = target._ok
            imm._value = target._value
            imm.callbacks = [self._resume]
            env._schedule(imm)
            self._target = imm
        else:
            target.callbacks.append(self._resume)
            self._target = target


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_completed")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._completed = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes environments")
            if ev._processed:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _collect(self) -> dict[Event, Any]:
        # Only processed events have delivered their value; a triggered but
        # not-yet-processed event (e.g. a Timeout scheduled for a later
        # instant) must not leak into an AnyOf result.
        return {ev: ev._value for ev in self.events if ev._processed}

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; value maps event -> value."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._completed += 1
        if self._completed == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when the first child event fires."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """The simulation clock plus the pending-event queue."""

    __slots__ = (
        "_now",
        "_queue",
        "_eid",
        "_active_process",
        "dead_timer_skips",
        "timers_cancelled",
        "immediate_reuses",
        "peak_queue_depth",
    )

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        # -- engine telemetry (see repro.perf.counters) -------------------
        # Only counters the hot path cannot derive are maintained as
        # attributes; heap pushes/pops and events processed fall out of
        # ``_eid`` and the queue length (every schedule pushes exactly one
        # entry, and every popped entry is either processed or dead).
        self.dead_timer_skips = 0
        self.timers_cancelled = 0
        self.immediate_reuses = 0
        self.peak_queue_depth = 0
        maybe_register(self)

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- telemetry (derived; see repro.perf.counters) --------------------
    @property
    def heap_pushes(self) -> int:
        return self._eid

    @property
    def heap_pops(self) -> int:
        return self._eid - len(self._queue)

    @property
    def events_processed(self) -> int:
        return self.heap_pops - self.dead_timer_skips

    # -- factory helpers -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "", delay: float = 0.0) -> Process:
        """Spawn a process; ``delay`` defers its start without the cost of
        an extra leading timeout event."""
        return Process(self, generator, name=name, delay=delay)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._triggered:
            raise SimulationError("event scheduled twice")
        event._triggered = True
        self._eid += 1
        queue = self._queue
        heapq.heappush(queue, (self._now + delay, self._eid, event))
        depth = len(queue)
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth

    def cancel(self, event: Event) -> None:
        """Lazily cancel a scheduled event.

        The entry stays in the heap; when popped it is skipped without
        running callbacks (counted as a ``dead_timer_skip``).  Only
        triggered, not-yet-processed events can be cancelled — this is how
        resources and links retire superseded timers instead of letting
        them rot in the queue.
        """
        if not event._triggered or event._processed:
            raise SimulationError("cancel() needs a scheduled, unprocessed event")
        if not event._cancelled:
            event._cancelled = True
            self.timers_cancelled += 1

    def peek(self) -> float:
        """Time of the next live scheduled event, or +inf when idle."""
        queue = self._queue
        while queue and queue[0][2]._cancelled:
            heapq.heappop(queue)
            self.dead_timer_skips += 1
        return queue[0][0] if queue else float("inf")

    def step(self) -> None:
        """Process exactly one live event (advancing the clock to it).

        Cancelled entries encountered on the way are discarded without
        processing; if only cancelled entries remain the queue drains and
        the call returns without advancing the clock.
        """
        queue = self._queue
        if not queue:
            raise SimulationError("step() on an empty queue")
        pop = heapq.heappop
        while True:
            when, _, event = pop(queue)
            if not event._cancelled:
                break
            self.dead_timer_skips += 1
            if not queue:
                return
        self._now = when
        event._processed = True
        # Processed events no longer accept callbacks; dropping the list
        # (instead of swapping in a fresh one) avoids one allocation per
        # event on the hot path.
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be a time (run up to and including that instant), an
        :class:`Event` (run until it fires; its value is returned), or
        ``None`` (run to quiescence).
        """
        step = self.step
        queue = self._queue
        if isinstance(until, Event):
            # step(), inlined: this loop is the experiment harness's main
            # loop — every simulated event of a round passes through it.
            stop = until
            pop = heapq.heappop
            while not stop._processed:
                if not queue:
                    raise SimulationError("deadlock: queue empty before `until` event fired")
                when, _, event = pop(queue)
                if event._cancelled:
                    self.dead_timer_skips += 1
                    continue
                self._now = when
                event._processed = True
                callbacks, event.callbacks = event.callbacks, None
                for cb in callbacks:
                    cb(event)
                if not event._ok and not event._defused:
                    raise event._value
            if not stop._ok:
                raise stop._value
            return stop._value
        deadline = float("inf") if until is None else float(until)
        if deadline < self._now:
            raise SimulationError(f"run(until={deadline}) is in the past (now={self._now})")
        # peek() prunes cancelled heads, so the guard never admits a step
        # whose next *live* event lies beyond the deadline.
        peek = self.peek
        while True:
            next_time = peek()
            if not queue or next_time > deadline:
                break
            step()
        if deadline != float("inf"):
            self._now = deadline
        return None
