"""Shared-resource primitives for the simulation kernel.

* :class:`Resource` — a fixed number of slots with a FIFO wait queue (CPU
  cores on a worker node, gateway service slots).
* :class:`PriorityResource` — like :class:`Resource` but waiters carry a
  priority (used to let control-plane traffic preempt bulk transfers).
* :class:`Container` — a continuous quantity (shared-memory bytes, NIC
  bandwidth tokens).
* :class:`Store` — a FIFO of Python objects (message queues, mailboxes).

All requests are events; processes ``yield`` them.  Releases never block.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Optional

from repro.common.errors import SimulationError
from repro.sim.engine import Environment, Event


class Request(Event):
    """A pending claim on a :class:`Resource` slot (context-manager aware)."""

    __slots__ = ("resource",)

    def __init__(self, env: Environment, resource: "Resource") -> None:
        Event.__init__(self, env)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` identical slots with FIFO granting."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self._users: set[Request] = set()
        self._waiting: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> Request:
        req = Request(self.env, self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            # Cancelling a queued request is legal (e.g. interrupted process).
            try:
                self._waiting.remove(request)
            except ValueError:
                pass

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt.succeed()


class PriorityRequest(Request):
    __slots__ = ("priority", "_order")

    def __init__(self, env: Environment, resource: "PriorityResource", priority: float, order: int) -> None:
        super().__init__(env, resource)
        self.priority = priority
        self._order = order

    def __lt__(self, other: "PriorityRequest") -> bool:
        return (self.priority, self._order) < (other.priority, other._order)


class PriorityResource(Resource):
    """A :class:`Resource` whose waiters are granted lowest-priority-first."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._pwaiting: list[PriorityRequest] = []
        self._order = 0

    @property
    def queue_length(self) -> int:
        return len(self._pwaiting)

    def request(self, priority: float = 0.0) -> PriorityRequest:  # type: ignore[override]
        self._order += 1
        req = PriorityRequest(self.env, self, priority, self._order)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            heapq.heappush(self._pwaiting, req)
        return req

    def release(self, request: Request) -> None:  # type: ignore[override]
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            try:
                self._pwaiting.remove(request)  # type: ignore[arg-type]
                heapq.heapify(self._pwaiting)
            except ValueError:
                pass

    def _grant_next(self) -> None:
        while self._pwaiting and len(self._users) < self.capacity:
            nxt = heapq.heappop(self._pwaiting)
            self._users.add(nxt)
            nxt.succeed()


class Container:
    """A continuous quantity with blocking ``get`` and non-blocking ``put``."""

    def __init__(self, env: Environment, capacity: float = float("inf"), init: float = 0.0) -> None:
        if init < 0 or init > capacity:
            raise SimulationError(f"initial level {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> None:
        if amount < 0:
            raise SimulationError("cannot put a negative amount")
        if self._level + amount > self.capacity + 1e-9:
            raise SimulationError(f"container overflow: {self._level} + {amount} > {self.capacity}")
        self._level += amount
        self._drain()

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError("cannot get a negative amount")
        ev = Event(self.env)
        self._getters.append((ev, amount))
        self._drain()
        return ev

    def _drain(self) -> None:
        while self._getters and self._getters[0][1] <= self._level + 1e-12:
            ev, amount = self._getters.popleft()
            self._level -= amount
            ev.succeed(amount)


class Store:
    """An unbounded-or-bounded FIFO of arbitrary items."""

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        ev = Event(self.env)
        self._putters.append((ev, item))
        self._drain()
        return ev

    def put_nowait(self, item: Any) -> None:
        """Deposit without a put event (fails instead of blocking).

        Producers that never wait on the put (e.g. mailbox delivery) used
        to schedule one dead event per item just to throw it away; this
        path hands the item straight to the queue or the next getter.
        """
        if len(self.items) >= self.capacity:
            raise SimulationError(f"put_nowait on a full store (capacity {self.capacity})")
        getters = self._getters
        if getters and not self.items and not self._putters:
            getters.popleft().succeed(item)
            return
        self.items.append(item)
        if getters:
            self._drain()

    def get(self) -> Event:
        items = self.items
        if items and not self._getters:
            # Immediate hit: deliver without routing through the waiter
            # queue (the event is still consumed via the event loop).
            ev = Event(self.env)
            ev.succeed(items.popleft())
            self._admit_putters()
            return ev
        ev = Event(self.env)
        self._getters.append(ev)
        self._drain()
        return ev

    def drop_getters(self) -> int:
        """Forget every parked getter (chaos hook; returns the count).

        A single-consumer store whose consumer died mid-wait keeps the dead
        consumer's get event in the queue; a later deposit would hand the
        item to that dead event and lose it.  A stateless restart purges
        the old incarnation's getters before the replacement attaches.
        """
        n = len(self._getters)
        self._getters.clear()
        return n

    def try_get(self) -> Optional[Any]:
        """Non-blocking pop; None when empty (used by eager aggregation)."""
        self._drain()
        if self.items:
            item = self.items.popleft()
            self._admit_putters()
            return item
        return None

    def _admit_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            pev, item = self._putters.popleft()
            self.items.append(item)
            pev.succeed()

    def _drain(self) -> None:
        self._admit_putters()
        while self._getters and self.items:
            gev = self._getters.popleft()
            gev.succeed(self.items.popleft())
            self._admit_putters()
