"""Per-node gateway: in-place message queuing and inter-node routing.

From §4.2 and Appendices A/C:

* On **RX**, the gateway does the consolidated one-time payload processing —
  protocol handling and conversion of the wire payload into a NumPy array —
  then writes the update **directly into shared memory** and notifies the
  destination aggregator with the object key via SKMSG.  That *is* the
  message queue: updates wait in the object store, keys wait in the
  aggregator's mailbox.
* On **TX** (inter-node), the gateway retrieves the object by key, performs
  the reverse payload transformation, looks up the inter-node routing table
  (destination aggregator ID → remote node's gateway) and ships the payload
  to the remote gateway, which stores it locally and SKMSG-notifies the
  destination.

The gateway is also a sockmap endpoint: when the local SKMSG router resolves
a destination aggregator to "the gateway's socket" (remote aggregator), the
delivered key re-enters here and goes out through :meth:`deliver`.
"""

from __future__ import annotations

import struct
import threading
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.common.errors import RoutingError
from repro.runtime.object_store import SharedMemoryObjectStore
from repro.runtime.skmsg import SkMsgRouter

_HEADER = struct.Struct("!16sB")  # dtype string (padded), ndim


def encode_update(array: np.ndarray) -> bytes:
    """Serialize a model update for the wire (dtype/shape header + raw)."""
    arr = np.ascontiguousarray(array)
    dtype_name = arr.dtype.str.encode("ascii")
    if len(dtype_name) > 16:
        raise ValueError(f"dtype string too long: {dtype_name!r}")
    header = _HEADER.pack(dtype_name.ljust(16, b" "), arr.ndim)
    dims = struct.pack(f"!{arr.ndim}q", *arr.shape)
    return header + dims + arr.tobytes()


def decode_update(payload: bytes) -> np.ndarray:
    """Inverse of :func:`encode_update`."""
    dtype_raw, ndim = _HEADER.unpack_from(payload, 0)
    offset = _HEADER.size
    shape = struct.unpack_from(f"!{ndim}q", payload, offset)
    offset += 8 * ndim
    dtype = np.dtype(dtype_raw.decode("ascii").strip())
    arr: np.ndarray = np.frombuffer(payload, dtype=dtype, offset=offset).reshape(shape)
    return arr


@dataclass(frozen=True)
class InterNodeRoute:
    """One entry in the gateway's inter-node routing table (App. A)."""

    dst_agg_id: str
    remote_node: str
    remote_gateway: "Gateway"


class Gateway:
    """The stateful, persistent data-plane component on one node (§4.2)."""

    def __init__(self, node: str, store: SharedMemoryObjectStore, router: SkMsgRouter) -> None:
        self.node = node
        self.store = store
        self.router = router
        self._inter_node: dict[str, InterNodeRoute] = {}
        self._lock = threading.Lock()
        self.rx_updates = 0
        self.rx_bytes = 0
        self.tx_updates = 0
        self.tx_bytes = 0

    # -- control plane: routing table management ---------------------------
    def add_inter_node_route(self, dst_agg_id: str, remote_node: str, remote_gateway: "Gateway") -> None:
        with self._lock:
            self._inter_node[dst_agg_id] = InterNodeRoute(dst_agg_id, remote_node, remote_gateway)

    def remove_inter_node_route(self, dst_agg_id: str) -> None:
        with self._lock:
            if dst_agg_id not in self._inter_node:
                raise RoutingError(f"gateway {self.node}: no inter-node route for {dst_agg_id!r}")
            del self._inter_node[dst_agg_id]

    def inter_node_route(self, dst_agg_id: str) -> Optional[InterNodeRoute]:
        with self._lock:
            return self._inter_node.get(dst_agg_id)

    # -- RX path (clients or remote gateways → shared memory) ---------------
    def receive(self, payload: bytes, dst_agg_id: str, src_id: str = "client", consumers: int = 1) -> str:
        """Wire payload in → shm object + SKMSG notification. Returns key."""
        update = decode_update(payload)
        key = self.store.put(update, consumers=consumers)
        self.rx_updates += 1
        self.rx_bytes += len(payload)
        self.router.send_to(src_id, key, dst_agg_id)
        return key

    # -- TX path (local shm object → remote node) ----------------------------
    def transmit(self, src_id: str, key: str, dst_agg_id: str) -> None:
        """Ship the object behind ``key`` to the node hosting ``dst_agg_id``.

        Releases the local reference after the payload is re-materialized on
        the remote side (the local copy's job is done).
        """
        route = self.inter_node_route(dst_agg_id)
        if route is None:
            raise RoutingError(
                f"gateway {self.node}: no inter-node route for destination {dst_agg_id!r}"
            )
        update = self.store.get(key)
        payload = encode_update(update)
        self.tx_updates += 1
        self.tx_bytes += len(payload)
        route.remote_gateway.receive(payload, dst_agg_id, src_id=src_id)
        self.store.release(key)

    # -- sockmap endpoint: local SKMSG picked us as the destination socket --
    def deliver(self, src_id: str, key: str, dst_id: str) -> None:
        """A locally-sent key whose destination lives on another node."""
        self.transmit(src_id, key, dst_id)
