"""The eBPF ``sockmap`` analogue (Appendix A, Fig. 12).

In the kernel, ``BPF_MAP_TYPE_SOCKMAP`` "maintains references to the
registered socket interfaces".  Following Fig. 12, entries are keyed by
**aggregator ID** and map to the local socket that can reach that
aggregator: its own socket when it runs on this node, or the gateway's
socket when it is remote (e.g. node 1 holds ``a3's id -> gw's sock fd``).

Here a "socket" is any endpoint with a ``deliver(src_id, key, dst_id)``
method — an aggregator mailbox or the gateway.  The LIFL agent updates
entries with :meth:`update` / :meth:`delete`, mirroring the userspace
``bpf_map_update_elem()`` helper used for online hierarchy updates.
"""

from __future__ import annotations

import threading
from typing import Iterator, Protocol

from repro.common.errors import RoutingError


class Endpoint(Protocol):
    """Anything a sockmap entry can redirect to."""

    def deliver(self, src_id: str, key: str, dst_id: str) -> None:
        """Accept an object key sent by ``src_id`` for aggregator ``dst_id``."""


class SockMap:
    """Aggregator ID → endpoint table with update/lookup/delete."""

    def __init__(self, node: str = "node0") -> None:
        self.node = node
        self._entries: dict[str, Endpoint] = {}
        self._lock = threading.Lock()
        self.update_count = 0

    def update(self, agg_id: str, endpoint: Endpoint) -> None:
        """Insert or replace the socket reference for ``agg_id``."""
        with self._lock:
            self._entries[agg_id] = endpoint
            self.update_count += 1

    def lookup(self, agg_id: str) -> Endpoint:
        with self._lock:
            ep = self._entries.get(agg_id)
        if ep is None:
            raise RoutingError(f"sockmap on {self.node}: no socket for {agg_id!r}")
        return ep

    def delete(self, agg_id: str) -> None:
        with self._lock:
            if agg_id not in self._entries:
                raise RoutingError(f"sockmap on {self.node}: delete of absent {agg_id!r}")
            del self._entries[agg_id]

    def __contains__(self, agg_id: str) -> bool:
        with self._lock:
            return agg_id in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._entries))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
