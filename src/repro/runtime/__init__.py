"""The real (non-simulated) LIFL node runtime.

This subpackage implements, in working Python, the mechanisms the paper
builds on each worker node:

* :mod:`repro.runtime.object_store` — the shared-memory object store
  (§4.1): immutable objects addressed by random 16-byte keys, backed by
  ``multiprocessing.shared_memory`` exactly as in the paper's own
  implementation;
* :mod:`repro.runtime.sockmap` — the eBPF ``sockmap`` analogue: a routing
  table from aggregator IDs to registered endpoints (Appendix A, Fig. 12);
* :mod:`repro.runtime.skmsg` — event-driven SKMSG delivery of object keys
  between co-located aggregators, with metrics collection on every send;
* :mod:`repro.runtime.metrics_map` — the eBPF metrics map the sidecar
  writes and the LIFL agent periodically drains (§4.3);
* :mod:`repro.runtime.gateway` — the per-node gateway: one-time payload
  processing into shared memory (in-place message queuing, §4.2) and
  inter-node routing (Appendix A);
* :mod:`repro.runtime.checkpoint` — asynchronous model checkpointing to
  external storage (Appendix B).

These classes are used directly by the quickstart example and the runtime
test suite; the cluster-scale experiments use the calibrated simulation
models instead (see ``DESIGN.md`` §1 for the substitution argument).
"""

from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.gateway import Gateway, InterNodeRoute
from repro.runtime.metrics_map import MetricsMap
from repro.runtime.object_store import ObjectKey, SharedMemoryObjectStore, StoredObject
from repro.runtime.skmsg import SkMsgRouter
from repro.runtime.sockmap import SockMap

__all__ = [
    "CheckpointManager",
    "Gateway",
    "InterNodeRoute",
    "MetricsMap",
    "ObjectKey",
    "SharedMemoryObjectStore",
    "SkMsgRouter",
    "SockMap",
    "StoredObject",
]
