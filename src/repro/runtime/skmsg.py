"""SKMSG-style event-driven delivery of object keys (§4.3–4.4, App. A).

The real mechanism: a producer aggregator calls ``send()`` with a 16-byte
object key; the in-kernel SKMSG program fires on that syscall, "uses the ID
of the source aggregator as the key" to decide where the message goes, and
redirects the key through the sockmap to the destination's socket — the
payload never moves, it stays in shared memory.

:class:`SkMsgRouter` reproduces that flow in-process:

* ``send(src_id, key)`` is the syscall; the router body is the eBPF program
  (strictly event-driven — it runs only inside ``send`` and consumes nothing
  at idle);
* the **route table** (source → destination aggregator, i.e. the tree's
  parent map derived from the TAG) is the stateful part offloaded to eBPF;
* the :class:`~repro.runtime.sockmap.SockMap` resolves the destination ID to
  a deliverable endpoint (local aggregator, or the gateway for remote ones);
* metrics collection piggybacks on the same send event, as in §4.3.
"""

from __future__ import annotations

import threading

from repro.common.errors import RoutingError
from repro.runtime.metrics_map import MetricsMap
from repro.runtime.object_store import SharedMemoryObjectStore
from repro.runtime.sockmap import SockMap


class SkMsgRouter:
    """Event-driven object-key router for one node."""

    def __init__(
        self,
        sockmap: SockMap,
        metrics: MetricsMap,
        store: SharedMemoryObjectStore,
    ) -> None:
        self.sockmap = sockmap
        self.metrics = metrics
        self.store = store
        self._routes: dict[str, str] = {}
        self._lock = threading.Lock()
        self.deliveries = 0

    # -- route management (driven by the LIFL agent on hierarchy updates) --
    def set_route(self, src_id: str, dst_id: str) -> None:
        """Messages from ``src_id`` go to ``dst_id`` (its tree parent)."""
        with self._lock:
            self._routes[src_id] = dst_id

    def delete_route(self, src_id: str) -> None:
        with self._lock:
            if src_id not in self._routes:
                raise RoutingError(f"no route to delete for source {src_id!r}")
            del self._routes[src_id]

    def route_of(self, src_id: str) -> str:
        with self._lock:
            dst = self._routes.get(src_id)
        if dst is None:
            raise RoutingError(f"no route installed for source {src_id!r}")
        return dst

    # -- the data path -------------------------------------------------------
    def send(self, src_id: str, key: str) -> str:
        """Producer's send(): route by source ID, deliver the key.

        Returns the destination aggregator ID the key was delivered to.
        Raises :class:`RoutingError` when no route or socket exists.
        """
        dst_id = self.route_of(src_id)
        self.send_to(src_id, key, dst_id)
        return dst_id

    def send_to(self, src_id: str, key: str, dst_id: str) -> None:
        """Deliver to an explicit destination (used by the gateway when the
        destination ID arrives in an inter-node message header)."""
        endpoint = self.sockmap.lookup(dst_id)  # may raise RoutingError
        nbytes = self.store.size_of(key) if self.store.contains(key) else 0
        self.metrics.on_send(src_id, nbytes)
        self.deliveries += 1
        endpoint.deliver(src_id, key, dst_id)
