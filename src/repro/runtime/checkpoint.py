"""Asynchronous model checkpointing (Appendix B).

"The checkpointing occurs after the aggregator completes the aggregation of
specified model updates, where the aggregator submits a request to the LIFL
agent to perform model checkpoints asynchronously in the background.  This
prevents checkpoint delays from being added to the aggregation completion
time."

:class:`CheckpointManager` runs a single writer thread; ``submit`` is
non-blocking (the aggregation path never waits on storage I/O) and
``flush`` lets tests and shutdown paths synchronize.
"""

from __future__ import annotations

import queue
import threading
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.common.errors import LiflError


class CheckpointManager:
    """Background checkpoint writer for global-model versions."""

    def __init__(self, directory: str | Path, prefix: str = "model") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.prefix = prefix
        self._queue: "queue.Queue[Optional[tuple[int, dict[str, np.ndarray]]]]" = queue.Queue()
        self._errors: list[Exception] = []
        self._written: list[int] = []
        self._thread = threading.Thread(target=self._writer, name="lifl-checkpoint", daemon=True)
        self._thread.start()
        self._closed = False

    def submit(self, version: int, params: Mapping[str, np.ndarray]) -> None:
        """Queue a checkpoint of model ``version``; returns immediately."""
        if self._closed:
            raise LiflError("checkpoint manager is closed")
        # Snapshot now so later in-place updates don't corrupt the checkpoint.
        snapshot = {name: np.array(value, copy=True) for name, value in params.items()}
        self._queue.put((int(version), snapshot))

    def path_for(self, version: int) -> Path:
        return self.directory / f"{self.prefix}-v{version:06d}.npz"

    def load(self, version: int) -> dict[str, np.ndarray]:
        """Read back a checkpoint (recovery path)."""
        path = self.path_for(version)
        if not path.exists():
            raise LiflError(f"no checkpoint for version {version} at {path}")
        with np.load(path) as data:
            return {name: data[name] for name in data.files}

    def versions_on_disk(self) -> list[int]:
        out = []
        for p in sorted(self.directory.glob(f"{self.prefix}-v*.npz")):
            out.append(int(p.stem.split("-v")[-1]))
        return out

    def flush(self) -> None:
        """Block until every submitted checkpoint hit the disk."""
        self._queue.join()
        if self._errors:
            raise LiflError(f"checkpoint writer failed: {self._errors[0]!r}")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._thread.join(timeout=30)

    def _writer(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            version, params = item
            try:
                np.savez(self.path_for(version), **params)
                self._written.append(version)
            except Exception as exc:  # noqa: BLE001 - surfaced via flush()
                self._errors.append(exc)
            finally:
                self._queue.task_done()

    def __enter__(self) -> "CheckpointManager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
