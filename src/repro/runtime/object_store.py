"""Shared-memory object store (§4.1 "Shared memory object store").

Semantics from the paper:

* objects are **immutable** (read-only) once written, "to guarantee the safe
  sharing of model updates, eliminating the need for locks";
* each object is addressed by a **16-byte key randomly generated** by the
  shared-memory manager;
* the LIFL agent is responsible for **allocation / recycling / destruction**
  of buffers.

The store holds NumPy arrays in ``multiprocessing.shared_memory`` blocks, so
a consumer in another process can map the same physical pages zero-copy.
Reference counting implements recycling: producers put with an initial
refcount equal to the number of expected consumers; each consumer releases
after reading, and the block is freed at zero.
"""

from __future__ import annotations

import secrets
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.common.errors import ObjectStoreError

#: Object keys are 16 random bytes, rendered as 32 hex chars for dict use.
ObjectKey = str

KEY_BYTES = 16


def generate_key() -> ObjectKey:
    """A fresh random 16-byte key, hex-encoded."""
    return secrets.token_hex(KEY_BYTES)


@dataclass
class StoredObject:
    """Bookkeeping for one shared-memory object."""

    key: ObjectKey
    shm: shared_memory.SharedMemory
    dtype: np.dtype
    shape: tuple[int, ...]
    nbytes: int
    refcount: int

    def view(self) -> np.ndarray:
        """Zero-copy, read-only view of the object's payload."""
        arr: np.ndarray = np.ndarray(self.shape, dtype=self.dtype, buffer=self.shm.buf)
        arr.flags.writeable = False
        return arr


class SharedMemoryObjectStore:
    """Per-node immutable object store over ``multiprocessing.shared_memory``.

    Thread-safe: the gateway thread and aggregator threads of the in-process
    runtime share one store.  ``capacity_bytes`` bounds total residency; the
    paper's agent recycles aggressively, so hitting the bound is a
    programming error surfaced as :class:`ObjectStoreError`.
    """

    def __init__(self, capacity_bytes: float = float("inf"), node: str = "node0") -> None:
        self.node = node
        self.capacity_bytes = capacity_bytes
        self._objects: dict[ObjectKey, StoredObject] = {}
        self._lock = threading.Lock()
        self._bytes_in_use = 0
        self.high_water_bytes = 0
        self.total_puts = 0
        self.total_frees = 0

    # -- producer side ------------------------------------------------------
    def put(self, array: np.ndarray, consumers: int = 1) -> ObjectKey:
        """Copy ``array`` into shared memory; returns its key.

        ``consumers`` sets the initial refcount — the number of ``release``
        calls after which the buffer is recycled.
        """
        if consumers < 1:
            raise ObjectStoreError(f"consumers must be >= 1, got {consumers}")
        arr = np.ascontiguousarray(array)
        nbytes = int(arr.nbytes)
        with self._lock:
            if self._bytes_in_use + nbytes > self.capacity_bytes:
                raise ObjectStoreError(
                    f"object store on {self.node} full: "
                    f"{self._bytes_in_use} + {nbytes} > {self.capacity_bytes}"
                )
            key = generate_key()
            while key in self._objects:  # astronomically unlikely; be safe
                key = generate_key()
            shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
            dst: np.ndarray = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            dst[...] = arr
            self._objects[key] = StoredObject(
                key=key,
                shm=shm,
                dtype=arr.dtype,
                shape=tuple(arr.shape),
                nbytes=nbytes,
                refcount=consumers,
            )
            self._bytes_in_use += nbytes
            self.high_water_bytes = max(self.high_water_bytes, self._bytes_in_use)
            self.total_puts += 1
            return key

    # -- consumer side ------------------------------------------------------
    def get(self, key: ObjectKey) -> np.ndarray:
        """Zero-copy read-only view of the object. Raises on unknown key."""
        with self._lock:
            obj = self._objects.get(key)
            if obj is None:
                raise ObjectStoreError(f"unknown object key {key!r} on {self.node}")
            return obj.view()

    def release(self, key: ObjectKey) -> bool:
        """Drop one reference; frees the block at zero. Returns True if freed."""
        with self._lock:
            obj = self._objects.get(key)
            if obj is None:
                raise ObjectStoreError(f"release of unknown key {key!r} on {self.node}")
            obj.refcount -= 1
            if obj.refcount > 0:
                return False
            self._free_locked(obj)
            return True

    def add_consumers(self, key: ObjectKey, extra: int) -> None:
        """Extend an object's refcount (fan-out discovered after put)."""
        if extra < 0:
            raise ObjectStoreError("extra consumers must be non-negative")
        with self._lock:
            obj = self._objects.get(key)
            if obj is None:
                raise ObjectStoreError(f"unknown key {key!r} on {self.node}")
            obj.refcount += extra

    # -- management (the LIFL agent's responsibilities) ----------------------
    def contains(self, key: ObjectKey) -> bool:
        with self._lock:
            return key in self._objects

    def size_of(self, key: ObjectKey) -> int:
        with self._lock:
            obj = self._objects.get(key)
            if obj is None:
                raise ObjectStoreError(f"unknown key {key!r} on {self.node}")
            return obj.nbytes

    @property
    def bytes_in_use(self) -> int:
        with self._lock:
            return self._bytes_in_use

    @property
    def object_count(self) -> int:
        with self._lock:
            return len(self._objects)

    def destroy(self) -> None:
        """Free every object (node teardown)."""
        with self._lock:
            for obj in list(self._objects.values()):
                self._free_locked(obj)

    def _free_locked(self, obj: StoredObject) -> None:
        del self._objects[obj.key]
        self._bytes_in_use -= obj.nbytes
        self.total_frees += 1
        obj.shm.close()
        try:
            obj.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - platform quirk
            pass

    def __enter__(self) -> "SharedMemoryObjectStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.destroy()
