"""The eBPF metrics map (§4.3).

An "in-kernel, configurable key-value table that can be accessed by the eBPF
program during execution".  The sidecar stores per-aggregator metrics here on
every send() event; the LIFL agent periodically drains it and feeds the
metrics server.  We keep the same split: writers are cheap and local, readers
batch-drain.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass
class AggregatorMetrics:
    """Metrics the sidecar collects for one aggregator (§4.3, App. E):
    arrival counts (→ k_i,t) and execution times of aggregation tasks
    (→ E_i,t)."""

    sends: int = 0
    bytes_sent: int = 0
    updates_aggregated: int = 0
    exec_time_total: float = 0.0
    exec_time_count: int = 0
    exec_time_last: float = 0.0

    def record_exec(self, seconds: float) -> None:
        self.exec_time_total += seconds
        self.exec_time_count += 1
        self.exec_time_last = seconds

    @property
    def exec_time_mean(self) -> float:
        """Average execution time E of the aggregation task."""
        if self.exec_time_count == 0:
            return 0.0
        return self.exec_time_total / self.exec_time_count


class MetricsMap:
    """Thread-safe key-value map of aggregator ID → metrics."""

    def __init__(self, node: str = "node0") -> None:
        self.node = node
        self._metrics: dict[str, AggregatorMetrics] = {}
        self._lock = threading.Lock()

    def on_send(self, agg_id: str, nbytes: int) -> None:
        """Hook invoked by the SKMSG program on every send() event."""
        with self._lock:
            m = self._metrics.setdefault(agg_id, AggregatorMetrics())
            m.sends += 1
            m.bytes_sent += nbytes

    def on_aggregate(self, agg_id: str, exec_seconds: float) -> None:
        """Record completion of one aggregation step."""
        with self._lock:
            m = self._metrics.setdefault(agg_id, AggregatorMetrics())
            m.updates_aggregated += 1
            m.record_exec(exec_seconds)

    def snapshot(self, agg_id: str) -> AggregatorMetrics:
        """Copy of one aggregator's metrics (empty metrics if unseen)."""
        with self._lock:
            m = self._metrics.get(agg_id, AggregatorMetrics())
            return AggregatorMetrics(
                sends=m.sends,
                bytes_sent=m.bytes_sent,
                updates_aggregated=m.updates_aggregated,
                exec_time_total=m.exec_time_total,
                exec_time_count=m.exec_time_count,
                exec_time_last=m.exec_time_last,
            )

    def drain(self) -> dict[str, AggregatorMetrics]:
        """Remove and return everything — the agent's periodic retrieval."""
        with self._lock:
            out = self._metrics
            self._metrics = {}
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)
