"""Message-broker hops (§2.3 "Indirect networking", Fig. 5).

Serverless functions cannot hold direct routes, so prior serverless FL
systems interpose a stateful broker: every update is published into the
broker (kernel hop + enqueue) and consumed out of it (dequeue + kernel hop).
The serverful-microservice design of Fig. 5 uses a heavier, replicated
broker — Fig. 13 shows it costing more end-to-end than even the serverless
broker path.
"""

from __future__ import annotations

from repro.dataplane.calibration import DataplaneCalibration
from repro.dataplane.transfer import Hop, HopCost


def broker_hop(cal: DataplaneCalibration, group: str = "broker") -> Hop:
    """Full broker round (publish + persist in queue + consume) for the
    serverless baseline; tagged ``group='broker'`` → Fig. 7(a)'s ``+MB``."""
    return Hop(
        "broker",
        HopCost(
            latency_fixed=cal.broker_fixed_lat,
            latency_per_byte=cal.broker_lat_per_byte,
            cpu_fixed=cal.broker_fixed_cpu,
            cpu_per_byte=cal.broker_cpu_per_byte,
            copies=1,
        ),
        component="broker",
        group=group,
    )


def serverful_broker_hop(cal: DataplaneCalibration, group: str = "broker") -> Hop:
    """Broker round for the serverful-microservice design (Fig. 5), with the
    durability/replication overhead that makes SF-micro the costliest
    queuing pipeline in Fig. 13."""
    return Hop(
        "sf-broker",
        HopCost(
            latency_fixed=cal.broker_fixed_lat,
            latency_per_byte=cal.sf_broker_lat_per_byte,
            cpu_fixed=cal.broker_fixed_cpu,
            cpu_per_byte=cal.sf_broker_cpu_per_byte,
            copies=1,
        ),
        component="broker",
        group=group,
    )
