"""Shared-memory hops: the LIFL intra-node zero-copy channel (§4.1, App. A).

A producer writes its payload into the immutable object store once; the
16-byte object key travels through the eBPF sidecar's SKMSG hook; the
consumer maps the object read-only.  Only the initial write moves bytes.
"""

from __future__ import annotations

from repro.dataplane.calibration import DataplaneCalibration
from repro.dataplane.transfer import Hop, HopCost


def shm_write_hop(cal: DataplaneCalibration, component: str = "shm", group: str = "base") -> Hop:
    """Copy the payload into the shared-memory object store (one copy)."""
    return Hop(
        "shm-write",
        HopCost(
            latency_per_byte=cal.shm_write_lat_per_byte,
            cpu_per_byte=cal.shm_write_cpu_per_byte,
            copies=1,
        ),
        component=component,
        group=group,
    )


def shm_read_hop(cal: DataplaneCalibration, component: str = "shm", group: str = "base") -> Hop:
    """Map + wrap the object on the consumer side (no payload copy; the
    per-byte term models NumPy view construction and first-touch faults)."""
    return Hop(
        "shm-read",
        HopCost(
            latency_per_byte=cal.shm_read_lat_per_byte,
            cpu_per_byte=cal.shm_read_cpu_per_byte,
            copies=0,
        ),
        component=component,
        group=group,
    )


def skmsg_hop(cal: DataplaneCalibration, component: str = "ebpf", group: str = "base") -> Hop:
    """Deliver the 16-byte object key via the SKMSG eBPF program; cost is
    size-independent because only the key crosses the socket."""
    return Hop(
        "skmsg",
        HopCost(latency_fixed=cal.skmsg_fixed_lat, cpu_fixed=cal.skmsg_fixed_cpu),
        component=component,
        group=group,
    )
