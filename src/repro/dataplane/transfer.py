"""Hop/pipeline cost algebra.

A :class:`Hop` is an affine cost stage: crossing it with an ``n``-byte
payload costs ``latency = lf + lb*n`` seconds of wall time and
``cpu = cf + cb*n`` CPU-seconds, and keeps ``copies`` transient buffer
copies of the payload alive.  A :class:`Pipeline` is an ordered sequence of
hops; its cost is the hop-wise sum, with a per-hop breakdown retained so the
experiments can reproduce the paper's stacked bars (the ``+SC`` / ``+MB``
shares of Fig. 7(a)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.common.errors import ConfigError


@dataclass(frozen=True, slots=True)
class HopCost:
    """Affine cost coefficients for one hop."""

    latency_fixed: float = 0.0
    latency_per_byte: float = 0.0
    cpu_fixed: float = 0.0
    cpu_per_byte: float = 0.0
    #: transient full-payload buffer copies this hop keeps alive
    copies: int = 0

    def __post_init__(self) -> None:
        for name in ("latency_fixed", "latency_per_byte", "cpu_fixed", "cpu_per_byte"):
            if getattr(self, name) < 0:
                raise ConfigError(f"hop cost {name} must be non-negative")
        if self.copies < 0:
            raise ConfigError("hop copies must be non-negative")

    def latency(self, nbytes: float) -> float:
        return self.latency_fixed + self.latency_per_byte * nbytes

    def cpu(self, nbytes: float) -> float:
        return self.cpu_fixed + self.cpu_per_byte * nbytes


@dataclass(frozen=True, slots=True)
class Hop:
    """A named cost stage, tagged with the component that pays for it.

    ``component`` feeds the CPU ledger buckets on worker nodes;
    ``group`` feeds stacked-bar breakdowns (``base`` / ``sidecar`` /
    ``broker`` in Fig. 7(a)).
    """

    name: str
    cost: HopCost
    component: str = "dataplane"
    group: str = "base"


@dataclass(frozen=True, slots=True)
class TransferResult:
    """Total cost of pushing one payload through a pipeline."""

    nbytes: float
    latency: float
    cpu_seconds: float
    #: peak count of simultaneous full-payload buffers along the path —
    #: the quantity behind Fig. 13(b)'s normalized memory cost.
    buffer_copies: int
    latency_by_group: dict[str, float] = field(default_factory=dict)
    cpu_by_group: dict[str, float] = field(default_factory=dict)
    cpu_by_component: dict[str, float] = field(default_factory=dict)

    @property
    def buffered_bytes(self) -> float:
        return self.buffer_copies * self.nbytes


class Pipeline:
    """An ordered hop sequence with summable costs."""

    def __init__(self, name: str, hops: Iterable[Hop]) -> None:
        self.name = name
        self.hops: tuple[Hop, ...] = tuple(hops)
        if not self.hops:
            raise ConfigError(f"pipeline {name!r} has no hops")

    def __len__(self) -> int:
        return len(self.hops)

    def __repr__(self) -> str:
        return f"Pipeline({self.name!r}, hops=[{', '.join(h.name for h in self.hops)}])"

    def extended(self, name: str, extra: Iterable[Hop]) -> "Pipeline":
        return Pipeline(name, (*self.hops, *extra))

    def cost(self, nbytes: float) -> TransferResult:
        if nbytes < 0:
            raise ConfigError(f"payload size must be non-negative, got {nbytes}")
        latency = 0.0
        cpu = 0.0
        copies = 0
        lat_g: dict[str, float] = {}
        cpu_g: dict[str, float] = {}
        cpu_c: dict[str, float] = {}
        for hop in self.hops:
            hl = hop.cost.latency(nbytes)
            hc = hop.cost.cpu(nbytes)
            latency += hl
            cpu += hc
            copies += hop.cost.copies
            lat_g[hop.group] = lat_g.get(hop.group, 0.0) + hl
            cpu_g[hop.group] = cpu_g.get(hop.group, 0.0) + hc
            cpu_c[hop.component] = cpu_c.get(hop.component, 0.0) + hc
        return TransferResult(
            nbytes=nbytes,
            latency=latency,
            cpu_seconds=cpu,
            buffer_copies=copies,
            latency_by_group=lat_g,
            cpu_by_group=cpu_g,
            cpu_by_component=cpu_c,
        )
