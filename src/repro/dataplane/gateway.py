"""LIFL's per-node gateway (§4.2, Appendix C).

The gateway is the one stateful, persistent data-plane component per node.
On RX it performs the consolidated, one-time payload processing (protocol
processing, tensor→NumpyArray conversion) and writes the update into shared
memory; on TX it does the reverse.  It scales *vertically* — the number of
CPU cores assigned tracks the offered load so the gateway never becomes the
data-plane bottleneck.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.dataplane.calibration import DataplaneCalibration
from repro.dataplane.transfer import Hop, HopCost


def gateway_rx_hop(cal: DataplaneCalibration, group: str = "base") -> Hop:
    """RX payload processing before the shm write (gateway's one-time work)."""
    return Hop(
        "gateway-rx",
        HopCost(
            latency_per_byte=cal.gateway_rx_lat_per_byte,
            cpu_per_byte=cal.gateway_rx_cpu_per_byte,
        ),
        component="gateway",
        group=group,
    )


def gateway_tx_hop(cal: DataplaneCalibration, group: str = "base") -> Hop:
    """TX payload processing after the shm read (reverse of RX)."""
    return Hop(
        "gateway-tx",
        HopCost(
            latency_per_byte=cal.gateway_tx_lat_per_byte,
            cpu_per_byte=cal.gateway_tx_cpu_per_byte,
        ),
        component="gateway",
        group=group,
    )


@dataclass
class VerticalScaler:
    """Core-count controller for one gateway.

    The assigned core count is the smallest number of cores whose aggregate
    service rate covers the observed arrival byte rate with ``headroom``
    (>1) slack, clamped to ``[min_cores, max_cores]``.  This mirrors §4.2's
    "dynamically adjusting the number of assigned CPU cores based on the
    load level".
    """

    cal: DataplaneCalibration
    min_cores: int = 1
    max_cores: int = 8
    headroom: float = 1.25

    def __post_init__(self) -> None:
        if self.min_cores < 1 or self.max_cores < self.min_cores:
            raise ConfigError(
                f"invalid core bounds [{self.min_cores}, {self.max_cores}]"
            )
        if self.headroom < 1.0:
            raise ConfigError(f"headroom must be >= 1, got {self.headroom}")

    def cores_for_load(self, arrival_bps: float) -> int:
        """Cores needed for an offered load of ``arrival_bps`` bytes/s."""
        if arrival_bps < 0:
            raise ConfigError(f"negative arrival rate: {arrival_bps}")
        needed = math.ceil(self.headroom * arrival_bps / self.cal.gateway_core_service_bps)
        return int(min(self.max_cores, max(self.min_cores, needed)))

    def service_rate(self, cores: int) -> float:
        """Aggregate RX service rate (bytes/s) with ``cores`` assigned."""
        return cores * self.cal.gateway_core_service_bps

    def is_bottleneck(self, arrival_bps: float, cores: int) -> bool:
        """True if the gateway cannot keep up at the current assignment."""
        return arrival_bps > self.service_rate(cores)
