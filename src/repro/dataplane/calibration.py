"""Every data-plane constant, in one place, with its provenance.

Derivation of the headline constants (all per-MB figures are per 1e6 bytes):

* **LIFL intra-node aggregator→aggregator** (Fig. 7(a)): the paper reports
  0.14 / 0.25 / 0.76 s for ResNet-18/34/152 (44 / 83 / 232 MB).  A linear
  fit through the 44 MB and 232 MB points gives ≈ 3.28 ms/MB with ≈ 0
  intercept.  We split this between the shared-memory write (producer copies
  its result into the object store) and the consumer-side read/wrap.
* **Serverful (SF) intra-node** is 3× LIFL (§1 contribution (1): LIFL gives
  a "3× (compared to serverful)" latency reduction on ResNet-152): the gRPC
  serialize → kernel loopback → deserialize path costs ≈ 9.84 ms/MB.
* **Serverless (SL) intra-node** is ≈ 6× LIFL (5.8× at ResNet-152;
  "SL consistently results in 2× ... higher latency than SF"): the SF path
  plus two container-sidecar traversals (the ``+SC`` share of Fig. 7(a))
  plus a message-broker round (the ``+MB`` share).
* **Inter-node transfer** of a ResNet-152 update ≈ 4.2 s (§6.1, Fig. 8
  discussion) → ≈ 18.1 ms/MB along the gateway→wire→gateway path, of which
  0.8 ms/MB is the 10 Gb wire itself.
* **CPU**: Fig. 7(b) puts LIFL at 2.45 G-cycles for ResNet-152 (0.875 CPU-s
  at 2.8 GHz → 3.77 ms/MB) with SL ≈ 8× LIFL and SF in between.
* **Cold start ≈ 2 s**: typical Knative pod cold start; the paper leans on
  this for the reuse/eager arguments (§5.3–5.4, Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import CalibrationError
from repro.common.units import MB

_PER_MB = 1.0 / MB  # convert ms/MB constants into s/byte


def _ms_per_mb(x: float) -> float:
    """ms-per-MB → seconds-per-byte."""
    return x * 1e-3 * _PER_MB


@dataclass(frozen=True)
class DataplaneCalibration:
    """Frozen bundle of hop-cost constants (seconds, bytes, CPU-seconds)."""

    # --- serialization (tensor <-> wire format, §Appendix C) -------------
    serialize_lat_per_byte: float = _ms_per_mb(1.2)
    serialize_cpu_per_byte: float = _ms_per_mb(1.2)
    deserialize_lat_per_byte: float = _ms_per_mb(1.2)
    deserialize_cpu_per_byte: float = _ms_per_mb(1.2)

    # --- kernel networking -------------------------------------------------
    #: one full loopback traversal (TX + RX through the local TCP/IP stack)
    kernel_loopback_lat_per_byte: float = _ms_per_mb(7.3)
    kernel_loopback_cpu_per_byte: float = _ms_per_mb(5.5)
    #: wire-adjacent kernel processing, each side of an inter-node transfer
    kernel_wire_side_lat_per_byte: float = _ms_per_mb(5.8)
    kernel_wire_side_cpu_per_byte: float = _ms_per_mb(4.2)
    kernel_fixed_lat: float = 200e-6  # connection/syscall overhead per message
    kernel_fixed_cpu: float = 100e-6

    # --- gRPC framing ------------------------------------------------------
    grpc_lat_per_byte: float = _ms_per_mb(0.14)
    grpc_cpu_per_byte: float = _ms_per_mb(0.20)

    # --- shared memory (LIFL object store) ----------------------------------
    shm_write_lat_per_byte: float = _ms_per_mb(2.3)
    shm_write_cpu_per_byte: float = _ms_per_mb(2.4)
    shm_read_lat_per_byte: float = _ms_per_mb(0.98)
    shm_read_cpu_per_byte: float = _ms_per_mb(1.37)
    #: SKMSG delivery of a 16-byte object key through the eBPF sidecar
    skmsg_fixed_lat: float = 50e-6
    skmsg_fixed_cpu: float = 20e-6

    # --- container-based sidecar (SL baseline; §2.3) -----------------------
    #: one traversal (intercept + forward); an update crosses two per transfer
    sidecar_lat_per_byte: float = _ms_per_mb(2.0)
    sidecar_cpu_per_byte: float = _ms_per_mb(5.0)
    sidecar_fixed_lat: float = 500e-6
    sidecar_fixed_cpu: float = 300e-6

    # --- message broker (SL baseline; §2.3, Fig. 5) -------------------------
    #: broker ingress/egress kernel hops plus queue management, per transfer
    broker_lat_per_byte: float = _ms_per_mb(5.86)
    broker_cpu_per_byte: float = _ms_per_mb(13.0)
    broker_fixed_lat: float = 1e-3
    broker_fixed_cpu: float = 500e-6
    #: the serverful-microservice broker (Fig. 5 "Microservice") is stateful
    #: and replicated, hence heavier per byte than the SL broker (Fig. 13
    #: shows SF-micro costing *more* than SL-B end to end).
    sf_broker_lat_per_byte: float = _ms_per_mb(9.5)
    sf_broker_cpu_per_byte: float = _ms_per_mb(16.0)

    # --- message queuing on the client→aggregator path (Fig. 13, App. F) ---
    #: broker enqueue/dequeue when broker and aggregator are co-located
    #: (no extra wire crossing, unlike the aggregator→aggregator broker hop)
    queuing_broker_lat_per_byte: float = _ms_per_mb(3.2)
    queuing_broker_cpu_per_byte: float = _ms_per_mb(1.5)
    #: same stage for the serverful-microservice broker (durable/replicated)
    queuing_sf_broker_lat_per_byte: float = _ms_per_mb(8.84)
    queuing_sf_broker_cpu_per_byte: float = _ms_per_mb(9.4)
    #: in-memory enqueue inside the monolithic serverful aggregator
    monolith_enqueue_lat_per_byte: float = _ms_per_mb(2.3)
    monolith_enqueue_cpu_per_byte: float = _ms_per_mb(2.4)

    # --- LIFL gateway (per-node, §4.2) --------------------------------------
    #: consolidated one-time payload processing on RX (protocol processing,
    #: tensor→NumpyArray conversion) before the shm write
    gateway_rx_lat_per_byte: float = _ms_per_mb(1.3)
    gateway_rx_cpu_per_byte: float = _ms_per_mb(1.3)
    gateway_tx_lat_per_byte: float = _ms_per_mb(1.3)
    gateway_tx_cpu_per_byte: float = _ms_per_mb(1.3)
    #: per-core service rate for gateway vertical scaling (bytes/s a single
    #: gateway core can push through its RX pipeline)
    gateway_core_service_bps: float = 400 * MB

    # --- wire ---------------------------------------------------------------
    #: 10 Gb NIC in bytes/s; the fabric divides this among concurrent flows
    wire_bps: float = 1.25e9

    # --- function lifecycle --------------------------------------------------
    cold_start_latency: float = 2.0
    cold_start_cpu: float = 1.0
    #: converting a warm runtime's role (leaf→middle→top, §5.3) is ~free
    reuse_latency: float = 5e-3
    reuse_cpu: float = 1e-3

    # --- aggregation compute --------------------------------------------------
    #: FedAvg accumulate of one update (numpy add + scale over the payload)
    agg_compute_lat_per_byte: float = _ms_per_mb(3.3)
    agg_compute_cpu_per_byte: float = _ms_per_mb(3.3)
    #: per-round evaluation task on the global model (Fig. 4 "Eval." bars)
    eval_task_latency: float = 5.0
    eval_task_cpu: float = 5.0

    def validate(self) -> None:
        """Check internal consistency against the paper's headline ratios.

        Raises :class:`CalibrationError` if the composed pipelines no longer
        reproduce Fig. 7(a)'s ordering and rough factors.  Called by tests
        and by :func:`repro.dataplane.pipelines.intra_node_pipeline` users
        who supply custom calibrations.
        """
        r152 = 232 * MB
        lifl = (self.shm_write_lat_per_byte + self.shm_read_lat_per_byte) * r152 + self.skmsg_fixed_lat
        sf = (
            self.serialize_lat_per_byte
            + self.grpc_lat_per_byte
            + self.kernel_loopback_lat_per_byte
            + self.deserialize_lat_per_byte
        ) * r152 + self.kernel_fixed_lat
        sl = sf + (2 * self.sidecar_lat_per_byte + self.broker_lat_per_byte) * r152
        if not (lifl < sf < sl):
            raise CalibrationError(
                f"intra-node latency ordering violated: LIFL={lifl:.3f} SF={sf:.3f} SL={sl:.3f}"
            )
        if not 2.0 <= sf / lifl <= 4.5:
            raise CalibrationError(f"SF/LIFL latency ratio {sf / lifl:.2f} outside [2, 4.5]")
        if not 4.5 <= sl / lifl <= 8.0:
            raise CalibrationError(f"SL/LIFL latency ratio {sl / lifl:.2f} outside [4.5, 8]")


#: The calibration used by every experiment unless overridden.
DEFAULT_CALIBRATION = DataplaneCalibration()
DEFAULT_CALIBRATION.validate()
