"""Data-plane cost models.

The paper's data-plane comparison (Figs. 5, 7, 13 and Appendix F) is about
*pipelines built from hops*: every architecture moves a model update from a
producer to a consumer through some sequence of processing stages, and each
stage costs latency, CPU and buffered memory.  This subpackage models each
stage explicitly:

* :mod:`repro.dataplane.kernel` — kernel TCP/IP + gRPC hops,
* :mod:`repro.dataplane.shm` — shared-memory write/read + SKMSG key passing,
* :mod:`repro.dataplane.sidecar` — container-based vs eBPF-based sidecars,
* :mod:`repro.dataplane.broker` — the message broker of serverless designs,
* :mod:`repro.dataplane.gateway` — LIFL's per-node gateway (RX/TX pipeline,
  vertical scaling),
* :mod:`repro.dataplane.pipelines` — the composed SF / SL / LIFL paths and
  the four message-queuing designs of Fig. 5,
* :mod:`repro.dataplane.calibration` — every constant, in one frozen
  dataclass, calibrated against the paper's reported numbers.
"""

from repro.dataplane.calibration import DEFAULT_CALIBRATION, DataplaneCalibration
from repro.dataplane.pipelines import (
    PipelineKind,
    QueuingDesign,
    intra_node_pipeline,
    inter_node_pipeline,
    queuing_pipeline,
)
from repro.dataplane.transfer import Hop, Pipeline, TransferResult

__all__ = [
    "DEFAULT_CALIBRATION",
    "DataplaneCalibration",
    "Hop",
    "Pipeline",
    "PipelineKind",
    "QueuingDesign",
    "TransferResult",
    "inter_node_pipeline",
    "intra_node_pipeline",
    "queuing_pipeline",
]
