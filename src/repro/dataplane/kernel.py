"""Kernel-networking hops (TCP/IP stack, gRPC framing, serialization).

These are the stages every non-LIFL path pays: protocol processing, data
copies across the user/kernel boundary, serialization and deserialization of
tensor payloads (§4.1 lists the overheads shared memory eliminates).
"""

from __future__ import annotations

from repro.dataplane.calibration import DataplaneCalibration
from repro.dataplane.transfer import Hop, HopCost


def serialize_hop(cal: DataplaneCalibration, component: str = "dataplane", group: str = "base") -> Hop:
    """Tensor → wire bytes at the producer."""
    return Hop(
        "serialize",
        HopCost(
            latency_per_byte=cal.serialize_lat_per_byte,
            cpu_per_byte=cal.serialize_cpu_per_byte,
            copies=1,
        ),
        component=component,
        group=group,
    )


def deserialize_hop(cal: DataplaneCalibration, component: str = "dataplane", group: str = "base") -> Hop:
    """Wire bytes → tensor at the consumer."""
    return Hop(
        "deserialize",
        HopCost(
            latency_per_byte=cal.deserialize_lat_per_byte,
            cpu_per_byte=cal.deserialize_cpu_per_byte,
            copies=0,
        ),
        component=component,
        group=group,
    )


def grpc_hop(cal: DataplaneCalibration, component: str = "dataplane", group: str = "base") -> Hop:
    """gRPC message framing/flow control on top of TCP."""
    return Hop(
        "grpc",
        HopCost(latency_per_byte=cal.grpc_lat_per_byte, cpu_per_byte=cal.grpc_cpu_per_byte),
        component=component,
        group=group,
    )


def loopback_hop(cal: DataplaneCalibration, component: str = "kernel", group: str = "base") -> Hop:
    """Full intra-node kernel TCP round: send() through the local stack to a
    co-located receiver, including both boundary crossings and two copies."""
    return Hop(
        "kernel-loopback",
        HopCost(
            latency_fixed=cal.kernel_fixed_lat,
            latency_per_byte=cal.kernel_loopback_lat_per_byte,
            cpu_fixed=cal.kernel_fixed_cpu,
            cpu_per_byte=cal.kernel_loopback_cpu_per_byte,
            copies=1,
        ),
        component=component,
        group=group,
    )


def wire_tx_hop(cal: DataplaneCalibration, component: str = "kernel", group: str = "base") -> Hop:
    """Sender-side kernel processing of an inter-node transfer (the wire
    itself is modelled by the fabric's processor-sharing link)."""
    return Hop(
        "kernel-wire-tx",
        HopCost(
            latency_fixed=cal.kernel_fixed_lat,
            latency_per_byte=cal.kernel_wire_side_lat_per_byte,
            cpu_fixed=cal.kernel_fixed_cpu,
            cpu_per_byte=cal.kernel_wire_side_cpu_per_byte,
            copies=1,
        ),
        component=component,
        group=group,
    )


def wire_rx_hop(cal: DataplaneCalibration, component: str = "kernel", group: str = "base") -> Hop:
    """Receiver-side kernel processing of an inter-node transfer."""
    return Hop(
        "kernel-wire-rx",
        HopCost(
            latency_fixed=cal.kernel_fixed_lat,
            latency_per_byte=cal.kernel_wire_side_lat_per_byte,
            cpu_fixed=cal.kernel_fixed_cpu,
            cpu_per_byte=cal.kernel_wire_side_cpu_per_byte,
            copies=1,
        ),
        component=component,
        group=group,
    )


def wire_propagation_hop(cal: DataplaneCalibration, component: str = "wire", group: str = "base") -> Hop:
    """Uncontended wire time (used by closed-form pipeline costs; simulation
    paths use the fabric's processor-sharing link instead)."""
    return Hop(
        "wire",
        HopCost(latency_per_byte=1.0 / cal.wire_bps),
        component=component,
        group=group,
    )
