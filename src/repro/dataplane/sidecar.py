"""Sidecar hops: container-based (SL baseline) vs eBPF-based (LIFL).

The container sidecar intercepts and forwards every message through its own
network stack — one full traversal on the way in and one on the way out
(§2.3 "Heavyweight sidecar").  The eBPF sidecar replaces that with in-kernel
event-driven programs whose cost is the fixed SKMSG overhead, consuming no
CPU at idle (§4.3).
"""

from __future__ import annotations

from repro.dataplane.calibration import DataplaneCalibration
from repro.dataplane.transfer import Hop, HopCost


def container_sidecar_hop(cal: DataplaneCalibration, direction: str, group: str = "sidecar") -> Hop:
    """One container-sidecar traversal (``direction`` is 'in' or 'out').

    Tagged with ``group='sidecar'`` so Fig. 7(a)'s ``+SC`` share can be
    reported from the pipeline breakdown.
    """
    if direction not in ("in", "out"):
        raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
    return Hop(
        f"sidecar-{direction}",
        HopCost(
            latency_fixed=cal.sidecar_fixed_lat,
            latency_per_byte=cal.sidecar_lat_per_byte,
            cpu_fixed=cal.sidecar_fixed_cpu,
            cpu_per_byte=cal.sidecar_cpu_per_byte,
            copies=1 if direction == "in" else 0,
        ),
        component="sidecar",
        group=group,
    )


def ebpf_sidecar_metrics_hop(cal: DataplaneCalibration) -> Hop:
    """Metrics collection on a send() event — the only cost LIFL's sidecar
    adds to the data path (it shares the SKMSG invocation)."""
    return Hop(
        "ebpf-metrics",
        HopCost(latency_fixed=0.0, cpu_fixed=cal.skmsg_fixed_cpu / 2),
        component="ebpf",
        group="base",
    )
