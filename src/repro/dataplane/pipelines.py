"""Composed data-plane pipelines for the three systems under test.

Three families, matching the paper's three measurement settings:

* **intra-node aggregator→aggregator** (Fig. 7(a)/(b)): how a leaf hands an
  intermediate update to the top aggregator on the same node;
* **inter-node aggregator→aggregator** (Fig. 8's cross-node transfers): the
  same handoff across the wire, through each system's machinery;
* **client→aggregator message queuing** (Fig. 5 / Fig. 13 / Appendix F):
  how an update entering the node reaches the (possibly not-yet-started)
  aggregator, under the four queuing designs.
"""

from __future__ import annotations

from enum import Enum

from repro.common.errors import ConfigError
from repro.dataplane.broker import broker_hop
from repro.dataplane.calibration import DEFAULT_CALIBRATION, DataplaneCalibration
from repro.dataplane.gateway import gateway_rx_hop, gateway_tx_hop
from repro.dataplane.kernel import (
    deserialize_hop,
    grpc_hop,
    loopback_hop,
    serialize_hop,
    wire_propagation_hop,
    wire_rx_hop,
    wire_tx_hop,
)
from repro.dataplane.shm import shm_read_hop, shm_write_hop, skmsg_hop
from repro.dataplane.sidecar import container_sidecar_hop, ebpf_sidecar_metrics_hop
from repro.dataplane.transfer import Hop, HopCost, Pipeline


class PipelineKind(str, Enum):
    """The three systems compared throughout the evaluation."""

    LIFL = "lifl"
    SERVERFUL = "sf"
    SERVERLESS = "sl"


class QueuingDesign(str, Enum):
    """The four message-queuing designs of Fig. 5."""

    SF_MONO = "sf-mono"
    SF_MICRO = "sf-micro"
    SL_BASIC = "sl-b"
    LIFL = "lifl"


def intra_node_pipeline(
    kind: PipelineKind, cal: DataplaneCalibration = DEFAULT_CALIBRATION
) -> Pipeline:
    """Aggregator→aggregator transfer on one node (Fig. 7 setting)."""
    if kind is PipelineKind.LIFL:
        return Pipeline(
            "lifl-intra",
            [
                shm_write_hop(cal),
                skmsg_hop(cal),
                ebpf_sidecar_metrics_hop(cal),
                shm_read_hop(cal),
            ],
        )
    sf_base = [
        serialize_hop(cal),
        grpc_hop(cal),
        loopback_hop(cal),
        deserialize_hop(cal),
    ]
    if kind is PipelineKind.SERVERFUL:
        return Pipeline("sf-intra", sf_base)
    if kind is PipelineKind.SERVERLESS:
        # Same base path, plus two container-sidecar traversals (+SC) and a
        # broker round (+MB) — the stacked contributions in Fig. 7(a).
        return Pipeline(
            "sl-intra",
            [
                *sf_base,
                container_sidecar_hop(cal, "out"),
                broker_hop(cal),
                container_sidecar_hop(cal, "in"),
            ],
        )
    raise ConfigError(f"unknown pipeline kind: {kind!r}")


def inter_node_pipeline(
    kind: PipelineKind,
    cal: DataplaneCalibration = DEFAULT_CALIBRATION,
    include_wire: bool = True,
) -> Pipeline:
    """Aggregator→aggregator transfer across nodes.

    With ``include_wire=False`` the uncontended wire hop is omitted — the
    simulation paths put the bytes on the fabric's processor-sharing links
    instead, so contention is modelled properly.
    """
    wire: list[Hop] = [wire_propagation_hop(cal)] if include_wire else []
    if kind is PipelineKind.LIFL:
        # source gateway reads from shm and serializes; remote gateway
        # deserializes into its shm store and notifies via SKMSG (App. A).
        return Pipeline(
            "lifl-inter",
            [
                shm_read_hop(cal),
                gateway_tx_hop(cal),
                wire_tx_hop(cal),
                *wire,
                wire_rx_hop(cal),
                gateway_rx_hop(cal),
                shm_write_hop(cal),
                skmsg_hop(cal),
            ],
        )
    sf_hops = [
        serialize_hop(cal),
        grpc_hop(cal),
        wire_tx_hop(cal),
        *wire,
        wire_rx_hop(cal),
        deserialize_hop(cal),
    ]
    if kind is PipelineKind.SERVERFUL:
        return Pipeline("sf-inter", sf_hops)
    if kind is PipelineKind.SERVERLESS:
        return Pipeline(
            "sl-inter",
            [
                *sf_hops,
                container_sidecar_hop(cal, "out"),
                broker_hop(cal),
                container_sidecar_hop(cal, "in"),
            ],
        )
    raise ConfigError(f"unknown pipeline kind: {kind!r}")


def _queue_resident(name: str, lat_pb: float, cpu_pb: float, component: str) -> Hop:
    """A hop whose buffer holds the payload until consumption (counted as a
    queuing copy for Fig. 13(b))."""
    return Hop(
        name,
        HopCost(latency_per_byte=lat_pb, cpu_per_byte=cpu_pb, copies=1),
        component=component,
        group="queue",
    )


def queuing_pipeline(
    design: QueuingDesign, cal: DataplaneCalibration = DEFAULT_CALIBRATION
) -> Pipeline:
    """Client→aggregator path under each Fig. 5 design (Fig. 13 metrics).

    ``copies`` counts only queue-resident buffers (the quantity plotted as
    normalized memory cost): 1 for SF-mono and LIFL, 2 for SF-micro
    (broker + aggregator), 3 for SL-B (sidecar + broker + aggregator).
    """
    rx = Hop(
        "kernel-wire-rx",
        HopCost(
            latency_fixed=cal.kernel_fixed_lat,
            latency_per_byte=cal.kernel_wire_side_lat_per_byte,
            cpu_fixed=cal.kernel_fixed_cpu,
            cpu_per_byte=cal.kernel_wire_side_cpu_per_byte,
            copies=0,  # transient socket buffer, not a queuing stage
        ),
        component="kernel",
    )
    if design is QueuingDesign.SF_MONO:
        return Pipeline(
            "queue-sf-mono",
            [
                rx,
                deserialize_hop(cal),
                _queue_resident(
                    "monolith-enqueue",
                    cal.monolith_enqueue_lat_per_byte,
                    cal.monolith_enqueue_cpu_per_byte,
                    component="aggregator",
                ),
            ],
        )
    if design is QueuingDesign.LIFL:
        shm = Hop(
            "shm-write",
            HopCost(
                latency_per_byte=cal.shm_write_lat_per_byte,
                cpu_per_byte=cal.shm_write_cpu_per_byte,
                copies=1,  # the single in-place queuing buffer
            ),
            component="shm",
            group="queue",
        )
        return Pipeline("queue-lifl", [rx, gateway_rx_hop(cal), shm, skmsg_hop(cal)])
    if design is QueuingDesign.SL_BASIC:
        sidecar = Hop(
            "sidecar-in",
            HopCost(
                latency_fixed=cal.sidecar_fixed_lat,
                latency_per_byte=cal.sidecar_lat_per_byte,
                cpu_fixed=cal.sidecar_fixed_cpu,
                cpu_per_byte=cal.sidecar_cpu_per_byte,
                copies=1,  # sidecar locally buffers the update (App. F)
            ),
            component="sidecar",
            group="sidecar",
        )
        return Pipeline(
            "queue-sl-b",
            [
                rx,
                _queue_resident(
                    "broker-queue",
                    cal.queuing_broker_lat_per_byte,
                    cal.queuing_broker_cpu_per_byte,
                    component="broker",
                ),
                sidecar,
                deserialize_hop(cal),
                _aggregator_queue(cal),
            ],
        )
    if design is QueuingDesign.SF_MICRO:
        return Pipeline(
            "queue-sf-micro",
            [
                rx,
                _queue_resident(
                    "sf-broker-queue",
                    cal.queuing_sf_broker_lat_per_byte,
                    cal.queuing_sf_broker_cpu_per_byte,
                    component="broker",
                ),
                grpc_hop(cal),
                deserialize_hop(cal),
                _aggregator_queue(cal),
            ],
        )
    raise ConfigError(f"unknown queuing design: {design!r}")


def _aggregator_queue(cal: DataplaneCalibration) -> Hop:
    """The consumer-side buffer where the stateless aggregator parks the
    update until the Agg step dequeues it (zero marginal processing — the
    deserialize hop already produced the tensor)."""
    return Hop(
        "aggregator-queue",
        HopCost(copies=1),
        component="aggregator",
        group="queue",
    )
