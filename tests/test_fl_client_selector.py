"""Clients, selection, convergence curves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.fl.client import ClientConfig, FLClient, make_client_population
from repro.fl.convergence import AccuracyCurve, curve_for
from repro.fl.model import model_spec
from repro.fl.selector import Selector, SelectorConfig


def test_client_config_validation():
    with pytest.raises(ConfigError):
        ClientConfig("c", speed_factor=0.0)
    with pytest.raises(ConfigError):
        ClientConfig("c", hibernate_max=-1.0)


def test_training_duration_scales_with_speed():
    spec = model_spec("resnet18")
    rng = make_rng(0, "dur")
    fast = FLClient(ClientConfig("f", speed_factor=2.0), spec)
    slow = FLClient(ClientConfig("s", speed_factor=0.5), spec)
    f = np.mean([fast.training_duration(rng) for _ in range(200)])
    s = np.mean([slow.training_duration(rng) for _ in range(200)])
    assert s > 3.0 * f


def test_hibernation_bounds():
    spec = model_spec("resnet18")
    rng = make_rng(1, "hib")
    mobile = FLClient(ClientConfig("m", hibernate_max=60.0), spec)
    server = FLClient(ClientConfig("s", hibernate_max=0.0), spec)
    values = [mobile.hibernation(rng) for _ in range(300)]
    assert all(0.0 <= v <= 60.0 for v in values)
    assert max(values) > 40.0  # actually spans the range
    assert server.hibernation(rng) == 0.0


def test_timed_client_cannot_really_train():
    client = FLClient(ClientConfig("c"), model_spec("resnet152"))
    with pytest.raises(ConfigError):
        client.train(model_spec("mlp-small").dummy_parameters(), make_rng(0, "x"))


def test_population_heterogeneity():
    pop = make_client_population(100, model_spec("resnet18"), 60.0, make_rng(2, "pop"))
    speeds = [c.config.speed_factor for c in pop]
    assert len(pop) == 100
    assert max(speeds) / min(speeds) > 2.0
    assert all(c.config.hibernate_max == 60.0 for c in pop)


def test_selector_over_provisions():
    sel = Selector(SelectorConfig(aggregation_goal=10, over_provision=1.5))
    assert sel.target_count() == 15
    pop = make_client_population(50, model_spec("resnet18"), 0.0, make_rng(3, "p"))
    chosen = sel.select(pop, make_rng(3, "sel"))
    assert len(chosen) == 15
    assert len({c.client_id for c in chosen}) == 15  # no duplicates


def test_selector_handles_small_pool():
    sel = Selector(SelectorConfig(aggregation_goal=10, over_provision=2.0))
    pop = make_client_population(5, model_spec("resnet18"), 0.0, make_rng(4, "p"))
    assert len(sel.select(pop, make_rng(4, "s"))) == 5


def test_selector_validation():
    with pytest.raises(ConfigError):
        SelectorConfig(aggregation_goal=0)
    with pytest.raises(ConfigError):
        SelectorConfig(aggregation_goal=5, over_provision=0.9)
    with pytest.raises(ConfigError):
        SelectorConfig(aggregation_goal=5, diversity="random")
    with pytest.raises(ConfigError):
        Selector(SelectorConfig(aggregation_goal=1)).select([], make_rng(0, "x"))


def test_curve_monotone_and_saturating():
    curve = AccuracyCurve(a_max=0.8, tau=20.0, noise_scale=0.0)
    accs = [curve.accuracy_at(r) for r in range(0, 200, 10)]
    assert accs[0] == 0.0
    assert all(b >= a for a, b in zip(accs, accs[1:]))
    assert accs[-1] <= 0.8


def test_curve_rounds_to_target():
    curve = AccuracyCurve(a_max=0.82, tau=36.0, noise_scale=0.0)
    r = curve.rounds_to(0.70)
    assert curve.accuracy_at(r) >= 0.70
    assert curve.accuracy_at(r - 1) < 0.70


def test_curve_determinism_with_noise():
    curve = AccuracyCurve(a_max=0.8, tau=10.0, noise_scale=0.01)
    assert curve.accuracy_at(7) == curve.accuracy_at(7)


def test_curve_validation_and_presets():
    with pytest.raises(ConfigError):
        AccuracyCurve(a_max=0.0, tau=1.0)
    with pytest.raises(ConfigError):
        AccuracyCurve(a_max=0.5, tau=1.0).rounds_to(0.9)
    for name in ("resnet18", "resnet34", "resnet152", "mlp-small"):
        assert curve_for(name).a_max > 0.5
    with pytest.raises(ConfigError):
        curve_for("vit-22b")
