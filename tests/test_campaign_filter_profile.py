"""Grid subset selection (``--filter``) and profiling on the campaign runner."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import CampaignRunner, parse_filters


def test_parse_filters_multi_key():
    assert parse_filters(["system=LIFL", "batch=900"]) == {
        "system": "LIFL",
        "batch": "900",
    }


def test_parse_filters_rejects_malformed():
    with pytest.raises(ConfigError):
        parse_filters(["no-equals-sign"])
    with pytest.raises(ConfigError):
        parse_filters(["=value"])


def test_filter_selects_grid_subset():
    spec = get_scenario("fig08")
    full = CampaignRunner().expand([spec])
    subset = CampaignRunner(filters={"batch": "100"}).expand([spec])
    assert 0 < len(subset) < len(full)
    assert all(run.params["batch"] == 100 for run in subset)


def test_multi_key_filter_intersects():
    spec = get_scenario("fig08")
    subset = CampaignRunner(filters={"batch": "100", "config": "SL-H"}).expand([spec])
    assert len(subset) == 1
    assert subset[0].params == {"config": "SL-H", "batch": 100}


def test_filter_preserves_indices_and_seeds():
    """A filtered run must be the *same* run (index and derived seed) as in
    the full campaign, so filtering never changes results."""
    spec = get_scenario("fig08")
    full = {run.index: run for run in CampaignRunner(seed=7).expand([spec])}
    for run in CampaignRunner(seed=7, filters={"batch": "100"}).expand([spec]):
        assert run.seed == full[run.index].seed
        assert run.params == full[run.index].params


def test_filter_key_missing_from_grid_matches_nothing():
    spec = get_scenario("fig08")
    assert CampaignRunner(filters={"nonexistent": "1"}).expand([spec]) == []


def test_filter_coerces_int_axis_values():
    """``--filter tenants=4`` must match the int-typed grid axis."""
    spec = get_scenario("stress500-multitenant")
    subset = CampaignRunner(filters={"tenants": "4"}).expand([spec])
    assert subset
    assert all(run.params["tenants"] == 4 for run in subset)


def test_filter_coerces_numeric_spellings():
    """int/float axes match any numeric spelling of the same value."""
    spec = get_scenario("fig08")
    for token in ("100", "100.0", "1e2"):
        subset = CampaignRunner(filters={"batch": token}).expand([spec])
        assert subset, f"batch={token} matched nothing"
        assert all(run.params["batch"] == 100 for run in subset)


def test_filter_value_coercion_rules():
    from repro.scenarios.runner import _value_matches

    assert _value_matches(4, "4")
    assert _value_matches(4, "4.0")
    assert not _value_matches(4, "5")
    assert not _value_matches(4, "four")
    assert _value_matches(2.5, "2.5")
    assert _value_matches(True, "true")
    assert _value_matches(True, "1")
    assert _value_matches(False, "no")
    assert not _value_matches(True, "false")
    # bools are not ints: --filter flag=1 must not match the int 1 axis as
    # a bool, nor "True" match an int axis
    assert not _value_matches(1, "True")
    assert _value_matches("LIFL", "LIFL")
    assert not _value_matches("LIFL", "lifl")


def test_filtered_campaign_runs_only_subset():
    spec = get_scenario("fig07")  # single run, no grid
    result = CampaignRunner(filters={"setting": "nope"}).run([spec])
    report = result.report_for("fig07")
    assert report.records == []
    assert "no rows" in report.text


def test_profile_attaches_engine_counters():
    spec = get_scenario("fig04")
    result = CampaignRunner(profile=True, filters={"setting": "NH (kernel)"}).run([spec])
    rec = result.report_for("fig04").records[0]
    assert rec.perf is not None
    assert rec.perf["environments"] >= 1
    assert rec.perf["events_processed"] > 0
    assert rec.perf["heap_pushes"] >= rec.perf["events_processed"]


def test_profile_off_leaves_perf_none():
    spec = get_scenario("fig13")
    result = CampaignRunner().run([spec])
    assert result.report_for("fig13").records[0].perf is None
