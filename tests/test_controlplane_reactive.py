"""Property and behaviour tests for the reactive control plane.

The controller's safety envelope, hypothesis-swept:

* admission limits stay inside ``[limit_min, limit_max]`` and move at
  most ``limit_step`` per tick, whatever signal sequence drives them;
* the warm pool never retires below the quorum floor;
* ``healthy_nodes()`` never offers a partitioned (or below-bar) node,
  and a plan restricted to it never places on one;
* a replay with ``controller=None`` is identical to one running a
  controller with every feature disabled — the byte-invisibility the
  golden scenario JSON pins at campaign level.

Plus direct behaviour checks: deferral/shedding accounting, the round
watchdog, report merging, and the fabric-only fault-plan guard.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.plan import AggregatorCrash, FaultPlan, PartitionWindow
from repro.cluster.network import Fabric
from repro.cluster.node import NodeSpec
from repro.common.errors import ConfigError
from repro.controlplane.reactive import (
    ControlAction,
    Controller,
    ControllerConfig,
    ControllerReport,
    pool_floor_for,
)
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.core.stages import WarmState
from repro.sim.engine import Environment
from repro.traces.models import merge_traces, mmpp_trace, poisson_trace
from repro.traces.replay import ReplayConfig, TraceReplayEngine
from repro.traces.slo import SloTracker

NODES = [f"node{i}" for i in range(8)]


def _fabric(env: Environment) -> Fabric:
    fabric = Fabric(env, 10e9)
    for name in NODES:
        fabric.register_node(name)
    return fabric


def _controller(config: ControllerConfig, depths: list[int], **kwargs) -> Controller:
    env = Environment()
    return Controller(
        config,
        env,
        _fabric(env),
        kwargs.pop("warm", WarmState()),
        SloTracker(10.0, window_s=config.burn_window_s, controller=True),
        node_names=NODES,
        n_tenants=len(depths),
        base_limit=kwargs.pop("base_limit", 2),
        queue_depth=lambda t: depths[t],
        **kwargs,
    )


# ----------------------------------------------------------- admission limits
@settings(max_examples=60, deadline=None)
@given(
    signals=st.lists(
        st.tuples(
            st.lists(st.integers(0, 12), min_size=2, max_size=2),
            st.floats(0.0, 1.0),
        ),
        min_size=1,
        max_size=50,
    )
)
def test_limits_always_bounded_and_step_limited(signals):
    cfg = ControllerConfig(limit_min=1, limit_max=5, limit_step=1, hysteresis_ticks=1)
    depths = [0, 0]
    ctl = _controller(cfg, depths)
    for tick_depths, burn in signals:
        depths[:] = tick_depths
        before = list(ctl.limits)
        ctl._tick_limits(0.0, burn)
        for t, limit in enumerate(ctl.limits):
            assert cfg.limit_min <= limit <= cfg.limit_max
            assert abs(limit - before[t]) <= cfg.limit_step


def test_limits_raise_on_backlog_and_cut_under_burn():
    cfg = ControllerConfig(limit_min=1, limit_max=6, hysteresis_ticks=2)
    depths = [5]
    ctl = _controller(cfg, depths)
    ctl._tick_limits(0.0, 0.0)
    assert ctl.limits == [2], "one tick of backlog must not act (hysteresis)"
    ctl._tick_limits(1.0, 0.0)
    assert ctl.limits == [3], "sustained backlog raises by one step"
    depths[0] = 0
    ctl._tick_limits(2.0, 0.9)
    ctl._tick_limits(3.0, 0.9)
    assert ctl.limits == [2], "sustained burn cuts back toward limit_min"


# ---------------------------------------------------------------- warm pool
@settings(max_examples=60, deadline=None)
@given(
    demands=st.lists(st.integers(0, 20), min_size=1, max_size=40),
    floor=st.integers(0, 6),
)
def test_pool_never_below_quorum_floor(demands, floor):
    cfg = ControllerConfig(
        pool_max=16, pool_step=2, pool_spinup_s=0.0, hysteresis_ticks=1
    )
    depths = [0]
    warm = WarmState()
    warm.put("node0", floor)  # start exactly at the floor
    ctl = _controller(cfg, depths, warm=warm, pool_floor=floor)
    for demand in demands:
        depths[0] = demand
        ctl._tick_pool(0.0, 0.0)
        assert warm.total() >= floor
        assert warm.total() + ctl._spinning <= max(cfg.pool_max, floor)


def test_pool_floor_for_covers_quorum_tree():
    # quorum of 4 updates at 2 updates/leaf: 2 leaves + the top
    assert pool_floor_for(0.5, 8, 2) == 3
    assert pool_floor_for(1.0, 8, 4) == 3
    with pytest.raises(ConfigError):
        pool_floor_for(0.0, 8, 2)


# ------------------------------------------------------- chaos-aware placement
@settings(max_examples=60, deadline=None)
@given(
    partitioned=st.sets(st.integers(0, 7), max_size=7),
    degraded=st.dictionaries(st.integers(0, 7), st.floats(0.05, 1.0), max_size=8),
)
def test_healthy_nodes_never_partitioned_or_below_bar(partitioned, degraded):
    cfg = ControllerConfig(min_rate_factor=0.5)
    ctl = _controller(cfg, [0])
    fabric = ctl.fabric
    if partitioned:
        fabric.partition([NODES[i] for i in partitioned])
    for i, factor in degraded.items():
        if i not in partitioned:
            fabric.set_node_rate_factor(NODES[i], factor)
    healthy = ctl.healthy_nodes()
    health = fabric.node_health()
    for name in healthy:
        assert not health[name].partitioned
        assert health[name].rate_factor >= cfg.min_rate_factor
    # the restricted plan never touches an unhealthy node
    if healthy:
        platform = AggregationPlatform(
            PlatformConfig.lifl(),
            node_names=NODES,
            node_spec=NodeSpec(name="template", max_service_capacity=2),
        )
        _, plan = platform.prepare_round(
            [(0.0, 1.0)] * 8, 1e6, nodes=healthy
        )
        used = {spec.node for spec in plan.aggregators.values()}
        assert used <= set(healthy)


# --------------------------------------------------- controller-off identity
def _flash_trace(seed: int):
    return merge_traces(
        mmpp_trace(2.0, 30.0, 240.0, mean_calm=90.0, mean_burst=30.0, seed=seed, tenant=0),
        mmpp_trace(2.0, 30.0, 240.0, mean_calm=90.0, mean_burst=30.0, seed=seed + 1, tenant=1),
    )


def _factory():
    return AggregationPlatform(PlatformConfig.lifl(), node_names=NODES)


def test_controller_off_identical_to_all_features_disabled():
    """controller=None and a do-nothing controller serve identically —
    the byte-invisibility contract, checked record by record."""
    trace = _flash_trace(5)
    cfg = ReplayConfig(max_inflight=2, queue_limit=3, slo_target_s=15.0)
    noop = ControllerConfig(
        pool_scaling=False,
        admission_control=False,
        placement_aware=False,
        defer_deadline_s=0.0,
        round_deadline_s=0.0,
    )
    off = TraceReplayEngine(None, trace, cfg, seed=5, platform_factory=_factory).run()
    on = TraceReplayEngine(
        None, trace, cfg, seed=5, platform_factory=_factory, controller=noop
    ).run()
    assert off.records == on.records
    off_row, on_row = off.row(), on.row()
    assert off_row == {k: v for k, v in on_row.items() if k in off_row}
    assert on.controller is not None and on.controller.counts["limit-up"] == 0


def test_reactive_replay_deterministic_and_sharded():
    trace = _flash_trace(6)
    cfg = ReplayConfig(max_inflight=1, queue_limit=2, slo_target_s=15.0)
    ctl = ControllerConfig(limit_max=4, defer_deadline_s=10.0, hysteresis_ticks=1)

    def run(shards=1):
        return TraceReplayEngine(
            None, trace, cfg, seed=6, platform_factory=_factory, controller=ctl
        ).run(shards=shards, inline=True)

    first, second = run(), run()
    assert first.row() == second.row()
    assert first.records == second.records
    sharded = run(shards=2)
    assert sharded.row() == run(shards=2).row()
    assert sharded.merged.controller is not None


# ----------------------------------------------------- deferral and watchdog
def test_deferral_serves_or_sheds_with_full_queue_wait():
    trace = _flash_trace(7)
    cfg = ReplayConfig(max_inflight=1, queue_limit=1, slo_target_s=15.0)
    ctl = ControllerConfig(
        pool_scaling=False,
        admission_control=False,
        placement_aware=False,
        defer_deadline_s=6.0,
    )
    result = TraceReplayEngine(
        None, trace, cfg, seed=7, platform_factory=_factory, controller=ctl
    ).run()
    deferred = [r for r in result.records if r.deferred]
    assert deferred, "a tight queue under bursts must defer"
    for rec in deferred:
        if rec.shed:
            assert rec.admit_at < 0, "shed rounds were never admitted"
        else:
            assert rec.queue_wait > 0, "deferred-then-served keeps its full wait"
    row = result.row()
    assert row["deferred"] == sum(1 for r in deferred if not r.shed)
    assert row["shed"] == sum(1 for r in deferred if r.shed)
    assert row["rounds"] == len(result.records)


def test_watchdog_aborts_rounds_stalled_by_partition():
    trace = poisson_trace(10.0, 120.0, seed=8)
    cfg = ReplayConfig(max_inflight=2, queue_limit=4, slo_target_s=20.0)
    ctl = ControllerConfig(
        pool_scaling=False,
        admission_control=False,
        placement_aware=False,
        round_deadline_s=10.0,
        defer_deadline_s=0.0,
    )
    plan = FaultPlan(
        partitions=(PartitionWindow(nodes=tuple(NODES[:4]), start=10.0, end=110.0),)
    )

    def factory():
        return AggregationPlatform(
            PlatformConfig.lifl(),
            node_names=NODES,
            node_spec=NodeSpec(name="template", max_service_capacity=2),
        )

    result = TraceReplayEngine(
        None, trace, cfg, seed=8, platform_factory=factory,
        controller=ctl, fault_plan=plan,
    ).run()
    assert result.controller.counts["deadline-abort"] > 0
    aborted = [r for r in result.records if r.aborted]
    assert len(aborted) >= result.controller.counts["deadline-abort"] > 0
    # placement-aware serving avoids the partitioned rack almost entirely
    reactive = TraceReplayEngine(
        None, trace, cfg, seed=8, platform_factory=factory,
        controller=ControllerConfig(
            pool_scaling=False, admission_control=False,
            round_deadline_s=10.0, defer_deadline_s=0.0,
        ),
        fault_plan=plan,
    ).run()
    assert reactive.slo.attainment > result.slo.attainment


# ------------------------------------------------------------- merge/report
def test_slo_tracker_merge_preserves_shed_deferred_split():
    a = SloTracker(10.0, controller=True)
    a.observe(1.0, 2.0, deferred=True)
    a.shed()
    b = SloTracker(10.0)
    b.observe(0.5, 1.0)
    b.abort()
    b.merge(a)
    report = b.report()
    assert report["shed"] == 1 and report["deferred"] == 1
    assert report["rounds"] == 4  # 2 completed + 1 aborted + 1 shed
    plain = SloTracker(10.0)
    plain.observe(1.0, 1.0)
    assert "shed" not in plain.report()


def test_controller_report_merge_and_row():
    a = ControllerReport()
    a.ticks = 3
    a.record(ControlAction(1.0, "limit-up", "tenant0", 1))
    b = ControllerReport()
    b.ticks = 2
    b.record(ControlAction(2.0, "shed", "t0r1"))
    a.merge(b)
    row = a.row()
    assert row["ctl_ticks"] == 5
    assert row["ctl_limit_up"] == 1 and row["ctl_shed"] == 1
    with pytest.raises(ConfigError):
        ControlAction(0.0, "explode", "x")


def test_replay_fault_plan_must_be_fabric_only():
    trace = poisson_trace(5.0, 60.0, seed=1)
    bad = FaultPlan(crashes=(AggregatorCrash(at=1.0),))
    with pytest.raises(ConfigError):
        TraceReplayEngine(
            None, trace, platform_factory=_factory, fault_plan=bad
        )
