"""Scenario registry + campaign runner: expansion, determinism, parallelism."""

from __future__ import annotations

import json
import os

import pytest

from repro.common.errors import ConfigError
from repro.experiments import mixed_fleet, stress50
from repro.scenarios.registry import (
    ScenarioRun,
    all_scenarios,
    derive_seed,
    get_scenario,
    match_scenarios,
)
from repro.scenarios.runner import CampaignRunner, run_scenario

#: fast, fully deterministic scenarios used for the equivalence checks
FAST_DETERMINISTIC = ["fig04", "fig07", "fig13", "capacity"]


# ---------------------------------------------------------------- registry
def test_catalogue_contains_all_figures_and_extras():
    names = {s.name for s in all_scenarios()}
    assert {
        "fig04",
        "fig07",
        "fig08",
        "fig09",
        "fig10",
        "fig13",
        "overhead",
        "capacity",
        "mixed-fleet",
        "stress50",
    } <= names


def test_at_least_two_non_paper_scenarios_registered():
    extras = [s for s in all_scenarios() if not s.paper]
    assert len(extras) >= 2


def test_prefix_match_preserved():
    assert [s.name for s in match_scenarios(["fig0"])] == [
        "fig04",
        "fig07",
        "fig08",
        "fig09",
    ]
    # the historical symmetric match: a longer query still hits its prefix
    assert [s.name for s in match_scenarios(["fig08-extra-suffix"])] == ["fig08"]
    assert match_scenarios(["nope"]) == []
    assert match_scenarios(None) == all_scenarios()


def test_unknown_scenario_raises():
    with pytest.raises(ConfigError, match="unknown scenario"):
        get_scenario("does-not-exist")


def test_grid_expansion_order_and_seeds():
    spec = get_scenario("fig08")
    runs = spec.expand(campaign_seed=0)
    assert len(runs) == 15
    # config-major, batch-minor — the historical nested-loop order
    assert [r.params["batch"] for r in runs[:4]] == [20, 60, 100, 20]
    assert runs[0].params["config"] == "SL-H"
    assert runs[3].params["config"] == "+1"
    # seeds are deterministic functions of (campaign seed, scenario, index)
    again = spec.expand(campaign_seed=0)
    assert [r.seed for r in runs] == [r.seed for r in again]
    assert derive_seed(0, "fig08", 0) == runs[0].seed
    assert derive_seed(1, "fig08", 0) != runs[0].seed


# ------------------------------------------------------------------ runner
@pytest.fixture(scope="module")
def sequential_campaign():
    specs = [get_scenario(n) for n in FAST_DETERMINISTIC]
    return CampaignRunner(jobs=1).run(specs)


def test_parallel_campaign_is_byte_identical(sequential_campaign):
    specs = [get_scenario(n) for n in FAST_DETERMINISTIC]
    parallel = CampaignRunner(jobs=4).run(specs)
    seq_texts = [rep.text for rep in sequential_campaign.reports]
    par_texts = [rep.text for rep in parallel.reports]
    assert seq_texts == par_texts
    assert [rep.rows for rep in sequential_campaign.reports] == [
        rep.rows for rep in parallel.reports
    ]


def test_report_text_matches_legacy_fig04_shape(sequential_campaign):
    text = sequential_campaign.report_for("fig04").text
    assert text.startswith("Fig. 4 / Fig. 7(c) — per-round time")
    assert "WH (LIFL) timeline" in text
    assert "NH (kernel)" in text


def test_rows_are_json_serializable(sequential_campaign):
    for rep in sequential_campaign.reports:
        json.dumps(rep.rows)


def test_json_output_files(tmp_path):
    runner = CampaignRunner(jobs=1, out_dir=str(tmp_path))
    runner.run([get_scenario("fig07")])
    path = os.path.join(str(tmp_path), "fig07.json")
    assert os.path.exists(path)
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["scenario"] == "fig07"
    assert doc["runs"][0]["rows"]
    assert doc["runs"][0]["rows"][0]["system"] in {"LIFL", "SF", "SL"}


def test_run_scenario_convenience():
    report = run_scenario("fig13")
    assert report.spec.name == "fig13"
    assert "Fig. 13 — message-queuing overheads" in report.text


def test_campaign_rejects_bad_jobs_and_duplicates():
    with pytest.raises(ConfigError):
        CampaignRunner(jobs=0)
    spec = get_scenario("fig07")
    with pytest.raises(ConfigError, match="duplicate"):
        CampaignRunner().run([spec, spec])


# ------------------------------------------------------- non-paper scenarios
def test_mixed_fleet_scenario_runs_and_orders_systems():
    spec = get_scenario("mixed-fleet")
    runs = spec.expand(campaign_seed=0)
    assert len(runs) == 10
    # one LIFL and one SL cell on the same mix share the workload seed,
    # so the comparison is apples-to-apples
    lifl = spec.run(runs[2])[0]  # share=0.25, LIFL
    sl = spec.run(runs[3])[0]  # share=0.25, SL
    assert lifl["mobile_share"] == sl["mobile_share"] == 0.25
    assert lifl["mean_round_s"] < sl["mean_round_s"]
    assert lifl["cpu_per_round_s"] < sl["cpu_per_round_s"]


def test_mixed_fleet_population_mixing():
    from repro.fl.model import model_spec

    pop = mixed_fleet.make_mixed_population(40, 0.25, model_spec("resnet18"), seed=1)
    assert pop.size == 40
    mobiles = [c for c in pop.clients if c.config.hibernate_max > 0]
    assert len(mobiles) == 10


def test_stress50_lifl_beats_slh_at_scale():
    lifl = stress50.run_cell("LIFL", 250)
    slh = stress50.run_cell("SL-H", 250)
    # LIFL packs onto few nodes and reuses warm runtimes in steady state;
    # the reactive baseline spreads over all 50 and cold-starts everything.
    assert lifl["act_s"] < slh["act_s"]
    assert lifl["cpu_s"] < slh["cpu_s"]
    assert lifl["nodes_used"] < slh["nodes_used"] == 50
    assert lifl["aggregators_created"] == 0
    assert slh["aggregators_created"] > 0
    assert lifl["cross_node_transfers"] < slh["cross_node_transfers"]


def test_stress50_scenario_render():
    report = run_scenario("stress50")
    assert "Stress — 50 nodes" in report.text
    assert "SL-H/LIFL ACT ratio by batch" in report.text
    assert len(report.rows) == 6
