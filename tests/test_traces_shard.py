"""Multi-core sharded trace replay (`repro.traces.shard`).

The contract under test: sharding partitions *placement*, never
randomness — a shard replays its tenants' rounds with exactly the draws
the unsharded engine would have made, single-shard runs are byte-identical
to `TraceReplayEngine.run()`, and forked / inline / multiplexed-worker
execution modes all merge to identical results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.perf.counters import collect
from repro.traces.models import merge_traces, poisson_trace
from repro.traces.replay import ReplayConfig, TraceReplayEngine
from repro.traces.shard import (
    ShardedReplayEngine,
    plan_shards,
    split_trace,
)
from repro.traces.slo import LatencyDigest, SloTracker

N_NODES = 4
HORIZON_S = 120.0
CONFIG = ReplayConfig(
    round_updates=4, nbytes=1e6, max_inflight=2, queue_limit=4, slo_target_s=10.0
)


def _lifl_platform() -> AggregationPlatform:
    return AggregationPlatform(
        PlatformConfig.lifl(), node_names=[f"node{i}" for i in range(N_NODES)]
    )


def _three_tenant_trace(seed: int = 5):
    return merge_traces(
        *(poisson_trace(8.0, HORIZON_S, seed=seed, tenant=t) for t in range(3))
    )


def _engine(trace, shards: int = 1, **kw) -> ShardedReplayEngine:
    return ShardedReplayEngine(
        _lifl_platform, trace, CONFIG, seed=5, shards=shards, **kw
    )


def _record_key(rec):
    return (
        rec.tenant,
        rec.round_id,
        rec.arrival_at,
        rec.admit_at,
        rec.complete_at,
        rec.aborted,
        rec.rejected,
        tuple(rec.participants),
    )


def _workload_key(rec):
    """The shard-invariant part of a record: what was offered and drawn,
    not when contention let it finish."""
    return (rec.tenant, rec.round_id, rec.arrival_at, rec.updates, tuple(rec.participants))


# ------------------------------------------------------------------ planning
def test_plan_shards_is_tenant_affine_and_balanced():
    trace = _three_tenant_trace()
    plan = plan_shards(trace, 2)
    assert plan.n_shards == 2
    plan.validate(trace)
    # every tenant appears in exactly one shard
    assigned = sorted(t for shard in plan.assignments for t in shard)
    assert assigned == [0, 1, 2]
    # LPT: the heaviest tenant sits alone on its shard
    counts = {t: sum(1 for ev in trace.events if ev.tenant == t) for t in range(3)}
    heaviest = max(counts, key=lambda t: (counts[t], -t))
    solo = [shard for shard in plan.assignments if len(shard) == 1]
    assert any(shard == (heaviest,) for shard in solo)


def test_plan_shards_caps_at_tenant_count_and_is_deterministic():
    trace = _three_tenant_trace()
    assert plan_shards(trace, 16).n_shards == 3
    single = poisson_trace(6.0, HORIZON_S, seed=1)
    assert plan_shards(single, 4).assignments == ((0,),)
    assert plan_shards(trace, 2) == plan_shards(trace, 2)
    with pytest.raises(ConfigError):
        plan_shards(trace, 0)


def test_split_trace_preserves_ids_horizon_and_partitions_events():
    trace = _three_tenant_trace()
    plan = plan_shards(trace, 3)
    subs = [split_trace(trace, tenants) for tenants in plan.assignments]
    assert all(sub.horizon == trace.horizon for sub in subs)
    # the shards partition the event set exactly, ids untouched
    merged = sorted(
        ((ev.at, ev.tenant, ev.round_id) for sub in subs for ev in sub.events)
    )
    assert merged == [(ev.at, ev.tenant, ev.round_id) for ev in trace.events]


# ------------------------------------------------------------- digest merge
def test_latency_digest_merge_is_exact():
    rng = np.random.default_rng(7)
    samples = rng.exponential(3.0, size=500).tolist()
    whole = LatencyDigest()
    left, right = LatencyDigest(), LatencyDigest()
    for i, s in enumerate(samples):
        whole.add(s)
        (left if i % 2 else right).add(s)
    left.merge(right)
    assert left._counts == whole._counts  # bucket-exact, not approximate
    assert left.count == whole.count
    assert left.total == pytest.approx(whole.total)
    assert left.min == whole.min and left.max == whole.max
    for q in (0.0, 0.5, 0.95, 0.99, 1.0):
        assert left.quantile(q) == whole.quantile(q)


def test_latency_digest_merge_rejects_mismatched_bucketing():
    with pytest.raises(ConfigError):
        LatencyDigest().merge(LatencyDigest(bins_per_decade=64))
    with pytest.raises(ConfigError):
        LatencyDigest().merge(LatencyDigest(lo=1e-2))


def test_slo_tracker_merge_sums_tallies_and_checks_target():
    a, b = SloTracker(5.0), SloTracker(5.0)
    a.observe(1.0, 2.0)
    a.reject()
    b.observe(0.5, 10.0)  # misses the SLO
    b.abort()
    a.merge(b)
    rep = a.report()
    assert rep["rounds"] == 4
    assert rep["completed"] == 2
    assert rep["aborted"] == 1 and rep["rejected"] == 1
    assert rep["slo_attainment"] == pytest.approx(0.25)
    with pytest.raises(ConfigError):
        a.merge(SloTracker(6.0))


# ------------------------------------------------------------ sharded replay
def test_single_shard_is_byte_identical_to_sequential_replay():
    trace = _three_tenant_trace()
    seq = TraceReplayEngine(_lifl_platform(), trace, CONFIG, seed=5).run()
    sharded = _engine(trace, shards=1).run()
    assert sharded.row() == seq.row()
    assert sharded.merged.slo.report() == seq.slo.report()
    assert list(map(_record_key, sharded.merged.records)) == list(
        map(_record_key, seq.records)
    )
    assert sharded.merged.peak_inflight == seq.peak_inflight
    assert sharded.merged.peak_inflight_per_tenant == seq.peak_inflight_per_tenant


def test_forked_inline_and_multiplexed_workers_merge_identically():
    trace = _three_tenant_trace()
    forked = _engine(trace, shards=3, workers=3).run()
    inline = _engine(trace, shards=3).run(inline=True)
    two_workers = _engine(trace, shards=3, workers=2).run()
    assert forked.forked and not inline.forked
    assert forked.row() == inline.row() == two_workers.row()
    for other in (inline, two_workers):
        assert list(map(_record_key, forked.merged.records)) == list(
            map(_record_key, other.merged.records)
        )
    # the same replay twice is bit-stable
    again = _engine(trace, shards=3, workers=3).run()
    assert again.row() == forked.row()


def test_sharding_partitions_placement_but_never_randomness():
    """shards=1 vs shards=3: every offered round draws identical
    participants at an identical arrival — only contention-dependent
    completion may differ (each shard has its own fabric)."""
    trace = _three_tenant_trace()
    one = _engine(trace, shards=1).run()
    three = _engine(trace, shards=3).run()
    assert one.row()["rounds"] == three.row()["rounds"] == len(trace.events)
    assert list(map(_workload_key, one.merged.records)) == list(
        map(_workload_key, three.merged.records)
    )
    # tenant-affinity: each shard's records stay within its tenants
    for rep in three.shards:
        assert {rec.tenant for rec in rep.result.records} <= set(rep.tenants)
    assert three.merged.peak_inflight == sum(r.result.peak_inflight for r in three.shards)


def test_single_tenant_trace_collapses_to_one_shard():
    trace = poisson_trace(8.0, HORIZON_S, seed=3)
    seq = TraceReplayEngine(_lifl_platform(), trace, CONFIG, seed=5).run()
    collapsed = _engine(trace, shards=4).run()
    assert len(collapsed.shards) == 1
    assert not collapsed.forked
    assert collapsed.row() == seq.row()


def test_replay_engine_run_shards_entry_point():
    trace = _three_tenant_trace()
    via_engine = TraceReplayEngine(
        None, trace, CONFIG, seed=5, platform_factory=_lifl_platform
    ).run(shards=3)
    direct = _engine(trace, shards=3).run()
    assert via_engine.row() == direct.row()
    # sharding without a factory is a configuration error
    with pytest.raises(ConfigError):
        TraceReplayEngine(_lifl_platform(), trace, CONFIG, seed=5).run(shards=2)
    with pytest.raises(ConfigError):
        TraceReplayEngine(None, trace, CONFIG, seed=5)
    # ... and so is sharding with a live platform next to the factory
    # (shards build their own; a mismatched pair would silently diverge)
    both = TraceReplayEngine(
        _lifl_platform(), trace, CONFIG, seed=5, platform_factory=_lifl_platform
    )
    with pytest.raises(ConfigError, match="ignores a supplied platform"):
        both.run(shards=2)
    # but a lazily-built platform from a 1-shard run does not poison
    # later sharded runs of the same engine
    lazy = TraceReplayEngine(
        None, trace, CONFIG, seed=5, platform_factory=_lifl_platform
    )
    lazy.run()
    assert lazy.run(shards=3).row()["rounds"] == len(trace.events)


def test_forked_worker_failure_names_its_shards():
    def flaky_factory():
        # The parent never calls the factory before forking, so every
        # call happens inside a worker; failing breaks that shard there.
        raise RuntimeError("boom")

    trace = _three_tenant_trace()
    engine = ShardedReplayEngine(
        flaky_factory, trace, CONFIG, seed=5, shards=3, workers=3
    )
    with pytest.raises(RuntimeError, match="sharded replay failed"):
        engine.run()


def test_forked_shards_credit_profile_counters():
    trace = _three_tenant_trace()
    with collect() as perf:
        result = _engine(trace, shards=3, workers=3).run()
    assert result.forked
    labelled = perf.labelled()
    assert set(labelled) == {"shard0", "shard1", "shard2"}
    total = perf.counters()
    assert total.events_processed == sum(
        rep.counters["events_processed"] for rep in result.shards
    )
    assert total.events_processed > 0
    merged = result.merged_counters()
    assert merged.events_processed == total.events_processed
    assert result.critical_path_seconds > 0.0


def test_empty_trace_keeps_report_shape():
    from repro.traces.models import Trace

    result = _engine(Trace(events=[], horizon=0.0), shards=4).run()
    assert result.row()["rounds"] == 0
    assert len(result.shards) == 1
