"""The documentation suite stays real: the README's quickstart block is
extractable (CI executes it verbatim), every file the README links
exists, and the scenario-authoring guide's companion example runs.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _readme() -> str:
    with open(os.path.join(REPO, "README.md"), encoding="utf-8") as fh:
        return fh.read()


def test_readme_quickstart_block_is_extractable():
    text = _readme()
    match = re.search(r"<!-- quickstart:begin -->(.*?)<!-- quickstart:end -->", text, re.S)
    assert match, "README.md must keep the quickstart markers CI extracts"
    commands = [
        line
        for line in match.group(1).splitlines()
        if line.strip() and not line.startswith(("#", "```"))
    ]
    assert commands, "quickstart block has no commands"
    # every command is self-contained: runnable from a bare checkout
    for cmd in commands:
        assert cmd.startswith("PYTHONPATH=src python -m "), cmd


def test_readme_links_resolve():
    for rel in re.findall(r"\]\(([^)#:]+)\)", _readme()):
        assert os.path.exists(os.path.join(REPO, rel)), f"README links missing {rel}"


def test_docs_exist_and_anchor_the_new_subsystem():
    for rel, needle in (
        ("docs/architecture.md", "ShardedReplayEngine"),
        ("docs/architecture.md", "The policy seam"),
        ("docs/architecture.md", "policy:family:name"),
        ("docs/scenario-authoring.md", "example-round-sweep"),
        ("docs/scenario-authoring.md", "Registering a custom policy"),
        ("docs/scenario-authoring.md", "freshest-first"),
        ("docs/architecture.md", "TelemetryBus"),
        ("docs/scenario-authoring.md", "ambient_bus"),
        ("README.md", "repro.core.policies"),
        ("README.md", "repro.telemetry"),
    ):
        path = os.path.join(REPO, rel)
        assert os.path.exists(path), rel
        with open(path, encoding="utf-8") as fh:
            assert needle in fh.read(), f"{rel} lost its {needle} section"


def test_custom_scenario_example_runs():
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO, "examples", "custom_scenario.py")],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "Example sweep" in proc.stdout
    assert "LIFL" in proc.stdout and "SL-H" in proc.stdout


def test_custom_policy_example_runs():
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO, "examples", "custom_policy.py")],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "freshest-first served" in proc.stdout
    assert "determinism holds" in proc.stdout
