"""Golden determinism for the chaos-era scenarios.

Same campaign seed ⇒ byte-identical per-scenario JSON for the three new
scenarios — sequential vs ``--jobs 4``, with and without ``--profile``.
This is the satellite guard for the chaos subsystem's seeding discipline:
every random choice (dropout victims, crash victims, arrival jitter)
derives from the campaign seed, never from process or scheduling state.
"""

from __future__ import annotations

import os

from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import CampaignRunner

SCENARIOS = ("chaos-sweep", "hetero-nic", "stress500-multitenant")
SEED = 11


def _campaign_json(tmp_path, subdir: str, jobs: int, profile: bool) -> dict[str, bytes]:
    out_dir = str(tmp_path / subdir)
    runner = CampaignRunner(jobs=jobs, seed=SEED, out_dir=out_dir, profile=profile)
    result = runner.run([get_scenario(name) for name in SCENARIOS])
    blobs: dict[str, bytes] = {}
    for name in os.listdir(out_dir):
        with open(os.path.join(out_dir, name), "rb") as fh:
            blobs[name] = fh.read()
    return blobs, result


def test_chaos_scenarios_golden_json_seq_vs_parallel_vs_profile(tmp_path):
    seq, seq_result = _campaign_json(tmp_path, "seq", jobs=1, profile=False)
    par, par_result = _campaign_json(tmp_path, "par", jobs=4, profile=False)
    prof, prof_result = _campaign_json(tmp_path, "prof", jobs=4, profile=True)
    assert set(seq) == {f"{name}.json" for name in SCENARIOS}
    for name in seq:
        assert seq[name] == par[name], f"{name}: sequential vs --jobs 4 differ"
        assert seq[name] == prof[name], f"{name}: --profile changed the JSON"
    # the rendered reports match too, not just the row files
    for seq_rep, par_rep in zip(seq_result.reports, par_result.reports):
        assert seq_rep.text == par_rep.text
    # profiling actually attached counters without touching the rows
    assert all(rec.perf is None for rep in seq_result.reports for rec in rep.records)
    prof_records = [rec for rep in prof_result.reports for rec in rep.records]
    assert prof_records
    assert all(rec.perf is not None for rec in prof_records)
    assert all(rec.perf["events_processed"] > 0 for rec in prof_records)
