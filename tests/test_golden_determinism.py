"""Golden determinism for the chaos- and trace-era scenarios.

Same campaign seed ⇒ byte-identical per-scenario JSON — sequential vs
``--jobs 4``, with and without ``--profile``.  This is the satellite
guard for the seeding discipline: every random choice (dropout victims,
crash victims, arrival jitter, trace events, round participants) derives
from the campaign seed, never from process or scheduling state.

The trace scenarios run one filtered cell each (``system=LIFL``) so the
guard stays fast; the filter itself exercises the typed ``--filter``
coercion path on the way.  The sharded-replay tests pin the multi-core
path: forked vs inline shard execution byte-identical, and shards=1 vs
shards=4 identical in everything sharding must not perturb (offered
rounds, participant draws) — see also ``tests/test_traces_shard.py``.
"""

from __future__ import annotations

import os

from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import CampaignRunner

SCENARIOS = ("chaos-sweep", "hetero-nic", "stress500-multitenant")
TRACE_SCENARIOS = (
    "trace-poisson-slo",
    "trace-diurnal-multitenant",
    "trace-burst-chaos",
)
#: every paper-figure experiment — the seed tree the policy registry must
#: reproduce byte for byte under default policy names
FIGURE_SCENARIOS = (
    "fig04",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig13",
    "capacity",
    "overhead",
)
SEED = 11


def _campaign_json(
    tmp_path,
    subdir: str,
    jobs: int,
    profile: bool,
    scenarios: tuple[str, ...] = SCENARIOS,
    filters: dict[str, str] | None = None,
) -> dict[str, bytes]:
    out_dir = str(tmp_path / subdir)
    runner = CampaignRunner(
        jobs=jobs, seed=SEED, out_dir=out_dir, profile=profile, filters=filters
    )
    result = runner.run([get_scenario(name) for name in scenarios])
    blobs: dict[str, bytes] = {}
    for name in os.listdir(out_dir):
        with open(os.path.join(out_dir, name), "rb") as fh:
            blobs[name] = fh.read()
    return blobs, result


def test_chaos_scenarios_golden_json_seq_vs_parallel_vs_profile(tmp_path):
    seq, seq_result = _campaign_json(tmp_path, "seq", jobs=1, profile=False)
    par, par_result = _campaign_json(tmp_path, "par", jobs=4, profile=False)
    prof, prof_result = _campaign_json(tmp_path, "prof", jobs=4, profile=True)
    assert set(seq) == {f"{name}.json" for name in SCENARIOS}
    for name in seq:
        assert seq[name] == par[name], f"{name}: sequential vs --jobs 4 differ"
        assert seq[name] == prof[name], f"{name}: --profile changed the JSON"
    # the rendered reports match too, not just the row files
    for seq_rep, par_rep in zip(seq_result.reports, par_result.reports):
        assert seq_rep.text == par_rep.text
    # profiling actually attached counters without touching the rows
    assert all(rec.perf is None for rep in seq_result.reports for rec in rep.records)
    prof_records = [rec for rep in prof_result.reports for rec in rep.records]
    assert prof_records
    assert all(rec.perf is not None for rec in prof_records)
    assert all(rec.perf["events_processed"] > 0 for rec in prof_records)


def test_sharded_trace_cell_golden_json_seq_vs_parallel_vs_profile(tmp_path):
    """The shards=4 diurnal cell through every execution mode.

    How the shards actually execute differs per mode: a sequential
    campaign may fork shard workers (CPU-count permitting), while a
    ``--jobs 4`` campaign runs each cell in a daemonic pool worker where
    the shards must execute inline.  Identical JSON proves forked and
    inline sharding merge byte-identically.
    """
    filters = {"system": "LIFL", "shards": "4"}
    scenarios = ("trace-diurnal-multitenant",)
    seq, _ = _campaign_json(
        tmp_path, "sh-seq", jobs=1, profile=False, scenarios=scenarios, filters=filters
    )
    par, _ = _campaign_json(
        tmp_path, "sh-par", jobs=4, profile=False, scenarios=scenarios, filters=filters
    )
    prof, prof_result = _campaign_json(
        tmp_path, "sh-prof", jobs=1, profile=True, scenarios=scenarios, filters=filters
    )
    for name in seq:
        assert seq[name] == par[name], f"{name}: forked vs inline shards differ"
        assert seq[name] == prof[name], f"{name}: --profile changed the JSON"
    # --profile saw the shards' engine work whichever way they executed
    # (labelled per-shard carriers when forked, direct envs when inline)
    rec = prof_result.reports[0].records[0]
    assert rec.perf is not None and rec.perf["events_processed"] > 0


def test_sharded_vs_sequential_diurnal_report_invariants():
    """shards=1 vs shards=4 on the diurnal workload: the offered workload
    (rounds, arrivals, sampled participants) is byte-identical; only
    contention-dependent timing may move, since each shard serves its
    tenants on its own fabric."""
    from repro.experiments.trace_scenarios import _diurnal_replay

    one = _diurnal_replay("LIFL", seed=SEED).run()
    four = _diurnal_replay("LIFL", seed=SEED).run(shards=4)
    assert len(four.shards) == 4
    assert four.row()["rounds"] == one.row()["rounds"] == len(one.records)
    key = lambda r: (r.tenant, r.round_id, r.arrival_at, r.updates, tuple(r.participants))  # noqa: E731
    assert list(map(key, four.merged.records)) == list(map(key, one.records))
    assert four.row()["tenants"] == one.row()["tenants"]
    # and the sharded run itself is bit-stable
    again = _diurnal_replay("LIFL", seed=SEED).run(shards=4)
    assert again.row() == four.row()


def test_trace_scenarios_golden_json_seq_vs_parallel_vs_profile(tmp_path):
    """One unsharded LIFL cell of each trace scenario: replay timelines
    and SLO rows must be byte-identical across execution modes.  (The
    shards=4 cell has its own golden test above.)"""
    filters = {"system": "LIFL", "shards": "1"}
    seq, seq_result = _campaign_json(
        tmp_path, "tr-seq", jobs=1, profile=False,
        scenarios=TRACE_SCENARIOS, filters=filters,
    )
    par, par_result = _campaign_json(
        tmp_path, "tr-par", jobs=4, profile=False,
        scenarios=TRACE_SCENARIOS, filters=filters,
    )
    prof, _ = _campaign_json(
        tmp_path, "tr-prof", jobs=4, profile=True,
        scenarios=TRACE_SCENARIOS, filters=filters,
    )
    assert set(seq) == {f"{name}.json" for name in TRACE_SCENARIOS}
    for name in seq:
        assert seq[name] == par[name], f"{name}: sequential vs --jobs 4 differ"
        assert seq[name] == prof[name], f"{name}: --profile changed the JSON"
    for seq_rep, par_rep in zip(seq_result.reports, par_result.reports):
        assert seq_rep.text == par_rep.text
    # the SLO columns actually made it into the recorded rows
    rows = [row for rep in seq_result.reports for row in rep.rows]
    assert rows
    for row in rows:
        for key in ("latency_p50_s", "latency_p95_s", "latency_p99_s", "slo_attainment"):
            assert key in row


def test_controlplane_scenarios_golden_json_seq_vs_parallel(tmp_path):
    """One controller-enabled cell of each control-plane scenario:
    sequential vs ``--jobs 4`` byte-identical — the reactive controller
    (ticks, scale actions, deferral, watchdog, health-aware placement)
    takes no random draws and perturbs nothing schedule-dependent."""
    cells = (
        ("autoscale-flashcrowd", {"mode": "reactive", "shards": "1"}),
        ("placement-chaos", {"placement": "reactive"}),
    )
    for name, filters in cells:
        seq, seq_result = _campaign_json(
            tmp_path, f"ctl-seq-{name}", jobs=1, profile=False,
            scenarios=(name,), filters=filters,
        )
        par, par_result = _campaign_json(
            tmp_path, f"ctl-par-{name}", jobs=4, profile=False,
            scenarios=(name,), filters=filters,
        )
        assert set(seq) == {f"{name}.json"}
        assert seq[f"{name}.json"] == par[f"{name}.json"], (
            f"{name}: sequential vs --jobs 4 differ"
        )
        for seq_rep, par_rep in zip(seq_result.reports, par_result.reports):
            assert seq_rep.text == par_rep.text
        # the controller actually ran and its columns reached the rows
        rows = [row for rep in seq_result.reports for row in rep.rows]
        assert rows
        for row in rows:
            assert row["ctl_ticks"] > 0
            assert "shed" in row and "deferred" in row


def test_figure_scenarios_golden_json_seq_vs_parallel(tmp_path):
    """All eight paper experiments, sequential vs ``--jobs 4``: with the
    policy registry resolving every default-named decision (placement's
    ``locality``, the selector paths, queue admission), the figure rows
    must stay byte-identical — the registry refactor is observationally
    invisible to the paper reproduction.  The ``overhead`` scenario is
    the one exception: it stopwatch-times real placement calls, so its
    ``measured_ms`` readings move with machine load; everything else in
    its JSON (operations, budgets, structure) must still match.

    The sequential campaign runs under an ambient (but unsubscribed)
    telemetry bus, so the same equality assertions also pin the bus's
    zero-overhead guarantee across every figure experiment."""
    import json

    from repro.telemetry.bus import TelemetryBus, capture

    with capture(TelemetryBus()):
        seq, seq_result = _campaign_json(
            tmp_path, "fig-seq", jobs=1, profile=False, scenarios=FIGURE_SCENARIOS
        )
    par, par_result = _campaign_json(
        tmp_path, "fig-par", jobs=4, profile=False, scenarios=FIGURE_SCENARIOS
    )
    assert set(seq) == {f"{name}.json" for name in FIGURE_SCENARIOS}

    def _strip_stopwatch(obj):
        if isinstance(obj, dict):
            return {
                k: (0.0 if k == "measured_ms" else _strip_stopwatch(v))
                for k, v in obj.items()
            }
        if isinstance(obj, list):
            return [_strip_stopwatch(v) for v in obj]
        return obj

    for name in seq:
        if name == "overhead.json":
            assert _strip_stopwatch(json.loads(seq[name])) == _strip_stopwatch(
                json.loads(par[name])
            ), f"{name}: sequential vs --jobs 4 differ beyond the stopwatch"
        else:
            assert seq[name] == par[name], f"{name}: sequential vs --jobs 4 differ"
    for seq_rep, par_rep in zip(seq_result.reports, par_result.reports):
        if seq_rep.spec.name == "overhead":
            continue  # stopwatch readings appear in the rendered text too
        assert seq_rep.text == par_rep.text


def test_policy_tournament_golden_json_seq_vs_parallel(tmp_path):
    """The full policy × workload tournament grid, sequential vs
    ``--jobs 4``: every contender's replay draws only from injected RNG
    streams, so the ranked brackets are a pure function of the campaign
    seed."""
    scenarios = ("policy-tournament",)
    seq, seq_result = _campaign_json(
        tmp_path, "pt-seq", jobs=1, profile=False, scenarios=scenarios
    )
    par, par_result = _campaign_json(
        tmp_path, "pt-par", jobs=4, profile=False, scenarios=scenarios
    )
    assert set(seq) == {"policy-tournament.json"}
    assert seq["policy-tournament.json"] == par["policy-tournament.json"]
    for seq_rep, par_rep in zip(seq_result.reports, par_result.reports):
        assert seq_rep.text == par_rep.text
    # the ranked report and its cost metric actually materialized
    rows = [row for rep in seq_result.reports for row in rep.rows]
    assert rows
    for row in rows:
        assert row["cost_cpu_s"] > 0
        assert "attainment_per_cost" in row
    assert "bracket winners:" in seq_result.reports[0].text


def test_geo_scenarios_golden_json_seq_vs_parallel_vs_profile(tmp_path):
    """One LIFL cell of each geo scenario through every execution mode.

    A sequential campaign may fork region workers (CPU-count permitting)
    while ``--jobs 4`` forces the regions inline inside daemonic pool
    workers, so equality here golden-pins forked vs inline federation —
    the WAN simulation, the failover routing, and the exact-merge all
    derive purely from the campaign seed."""
    cells = (
        ("geo-follow-the-sun", {"system": "LIFL", "regions": "3"}),
        ("geo-partition-failover", {"system": "LIFL", "regions": "3"}),
    )
    for name, filters in cells:
        seq, seq_result = _campaign_json(
            tmp_path, f"geo-seq-{name}", jobs=1, profile=False,
            scenarios=(name,), filters=filters,
        )
        par, par_result = _campaign_json(
            tmp_path, f"geo-par-{name}", jobs=4, profile=False,
            scenarios=(name,), filters=filters,
        )
        prof, _ = _campaign_json(
            tmp_path, f"geo-prof-{name}", jobs=1, profile=True,
            scenarios=(name,), filters=filters,
        )
        assert set(seq) == {f"{name}.json"}
        assert seq[f"{name}.json"] == par[f"{name}.json"], (
            f"{name}: sequential vs --jobs 4 differ"
        )
        assert seq[f"{name}.json"] == prof[f"{name}.json"], (
            f"{name}: --profile changed the JSON"
        )
        for seq_rep, par_rep in zip(seq_result.reports, par_result.reports):
            assert seq_rep.text == par_rep.text
        rows = [row for rep in seq_result.reports for row in rep.rows]
        assert rows
        for row in rows:
            assert row["regions"] == 3 and row["wan_flows"] > 0
            if name == "geo-partition-failover":
                assert row["failover_rounds"] > 0
                assert row["weight_conserved"] is True


def test_figure_campaign_byte_identical_with_geo_active(tmp_path):
    """The zero-overhead-when-unconfigured pin for the geo subsystem: a
    figure campaign run while geo machinery is fully imported, a
    topology constructed/validated, a trace routed through it, and an
    ambient telemetry bus installed must produce byte-identical JSON to
    a plain campaign.  (``repro.geo`` is never imported by the figure
    modules themselves; this proves even *active* geo state in the same
    process perturbs nothing.)  A fast figure subset keeps the guard
    cheap — the full eight-figure equality runs in
    ``test_figure_scenarios_golden_json_seq_vs_parallel``."""
    from repro.geo import RegionTopology, route_trace
    from repro.telemetry.bus import TelemetryBus, capture
    from repro.traces.models import poisson_trace

    subset = ("fig04", "fig13", "capacity")
    plain, plain_result = _campaign_json(
        tmp_path, "geo-off", jobs=1, profile=False, scenarios=subset
    )
    topology = RegionTopology(("us", "eu"), fallbacks={"eu": "us", "us": "eu"})
    route = route_trace(poisson_trace(6.0, 30.0, seed=3), topology)
    assert route.assignments  # geo actually did work in this process
    with capture(TelemetryBus()):
        active, active_result = _campaign_json(
            tmp_path, "geo-on", jobs=1, profile=False, scenarios=subset
        )
    assert set(plain) == {f"{name}.json" for name in subset}
    for name in plain:
        assert plain[name] == active[name], f"{name}: geo presence changed the JSON"
    for a, b in zip(plain_result.reports, active_result.reports):
        assert a.text == b.text


def test_stress100k_small_cell_golden_json_seq_vs_parallel(tmp_path):
    """The stress100k 5k cell (all shard values) through sequential and
    ``--jobs 4`` campaigns: the partitioned protocol's rows must be
    byte-identical whether cohorts fork (sequential campaign) or run
    inline (daemonic pool workers), and across the shard axis at all —
    the shards=1 row IS the unpartitioned sequential engine, so equality
    here golden-pins partitioned == unpartitioned."""
    filters = {"scale": "5k"}
    scenarios = ("stress100k",)
    seq, seq_result = _campaign_json(
        tmp_path, "100k-seq", jobs=1, profile=False, scenarios=scenarios, filters=filters
    )
    par, _ = _campaign_json(
        tmp_path, "100k-par", jobs=4, profile=False, scenarios=scenarios, filters=filters
    )
    assert set(seq) == {"stress100k.json"}
    for name in seq:
        assert seq[name] == par[name], f"{name}: sequential vs --jobs 4 differ"
    rows = [row for rep in seq_result.reports for row in rep.rows]
    assert {row["shards"] for row in rows} == {1, 2, 4}
    base = {k: v for k, v in rows[0].items() if k not in ("shards", "cpu_s")}
    for row in rows[1:]:
        assert {k: v for k, v in row.items() if k not in ("shards", "cpu_s")} == base
    assert "partition-invariant" in seq_result.reports[0].text
