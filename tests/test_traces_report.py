"""The SLO campaign summarizer (``python -m repro.traces.report``)."""

from __future__ import annotations

from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import CampaignRunner
from repro.traces.report import _load_docs, main, render_slo_report, slo_rows


def _record_campaign(tmp_path) -> str:
    out_dir = str(tmp_path / "results")
    runner = CampaignRunner(
        seed=3,
        out_dir=out_dir,
        filters={"system": "LIFL", "rate_per_min": "12", "shards": "1"},
    )
    runner.run([get_scenario("trace-poisson-slo")])
    return out_dir


def test_report_renders_slo_rows_from_recorded_campaign(tmp_path):
    out_dir = _record_campaign(tmp_path)
    docs = _load_docs(out_dir)
    assert len(docs) == 1
    pairs = slo_rows(docs[0])
    assert len(pairs) == 1
    params, row = pairs[0]
    assert params == {"system": "LIFL", "rate_per_min": 12, "shards": 1}
    text = render_slo_report(docs)
    assert "trace-poisson-slo" in text
    assert "p95 (s)" in text
    assert f"{row['slo_attainment']:.1%}" in text


def test_report_rescores_against_another_target(tmp_path):
    out_dir = _record_campaign(tmp_path)
    text = render_slo_report(_load_docs(out_dir), slo_target=0.001)
    assert "<50%" in text  # nothing attains a 1 ms target
    text = render_slo_report(_load_docs(out_dir), slo_target=1e9)
    assert ">=99%" in text


def test_report_cli_entry_point(tmp_path, capsys):
    out_dir = _record_campaign(tmp_path)
    assert main(["report", out_dir]) == 0
    assert "trace-poisson-slo" in capsys.readouterr().out
    assert main(["report", str(tmp_path / "nothing")]) == 2


def test_report_notes_missing_slo_rows(tmp_path):
    out_dir = str(tmp_path / "plain")
    CampaignRunner(seed=1, out_dir=out_dir).run([get_scenario("fig07")])
    assert "no SLO rows" in render_slo_report(_load_docs(out_dir))
