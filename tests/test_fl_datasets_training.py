"""Synthetic federated datasets and the NumPy training stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.fl.datasets import make_federated_dataset
from repro.fl.model import Model
from repro.fl.training import MLP, LocalTrainer, TrainingConfig


def test_dataset_structure():
    ds = make_federated_dataset(n_clients=12, num_classes=4, dim=8, seed=1)
    assert ds.num_clients == 12
    assert ds.num_classes == 4
    shard = ds.shard("client0003")
    assert shard.features.shape[1] == 8
    assert shard.features.dtype == np.float32
    assert shard.num_samples >= 8
    assert ds.test_features.shape == (1000, 8)


def test_dataset_deterministic_by_seed():
    a = make_federated_dataset(n_clients=5, seed=7)
    b = make_federated_dataset(n_clients=5, seed=7)
    np.testing.assert_array_equal(a.test_features, b.test_features)
    np.testing.assert_array_equal(
        a.shard("client0000").features, b.shard("client0000").features
    )
    c = make_federated_dataset(n_clients=5, seed=8)
    assert not np.array_equal(a.test_features, c.test_features)


def test_dataset_is_non_iid():
    ds = make_federated_dataset(n_clients=30, num_classes=10, dirichlet_alpha=0.2, seed=2)
    # With strong label skew, most clients should miss several classes.
    missing = 0
    for shard in ds.shards.values():
        if len(np.unique(shard.labels)) < ds.num_classes:
            missing += 1
    assert missing > 15


def test_dataset_sample_counts_heavy_tailed():
    ds = make_federated_dataset(n_clients=200, mean_samples=60, seed=3)
    counts = np.array(list(ds.sample_counts().values()))
    assert counts.max() > 3 * np.median(counts)  # a real tail
    assert counts.min() >= 8
    assert ds.total_samples() == counts.sum()


def test_dataset_validation():
    with pytest.raises(ConfigError):
        make_federated_dataset(n_clients=0)
    with pytest.raises(ConfigError):
        make_federated_dataset(num_classes=1)
    with pytest.raises(ConfigError):
        make_federated_dataset(mean_samples=5, min_samples=10)
    with pytest.raises(ConfigError):
        ds = make_federated_dataset(n_clients=3)
        ds.shard("ghost")


def test_mlp_shapes_and_init():
    mlp = MLP(dim=8, hidden=16, num_classes=3)
    params = mlp.init_params(make_rng(0, "init"))
    assert params["w1"].shape == (8, 16)
    assert params["w2"].shape == (16, 3)
    x = np.zeros((5, 8), dtype=np.float32)
    assert mlp.logits(params, x).shape == (5, 3)
    with pytest.raises(ConfigError):
        MLP(dim=0, hidden=1, num_classes=2)


def test_gradients_match_finite_differences():
    mlp = MLP(dim=4, hidden=6, num_classes=3)
    rng = make_rng(1, "grad")
    params = mlp.init_params(rng)
    x = rng.standard_normal((10, 4)).astype(np.float64)
    y = rng.integers(0, 3, size=10).astype(np.int64)
    # float64 copy for numeric accuracy
    params = Model({k: v.astype(np.float64) for k, v in params.items()})
    _, grads = mlp.loss_and_grads(params, x, y)
    eps = 1e-6
    for name in ("w1", "b2"):
        arr = params[name]
        flat_idx = 1 if arr.size > 1 else 0
        idx = np.unravel_index(flat_idx, arr.shape)
        arr[idx] += eps
        lp, _ = mlp.loss_and_grads(params, x, y)
        arr[idx] -= 2 * eps
        lm, _ = mlp.loss_and_grads(params, x, y)
        arr[idx] += eps
        numeric = (lp - lm) / (2 * eps)
        assert grads[name][idx] == pytest.approx(numeric, abs=1e-4)


def test_local_training_reduces_loss():
    ds = make_federated_dataset(n_clients=4, num_classes=3, dim=8, mean_samples=120, seed=4)
    mlp = MLP(dim=8, hidden=16, num_classes=3)
    rng = make_rng(2, "train")
    params = mlp.init_params(rng)
    shard = ds.shard("client0000")
    loss0, _ = mlp.loss_and_grads(params, shard.features, shard.labels)
    trainer = LocalTrainer(mlp, TrainingConfig(epochs=5, learning_rate=0.1))
    trained, _ = trainer.train(params, shard, rng)
    loss1, _ = mlp.loss_and_grads(trained, shard.features, shard.labels)
    assert loss1 < loss0 * 0.8


def test_fedprox_keeps_params_closer_to_global():
    ds = make_federated_dataset(n_clients=2, num_classes=3, dim=8, mean_samples=150, seed=5)
    mlp = MLP(dim=8, hidden=16, num_classes=3)
    rng1, rng2 = make_rng(3, "a"), make_rng(3, "a")
    params = mlp.init_params(make_rng(3, "init"))
    shard = ds.shard("client0000")
    plain = LocalTrainer(mlp, TrainingConfig(epochs=5, learning_rate=0.1))
    prox = LocalTrainer(mlp, TrainingConfig(epochs=5, learning_rate=0.1, fedprox_mu=1.0))
    t_plain, _ = plain.train(params, shard, rng1)
    t_prox, _ = prox.train(params, shard, rng2)
    assert t_prox.distance_to(params) < t_plain.distance_to(params)


def test_training_config_paper_defaults():
    cfg = TrainingConfig()
    assert cfg.batch_size == 32 and cfg.learning_rate == 0.01  # §6.2
    with pytest.raises(ConfigError):
        TrainingConfig(batch_size=0)
    with pytest.raises(ConfigError):
        TrainingConfig(learning_rate=0.0)
