"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.rng import make_rng
from repro.sim.engine import Environment


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def rng() -> np.random.Generator:
    return make_rng(1234, "tests")
