"""Conformance properties every registered policy must satisfy.

The suite introspects the live registry (``POLICIES.names(family)``), so
any policy registered anywhere — the built-ins, and the runnable
``examples/custom_policy.py`` policy which is imported below — is held
to the same contract:

* **selection** returns a duplicate-free subset of the clients eligible
  at the round's arrival instant, with matching weights, and is a pure
  function of its injected RNG;
* **placement** covers every arrival exactly once, the plan's leaves
  partition the placed updates per node, and a ``nodes=`` restriction is
  honoured;
* **admission** never grows a queue past its bound and never starves a
  tenant while the queue has room;
* **recovery** never leaves a round hung — below quorum it must abort,
  and every end-to-end chaos replay drives each round to a terminal
  outcome (complete, shrink to completion, or typed abort).
"""

from __future__ import annotations

import importlib.util
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import make_rng
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.core.policies import (
    ADMISSION_DECISIONS,
    POLICIES,
    AdmissionContext,
    RecoveryContext,
    SelectionContext,
)
from repro.fl.population import ClientPopulation
from repro.fl.selector import Selector, SelectorConfig
from repro.traces.models import availability_trace, poisson_trace
from repro.traces.replay import ChaosCorrelation, ReplayConfig, TraceReplayEngine
from repro.workloads.fedscale import MOBILE_PROFILE, make_population

# Pull in the docs example so its custom policy faces the same bar as the
# built-ins (guarded: pytest may import this module more than once, and
# the registry refuses duplicates).
_EXAMPLE = pathlib.Path(__file__).resolve().parents[1] / "examples" / "custom_policy.py"
if "freshest-first" not in POLICIES.names("selection"):
    _spec = importlib.util.spec_from_file_location("custom_policy_example", _EXAMPLE)
    _mod = importlib.util.module_from_spec(_spec)
    _spec.loader.exec_module(_mod)

HORIZON = 120.0
N_CLIENTS = 32
NODES = [f"node{i}" for i in range(4)]

_AVAIL = availability_trace(
    N_CLIENTS, HORIZON, seed=5, mean_session=60.0, mean_gap=40.0,
    prefix=MOBILE_PROFILE.name,
)
_FEDSCALE = make_population(N_CLIENTS, profile=MOBILE_PROFILE, seed=5)
_POPULATION = ClientPopulation.generate(
    N_CLIENTS, seed=5, horizon=HORIZON, mean_session=60.0, mean_gap=40.0
)
_SELECTOR = Selector(SelectorConfig(aggregation_goal=6, over_provision=1.25))


def _ctx(at: float) -> SelectionContext:
    """A context rich enough for every selection policy: trace-backed
    clients for the id-returning ones, a SoA population for the
    index-returning one."""
    return SelectionContext(
        at=at,
        tenant=0,
        round_id=0,
        round_updates=6,
        availability=_AVAIL,
        weights=_FEDSCALE.weights(),
        selector=_SELECTOR,
        clients=_FEDSCALE.clients,
        population=_POPULATION,
    )


# ================================================================= selection
@pytest.mark.parametrize("name", POLICIES.names("selection"))
@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**20), at=st.floats(0.0, HORIZON - 1e-6))
def test_selection_returns_valid_unique_subset(name: str, seed: int, at: float):
    pol = POLICIES.create("selection", name)
    ctx = _ctx(at)
    picked = pol.select(ctx, make_rng(seed, "conformance"))
    picked_list = [int(p) for p in picked] if isinstance(picked, np.ndarray) else list(picked)
    assert len(set(picked_list)) == len(picked_list), "duplicate participants"
    if isinstance(picked, np.ndarray):
        # Index-returning (population-backed) policy: every index must be
        # in range and available at the arrival instant.
        mask = _POPULATION.available_mask(at)
        assert all(0 <= i < _POPULATION.size for i in picked_list)
        assert all(mask[i] for i in picked_list), "picked an offline client"
    else:
        eligible = set(_AVAIL.available(at)) | {
            f"synth-{i}" for i in range(ctx.round_updates)
        }
        assert set(picked_list) <= eligible, "picked an ineligible client"
    weights = pol.participant_weights(ctx, picked)
    assert len(weights) == len(picked_list)
    assert all(float(w) > 0 for w in weights)


@pytest.mark.parametrize("name", POLICIES.names("selection"))
def test_selection_is_a_pure_function_of_its_rng(name: str):
    pol = POLICIES.create("selection", name)
    for at in (3.0, 47.0, 101.0):
        first = pol.select(_ctx(at), make_rng(99, "conformance"))
        second = pol.select(_ctx(at), make_rng(99, "conformance"))
        assert list(np.asarray(first)) == list(np.asarray(second)), (
            f"{name} is not deterministic under a fixed RNG stream"
        )


# ================================================================= placement
_ARRIVALS = st.lists(
    st.tuples(st.floats(0.0, 10.0), st.floats(0.5, 5.0)),
    min_size=1,
    max_size=16,
)


@pytest.mark.parametrize("name", POLICIES.names("placement"))
@settings(max_examples=20, deadline=None)
@given(arrivals=_ARRIVALS, restrict=st.integers(1, len(NODES)))
def test_placement_covers_arrivals_and_respects_nodes(
    name: str, arrivals: list, restrict: int
):
    platform = AggregationPlatform(PlatformConfig.lifl(), node_names=NODES)
    pol = POLICIES.create("placement", name)
    allowed = NODES[:restrict]
    updates, plan = pol.place(platform, arrivals, nbytes=1e6, nodes=allowed)
    # Exactly-once coverage, in deterministic arrival order.
    assert len(updates) == len(arrivals)
    assert sorted(u.uid for u in updates) == list(range(len(arrivals)))
    assert [u.arrival_time for u in updates] == sorted(t for t, _ in arrivals)
    # Node restriction honoured.
    assert {u.node for u in updates} <= set(allowed)
    # The plan's leaves partition the placed updates node by node.
    plan.validate()
    from repro.controlplane.hierarchy import Role

    leaf_fan_in: dict[str, int] = {}
    for leaf in plan.by_role(Role.LEAF):
        leaf_fan_in[leaf.node] = leaf_fan_in.get(leaf.node, 0) + leaf.fan_in
    placed: dict[str, int] = {}
    for u in updates:
        placed[u.node] = placed.get(u.node, 0) + 1
    assert leaf_fan_in == placed, "plan leaves do not partition the updates"


# ------------------------------------------------- region-restricted placement
_REGION_NODES = {
    "us": ("us-n0", "us-n1", "us-n2"),
    "eu": ("eu-n0", "eu-n1"),
    "ap": ("ap-n0", "ap-n1"),
}
_ALL_REGION_NODES = [n for nodes in _REGION_NODES.values() for n in nodes]


@pytest.mark.parametrize("name", POLICIES.names("placement"))
@settings(max_examples=20, deadline=None)
@given(
    arrivals=_ARRIVALS,
    home=st.sampled_from(sorted(_REGION_NODES)),
    partitioned_home=st.booleans(),
)
def test_placement_respects_region_restricted_node_sets(
    name: str, arrivals: list, home: str, partitioned_home: bool
):
    """Every registered placement policy against the node sets the geo
    federation hands it: the home region's nodes, or — while the home is
    partitioned — the fallback's.  A policy must never place an update
    in a partitioned region even though the platform knows every node."""
    from repro.geo import placement_nodes

    fallback = {"us": "eu", "eu": "ap", "ap": "us"}[home]
    partitioned = {home} if partitioned_home else set()
    allowed = placement_nodes(_REGION_NODES, home, fallback, partitioned)
    assert set(allowed) == set(
        _REGION_NODES[fallback if partitioned_home else home]
    )
    platform = AggregationPlatform(
        PlatformConfig.lifl(), node_names=_ALL_REGION_NODES
    )
    pol = POLICIES.create("placement", name)
    updates, plan = pol.place(platform, arrivals, nbytes=1e6, nodes=list(allowed))
    assert len(updates) == len(arrivals)
    used = {u.node for u in updates}
    assert used <= set(allowed), f"{name} escaped the region restriction"
    for region, nodes in _REGION_NODES.items():
        if region in partitioned:
            assert not used & set(nodes), f"{name} placed in a partitioned region"
    plan.validate()


def test_placement_nodes_refuses_dead_ends():
    """The federation's restriction helper fails loudly rather than
    handing a policy an empty or unsafe node set."""
    from repro.common.errors import ConfigError
    from repro.geo import placement_nodes

    with pytest.raises(ConfigError, match="no fallback"):
        placement_nodes(_REGION_NODES, "eu", "", {"eu"})
    with pytest.raises(ConfigError, match="partitioned too"):
        placement_nodes(_REGION_NODES, "eu", "ap", {"eu", "ap"})


# ================================================================= admission
@pytest.mark.parametrize("name", POLICIES.names("admission"))
@settings(max_examples=30, deadline=None)
@given(
    queue_limit=st.integers(0, 6),
    fill=st.floats(0.0, 1.0),
    deadline=st.sampled_from([0.0, 8.0]),
    now=st.floats(0.0, 500.0),
)
def test_admission_respects_bounds_and_never_starves(
    name: str, queue_limit: int, fill: float, deadline: float, now: float
):
    queue_len = min(queue_limit, int(fill * (queue_limit + 1)))
    pol = POLICIES.create("admission", name)
    decision = pol.decide(
        AdmissionContext(
            tenant=0,
            queue_len=queue_len,
            queue_limit=queue_limit,
            now=now,
            defer_deadline_s=deadline,
        )
    )
    assert decision in ADMISSION_DECISIONS
    if queue_len >= queue_limit:
        assert decision != "enqueue", "would grow the queue past its bound"
    else:
        assert decision == "enqueue", (
            "starved the tenant: room in the queue but the arrival was "
            f"{decision}ed"
        )


@pytest.mark.parametrize("name", POLICIES.names("admission"))
def test_admission_end_to_end_conserves_every_arrival(name: str):
    """Under heavy overload every arrival still reaches exactly one
    terminal outcome — the serving loop enforces the queue bound (it
    raises if a policy enqueues past it) and nothing is lost or counted
    twice."""
    replay = TraceReplayEngine(
        AggregationPlatform(PlatformConfig.lifl(), node_names=NODES),
        poisson_trace(40.0, 90.0, seed=2),
        ReplayConfig(
            round_updates=4,
            max_inflight=1,
            queue_limit=2,
            slo_target_s=10.0,
            admission_policy=name,
            defer_deadline_s=5.0,
        ),
        seed=2,
    )
    row = replay.run().row()
    terminal = (
        row["completed"] + row["rejected"] + row["aborted"] + row.get("shed", 0)
    )
    assert terminal == row["rounds"] > 0


# ================================================================== recovery
@pytest.mark.parametrize("name", POLICIES.names("recovery"))
@settings(max_examples=30, deadline=None)
@given(total=st.integers(1, 64), data=st.data())
def test_recovery_always_terminates_below_quorum(name: str, total: int, data):
    quorum = data.draw(st.integers(1, total))
    survivors = data.draw(st.integers(0, total))
    pol = POLICIES.create("recovery", name)
    verdict = pol.on_client_failed(
        RecoveryContext(
            client_id="c0", survivors=survivors, quorum=quorum, total=total
        )
    )
    assert verdict in ("shrink", "abort"), f"unknown recovery verdict {verdict!r}"
    if survivors < quorum:
        # A round that can no longer cover its quorum must abort — a
        # policy that keeps shrinking forever would hang the round.
        assert pol.should_abort(survivors, quorum, total), (
            "below-quorum round left hanging"
        )


@pytest.mark.parametrize("name", POLICIES.names("recovery"))
def test_recovery_end_to_end_never_hangs_a_round(name: str):
    """Serve through aggressive correlated dropout waves: every round
    must end — completed (possibly goal-shrunk) or typed abort."""
    avail = availability_trace(
        24, 120.0, seed=7, mean_session=50.0, mean_gap=60.0,
        day_night_amplitude=0.8, period=60.0,
    )
    replay = TraceReplayEngine(
        AggregationPlatform(PlatformConfig.lifl(), node_names=NODES),
        poisson_trace(15.0, 120.0, seed=7),
        ReplayConfig(
            round_updates=6, max_inflight=2, queue_limit=4, slo_target_s=15.0
        ),
        availability=avail,
        chaos=ChaosCorrelation(
            dip_threshold=0.9,
            max_fraction=1.0,
            wave_delay_s=0.25,
            quorum_fraction=0.6,
            recovery_policy=name,
        ),
        seed=7,
    )
    row = replay.run().row()
    assert row["chaos_waves"] > 0, "chaos never engaged — test is vacuous"
    assert row["completed"] + row["rejected"] + row["aborted"] == row["rounds"] > 0
    if name == "abort-fast":
        assert row["aborted"] > 0
