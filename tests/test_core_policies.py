"""Policy registry mechanics, knob resolution, and error paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.common.rng import RngRegistry
from repro.core.platform import AggregationPlatform, PlatformConfig
from repro.core.policies import (
    DEFAULTS,
    POLICIES,
    AdmissionContext,
    Policy,
    PolicyRegistry,
    SelectionPolicy,
    policy,
    resolve_policy,
)
from repro.traces.models import availability_trace, poisson_trace
from repro.traces.replay import ReplayConfig, TraceReplayEngine
from repro.workloads.fedscale import MOBILE_PROFILE, make_population

NODES = [f"node{i}" for i in range(4)]


def _platform(**overrides) -> AggregationPlatform:
    return AggregationPlatform(PlatformConfig.lifl(**overrides), node_names=NODES)


# ------------------------------------------------------------------ registry
def test_registry_catalogue_has_every_ported_policy():
    assert POLICIES.families() == ["selection", "placement", "admission", "recovery"]
    # The conformance suite imports examples/custom_policy.py, which adds
    # "freshest-first" — the built-in selection catalogue must be there
    # regardless of whether that import happened first.
    selection = [n for n in POLICIES.names("selection") if n != "freshest-first"]
    assert selection == [
        "availability-aware",
        "population",
        "random",
    ]
    assert POLICIES.names("placement") == ["locality", "lpt"]
    assert POLICIES.names("admission") == [
        "bounded-queue",
        "defer-with-deadline",
        "drop-head",
        "drop-tail",
    ]
    assert POLICIES.names("recovery") == ["abort-fast", "shrink-or-abort"]
    for family, name in DEFAULTS.items():
        assert name in POLICIES.names(family)


def test_create_stamps_family_and_name():
    instance = POLICIES.create("admission", "drop-head")
    assert (instance.family, instance.name) == ("admission", "drop-head")


def test_unknown_policy_name_lists_available():
    with pytest.raises(ConfigError) as err:
        POLICIES.create("selection", "round-robin")
    message = str(err.value)
    assert "round-robin" in message
    for name in POLICIES.names("selection"):
        assert name in message


def test_duplicate_registration_raises():
    fresh = PolicyRegistry()
    fresh.register("admission", "x", Policy)
    with pytest.raises(ConfigError, match="already registered"):
        fresh.register("admission", "x", Policy)


def test_unknown_family_and_empty_name_refuse_registration():
    fresh = PolicyRegistry()
    with pytest.raises(ConfigError, match="unknown policy family"):
        fresh.register("scheduling", "x", Policy)
    with pytest.raises(ConfigError, match="non-empty name"):
        fresh.register("admission", "", Policy)


def test_resolve_empty_name_lands_on_default_and_binds_stream():
    rngs = RngRegistry(7)
    resolved = resolve_policy("admission", rngs=rngs)
    assert resolved.name == DEFAULTS["admission"]
    assert resolved.rng is rngs.stream("policy:admission:bounded-queue")
    # Without a registry the policy carries no stream.
    assert resolve_policy("admission").rng is None


# ------------------------------------------------------------- knob plumbing
def _replay(config: ReplayConfig, seed: int = 3, **kwargs) -> TraceReplayEngine:
    trace = poisson_trace(20.0, 60.0, seed=seed)
    return TraceReplayEngine(_platform(), trace, config, seed=seed, **kwargs)


def _mobile_inputs(seed: int = 3):
    population = make_population(24, profile=MOBILE_PROFILE, seed=seed)
    avail = availability_trace(
        24, 60.0, seed=seed, prefix=MOBILE_PROFILE.name
    )
    from repro.fl.selector import Selector, SelectorConfig

    selector = Selector(SelectorConfig(aggregation_goal=4, over_provision=1.25))
    return dict(
        availability=avail,
        weights=population.weights(),
        selector=selector,
        clients=population.clients,
    )


def test_selection_default_derives_from_inputs():
    assert _replay(ReplayConfig())._selection.name == "random"
    assert (
        _replay(ReplayConfig(), **_mobile_inputs())._selection.name
        == "availability-aware"
    )


def test_unknown_selection_knob_raises_with_catalogue():
    with pytest.raises(ConfigError, match="unknown selection policy"):
        _replay(ReplayConfig(selection_policy="best-effort"))


def test_population_selection_without_population_raises():
    with pytest.raises(ConfigError, match="population"):
        _replay(ReplayConfig(selection_policy="population"))


def test_availability_aware_selection_without_selector_raises():
    with pytest.raises(ConfigError, match="availability-aware"):
        _replay(ReplayConfig(selection_policy="availability-aware"))


def test_unknown_admission_knob_raises():
    with pytest.raises(ConfigError, match="unknown admission policy"):
        _replay(ReplayConfig(admission_policy="lottery"))


def test_unknown_round_placement_raises():
    with pytest.raises(ConfigError, match="unknown placement policy"):
        _platform(round_placement="scatter")


def test_unknown_recovery_policy_raises():
    with pytest.raises(ConfigError, match="unknown recovery policy"):
        resolve_policy("recovery", "retry-forever")


# ------------------------------------------------------- behaviour under load
OVERLOAD = ReplayConfig(
    round_updates=4, max_inflight=1, queue_limit=2, slo_target_s=10.0
)


def test_drop_head_evicts_oldest_not_newest():
    """Head drop rejects exactly as many rounds as tail drop under the
    same workload, but the evicted rounds are the older arrivals."""
    tail = _replay(OVERLOAD).run().row()
    head = _replay(
        ReplayConfig(**{**OVERLOAD.__dict__, "admission_policy": "drop-head"})
    ).run().row()
    assert head["rounds"] == tail["rounds"]
    assert head["rejected"] > 0
    # Same conservation: every arrival still reaches a terminal outcome.
    assert (
        head["completed"] + head["rejected"] + head["aborted"]
        == head["rounds"]
    )


def test_standalone_defer_shows_controller_columns_and_conserves():
    row = _replay(
        ReplayConfig(
            **{
                **OVERLOAD.__dict__,
                "admission_policy": "defer-with-deadline",
                "defer_deadline_s": 6.0,
            }
        )
    ).run().row()
    assert "shed" in row and "deferred" in row
    assert row["completed"] + row["rejected"] + row["aborted"] + row["shed"] == row["rounds"]
    # No controller: the plain bounded-queue row keeps its original shape.
    plain = _replay(OVERLOAD).run().row()
    assert "shed" not in plain and "deferred" not in plain


def test_cost_tracking_is_opt_in():
    cfg = ReplayConfig(**{**OVERLOAD.__dict__, "track_cost": True})
    row = _replay(cfg).run().row()
    assert row["cost_cpu_s"] > 0
    assert row["attainment_per_cost"] == pytest.approx(
        row["slo_attainment"] / row["cost_cpu_s"], rel=1e-6
    )
    assert "cost_cpu_s" not in _replay(OVERLOAD).run().row()


# --------------------------------------------------- rogue-RNG determinism
def test_policy_drawing_global_rng_breaks_seeded_replay():
    """A policy that draws from the global NumPy RNG instead of its
    injected stream is caught by replaying the same seed twice: the rows
    must be byte-identical, and with a rogue policy they are not."""

    @policy("selection", "rogue-global-rng")
    class RogueSelection(SelectionPolicy):
        def select(self, ctx, rng):
            k = 1 + int(np.random.random() * ctx.round_updates)
            return [f"synth-{i}" for i in range(k)]

    try:
        cfg = ReplayConfig(
            round_updates=4, max_inflight=2, queue_limit=4,
            selection_policy="rogue-global-rng",
        )
        rows = [_replay(cfg, seed=11).run().row() for _ in range(2)]
        assert rows[0] != rows[1], "global-RNG draws went undetected"
        # The well-behaved default is reproducible under the same harness.
        good = [_replay(ReplayConfig(), seed=11).run().row() for _ in range(2)]
        assert good[0] == good[1]
    finally:
        del POLICIES._factories[("selection", "rogue-global-rng")]


def test_admission_context_is_frozen():
    ctx = AdmissionContext(tenant=0, queue_len=1, queue_limit=2, now=0.0)
    with pytest.raises(AttributeError):
        ctx.queue_len = 5
