"""Worker nodes: CPU ledger, shm accounting, cluster assembly."""

from __future__ import annotations

import pytest

from repro.cluster.node import CpuAccount, NodeSpec, WorkerNode
from repro.cluster.topology import Cluster, ClusterSpec
from repro.common.errors import ConfigError, SimulationError


def test_node_spec_defaults_match_testbed():
    spec = NodeSpec(name="n")
    assert spec.cores == 64
    assert spec.nic_bps == 1.25e9
    assert spec.max_service_capacity == 20


def test_node_spec_validation():
    with pytest.raises(SimulationError):
        NodeSpec(name="n", cores=0)
    with pytest.raises(SimulationError):
        NodeSpec(name="n", max_service_capacity=0)


def test_cpu_account_buckets():
    acct = CpuAccount()
    acct.charge("agg", 1.5)
    acct.charge("agg", 0.5)
    acct.charge("dataplane", 2.0)
    assert acct.get("agg") == pytest.approx(2.0)
    assert acct.total() == pytest.approx(4.0)
    with pytest.raises(SimulationError):
        acct.charge("agg", -1.0)


def test_execute_occupies_core_and_charges(env):
    node = WorkerNode(env, NodeSpec(name="n", cores=1))
    order = []

    def task(name):
        yield from node.execute(2.0, "aggregation")
        order.append((name, env.now))

    env.process(task("a"))
    env.process(task("b"))
    env.run()
    # One core: b runs after a.
    assert order == [("a", 2.0), ("b", 4.0)]
    assert node.cpu.get("aggregation") == pytest.approx(4.0)


def test_shm_accounting_and_high_water(env):
    node = WorkerNode(env, NodeSpec(name="n", memory_bytes=100.0))
    node.shm_alloc(60.0)
    node.shm_alloc(30.0)
    assert node.shm_high_water == pytest.approx(90.0)
    node.shm_free(50.0)
    assert node.shm_bytes_in_use == pytest.approx(40.0)
    with pytest.raises(SimulationError):
        node.shm_alloc(100.0)
    with pytest.raises(SimulationError):
        node.shm_free(999.0)


def test_cluster_builds_named_nodes(env):
    cluster = Cluster(env, ClusterSpec(node_count=3))
    assert cluster.node_names == ["node0", "node1", "node2"]
    assert cluster.node("node1").spec.cores == 64
    with pytest.raises(ConfigError):
        cluster.node("node9")


def test_cluster_cpu_rollup(env):
    cluster = Cluster(env, ClusterSpec(node_count=2))
    cluster.node("node0").charge_cpu(1.0, "agg")
    cluster.node("node1").charge_cpu(2.0, "agg")
    cluster.node("node1").charge_cpu(3.0, "ingress")
    assert cluster.total_cpu_seconds() == pytest.approx(6.0)
    assert cluster.total_cpu_seconds("agg") == pytest.approx(3.0)
    assert cluster.cpu_breakdown() == {"agg": 3.0, "ingress": 3.0}


def test_cluster_spec_validation(env):
    with pytest.raises(ConfigError):
        ClusterSpec(node_count=0)
