"""The telemetry bus, the JSONL sink, and the streams' exactness.

The two properties this file pins are the tentpole guarantees:

* **zero overhead when unused** — a replay run with the bus importable
  (even installed as ambient, even handed in explicitly) but without a
  subscriber produces byte-identical results to a plain run, and a
  *subscribed* run still produces byte-identical results in everything
  except the stream it writes;
* **exactness** — the JSONL stream alone, after a round-trip through
  disk, rebuilds the engine's own SLO accounting ``report()``-identical,
  unsharded and at ``shards=4`` (merged per-shard streams).
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import ConfigError
from repro.experiments.trace_scenarios import _diurnal_replay
from repro.telemetry.bus import (
    RECORD_KINDS,
    RecordingSubscriber,
    TelemetryBus,
    TelemetryRecord,
    ambient_bus,
    capture,
    merge_streams,
    slo_from_records,
)
from repro.telemetry.sink import (
    JsonlSink,
    read_jsonl,
    record_from_obj,
    record_to_obj,
    records_to_objs,
    validate_stream,
)

SEED = 5


# ------------------------------------------------------------------ records
def test_record_refuses_unknown_kind_and_fields():
    with pytest.raises(ConfigError):
        TelemetryRecord(at=0.0, kind="not-a-kind")
    with pytest.raises(ConfigError):
        TelemetryRecord(at=0.0, kind="round-settled", fields=(("bogus", 1),))


def test_record_data_and_get():
    rec = TelemetryRecord(
        at=1.5, kind="round-settled", tenant=2, round_id=7,
        fields=(("latency", 3.0), ("service", 2.0)),
    )
    assert rec.data == {"latency": 3.0, "service": 2.0}
    assert rec.get("latency") == 3.0
    assert rec.get("missing", 9) == 9


def test_every_catalogue_kind_constructs():
    for kind, fields in RECORD_KINDS.items():
        rec = TelemetryRecord(at=0.0, kind=kind, fields=tuple((f, 0) for f in fields))
        assert rec.kind == kind


# -------------------------------------------------------------------- bus
def test_bus_or_none_and_subscribe_cycle():
    bus = TelemetryBus()
    assert bus.or_none() is None and not bus.active
    seen = []
    unsubscribe = bus.subscribe(seen.append)
    assert bus.or_none() is bus and bus.active
    bus.emit("round-shed", 1.0, tenant=0, round_id=3, reason="overload")
    assert [r.kind for r in seen] == ["round-shed"]
    assert seen[0].tenant == 0 and seen[0].round_id == 3
    unsubscribe()
    assert bus.or_none() is None
    bus.emit("round-shed", 2.0, reason="overload")
    assert len(seen) == 1


def test_ambient_capture_nests_and_restores():
    assert ambient_bus() is None
    outer, inner = TelemetryBus(), TelemetryBus()
    with capture(outer):
        assert ambient_bus() is outer
        with capture(inner):
            assert ambient_bus() is inner
        assert ambient_bus() is outer
    assert ambient_bus() is None


# ------------------------------------------------------------------- sink
def test_record_obj_round_trip_omits_unset_envelope():
    rec = TelemetryRecord(at=2.5, kind="queue-sample", tenant=1,
                          fields=(("deferred", 0), ("depth", 4), ("inflight", 2), ("limit", 8)))
    obj = record_to_obj(rec)
    assert "round" not in obj and "shard" not in obj and obj["tenant"] == 1
    assert record_from_obj(obj) == rec


def test_record_from_obj_refuses_context_lines():
    with pytest.raises(ConfigError):
        record_from_obj({"kind": "stream-header", "at": 0.0})


def test_jsonl_sink_and_validator(tmp_path):
    path = tmp_path / "s.jsonl"
    with open(path, "w", encoding="utf-8") as fh:
        sink = JsonlSink(fh, run="unit")
        sink.context("run-start", scenario="x", index=0)
        sink(TelemetryRecord(at=0.5, kind="round-shed", tenant=0, fields=(("reason", "r"),)))
    lines = path.read_text().splitlines()
    assert json.loads(lines[0])["kind"] == "stream-header"
    assert json.loads(lines[0])["run"] == "unit"
    counts = validate_stream(str(path))
    assert counts == {"run-start": 1, "round-shed": 1}
    assert [r.kind for r in read_jsonl(str(path))] == ["round-shed"]


@pytest.mark.parametrize(
    "lines, message",
    [
        ([], "empty stream"),
        (['{"kind": "round-shed", "at": 1.0}'], "first line must be"),
        (['{"kind": "stream-header", "schema_version": 99}'], "unsupported"),
        (
            ['{"kind": "stream-header", "schema_version": 1}',
             '{"kind": "mystery", "at": 1.0}'],
            "unknown record kind",
        ),
        (
            ['{"kind": "stream-header", "schema_version": 1}',
             '{"kind": "round-shed", "at": -3.0, "reason": "r"}'],
            "bad timestamp",
        ),
        (
            ['{"kind": "stream-header", "schema_version": 1}',
             '{"kind": "round-shed", "at": 1.0, "bogus": 1}'],
            "unknown fields",
        ),
    ],
)
def test_validator_rejects_malformed_streams(tmp_path, lines, message):
    path = tmp_path / "bad.jsonl"
    path.write_text("".join(line + "\n" for line in lines))
    with pytest.raises(ConfigError, match=message):
        validate_stream(str(path))


# ----------------------------------------------------------- merge_streams
def test_merge_streams_stamps_shards_and_orders_by_time():
    def rec(at):
        return TelemetryRecord(at=at, kind="round-shed", fields=(("reason", "r"),))

    merged = merge_streams([[rec(3.0), rec(5.0)], [rec(1.0), rec(3.0)]])
    assert [r.at for r in merged] == [1.0, 3.0, 3.0, 5.0]
    # stable sort: the at=3.0 tie keeps stream (shard) order
    assert [r.shard for r in merged] == [1, 0, 1, 0]


def test_merge_streams_region_stamp_and_tie_break():
    """Regression for the geo merge: simultaneous records across streams
    break ties by ``(region, shard)`` — deterministic whatever order the
    caller lists the streams in — while region-less (legacy) merges stay
    byte-identical to the plain stable sort above."""

    def rec(at):
        return TelemetryRecord(at=at, kind="round-shed", fields=(("reason", "r"),))

    legacy = merge_streams([[rec(3.0)], [rec(3.0)]])
    assert [(r.region, r.shard) for r in legacy] == [("", 0), ("", 1)]

    merged = merge_streams(
        [[rec(3.0), rec(5.0)], [rec(3.0)]], regions=["us", "ap"]
    )
    assert [(r.at, r.region, r.shard) for r in merged] == [
        (3.0, "ap", 1),  # 'ap' sorts before 'us' at the 3.0 tie
        (3.0, "us", 0),
        (5.0, "us", 0),
    ]
    # listing the streams the other way round yields the same merge
    flipped = merge_streams(
        [[rec(3.0)], [rec(3.0), rec(5.0)]], regions=["ap", "us"]
    )
    assert [(r.at, r.region) for r in flipped] == [
        (r.at, r.region) for r in merged
    ]
    with pytest.raises(ConfigError, match="region names"):
        merge_streams([[rec(1.0)]], regions=["us", "eu"])


# ---------------------------------------------------- zero-overhead pins
def _timeline_key(result):
    return [
        (r.tenant, r.round_id, r.arrival_at, r.admit_at, r.complete_at, r.latency,
         r.aborted, r.rejected, r.shed, r.deferred, tuple(r.participants))
        for r in result.records
    ]


def test_unsubscribed_bus_is_invisible_to_the_replay():
    plain = _diurnal_replay("LIFL", seed=SEED).run()
    with capture(TelemetryBus()):  # ambient, importable, but nobody listens
        ambient = _diurnal_replay("LIFL", seed=SEED).run()
    explicit = _diurnal_replay("LIFL", seed=SEED)
    explicit.telemetry = TelemetryBus()
    handed = explicit.run()
    assert _timeline_key(plain) == _timeline_key(ambient) == _timeline_key(handed)
    assert plain.slo.report() == ambient.slo.report() == handed.slo.report()


def test_subscribed_bus_changes_nothing_but_produces_the_stream():
    plain = _diurnal_replay("LIFL", seed=SEED).run()
    bus = TelemetryBus()
    recorder = RecordingSubscriber(bus)
    with capture(bus):
        watched = _diurnal_replay("LIFL", seed=SEED).run()
    assert _timeline_key(plain) == _timeline_key(watched)
    assert plain.slo.report() == watched.slo.report()
    kinds = {r.kind for r in recorder.records}
    assert {"replay-start", "replay-end", "round-admitted", "round-installed",
            "round-settled", "queue-sample", "perf-snapshot"} <= kinds
    settled = [r for r in recorder.records if r.kind == "round-settled"]
    assert len(settled) == len(plain.records)
    # emission order is virtual-time order for the single-shard engine
    assert [r.at for r in recorder.records] == sorted(r.at for r in recorder.records)


# --------------------------------------------------------------- exactness
def _recorded_stream(shards: int):
    bus = TelemetryBus()
    recorder = RecordingSubscriber(bus)
    with capture(bus):
        result = _diurnal_replay("LIFL", seed=SEED).run(shards=shards)
    slo = result.slo if shards == 1 else result.merged.slo
    return recorder.records, slo


@pytest.mark.parametrize("shards", [1, 4])
def test_stream_rebuilds_exact_slo_report_through_disk(tmp_path, shards):
    """The acceptance pin: a recorded stream, serialized to JSONL and read
    back, reproduces the engine's own SLO report exactly — including the
    merged per-shard streams of a shards=4 replay."""
    records, slo = _recorded_stream(shards)
    path = tmp_path / f"s{shards}.jsonl"
    with open(path, "w", encoding="utf-8") as fh:
        sink = JsonlSink(fh, flush_every=64)
        for rec in records:
            sink(rec)
    validate_stream(str(path))
    rebuilt = slo_from_records(read_jsonl(str(path)))
    assert rebuilt.report() == slo.report()
    assert rebuilt.rounds_total == slo.rounds_total
    assert rebuilt.attainment == slo.attainment


def test_sharded_stream_is_merged_ordered_and_stamped():
    records, _ = _recorded_stream(4)
    assert [r.at for r in records] == sorted(r.at for r in records)
    shards_seen = {r.shard for r in records}
    assert shards_seen == {0, 1, 2, 3}
    # every shard contributed a replay lifecycle of its own
    assert sum(1 for r in records if r.kind == "replay-start") == 4
    assert sum(1 for r in records if r.kind == "perf-snapshot") == 4


def test_forked_and_inline_shards_stream_identically():
    records, _ = _recorded_stream(4)
    bus = TelemetryBus()
    recorder = RecordingSubscriber(bus)
    with capture(bus):
        _diurnal_replay("LIFL", seed=SEED).run(shards=4, inline=True)
    assert records == recorder.records


def test_slo_from_records_requires_a_replay_start():
    with pytest.raises(ConfigError, match="replay-start"):
        slo_from_records([
            TelemetryRecord(at=1.0, kind="round-shed", fields=(("reason", "r"),))
        ])


# ------------------------------------------------------- emitter coverage
def test_chaos_faults_reach_the_stream():
    from repro.experiments.trace_scenarios import run_burst_cell

    bus = TelemetryBus()
    recorder = RecordingSubscriber(bus)
    with capture(bus):
        run_burst_cell("LIFL", chaos="on", seed=SEED)
    faults = [r for r in recorder.records if r.kind == "chaos-fault"]
    assert faults
    assert {f.get("fault") for f in faults} & {"crash", "dropout", "slow-node",
                                               "nic-rescale", "partition", "heal"}


def test_controller_ticks_and_actions_reach_the_stream():
    from repro.scenarios.registry import get_scenario
    from repro.scenarios.runner import CampaignRunner

    runner = CampaignRunner(seed=SEED, filters={"mode": "reactive", "shards": "1"})
    bus = TelemetryBus()
    recorder = RecordingSubscriber(bus)
    with capture(bus):
        runner.run([get_scenario("autoscale-flashcrowd")])
    kinds = [r.kind for r in recorder.records]
    assert "controller-tick" in kinds
    assert "control-action" in kinds
    actions = [r for r in recorder.records if r.kind == "control-action"]
    assert all(r.get("action") and r.get("reason") for r in actions)


# ------------------------------------------------------ campaign plumbing
def test_campaign_telemetry_file_identical_across_job_counts(tmp_path):
    from repro.scenarios.registry import get_scenario
    from repro.scenarios.runner import CampaignRunner

    blobs = {}
    for jobs in (1, 4):
        path = tmp_path / f"jobs{jobs}.jsonl"
        runner = CampaignRunner(
            jobs=jobs, seed=SEED, filters={"system": "LIFL"},
            telemetry_path=str(path),
        )
        result = runner.run([get_scenario("trace-diurnal-multitenant")])
        assert all(rec.telemetry for rep in result.reports for rec in rep.records)
        blobs[jobs] = path.read_bytes()
        counts = validate_stream(str(path))
        assert counts["run-start"] == 3  # shards 1, 2, 4
        assert counts["round-settled"] > 0
    assert blobs[1] == blobs[4], "--telemetry stream differs across --jobs"


def test_records_to_objs_round_trips():
    rec = TelemetryRecord(at=1.0, kind="round-aborted", tenant=0, round_id=1,
                          fields=(("queue_wait", 0.25),))
    objs = records_to_objs([rec])
    assert [record_from_obj(o) for o in objs] == [rec]
